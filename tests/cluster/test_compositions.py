"""Heterogeneous shared-queue compositions (`compare_compositions`)."""

from __future__ import annotations

import pytest

from repro.arch.config import CONFIG_16_16, CONFIG_32_32
from repro.cluster import compare_compositions
from repro.errors import ConfigError
from repro.serve.workload import TenantSpec, poisson_arrivals

TENANTS = [TenantSpec("acme", "alexnet")]


def _requests(rate=60.0, duration=3.0, seed=9):
    return poisson_arrivals(rate, duration, TENANTS, seed=seed)


COMPOSITIONS = {
    "mixed": [(CONFIG_32_32, 1), (CONFIG_16_16, 2)],
    "small-only": [(CONFIG_16_16, 4)],
}


class TestCompareCompositions:
    def test_structure_and_winner(self):
        out = compare_compositions(COMPOSITIONS, _requests(), 3.0)
        assert set(out["compositions"]) == {"mixed", "small-only"}
        assert sorted(out["ranking"]) == ["mixed", "small-only"]
        assert out["winner"] == out["ranking"][0]

    def test_per_chip_present_with_class_names(self):
        out = compare_compositions(COMPOSITIONS, _requests(), 3.0)
        per_chip = out["compositions"]["mixed"]["per_chip"]
        assert set(per_chip) == {
            "32-32 g0-0",
            "16-16 g1-0",
            "16-16 g1-1",
        }

    def test_conservation_per_composition(self):
        requests = _requests()
        out = compare_compositions(COMPOSITIONS, requests, 3.0)
        for summary in out["compositions"].values():
            assert summary["offered"] == len(requests)
            assert (
                summary["completed"] + summary["shed"] == summary["offered"]
            )

    def test_deterministic(self):
        a = compare_compositions(COMPOSITIONS, _requests(), 3.0)
        b = compare_compositions(COMPOSITIONS, _requests(), 3.0)
        assert a == b

    def test_empty_compositions(self):
        with pytest.raises(ConfigError, match="at least one composition"):
            compare_compositions({}, _requests(), 3.0)

    def test_empty_group_list(self):
        with pytest.raises(ConfigError, match="no chip groups"):
            compare_compositions({"bad": []}, _requests(), 3.0)

    @pytest.mark.parametrize("count", [0, -1, True, 2.0])
    def test_bad_count(self, count):
        with pytest.raises(ConfigError, match="count must be"):
            compare_compositions(
                {"bad": [(CONFIG_16_16, count)]}, _requests(), 3.0
            )
