"""Layer-pipeline partitioning tests, including the acceptance criteria:

* the DP balancer's bottleneck (compute + link) is never worse than the
  even split, for every zoo network and N in {2, 4};
* equal-work partitions are bit-deterministic across runs.
"""

import math

import pytest

from repro.arch.config import CONFIG_16_16
from repro.cluster.link import LinkSpec
from repro.cluster.pipeline import (
    partition_dp,
    partition_even,
    plan_pipeline,
)
from repro.errors import ConfigError


class TestPartitionEven:
    def test_boundaries_split_by_count(self):
        assert partition_even(8, 4) == [2, 4, 6]
        assert partition_even(5, 2) == [2]

    def test_every_stage_nonempty(self):
        for n_layers in range(1, 20):
            for n_chips in range(1, n_layers + 1):
                edges = [0] + partition_even(n_layers, n_chips) + [n_layers]
                assert all(b > a for a, b in zip(edges, edges[1:]))


class TestPartitionDP:
    def test_balances_unequal_work(self):
        # layer costs 9, 1, 1, 1: even split [9+1 | 1+1] has bottleneck 10;
        # optimal [9 | 1+1+1] has bottleneck 9
        compute = [9.0, 1.0, 1.0, 1.0]
        send = [0.0] * 5
        assert partition_dp(compute, send, 2) == [1]

    def test_accounts_for_link_cost(self):
        # splitting after layer 0 ships a huge tensor; after layer 1 a tiny
        # one — the DP must prefer the cheap cut even though compute is
        # slightly less balanced
        compute = [5.0, 1.0, 5.0]
        send = [0.0, 100.0, 0.5, 0.0]
        assert partition_dp(compute, send, 2) == [2]

    def test_single_stage_is_whole_network(self):
        assert partition_dp([1.0, 2.0], [0.0, 0.0, 0.0], 1) == []

    def test_ties_resolve_deterministically(self):
        # uniform work: several partitions share the optimal bottleneck;
        # repeated runs must return the identical boundary list
        compute = [1.0] * 8
        send = [0.0] * 9
        first = partition_dp(compute, send, 4)
        for _ in range(5):
            assert partition_dp(compute, send, 4) == first

    def test_never_worse_than_even(self):
        compute = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        send = [0.0] + [0.25] * 7 + [0.0]

        def bottleneck(edges):
            stages = []
            for a, b in zip(edges, edges[1:]):
                cost = sum(compute[a:b])
                if b != len(compute):
                    cost += send[b]
                stages.append(cost)
            return max(stages)

        for n in (2, 3, 4):
            dp = [0] + partition_dp(compute, send, n) + [len(compute)]
            even = [0] + partition_even(len(compute), n) + [len(compute)]
            assert bottleneck(dp) <= bottleneck(even)


class TestPlanPipelineValidation:
    def test_rejects_zero_and_bool_chips(self, alexnet, cfg16):
        with pytest.raises(ConfigError, match="positive"):
            plan_pipeline(alexnet, cfg16, 0)
        with pytest.raises(ConfigError, match="int"):
            plan_pipeline(alexnet, cfg16, True)

    def test_rejects_more_chips_than_layers(self, alexnet, cfg16):
        with pytest.raises(ConfigError, match="each stage needs"):
            plan_pipeline(alexnet, cfg16, 10**6)

    def test_rejects_unknown_strategy(self, alexnet, cfg16):
        with pytest.raises(ConfigError, match="strategy"):
            plan_pipeline(alexnet, cfg16, 2, strategy="magic")


class TestPlanPipeline:
    def test_stages_cover_all_layers_in_order(self, alexnet, cfg16):
        plan = plan_pipeline(alexnet, cfg16, 3)
        names = [n for s in plan.stages for n in s.layer_names]
        assert names[0] == "conv1"
        assert len(names) == len(set(names))
        edges = [s.start for s in plan.stages] + [plan.stages[-1].stop]
        assert edges[0] == 0 and all(b > a for a, b in zip(edges, edges[1:]))

    def test_last_stage_sends_nothing(self, alexnet, cfg16):
        plan = plan_pipeline(alexnet, cfg16, 4)
        assert plan.stages[-1].send_bytes == 0
        assert plan.stages[-1].send_s == 0.0

    def test_single_chip_matches_whole_network_latency(self, alexnet, cfg16):
        from repro.adaptive.planner import plan_network

        plan = plan_pipeline(alexnet, cfg16, 1)
        run = plan_network(alexnet, cfg16, "adaptive-2", include_non_conv=True)
        assert plan.bottleneck_s == pytest.approx(
            cfg16.cycles_to_seconds(run.total_cycles)
        )
        assert plan.fill_latency_s == plan.bottleneck_s
        assert plan.drain_latency_s == 0.0

    def test_bottleneck_is_max_stage(self, vgg, cfg16):
        plan = plan_pipeline(vgg, cfg16, 4)
        assert plan.bottleneck_s == max(s.stage_s for s in plan.stages)
        assert plan.throughput_ips == pytest.approx(1.0 / plan.bottleneck_s)
        assert plan.fill_latency_s == pytest.approx(
            sum(s.stage_s for s in plan.stages)
        )

    def test_utilization_peaks_at_bottleneck_stage(self, alexnet, cfg16):
        plan = plan_pipeline(alexnet, cfg16, 4)
        utils = [plan.utilization(c) for c in range(plan.n_chips)]
        assert max(utils) == pytest.approx(1.0)
        assert all(0.0 < u <= 1.0 + 1e-12 for u in utils)

    def test_batch_seconds_streams_through(self, alexnet, cfg16):
        plan = plan_pipeline(alexnet, cfg16, 2)
        assert plan.batch_seconds(1) == pytest.approx(plan.fill_latency_s)
        assert plan.batch_seconds(5) == pytest.approx(
            plan.fill_latency_s + 4 * plan.bottleneck_s
        )
        with pytest.raises(ConfigError):
            plan.batch_seconds(0)

    def test_slower_link_never_speeds_the_pipe(self, alexnet, cfg16):
        fast = plan_pipeline(alexnet, cfg16, 4, link=LinkSpec(100.0, 1e-7))
        slow = plan_pipeline(alexnet, cfg16, 4, link=LinkSpec(0.1, 1e-4))
        assert slow.bottleneck_s >= fast.bottleneck_s

    def test_conv_only_mode_works(self, alexnet, cfg16):
        plan = plan_pipeline(alexnet, cfg16, 2, include_non_conv=False)
        assert [n for s in plan.stages for n in s.layer_names] == [
            "conv1", "conv2", "conv3", "conv4", "conv5",
        ]
        # boundary traffic resolves through the skipped pool/relu layers
        assert plan.stages[0].send_bytes > 0


class TestAcceptanceCriteria:
    @pytest.mark.parametrize("n_chips", [2, 4])
    def test_dp_never_worse_than_even_across_zoo(self, all_networks, cfg16, n_chips):
        """The headline guarantee, for every zoo network and N in {2, 4}."""
        for net in all_networks:
            dp = plan_pipeline(net, cfg16, n_chips, strategy="dp")
            even = plan_pipeline(net, cfg16, n_chips, strategy="even")
            assert dp.bottleneck_s <= even.bottleneck_s, net.name

    @pytest.mark.parametrize("strategy", ["dp", "even"])
    def test_partitions_bit_deterministic_across_runs(self, alexnet, strategy):
        plans = [
            plan_pipeline(alexnet, CONFIG_16_16, 4, strategy=strategy)
            for _ in range(3)
        ]
        reference = plans[0]
        for plan in plans[1:]:
            assert plan.stages == reference.stages  # exact, field-by-field
            assert plan.bottleneck_s == reference.bottleneck_s  # bitwise

    def test_equal_work_partition_deterministic(self, cfg16):
        """Uniform synthetic network: every split ties; result must not drift."""
        from repro.nn.zoo import sequential_cnn

        net = sequential_cnn(
            "uniform", (16, 32, 32), " ".join(["C16k3s1p1"] * 6)
        )
        boundaries = [
            tuple(s.start for s in plan_pipeline(net, cfg16, 3).stages)
            for _ in range(3)
        ]
        assert len(set(boundaries)) == 1

    def test_googlenet_dag_cut_includes_concat_fanin(self, googlenet, cfg16):
        """Branchy cuts must count every tensor crossing, deterministically."""
        a = plan_pipeline(googlenet, cfg16, 4)
        b = plan_pipeline(googlenet, cfg16, 4)
        assert a.stages == b.stages
        assert all(s.send_bytes > 0 for s in a.stages[:-1])
