"""Rollup / JSON export tests: byte stability and content."""

import json
import math

import pytest

from repro.cluster import (
    LinkSpec,
    plan_data_parallel,
    plan_pipeline,
    rollup,
    rollup_data_parallel,
    rollup_pipeline,
    to_json,
)
from repro.errors import ConfigError


class TestPipelineRollup:
    def test_fields(self, alexnet, cfg16):
        plan = plan_pipeline(alexnet, cfg16, 3)
        d = rollup_pipeline(plan)
        assert d["kind"] == "pipeline"
        assert d["chips"] == 3
        assert d["strategy"] == "dp"
        assert len(d["stages"]) == 3
        assert d["bottleneck_ms"] == pytest.approx(plan.bottleneck_s * 1e3, rel=1e-5)
        assert d["stages"][-1]["send_bytes"] == 0
        layers = [n for s in d["stages"] for n in s["layers"]]
        assert layers[0] == "conv1"

    def test_byte_stable_across_fresh_plans(self, alexnet, cfg16):
        blobs = {
            to_json(rollup(plan_pipeline(alexnet, cfg16, 4))) for _ in range(3)
        }
        assert len(blobs) == 1

    def test_json_round_trips(self, vgg, cfg16):
        blob = to_json(rollup(plan_pipeline(vgg, cfg16, 2)))
        assert blob.endswith("\n")
        parsed = json.loads(blob)
        assert parsed["network"] == "vgg"

    def test_infinite_bandwidth_serializes_as_string(self, alexnet, cfg16):
        plan = plan_pipeline(
            alexnet, cfg16, 2, link=LinkSpec(math.inf, 0.0)
        )
        blob = to_json(rollup(plan))
        assert json.loads(blob)["link"]["bandwidth_gbs"] == "inf"
        assert "Infinity" not in blob


class TestDataParallelRollup:
    def test_fields(self, alexnet, cfg16):
        plan = plan_data_parallel(alexnet, cfg16, 2, batch_size=4)
        d = rollup_data_parallel(plan)
        assert d["kind"] == "data-parallel"
        assert d["batch_size"] == 4
        assert [s["batch"] for s in d["shards"]] == [2, 2]
        assert d["speedup"] == pytest.approx(plan.speedup, rel=1e-4)

    def test_byte_stable(self, alexnet, cfg16):
        blobs = {
            to_json(rollup(plan_data_parallel(alexnet, cfg16, 2, batch_size=4)))
            for _ in range(3)
        }
        assert len(blobs) == 1


class TestDispatch:
    def test_rollup_rejects_foreign_objects(self):
        with pytest.raises(ConfigError, match="cannot roll up"):
            rollup("not a plan")
