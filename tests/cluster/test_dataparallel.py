"""Batch-sharded data parallelism tests, including the acceptance
criterion: N-way throughput approaches N× single-chip as the link
bandwidth goes to infinity."""

import math

import pytest

from repro.adaptive.batch import plan_batch
from repro.cluster.dataparallel import plan_data_parallel, shard_sizes
from repro.cluster.link import LinkSpec
from repro.errors import ConfigError

FREE = LinkSpec(bandwidth_gbs=math.inf, latency_s=0.0)


class TestShardSizes:
    def test_even_division(self):
        assert shard_sizes(8, 4) == (2, 2, 2, 2)

    def test_remainder_goes_to_first_chips(self):
        assert shard_sizes(10, 4) == (3, 3, 2, 2)

    def test_fewer_images_than_chips_leaves_idle_chips(self):
        assert shard_sizes(2, 4) == (1, 1, 0, 0)

    @pytest.mark.parametrize("bad", [0, -1, True, 2.0])
    def test_rejects_bad_batch(self, bad):
        with pytest.raises(ConfigError):
            shard_sizes(bad, 2)

    @pytest.mark.parametrize("bad", [0, -3, False, 1.5])
    def test_rejects_bad_chips(self, bad):
        with pytest.raises(ConfigError):
            shard_sizes(4, bad)


class TestPlan:
    def test_defaults_to_one_image_per_chip(self, alexnet, cfg16):
        plan = plan_data_parallel(alexnet, cfg16, 4)
        assert plan.batch_size == 4
        assert [s.batch for s in plan.shards] == [1, 1, 1, 1]

    def test_step_decomposes(self, alexnet, cfg16):
        plan = plan_data_parallel(alexnet, cfg16, 2, batch_size=4)
        assert plan.step_s == pytest.approx(
            plan.scatter_s + plan.compute_s + plan.gather_s
        )
        assert plan.compute_s == max(s.compute_s for s in plan.shards)
        assert plan.throughput_ips == pytest.approx(4 / plan.step_s)

    def test_idle_chip_costs_nothing(self, alexnet, cfg16):
        plan = plan_data_parallel(alexnet, cfg16, 4, batch_size=2)
        assert plan.shards[2].compute_s == 0.0
        assert plan.shards[2].scatter_bytes == 0
        assert plan.utilization(2) == 0.0

    def test_scatter_counts_input_gather_counts_output(self, alexnet, cfg16):
        plan = plan_data_parallel(alexnet, cfg16, 2, batch_size=2)
        in_bytes = alexnet.input_shape.elements * cfg16.word_bytes
        assert plan.shards[0].scatter_bytes == in_bytes
        # AlexNet ends in fc8: 1000 words
        assert plan.shards[0].gather_bytes == 1000 * cfg16.word_bytes

    def test_straggler_bound_by_uneven_shards(self, alexnet, cfg16):
        plan = plan_data_parallel(alexnet, cfg16, 2, batch_size=3, link=FREE)
        # chip 0 runs 2 images, chip 1 runs 1: the step waits for chip 0
        assert plan.shards[0].batch == 2
        assert plan.compute_s == plan.shards[0].compute_s
        assert plan.compute_s > plan.shards[1].compute_s

    def test_batch_seconds_guards_mismatch(self, alexnet, cfg16):
        plan = plan_data_parallel(alexnet, cfg16, 2, batch_size=4)
        assert plan.batch_seconds() == plan.step_s
        assert plan.batch_seconds(4) == plan.step_s
        with pytest.raises(ConfigError, match="re-plan"):
            plan.batch_seconds(8)


class TestScalingAcceptance:
    @pytest.mark.parametrize("n_chips", [2, 4])
    def test_free_link_reaches_n_times_single_chip(self, alexnet, cfg16, n_chips):
        """bandwidth -> inf, latency -> 0: exactly N x one chip at the
        same shard size (the acceptance criterion's limit)."""
        per_chip = 2
        plan = plan_data_parallel(
            alexnet, cfg16, n_chips, link=FREE, batch_size=n_chips * per_chip
        )
        single = plan_batch(alexnet, cfg16, "adaptive-2", batch_size=per_chip)
        single_ips = per_chip / cfg16.cycles_to_seconds(single.total_cycles)
        assert plan.throughput_ips == pytest.approx(n_chips * single_ips)

    def test_throughput_monotone_in_bandwidth(self, alexnet, cfg16):
        """Raising the bandwidth walks the throughput up toward the free-
        link limit; the limit itself is never exceeded."""
        n, batch = 4, 8
        tputs = [
            plan_data_parallel(
                alexnet, cfg16, n, link=LinkSpec(gbs, 1e-6), batch_size=batch
            ).throughput_ips
            for gbs in (1.0, 10.0, 100.0, 1000.0)
        ]
        assert tputs == sorted(tputs)
        free = plan_data_parallel(
            alexnet, cfg16, n, link=FREE, batch_size=batch
        ).throughput_ips
        assert tputs[-1] <= free
        assert tputs[-1] == pytest.approx(free, rel=1e-2)

    def test_efficiency_at_most_one_with_real_link(self, vgg, cfg16):
        plan = plan_data_parallel(vgg, cfg16, 4, batch_size=8)
        assert 0.0 < plan.efficiency <= 1.0 + 1e-9
        assert plan.speedup <= plan.n_chips + 1e-9
