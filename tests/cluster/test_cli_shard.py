"""`python -m repro shard` CLI tests."""

import json

import pytest

from repro.__main__ import main


class TestShardCommand:
    def test_pipeline_default(self, capsys):
        assert main(["shard", "alexnet", "--chips", "2"]) == 0
        out = capsys.readouterr().out
        assert "pipeline (dp balancer)" in out
        assert "bottleneck" in out
        assert "even-split baseline" in out
        assert "conv1" in out

    def test_even_partition_skips_baseline_line(self, capsys):
        assert main(["shard", "alexnet", "--chips", "2", "--partition", "even"]) == 0
        out = capsys.readouterr().out
        assert "even-split baseline" not in out

    def test_data_parallel(self, capsys):
        assert main(
            ["shard", "alexnet", "--chips", "2", "--strategy", "data-parallel",
             "--batch", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "scatter" in out

    def test_json_to_stdout_is_machine_readable(self, capsys):
        assert main(["shard", "alexnet", "--chips", "2", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "pipeline"
        assert payload["chips"] == 2
        assert payload["network"] == "alexnet"

    def test_json_to_file(self, capsys, tmp_path):
        target = tmp_path / "shard.json"
        assert main(
            ["shard", "vgg", "--chips", "2", "--strategy", "data-parallel",
             "--json", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload["kind"] == "data-parallel"
        assert payload["network"] == "vgg"

    def test_link_flags_flow_through(self, capsys):
        assert main(
            ["shard", "alexnet", "--chips", "2", "--link-gbs", "50",
             "--link-latency-us", "2", "--json", "-"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["link"] == {"bandwidth_gbs": 50.0, "latency_us": 2.0}

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            main(["shard", "resnet"])

    def test_bad_chip_count_reports_config_error(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["shard", "alexnet", "--chips", "0"])
