"""Inter-chip link model tests."""

import math

import pytest

from repro.cluster.link import LinkSpec, activation_bytes
from repro.errors import ConfigError
from repro.nn.layers import TensorShape


class TestTransfer:
    def test_bandwidth_plus_latency(self):
        link = LinkSpec(bandwidth_gbs=10.0, latency_s=1e-6)
        # 10 GB/s = 1e10 B/s -> 1e7 bytes take 1 ms, plus the 1 us hop
        assert link.transfer_seconds(10_000_000) == pytest.approx(1e-3 + 1e-6)

    def test_zero_bytes_is_free(self):
        link = LinkSpec(bandwidth_gbs=10.0, latency_s=5e-6)
        assert link.transfer_seconds(0) == 0.0

    def test_infinite_bandwidth_costs_latency_only(self):
        link = LinkSpec(bandwidth_gbs=math.inf, latency_s=2e-6)
        assert link.transfer_seconds(10**12) == 2e-6

    def test_free_link_costs_nothing(self):
        link = LinkSpec(bandwidth_gbs=math.inf, latency_s=0.0)
        assert link.transfer_seconds(10**12) == 0.0

    def test_latency_dominates_small_messages(self):
        link = LinkSpec(bandwidth_gbs=25.0, latency_s=1e-6)
        small = link.transfer_seconds(100)
        assert small == pytest.approx(1e-6, rel=1e-2)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigError, match="transfer size"):
            LinkSpec().transfer_seconds(-1)


class TestValidation:
    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ConfigError, match="bandwidth"):
            LinkSpec(bandwidth_gbs=0.0)
        with pytest.raises(ConfigError, match="bandwidth"):
            LinkSpec(bandwidth_gbs=-1.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError, match="latency"):
            LinkSpec(latency_s=-1e-9)

    def test_describe_names_both_knobs(self):
        assert LinkSpec(25.0, 1e-6).describe() == "link(25 GB/s, 1 us)"
        assert "inf" in LinkSpec(math.inf, 0.0).describe()


class TestActivationBytes:
    def test_counts_elements_times_word(self):
        shape = TensorShape(16, 8, 8)
        assert activation_bytes(shape, 2) == 16 * 8 * 8 * 2

    def test_rejects_bad_word_width(self):
        with pytest.raises(ConfigError, match="word_bytes"):
            activation_bytes(TensorShape(1, 1, 1), 0)


class TestNaNRejection:
    def test_nan_bandwidth_rejected(self):
        with pytest.raises(ConfigError, match="NaN"):
            LinkSpec(bandwidth_gbs=math.nan)

    def test_nan_latency_rejected(self):
        with pytest.raises(ConfigError, match="latency"):
            LinkSpec(latency_s=math.nan)

    def test_infinite_latency_rejected(self):
        with pytest.raises(ConfigError, match="latency"):
            LinkSpec(latency_s=math.inf)


class TestDegraded:
    def test_divides_bandwidth_and_multiplies_latency(self):
        link = LinkSpec(bandwidth_gbs=20.0, latency_s=2e-6)
        worse = link.degraded(4.0)
        assert worse.bandwidth_gbs == pytest.approx(5.0)
        assert worse.latency_s == pytest.approx(8e-6)

    def test_factor_one_is_equivalent(self):
        link = LinkSpec(bandwidth_gbs=10.0, latency_s=1e-6)
        assert link.degraded(1.0) == link

    def test_infinite_bandwidth_stays_infinite(self):
        worse = LinkSpec(bandwidth_gbs=math.inf, latency_s=1e-6).degraded(4.0)
        assert math.isinf(worse.bandwidth_gbs)
        assert worse.latency_s == pytest.approx(4e-6)

    def test_transfers_cost_strictly_more(self):
        link = LinkSpec(bandwidth_gbs=10.0, latency_s=1e-6)
        assert link.degraded(2.0).transfer_seconds(10**6) > link.transfer_seconds(10**6)

    @pytest.mark.parametrize("bad", [0.5, 0.0, -1.0, math.nan, math.inf])
    def test_bad_factor_rejected(self, bad):
        with pytest.raises(ConfigError, match="factor"):
            LinkSpec().degraded(bad)
