"""PipelinedReplica adapter tests: sharded deployments behind the serving
engine's coster interface."""

import pytest

from repro.arch.config import AcceleratorConfig, CONFIG_16_16
from repro.cluster import LinkSpec, PipelinedReplica, compare_deployments
from repro.errors import ConfigError
from repro.serve import BatchPolicy, ServingEngine, parse_mix, poisson_arrivals


class TestCosterInterface:
    def test_pipeline_batch_latency(self, cfg16):
        replica = PipelinedReplica(cfg16, n_chips=2)
        plan = replica.pipeline_plan("alexnet")
        assert replica.batch_seconds("alexnet", 1) == pytest.approx(
            plan.fill_latency_s
        )
        assert replica.batch_seconds("alexnet", 8) == pytest.approx(
            plan.fill_latency_s + 7 * plan.bottleneck_s
        )

    def test_data_parallel_batch_latency(self, cfg16):
        replica = PipelinedReplica(cfg16, n_chips=2, strategy="data-parallel")
        plan = replica.data_parallel_plan("alexnet", 4)
        assert replica.batch_seconds("alexnet", 4) == pytest.approx(plan.step_s)

    def test_plans_are_memoized(self, cfg16):
        replica = PipelinedReplica(cfg16, n_chips=2)
        assert replica.pipeline_plan("alexnet") is replica.pipeline_plan("alexnet")
        dp = PipelinedReplica(cfg16, n_chips=2, strategy="data-parallel")
        assert dp.data_parallel_plan("alexnet", 4) is dp.data_parallel_plan(
            "alexnet", 4
        )

    def test_capacity_helpers(self, cfg16):
        replica = PipelinedReplica(cfg16, n_chips=2)
        b = 8
        assert replica.image_seconds("alexnet", b) == pytest.approx(
            replica.batch_seconds("alexnet", b) / b
        )
        assert replica.capacity_rps("alexnet", b) == pytest.approx(
            1.0 / replica.image_seconds("alexnet", b)
        )

    def test_describe_names_deployment(self, cfg16):
        text = PipelinedReplica(cfg16, 4, strategy="data-parallel").describe()
        assert "data-parallel" in text and "x4" in text

    def test_validation(self, cfg16):
        with pytest.raises(ConfigError, match="strategy"):
            PipelinedReplica(cfg16, 2, strategy="magic")
        with pytest.raises(ConfigError, match="positive"):
            PipelinedReplica(cfg16, 0)
        with pytest.raises(ConfigError, match="int"):
            PipelinedReplica(cfg16, True)


class TestServingIntegration:
    def _workload(self, rate=40.0, duration=2.0):
        tenants = parse_mix("alexnet")
        return poisson_arrivals(rate, duration, tenants, seed=0), duration

    def test_engine_routes_batches_onto_sharded_deployment(self, cfg16):
        requests, duration = self._workload()
        engine = ServingEngine(
            cfg16,
            batch_policy=BatchPolicy(max_batch=8, max_wait_ms=5.0),
            coster=PipelinedReplica(cfg16, n_chips=2),
        )
        report = engine.run(requests, duration)
        assert report.summary["completed"] + report.summary["shed"] == (
            report.summary["offered"]
        )
        assert report.summary["completed"] > 0

    def test_sharded_run_is_deterministic(self, cfg16):
        requests, duration = self._workload()
        runs = [
            ServingEngine(
                cfg16, coster=PipelinedReplica(cfg16, n_chips=2)
            ).run(list(requests), duration).to_json()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_compare_big_vs_sharded_deployments(self):
        """1 x 32-32 chip vs 4 x 16-16 chips on the identical workload."""
        big = AcceleratorConfig(tin=32, tout=32)
        requests, duration = self._workload(rate=30.0)
        result = compare_deployments(
            big,
            CONFIG_16_16,
            n_chips=4,
            requests=requests,
            duration_s=duration,
            link=LinkSpec(25.0, 1e-6),
        )
        assert set(result) == {"big", "sharded"}
        for summary in result.values():
            assert summary["offered"] == len(requests)
        assert result["big"]["workload"]["deployment"] == "1x big chip"
        assert "4x small chip" in result["sharded"]["workload"]["deployment"]
