"""Batch policy readiness rule and the memoized batch cost model."""

from __future__ import annotations

import pytest

from repro.adaptive.batch import plan_batch
from repro.errors import ConfigError
from repro.perf.cache import schedule_cache
from repro.serve.batcher import BatchCoster, BatchPolicy


class TestBatchPolicy:
    def test_full_group_ready_immediately(self):
        p = BatchPolicy(max_batch=4, max_wait_ms=50)
        assert p.ready_time(oldest_arrival_s=1.0, depth=4) == 1.0
        assert p.ready_time(oldest_arrival_s=1.0, depth=9) == 1.0

    def test_partial_group_waits_out_the_timer(self):
        p = BatchPolicy(max_batch=4, max_wait_ms=50)
        assert p.ready_time(oldest_arrival_s=1.0, depth=3) == pytest.approx(1.05)

    def test_batch1_never_waits(self):
        p = BatchPolicy(max_batch=1, max_wait_ms=50)
        assert p.ready_time(oldest_arrival_s=2.0, depth=1) == 2.0

    def test_describe(self):
        assert BatchPolicy(max_batch=1).describe() == "batch-1"
        assert "max_batch=8" in BatchPolicy(max_batch=8, max_wait_ms=5).describe()

    @pytest.mark.parametrize("bad", [0, -1, True, 4.0, "4"])
    def test_invalid_max_batch(self, bad):
        with pytest.raises(ConfigError):
            BatchPolicy(max_batch=bad)

    def test_invalid_max_wait(self):
        with pytest.raises(ConfigError, match="max_wait_ms"):
            BatchPolicy(max_wait_ms=-1)


class TestBatchCoster:
    def test_matches_plan_batch(self, alexnet, cfg16):
        coster = BatchCoster(cfg16)
        direct = plan_batch(alexnet, cfg16, batch_size=8, include_non_conv=True)
        assert coster.batch_seconds("alexnet", 8) == pytest.approx(
            cfg16.cycles_to_seconds(direct.total_cycles)
        )

    def test_memoizes_per_network_and_size(self, cfg16):
        coster = BatchCoster(cfg16)
        a = coster.batch_seconds("alexnet", 4)
        b = coster.batch_seconds("alexnet", 4)
        assert a == b
        assert coster.memo_hits == 1
        assert coster.memo_misses == 1
        coster.batch_seconds("alexnet", 8)
        assert coster.memo_misses == 2

    def test_pulls_plans_through_schedule_cache(self, cfg16):
        schedule_cache.configure(enabled=True)
        schedule_cache.clear()
        coster = BatchCoster(cfg16)
        coster.batch_seconds("alexnet", 1)
        before = schedule_cache.stats()
        assert before.misses > 0  # cold plan populated the cache
        # a different batch size re-plans the same single-image schedules:
        # every layer must come from the cache now
        coster.batch_seconds("alexnet", 32)
        after = schedule_cache.stats()
        assert after.misses == before.misses
        assert after.hits > before.hits

    def test_larger_batches_amortize_fc(self, cfg16):
        coster = BatchCoster(cfg16)
        assert coster.image_seconds("alexnet", 16) < coster.image_seconds("alexnet", 1)
        assert coster.capacity_rps("alexnet", 16) > 2 * coster.capacity_rps("alexnet", 1)

    def test_unknown_network_raises(self, cfg16):
        coster = BatchCoster(cfg16)
        with pytest.raises(ConfigError, match="unknown network"):
            coster.batch_seconds("lenet", 1)
