"""Event-loop semantics: determinism, conservation, batching and routing."""

from __future__ import annotations

import pytest

from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.engine import ServingEngine
from repro.serve.queue import QueuePolicy
from repro.serve.workload import TenantSpec, poisson_arrivals

ALEX = [TenantSpec("alexnet", "alexnet")]
MIXED = [
    TenantSpec("alexnet", "alexnet", weight=2.0),
    TenantSpec("nin", "nin", weight=1.0, slo_ms=500.0),
]

#: one shared coster so the expensive plans derive once per test session
_COSTER = BatchCoster(CONFIG_16_16)


def engine(**kwargs):
    kwargs.setdefault("coster", _COSTER)
    return ServingEngine(CONFIG_16_16, **kwargs)


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, True, 2.0])
    def test_replicas(self, bad):
        with pytest.raises(ConfigError):
            engine(replicas=bad)

    def test_routing(self):
        with pytest.raises(ConfigError, match="routing"):
            engine(routing="random")

    def test_duration(self):
        with pytest.raises(ConfigError, match="duration"):
            engine().run([], 0)


class TestDeterminism:
    def test_two_runs_byte_identical(self):
        def run():
            reqs = poisson_arrivals(80, 4, MIXED, seed=0)
            return engine(
                batch_policy=BatchPolicy(max_batch=8, max_wait_ms=10)
            ).run(reqs, 4, extra_meta={"seed": 0}).to_json()

        assert run() == run()

    def test_seed_changes_output(self):
        def run(seed):
            reqs = poisson_arrivals(80, 4, ALEX, seed=seed)
            return engine().run(reqs, 4).to_json()

        assert run(0) != run(1)


class TestConservation:
    def test_every_request_completed_or_shed(self):
        reqs = poisson_arrivals(120, 5, MIXED, seed=1)
        report = engine(
            batch_policy=BatchPolicy(max_batch=8, max_wait_ms=10),
            queue_policy=QueuePolicy(max_depth=32),
        ).run(reqs, 5)
        s = report.summary
        assert s["offered"] == len(reqs)
        assert s["completed"] + s["shed"] == len(reqs)
        # completion ids are unique and drawn from the workload
        rids = [r.rid for r in report.metrics.completed]
        assert len(rids) == len(set(rids))
        assert set(rids) <= {r.rid for r in reqs}

    def test_queue_fully_drains(self):
        reqs = poisson_arrivals(150, 3, ALEX, seed=2)
        report = engine().run(reqs, 3)
        s = report.summary
        assert s["completed"] + s["shed"] == s["offered"]
        # drain pushes the makespan past the offered-load window
        assert s["makespan_s"] >= 3


class TestBatching:
    def test_lone_request_waits_out_the_timer(self):
        reqs = poisson_arrivals(1000, 0.002, ALEX, seed=0)[:1]
        report = engine(
            batch_policy=BatchPolicy(max_batch=32, max_wait_ms=20)
        ).run(reqs, 0.002)
        (record,) = report.metrics.completed
        assert record.start_s == pytest.approx(record.arrival_s + 0.020)
        assert record.batch_size == 1

    def test_batches_never_mix_networks(self):
        reqs = poisson_arrivals(150, 4, MIXED, seed=3)
        report = engine(
            batch_policy=BatchPolicy(max_batch=8, max_wait_ms=15)
        ).run(reqs, 4)
        by_batch = {}
        for r in report.metrics.completed:
            by_batch.setdefault((r.replica, r.start_s), set()).add(r.network)
        assert all(len(nets) == 1 for nets in by_batch.values())

    def test_max_batch_respected(self):
        reqs = poisson_arrivals(200, 3, ALEX, seed=4)
        report = engine(
            batch_policy=BatchPolicy(max_batch=8, max_wait_ms=10)
        ).run(reqs, 3)
        assert max(report.metrics.batch_sizes) <= 8

    def test_dynamic_batching_beats_batch1_at_saturating_load(self):
        """The acceptance behavior: AlexNet at 100 req/s (batch-1 capacity
        is ~56 req/s), dynamic batching must win on p95 latency."""
        reqs = poisson_arrivals(100, 5, ALEX, seed=0)
        dyn = engine(
            batch_policy=BatchPolicy(max_batch=16, max_wait_ms=10)
        ).run(reqs, 5)
        b1 = engine(batch_policy=BatchPolicy(max_batch=1)).run(reqs, 5)
        assert (
            dyn.summary["latency_ms"]["p95"] < 0.5 * b1.summary["latency_ms"]["p95"]
        )
        assert dyn.summary["goodput_rps"] > b1.summary["goodput_rps"]

    def test_backlog_grows_batches(self):
        """Under saturation the dispatcher fuses the backlog into batches."""
        reqs = poisson_arrivals(150, 3, ALEX, seed=5)
        report = engine(
            batch_policy=BatchPolicy(max_batch=16, max_wait_ms=10)
        ).run(reqs, 3)
        assert report.summary["mean_batch_size"] > 1.5


class TestReplicasAndRouting:
    def test_second_replica_raises_throughput(self):
        reqs = poisson_arrivals(100, 4, ALEX, seed=6)
        one = engine(batch_policy=BatchPolicy(max_batch=1)).run(reqs, 4)
        two = engine(batch_policy=BatchPolicy(max_batch=1), replicas=2).run(reqs, 4)
        assert two.summary["latency_ms"]["p95"] < one.summary["latency_ms"]["p95"]
        assert two.summary["makespan_s"] < one.summary["makespan_s"]

    def test_least_loaded_no_worse_than_round_robin(self):
        reqs = poisson_arrivals(150, 4, MIXED, seed=7)
        policy = BatchPolicy(max_batch=8, max_wait_ms=10)
        rr = engine(batch_policy=policy, replicas=3, routing="round-robin").run(reqs, 4)
        ll = engine(batch_policy=policy, replicas=3, routing="least-loaded").run(reqs, 4)
        assert (
            ll.summary["latency_ms"]["mean"]
            <= rr.summary["latency_ms"]["mean"] * 1.001
        )

    def test_least_loaded_tie_breaks_by_replica_index(self):
        """Two equally-loaded replicas must always resolve the same way."""
        from repro.serve.engine import ReplicaState, _Router

        idle = [ReplicaState(0), ReplicaState(1)]
        router = _Router(idle, "least-loaded")
        assert router.peek().rid == 0
        # equal *nonzero* load ties the same way
        for r in idle:
            r.free_at = 2.5
        assert router.peek().rid == 0
        # ... and the tie-break must not depend on list construction order
        assert _Router([ReplicaState(1), ReplicaState(0)], "least-loaded").peek().rid == 0
        assert (
            _Router(
                [ReplicaState(2), ReplicaState(0), ReplicaState(1)],
                "least-loaded",
            )
            .peek()
            .rid
            == 0
        )

    def test_least_loaded_routing_is_reproducible(self):
        """Regression: repeated least-loaded runs place every batch on the
        same replica, even when several replicas free up simultaneously."""
        reqs = poisson_arrivals(120, 2, ALEX, seed=9)

        def placements():
            report = engine(
                batch_policy=BatchPolicy(max_batch=4, max_wait_ms=5),
                replicas=2,
                routing="least-loaded",
            ).run(list(reqs), 2)
            return [
                (r.rid, r.replica)
                for r in sorted(report.metrics.completed, key=lambda r: r.rid)
            ]

        first = placements()
        assert first == placements()
        # the very first batch lands on replica 0 (both idle -> lowest rid)
        assert first[0][1] == 0

    def test_replica_bookkeeping(self):
        reqs = poisson_arrivals(80, 3, ALEX, seed=8)
        report = engine(replicas=2, routing="least-loaded").run(reqs, 3)
        assert len(report.replicas) == 2
        assert sum(r.batches for r in report.replicas) == report.summary["batches"]
        assert 0 < report.summary["utilization"] <= 1.0


class TestShedding:
    def test_tiny_queue_sheds_under_overload(self):
        reqs = poisson_arrivals(200, 3, ALEX, seed=9)
        report = engine(
            batch_policy=BatchPolicy(max_batch=1),
            queue_policy=QueuePolicy(max_depth=4),
        ).run(reqs, 3)
        s = report.summary
        assert s["shed"] > 0
        assert s["shed_by_reason"]["queue_full"] == s["shed"]
        # the tiny queue also bounds latency: nothing waits behind >4 batches
        assert s["latency_ms"]["max"] < 5 * 18 + 50

    def test_max_age_sheds_and_bounds_wait(self):
        reqs = poisson_arrivals(200, 3, ALEX, seed=10)
        report = engine(
            batch_policy=BatchPolicy(max_batch=1),
            queue_policy=QueuePolicy(max_depth=1024, max_age_s=0.1),
        ).run(reqs, 3)
        s = report.summary
        assert s["shed_by_reason"].get("max_age", 0) > 0
        assert s["queue_wait_ms"]["max"] <= 100 + 1e-6

    def test_edf_with_shed_expired_raises_goodput_under_overload(self):
        tenants = [
            TenantSpec("tight", "alexnet", slo_ms=60.0),
            TenantSpec("loose", "alexnet", slo_ms=2000.0),
        ]
        reqs = poisson_arrivals(120, 4, tenants, seed=11)
        fifo = engine(
            batch_policy=BatchPolicy(max_batch=4, max_wait_ms=5),
            queue_policy=QueuePolicy(order="fifo"),
        ).run(reqs, 4)
        edf = engine(
            batch_policy=BatchPolicy(max_batch=4, max_wait_ms=5),
            queue_policy=QueuePolicy(order="edf", shed_expired=True),
        ).run(reqs, 4)
        assert edf.summary["deadline_met"] >= fifo.summary["deadline_met"]


class TestPerReplicaStats:
    def test_details_cover_every_replica(self):
        reqs = poisson_arrivals(80, 3, ALEX, seed=3)
        report = engine(replicas=3, routing="least-loaded").run(reqs, 3)
        per_replica = report.summary["per_replica"]
        assert [d["rid"] for d in per_replica] == [0, 1, 2]

    def test_completed_counts_sum_to_total(self):
        reqs = poisson_arrivals(80, 3, ALEX, seed=3)
        report = engine(replicas=2).run(reqs, 3)
        s = report.summary
        assert sum(d["completed"] for d in s["per_replica"]) == s["completed"]

    def test_busy_time_sums_to_utilization_numerator(self):
        reqs = poisson_arrivals(60, 2, ALEX, seed=5)
        report = engine(replicas=2).run(reqs, 2)
        s = report.summary
        busy_ms = sum(d["busy_ms"] for d in s["per_replica"])
        expected = busy_ms / 1e3 / (2 * s["makespan_s"])
        assert s["utilization"] == pytest.approx(expected, abs=1e-5)

    def test_batches_and_utilization_consistent(self):
        reqs = poisson_arrivals(60, 2, ALEX, seed=5)
        report = engine(replicas=2).run(reqs, 2)
        for d in report.summary["per_replica"]:
            assert d["batches"] >= 0
            assert 0.0 <= d["utilization"] <= 1.0
            if d["batches"] == 0:
                assert d["completed"] == 0 and d["busy_ms"] == 0.0
