"""Admission queue: bounds, ordering disciplines, shedding semantics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.queue import (
    SHED_EXPIRED,
    SHED_MAX_AGE,
    SHED_QUEUE_FULL,
    AdmissionQueue,
    QueuePolicy,
)
from repro.serve.workload import Request


def req(rid, arrival=0.0, slo=0.25, network="alexnet", tenant="t"):
    return Request(
        rid=rid,
        tenant=tenant,
        network=network,
        arrival_s=arrival,
        deadline_s=arrival + slo,
    )


class TestPolicyValidation:
    def test_bad_depth(self):
        with pytest.raises(ConfigError, match="max_depth"):
            QueuePolicy(max_depth=0)

    def test_bad_order(self):
        with pytest.raises(ConfigError, match="queue order"):
            QueuePolicy(order="lifo")

    def test_bad_age(self):
        with pytest.raises(ConfigError, match="max_age_s"):
            QueuePolicy(max_age_s=-1)


class TestAdmission:
    def test_bounded_depth_sheds(self):
        q = AdmissionQueue(QueuePolicy(max_depth=2))
        assert q.offer(req(0), 0.0) is None
        assert q.offer(req(1), 0.0) is None
        shed = q.offer(req(2), 0.0)
        assert shed is not None and shed.reason == SHED_QUEUE_FULL
        assert len(q) == 2

    def test_depth_frees_after_pop(self):
        q = AdmissionQueue(QueuePolicy(max_depth=1))
        q.offer(req(0), 0.0)
        q.pop_batch("alexnet", 1, 0.0)
        assert q.offer(req(1), 0.0) is None

    def test_groups_by_network(self):
        q = AdmissionQueue()
        q.offer(req(0, network="alexnet"), 0.0)
        q.offer(req(1, network="vgg"), 0.0)
        q.offer(req(2, network="alexnet"), 0.0)
        assert q.networks() == ["alexnet", "vgg"]
        assert q.depth("alexnet") == 2
        assert q.depth("vgg") == 1
        assert q.depth() == 3


class TestOrdering:
    def test_fifo_serves_arrival_order(self):
        q = AdmissionQueue(QueuePolicy(order="fifo"))
        q.offer(req(0, arrival=0.2, slo=0.1), 0.2)
        q.offer(req(1, arrival=0.1, slo=9.0), 0.2)
        batch, _ = q.pop_batch("alexnet", 1, 0.2)
        assert batch[0].rid == 1  # earliest arrival, despite later deadline

    def test_edf_serves_most_urgent_first(self):
        q = AdmissionQueue(QueuePolicy(order="edf"))
        q.offer(req(0, arrival=0.0, slo=9.0), 0.0)
        q.offer(req(1, arrival=0.1, slo=0.05), 0.1)
        batch, _ = q.pop_batch("alexnet", 1, 0.1)
        assert batch[0].rid == 1  # later arrival but earlier deadline

    def test_oldest_arrival(self):
        q = AdmissionQueue()
        q.offer(req(0, arrival=0.3), 0.3)
        q.offer(req(1, arrival=0.1), 0.3)
        assert q.oldest_arrival("alexnet") == 0.1


class TestShedding:
    def test_max_age_sheds_stale_head(self):
        q = AdmissionQueue(QueuePolicy(max_age_s=0.1))
        q.offer(req(0, arrival=0.0), 0.0)
        q.offer(req(1, arrival=0.45), 0.45)
        batch, shed = q.pop_batch("alexnet", 4, 0.5)
        assert [e.request.rid for e in shed] == [0]
        assert shed[0].reason == SHED_MAX_AGE
        assert [r.rid for r in batch] == [1]
        assert len(q) == 0

    def test_expired_shed_when_enabled(self):
        q = AdmissionQueue(QueuePolicy(shed_expired=True))
        q.offer(req(0, arrival=0.0, slo=0.1), 0.0)
        batch, shed = q.pop_batch("alexnet", 4, 0.5)
        assert batch == []
        assert shed[0].reason == SHED_EXPIRED

    def test_expired_served_by_default(self):
        q = AdmissionQueue(QueuePolicy())
        q.offer(req(0, arrival=0.0, slo=0.1), 0.0)
        batch, shed = q.pop_batch("alexnet", 4, 0.5)
        assert [r.rid for r in batch] == [0]
        assert shed == []

    def test_stale_head_does_not_starve_fresh_tail(self):
        q = AdmissionQueue(QueuePolicy(max_age_s=0.1))
        for rid in range(3):
            q.offer(req(rid, arrival=0.0), 0.0)
        q.offer(req(3, arrival=0.95), 0.95)
        batch, shed = q.pop_batch("alexnet", 2, 1.0)
        assert [r.rid for r in batch] == [3]
        assert len(shed) == 3


class TestPopBatch:
    def test_respects_max_batch(self):
        q = AdmissionQueue()
        for rid in range(5):
            q.offer(req(rid), 0.0)
        batch, _ = q.pop_batch("alexnet", 3, 0.0)
        assert [r.rid for r in batch] == [0, 1, 2]
        assert q.depth("alexnet") == 2

    def test_empty_group(self):
        q = AdmissionQueue()
        batch, shed = q.pop_batch("alexnet", 4, 0.0)
        assert batch == [] and shed == []
