"""Workload generators: determinism, rates, validation, trace replay."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.workload import (
    TenantSpec,
    bursty_arrivals,
    diurnal_arrivals,
    diurnal_rate,
    parse_mix,
    poisson_arrivals,
    trace_arrivals,
)

ALEX = [TenantSpec("alexnet", "alexnet")]
MIXED = [
    TenantSpec("heavy", "alexnet", weight=3.0, slo_ms=100.0),
    TenantSpec("light", "nin", weight=1.0, slo_ms=400.0),
]


class TestPoisson:
    def test_same_seed_same_requests(self):
        a = poisson_arrivals(50, 5, MIXED, seed=7)
        b = poisson_arrivals(50, 5, MIXED, seed=7)
        assert a == b

    def test_different_seed_differs(self):
        a = poisson_arrivals(50, 5, ALEX, seed=1)
        b = poisson_arrivals(50, 5, ALEX, seed=2)
        assert a != b

    def test_mean_rate_approximate(self):
        reqs = poisson_arrivals(200, 20, ALEX, seed=0)
        assert 0.85 * 200 * 20 < len(reqs) < 1.15 * 200 * 20

    def test_sorted_and_within_duration(self):
        reqs = poisson_arrivals(100, 3, MIXED, seed=0)
        times = [r.arrival_s for r in reqs]
        assert times == sorted(times)
        assert all(0 <= t < 3 for t in times)
        assert [r.rid for r in reqs] == list(range(len(reqs)))

    def test_weights_steer_the_mix(self):
        reqs = poisson_arrivals(300, 10, MIXED, seed=0)
        heavy = sum(1 for r in reqs if r.tenant == "heavy")
        light = len(reqs) - heavy
        assert heavy > 2 * light  # 3:1 weights

    def test_deadline_is_arrival_plus_slo(self):
        reqs = poisson_arrivals(50, 2, MIXED, seed=0)
        for r in reqs:
            slo = 100.0 if r.tenant == "heavy" else 400.0
            assert r.deadline_s == pytest.approx(r.arrival_s + slo / 1e3)

    @pytest.mark.parametrize("rate,duration", [(0, 5), (-1, 5), (10, 0), (10, -2)])
    def test_invalid_rate_duration(self, rate, duration):
        with pytest.raises(ConfigError):
            poisson_arrivals(rate, duration, ALEX, seed=0)

    def test_unknown_network_rejected(self):
        with pytest.raises(ConfigError, match="unknown network"):
            poisson_arrivals(10, 1, [TenantSpec("t", "resnet152")], seed=0)

    def test_empty_tenants_rejected(self):
        with pytest.raises(ConfigError, match="at least one tenant"):
            poisson_arrivals(10, 1, [], seed=0)

    def test_duplicate_tenant_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            poisson_arrivals(10, 1, [ALEX[0], ALEX[0]], seed=0)


class TestBursty:
    def test_same_seed_same_requests(self):
        a = bursty_arrivals(80, 5, ALEX, seed=3)
        b = bursty_arrivals(80, 5, ALEX, seed=3)
        assert a == b

    def test_mean_rate_preserved(self):
        reqs = bursty_arrivals(100, 30, ALEX, seed=0)
        assert 0.85 * 100 * 30 < len(reqs) < 1.15 * 100 * 30

    def test_traffic_concentrates_in_bursts(self):
        reqs = bursty_arrivals(
            100, 20, ALEX, seed=0, burst_factor=4, burst_fraction=0.2, period_s=1.0
        )
        in_burst = sum(1 for r in reqs if (r.arrival_s % 1.0) < 0.2)
        # a uniform process would put ~20% here; 4x burst puts ~80%
        assert in_burst > 0.6 * len(reqs)

    def test_overfull_burst_rejected(self):
        with pytest.raises(ConfigError, match="burst_factor \\* burst_fraction"):
            bursty_arrivals(10, 1, ALEX, seed=0, burst_factor=10, burst_fraction=0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"burst_factor": 0.5},
            {"burst_fraction": 0.0},
            {"burst_fraction": 1.0},
            {"period_s": 0},
        ],
    )
    def test_invalid_shape_params(self, kwargs):
        with pytest.raises(ConfigError):
            bursty_arrivals(10, 1, ALEX, seed=0, **kwargs)


class TestDiurnal:
    def test_same_seed_same_requests(self):
        a = diurnal_arrivals(5, 40, 2, MIXED, seed=9, day_s=50.0, churn=0.3)
        b = diurnal_arrivals(5, 40, 2, MIXED, seed=9, day_s=50.0, churn=0.3)
        assert a == b

    def test_different_seed_differs(self):
        a = diurnal_arrivals(5, 40, 1, ALEX, seed=1, day_s=50.0)
        b = diurnal_arrivals(5, 40, 1, ALEX, seed=2, day_s=50.0)
        assert a != b

    def test_sorted_within_duration_and_rids_sequential(self):
        reqs = diurnal_arrivals(10, 30, 2, MIXED, seed=0, day_s=40.0)
        times = [r.arrival_s for r in reqs]
        assert times == sorted(times)
        assert all(0 <= t < 80.0 for t in times)
        assert [r.rid for r in reqs] == list(range(len(reqs)))

    def test_mean_rate_tracks_the_sinusoid(self):
        # over whole days the sinusoid averages (base + peak) / 2
        base, peak, days, day_s = 20.0, 60.0, 4, 50.0
        reqs = diurnal_arrivals(base, peak, days, ALEX, seed=0, day_s=day_s)
        expected = 0.5 * (base + peak) * days * day_s
        assert 0.85 * expected < len(reqs) < 1.15 * expected

    def test_day_peaks_over_night_troughs(self):
        day_s = 60.0
        reqs = diurnal_arrivals(5, 50, 3, ALEX, seed=0, day_s=day_s)
        # mid-day quarter vs the midnight quarter of each cycle
        noon = sum(1 for r in reqs if 0.375 < (r.arrival_s / day_s) % 1.0 < 0.625)
        night = sum(
            1
            for r in reqs
            if (r.arrival_s / day_s) % 1.0 < 0.125
            or (r.arrival_s / day_s) % 1.0 > 0.875
        )
        assert noon > 3 * night

    def test_flash_crowd_concentrates_traffic(self):
        window = (20.0, 5.0, 4.0)
        with_flash = diurnal_arrivals(
            10, 10, 1, ALEX, seed=0, day_s=100.0, flash_crowds=[window]
        )
        inside = sum(1 for r in with_flash if 20.0 <= r.arrival_s < 25.0)
        # flat 10 rps day, so the 4x window should hold ~200/1150 arrivals
        assert inside > 2.5 * len(with_flash) * (5.0 / 100.0)

    def test_seeded_flash_count_is_deterministic(self):
        a = diurnal_arrivals(
            5, 20, 2, ALEX, seed=4, day_s=50.0, flash_per_day=2.0, flash_factor=3.0
        )
        b = diurnal_arrivals(
            5, 20, 2, ALEX, seed=4, day_s=50.0, flash_per_day=2.0, flash_factor=3.0
        )
        assert a == b

    def test_churn_rotates_the_mix(self):
        day_s = 80.0
        reqs = diurnal_arrivals(
            40, 40, 2, MIXED, seed=0, day_s=day_s, churn=0.9
        )
        # per-quarter-day heavy share should move when churn is strong
        shares = []
        for q in range(8):
            lo, hi = q * day_s / 4, (q + 1) * day_s / 4
            qs = [r for r in reqs if lo <= r.arrival_s < hi]
            if qs:
                shares.append(
                    sum(1 for r in qs if r.tenant == "heavy") / len(qs)
                )
        assert max(shares) - min(shares) > 0.1

    def test_rate_function_shape(self):
        assert diurnal_rate(0.0, 2.0, 10.0, 40.0) == pytest.approx(2.0)
        assert diurnal_rate(20.0, 2.0, 10.0, 40.0) == pytest.approx(10.0)
        assert diurnal_rate(
            5.0, 2.0, 10.0, 40.0, [(4.0, 2.0, 3.0), (4.5, 2.0, 2.0)]
        ) == pytest.approx(3.0 * diurnal_rate(5.0, 2.0, 10.0, 40.0))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_rate": 0},
            {"peak_rate": 1.0},  # below base
            {"days": 0},
            {"day_s": 0},
            {"flash_per_day": -1},
            {"flash_factor": 0.5},
            {"flash_duration_s": 0},
            {"churn": 1.0},
            {"churn": -0.1},
            {"flash_crowds": [(-1.0, 5.0, 2.0)]},
            {"flash_crowds": [(0.0, 0.0, 2.0)]},
            {"flash_crowds": [(0.0, 5.0, 0.5)]},
        ],
    )
    def test_invalid_params(self, kwargs):
        base = dict(base_rate=5, peak_rate=20, days=1, tenants=ALEX, seed=0)
        base.update(kwargs)
        with pytest.raises(ConfigError):
            diurnal_arrivals(**base)


class TestTrace:
    def _write(self, tmp_path, text):
        path = tmp_path / "trace.txt"
        path.write_text(text)
        return str(path)

    def test_replay_with_tenants(self, tmp_path):
        path = self._write(
            tmp_path, "# demo trace\n0.1,heavy\n0.5,light\n\n0.9,heavy\n"
        )
        reqs = trace_arrivals(path, MIXED, seed=0)
        assert [r.arrival_s for r in reqs] == [0.1, 0.5, 0.9]
        assert [r.tenant for r in reqs] == ["heavy", "light", "heavy"]

    def test_missing_tenant_assigned_deterministically(self, tmp_path):
        path = self._write(tmp_path, "0.1\n0.2\n0.3\n")
        a = trace_arrivals(path, MIXED, seed=5)
        b = trace_arrivals(path, MIXED, seed=5)
        assert a == b
        assert all(r.tenant in ("heavy", "light") for r in a)

    def test_duration_truncates(self, tmp_path):
        path = self._write(tmp_path, "0.1\n0.5\n2.5\n")
        reqs = trace_arrivals(path, ALEX, seed=0, duration_s=1.0)
        assert len(reqs) == 2

    def test_bad_time_rejected(self, tmp_path):
        path = self._write(tmp_path, "abc\n")
        with pytest.raises(ConfigError, match="bad arrival time"):
            trace_arrivals(path, ALEX, seed=0)

    def test_negative_time_rejected(self, tmp_path):
        path = self._write(tmp_path, "-0.5\n")
        with pytest.raises(ConfigError, match="negative arrival"):
            trace_arrivals(path, ALEX, seed=0)

    def test_unknown_tenant_rejected(self, tmp_path):
        path = self._write(tmp_path, "0.1,nobody\n")
        with pytest.raises(ConfigError, match="unknown tenant"):
            trace_arrivals(path, MIXED, seed=0)

    def test_decreasing_time_rejected_naming_entry(self, tmp_path):
        path = self._write(tmp_path, "0.1\n0.5\n0.3\n")
        with pytest.raises(
            ConfigError, match=r"decreasing arrival time 0\.3 after 0\.5 \(entry 2\)"
        ):
            trace_arrivals(path, ALEX, seed=0)

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf"])
    def test_non_finite_time_rejected(self, tmp_path, bad):
        path = self._write(tmp_path, f"0.1\n{bad}\n")
        with pytest.raises(ConfigError, match="non-finite arrival time"):
            trace_arrivals(path, ALEX, seed=0)

    def test_equal_timestamps_are_fine(self, tmp_path):
        path = self._write(tmp_path, "0.2\n0.2\n0.2\n")
        assert len(trace_arrivals(path, ALEX, seed=0)) == 3

    def test_error_names_the_line_number(self, tmp_path):
        path = self._write(tmp_path, "# header\n0.4\n\n0.1\n")
        with pytest.raises(ConfigError, match=r"trace\.txt:4"):
            trace_arrivals(path, ALEX, seed=0)


class TestMixParsing:
    def test_basic(self):
        tenants = parse_mix("alexnet:2,googlenet:1", slo_ms=50)
        assert [(t.name, t.weight, t.slo_ms) for t in tenants] == [
            ("alexnet", 2.0, 50),
            ("googlenet", 1.0, 50),
        ]

    def test_default_weight(self):
        (tenant,) = parse_mix("vgg")
        assert tenant.weight == 1.0

    def test_bad_weight(self):
        with pytest.raises(ConfigError, match="bad weight"):
            parse_mix("alexnet:heavy")

    def test_unknown_network(self):
        with pytest.raises(ConfigError, match="unknown network"):
            parse_mix("lenet")

    def test_invalid_tenant_params(self):
        with pytest.raises(ConfigError, match="weight must be positive"):
            TenantSpec("t", "alexnet", weight=0)
        with pytest.raises(ConfigError, match="slo_ms must be positive"):
            TenantSpec("t", "alexnet", slo_ms=0)
