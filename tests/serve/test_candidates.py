"""The shared candidate-evaluation path behind every comparison driver."""

from __future__ import annotations

import pytest

from repro.arch import CONFIG_16_16, CONFIG_32_32
from repro.errors import ConfigError
from repro.serve import (
    BatchCoster,
    ServingEngine,
    build_replica_set,
    evaluate_candidate,
    rank_candidates,
)
from repro.serve.failover import ReplicaFault
from repro.serve.workload import TenantSpec, poisson_arrivals

TENANTS = [TenantSpec("t", "nin", slo_ms=200.0)]
REQUESTS = poisson_arrivals(40.0, 2.0, TENANTS, seed=5)


class TestBuildReplicaSet:
    def test_flattens_groups_in_order_with_chip_labels(self):
        lead, costers, chip_map = build_replica_set(
            [(CONFIG_32_32, 1), (CONFIG_16_16, 2)]
        )
        assert lead is CONFIG_32_32
        assert len(costers) == 3
        assert chip_map == {
            0: "32-32 g0-0",
            1: "16-16 g1-0",
            2: "16-16 g1-1",
        }

    def test_identical_configs_share_one_memoized_coster(self):
        memo = {}
        _, costers, _ = build_replica_set(
            [(CONFIG_16_16, 2), (CONFIG_16_16, 1)], coster_memo=memo
        )
        assert costers[0] is costers[1] is costers[2]
        assert memo[CONFIG_16_16] is costers[0]

    def test_custom_coster_passes_through(self):
        shard = BatchCoster(CONFIG_16_16)
        _, costers, _ = build_replica_set([(CONFIG_16_16, 2, shard)])
        assert costers == [shard, shard]

    def test_label_chips_off_returns_no_chip_map(self):
        _, _, chip_map = build_replica_set(
            [(CONFIG_16_16, 1)], label_chips=False
        )
        assert chip_map is None

    def test_validation_names_the_candidate_and_group(self):
        with pytest.raises(ConfigError, match="no chip groups"):
            build_replica_set([], candidate="empty")
        with pytest.raises(ConfigError, match="count must be"):
            build_replica_set([(CONFIG_16_16, 0)], candidate="zero")
        with pytest.raises(ConfigError, match="group 1"):
            build_replica_set(
                [(CONFIG_16_16, 1), (CONFIG_16_16, 1, None, "extra")],
                candidate="bad",
            )


class TestEvaluateCandidate:
    def test_matches_a_hand_built_serving_engine(self):
        summary = evaluate_candidate(
            [(CONFIG_16_16, 2)], REQUESTS, 2.0, label_chips=False,
        )
        engine = ServingEngine(CONFIG_16_16, replicas=2, routing="least-loaded")
        assert summary == engine.run(REQUESTS, 2.0).summary

    def test_extra_meta_lands_in_the_summary(self):
        summary = evaluate_candidate(
            [(CONFIG_16_16, 1)], REQUESTS, 2.0,
            extra_meta={"deployment": "1x 16-16"},
        )
        assert summary["workload"]["deployment"] == "1x 16-16"

    def test_faulted_path_goes_through_the_failover_engine(self):
        summary = evaluate_candidate(
            [(CONFIG_16_16, 2)], REQUESTS, 2.0,
            faults=[ReplicaFault("crash", 0, 0.5)],
        )
        assert summary["failover"]["faults"][0]["kind"] == "crash"
        assert summary["deadline_hit_rate"] <= 1.0

    def test_faulted_path_requires_a_homogeneous_candidate(self):
        with pytest.raises(ConfigError, match="homogeneous"):
            evaluate_candidate(
                [(CONFIG_16_16, 1), (CONFIG_32_32, 1)], REQUESTS, 2.0,
                faults=[ReplicaFault("crash", 0, 0.5)],
            )


class TestRankCandidates:
    def test_orders_by_key_with_name_tiebreak(self):
        results = {
            "b": {"p95": 2.0, "goodput": 10.0},
            "a": {"p95": 1.0, "goodput": 10.0},
            "c": {"p95": 1.0, "goodput": 10.0},
        }
        ranked = rank_candidates(results, key=lambda s: (s["p95"], -s["goodput"]))
        assert ranked == ["a", "c", "b"]
