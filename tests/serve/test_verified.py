"""Verified inference: SDC windows, detection accounting, replica draining."""

from __future__ import annotations

import math

import pytest

from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError
from repro.serve.batcher import BatchCoster
from repro.serve.failover import FailoverEngine
from repro.serve.verified import SDCFault, VerificationPolicy, VerifiedReplica
from repro.serve.workload import TenantSpec, poisson_arrivals

ALEX = [TenantSpec("alexnet", "alexnet")]

_COSTER = BatchCoster(CONFIG_16_16)


def engine(**kwargs):
    kwargs.setdefault("coster", _COSTER)
    return FailoverEngine(CONFIG_16_16, **kwargs)


def requests(rate=100, duration=3, seed=0):
    return poisson_arrivals(rate, duration, ALEX, seed=seed)


#: an SDC window covering the middle of a 3 s run on replica 1
STORM = SDCFault(replica=1, time_s=0.5, duration_s=2.0, per_batch=1.0, seed=0)


class TestSDCFault:
    def test_window(self):
        fault = SDCFault(replica=0, time_s=1.0, duration_s=0.5)
        assert fault.end_s == 1.5
        assert fault.active_at(1.0)
        assert fault.active_at(1.49)
        assert not fault.active_at(1.5)
        assert not fault.active_at(0.99)

    @pytest.mark.parametrize("bad", [-1, True, 1.5])
    def test_bad_replica(self, bad):
        with pytest.raises(ConfigError, match="replica"):
            SDCFault(replica=bad, time_s=0.0, duration_s=1.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan, math.inf])
    def test_bad_duration(self, bad):
        with pytest.raises(ConfigError, match="duration"):
            SDCFault(replica=0, time_s=0.0, duration_s=bad)

    @pytest.mark.parametrize("bad", [0.0, 1.5, -0.1, math.nan])
    def test_bad_per_batch(self, bad):
        with pytest.raises(ConfigError, match="per-batch"):
            SDCFault(replica=0, time_s=0.0, duration_s=1.0, per_batch=bad)

    def test_to_dict_uses_ms(self):
        d = SDCFault(replica=2, time_s=1.5, duration_s=0.25, seed=9).to_dict()
        assert d == {
            "replica": 2,
            "time_ms": 1500.0,
            "duration_ms": 250.0,
            "per_batch": 1.0,
            "seed": 9,
        }


class TestVerificationPolicy:
    def test_defaults_valid(self):
        policy = VerificationPolicy()
        assert policy.enabled
        assert "overhead=1.08x" in policy.describe()

    def test_disabled_describe(self):
        assert VerificationPolicy(enabled=False).describe() == "verification(off)"

    @pytest.mark.parametrize("bad", [0.99, 0.0, math.nan, math.inf])
    def test_latency_overhead_must_cover_cost(self, bad):
        with pytest.raises(ConfigError, match="latency_overhead"):
            VerificationPolicy(latency_overhead=bad)

    @pytest.mark.parametrize("bad", [-0.1, 1.1, math.nan])
    def test_detection_rate_bounds(self, bad):
        with pytest.raises(ConfigError, match="detection_rate"):
            VerificationPolicy(detection_rate=bad)

    @pytest.mark.parametrize("bad", [0, -1, True, 1.5])
    def test_drain_threshold(self, bad):
        with pytest.raises(ConfigError, match="drain_threshold"):
            VerificationPolicy(drain_threshold=bad)


class TestVerifiedReplica:
    def test_drained_state(self):
        rep = VerifiedReplica(rid=1)
        assert not rep.drained
        rep.drained_at = 1.25
        assert rep.drained
        assert rep.detail()["drained_ms"] == 1250.0

    def test_detail_keys(self):
        detail = VerifiedReplica(rid=0).detail()
        assert detail["checked_batches"] == 0
        assert detail["drained_ms"] is None


class TestEngineIntegration:
    def test_sdc_replica_out_of_range(self):
        with pytest.raises(ConfigError, match="replica 3"):
            engine(replicas=3, sdc_faults=[SDCFault(replica=3, time_s=0, duration_s=1)])

    def test_no_integrity_section_without_sdc_or_policy(self):
        summary = engine(replicas=2).run(requests(), 3.0).summary
        assert "integrity" not in summary

    def test_detection_drains_the_corrupting_replica(self):
        summary = engine(
            replicas=3,
            sdc_faults=[STORM],
            verification=VerificationPolicy(drain_threshold=3),
        ).run(requests(), 3.0).summary
        integrity = summary["integrity"]
        assert integrity["corrupted_batches"] > 0
        assert integrity["detected"] == integrity["corrupted_batches"]
        assert integrity["corrected"] == integrity["detected"]
        assert integrity["escaped_batches"] == 0
        assert integrity["drained_replicas"] == [1]
        assert integrity["detection_rate"] == 1.0

    def test_unverified_tier_escapes_everything(self):
        summary = engine(replicas=3, sdc_faults=[STORM]).run(requests(), 3.0).summary
        integrity = summary["integrity"]
        assert integrity["detected"] == 0
        assert integrity["escaped_batches"] == integrity["corrupted_batches"] > 0
        assert integrity["escaped_requests"] >= integrity["escaped_batches"]
        assert integrity["drained_replicas"] == []

    def test_verification_off_policy_also_escapes(self):
        summary = engine(
            replicas=3,
            sdc_faults=[STORM],
            verification=VerificationPolicy(enabled=False),
        ).run(requests(), 3.0).summary
        integrity = summary["integrity"]
        assert integrity["detected"] == 0
        assert integrity["escaped_batches"] > 0

    def test_checking_inflates_service_times(self):
        plain = engine(replicas=2).run(requests(), 3.0).summary
        checked = engine(
            replicas=2, verification=VerificationPolicy(latency_overhead=1.25)
        ).run(requests(), 3.0).summary
        assert checked["latency_ms"]["mean"] > plain["latency_ms"]["mean"]
        assert checked["integrity"]["checked_batches"] > 0
        assert checked["integrity"]["corrupted_batches"] == 0

    def test_deterministic_reruns(self):
        def run():
            return engine(
                replicas=3, sdc_faults=[STORM], verification=VerificationPolicy()
            ).run(requests(), 3.0).to_json()

        assert run() == run()

    def test_per_replica_details_cover_all_replicas(self):
        summary = engine(
            replicas=3, sdc_faults=[STORM], verification=VerificationPolicy()
        ).run(requests(), 3.0).summary
        per = summary["integrity"]["per_replica"]
        assert [d["rid"] for d in per] == [0, 1, 2]
        assert per[0]["corrupted_batches"] == 0
        assert per[1]["corrupted_batches"] > 0
