"""Shared-chip accounting: chip tags, per-chip rollup, adaptive envelopes."""

from __future__ import annotations

import pytest

from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError
from repro.serve.batcher import BatchCoster
from repro.serve.engine import (
    AdaptiveServingEngine,
    ReplicaState,
    ServingEngine,
    per_chip_rollup,
)
from repro.serve.workload import TenantSpec, poisson_arrivals

TENANTS = [TenantSpec("acme", "alexnet")]

_COSTER = BatchCoster(CONFIG_16_16)


def _requests(rate=40.0, duration=3.0, seed=7):
    return poisson_arrivals(rate, duration, TENANTS, seed=seed)


class TestStaticEngineTags:
    def test_per_chip_present_when_tagged(self):
        engine = ServingEngine(
            CONFIG_16_16,
            replicas=2,
            coster=_COSTER,
            chip_map={0: "c0", 1: "c1"},
        )
        summary = engine.run(_requests(), 3.0).summary
        assert set(summary["per_chip"]) == {"c0", "c1"}
        for rep in summary["per_replica"]:
            assert rep["chip"] in {"c0", "c1"}
            assert rep["chip_share"] == 1.0

    def test_co_resident_replicas_share_a_chip(self):
        engine = ServingEngine(
            CONFIG_16_16,
            replicas=2,
            coster=_COSTER,
            chip_map={0: "c0", 1: "c0"},
            chip_shares={0: 0.5, 1: 0.5},
        )
        summary = engine.run(_requests(), 3.0).summary
        entry = summary["per_chip"]["c0"]
        assert entry["replicas"] == [0, 1]
        # the chip is charged once: span == makespan, not 2x
        assert entry["chip_seconds"] == summary["makespan_s"]

    def test_regression_untagged_report_unchanged(self):
        # no chip_map -> no per_chip section and no chip keys anywhere;
        # existing report consumers must see byte-identical shapes
        summary = ServingEngine(
            CONFIG_16_16, replicas=2, coster=_COSTER
        ).run(_requests(), 3.0).summary
        assert "per_chip" not in summary
        for rep in summary["per_replica"]:
            assert "chip" not in rep
            assert "chip_share" not in rep

    # the static engine materializes replicas (and validates tags) at run
    def test_chip_map_unknown_rid(self):
        engine = ServingEngine(
            CONFIG_16_16, replicas=1, coster=_COSTER, chip_map={3: "c0"}
        )
        with pytest.raises(ConfigError, match="unknown replica rid"):
            engine.run([], 1.0)

    def test_chip_shares_without_map(self):
        engine = ServingEngine(
            CONFIG_16_16, replicas=1, coster=_COSTER, chip_shares={0: 0.5}
        )
        with pytest.raises(ConfigError, match="chip_shares requires chip_map"):
            engine.run([], 1.0)

    def test_chip_share_without_map_entry(self):
        engine = ServingEngine(
            CONFIG_16_16,
            replicas=2,
            coster=_COSTER,
            chip_map={0: "c0"},
            chip_shares={1: 0.5},
        )
        with pytest.raises(ConfigError, match="no chip_map entry"):
            engine.run([], 1.0)

    @pytest.mark.parametrize("share", [0.0, -0.5, 1.5])
    def test_chip_share_out_of_range(self, share):
        engine = ServingEngine(
            CONFIG_16_16,
            replicas=1,
            coster=_COSTER,
            chip_map={0: "c0"},
            chip_shares={0: share},
        )
        with pytest.raises(ConfigError, match=r"in \(0, 1\]"):
            engine.run([], 1.0)


class TestPerChipRollup:
    def test_share_weighted_utilization(self):
        replicas = [
            ReplicaState(rid=0, busy_s=2.0, chip="c0", chip_share=0.5),
            ReplicaState(rid=1, busy_s=4.0, chip="c0", chip_share=0.5),
        ]
        out = per_chip_rollup(replicas, {"c0": 4.0})
        entry = out["c0"]
        # (2*0.5 + 4*0.5) / 4 = 0.75
        assert entry["utilization"] == 0.75
        assert entry["busy_ms"] == 6000.0
        assert entry["chip_seconds"] == 4.0

    def test_untagged_replicas_skipped(self):
        replicas = [
            ReplicaState(rid=0, busy_s=1.0),
            ReplicaState(rid=1, busy_s=1.0, chip="c1"),
        ]
        out = per_chip_rollup(replicas, {"c1": 2.0})
        assert list(out) == ["c1"]
        assert out["c1"]["replicas"] == [1]

    def test_zero_span_guard(self):
        replicas = [ReplicaState(rid=0, busy_s=0.0, chip="c0")]
        assert per_chip_rollup(replicas, {})["c0"]["utilization"] == 0.0


class TestAdaptiveEngineTags:
    def test_add_replica_with_chip_tag(self):
        engine = AdaptiveServingEngine(
            CONFIG_16_16, replicas=1, coster=_COSTER, chip_map={0: "c0"}
        )
        rid = engine.add_replica(chip="c0", chip_share=0.5, coster=_COSTER)
        assert rid == 1
        report = engine.run(_requests(), 3.0)
        entry = report.summary["per_chip"]["c0"]
        assert entry["replicas"] == [0, 1]
        # both partitions live on one chip the whole run: envelope ==
        # makespan, charged once
        assert entry["chip_seconds"] == report.summary["makespan_s"]

    def test_lifetime_envelope_spans_join_to_retire(self):
        requests = _requests(duration=4.0)
        engine = AdaptiveServingEngine(
            CONFIG_16_16, replicas=1, coster=_COSTER, chip_map={0: "c0"}
        )
        engine.ingest(requests)
        engine.advance_to(1.0)
        rid = engine.add_replica(chip="c1", coster=_COSTER)
        engine.advance_to(2.0)
        retired = engine.drain_replica(rid)
        report = engine.finish(4.0)
        span = report.summary["per_chip"]["c1"]["chip_seconds"]
        # c1 held only from add (t=1) to retirement, not the whole run
        assert span == pytest.approx(retired - 1.0, rel=1e-6)
        assert span < report.summary["makespan_s"]

    def test_add_replica_bad_share(self):
        engine = AdaptiveServingEngine(
            CONFIG_16_16, replicas=1, coster=_COSTER
        )
        with pytest.raises(ConfigError, match="chip_share"):
            engine.add_replica(chip="c0", chip_share=0.0)

    def test_adaptive_untagged_regression(self):
        summary = AdaptiveServingEngine(
            CONFIG_16_16, replicas=1, coster=_COSTER
        ).run(_requests(), 3.0).summary
        assert "per_chip" not in summary
