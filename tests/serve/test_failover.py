"""Failover engine: fault injection, detection, retries, hedging, draining.

The load-bearing invariant throughout: every offered request terminates
exactly once — completed, shed, or failed with a reason.  No silent drops,
under any fault schedule.
"""

from __future__ import annotations

import math

import pytest

from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.failover import (
    FAILED_NO_REPLICAS,
    FAILED_RETRIES,
    FailoverEngine,
    FailoverPolicy,
    HealthChecker,
    ReplicaFault,
)
from repro.serve.workload import TenantSpec, poisson_arrivals

ALEX = [TenantSpec("alexnet", "alexnet")]

#: one shared coster so the expensive plans derive once per test session
_COSTER = BatchCoster(CONFIG_16_16)


def engine(**kwargs):
    kwargs.setdefault("coster", _COSTER)
    return FailoverEngine(CONFIG_16_16, **kwargs)


def requests(rate=100, duration=3, seed=0, tenants=ALEX):
    return poisson_arrivals(rate, duration, tenants, seed=seed)


def terminated(summary):
    return summary["completed"] + summary["shed"] + summary["failed"]


class TestValidation:
    def test_fault_replica_out_of_range(self):
        with pytest.raises(ConfigError, match="replica 2"):
            engine(replicas=2, faults=[ReplicaFault("crash", 2, 1.0)])

    def test_bad_fault_kind(self):
        with pytest.raises(ConfigError, match="fault kind"):
            ReplicaFault("explode", 0, 1.0)

    def test_slow_fault_needs_factor_above_one(self):
        with pytest.raises(ConfigError, match="factor"):
            ReplicaFault("slow", 0, 1.0, factor=0.5)

    def test_service_window_ordering(self):
        with pytest.raises(ConfigError, match="end > start"):
            engine(service_windows=[(2.0, 1.0, 2.0)])

    def test_service_window_multiplier(self):
        with pytest.raises(ConfigError, match="multiplier"):
            engine(service_windows=[(1.0, 2.0, 0.5)])


class TestFailoverPolicy:
    def test_backoff_grows_and_caps(self):
        policy = FailoverPolicy(backoff_base_ms=5.0, backoff_cap_ms=80.0)
        assert policy.backoff_s(1) == pytest.approx(0.005)
        assert policy.backoff_s(2) == pytest.approx(0.010)
        assert policy.backoff_s(5) == pytest.approx(0.080)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.080)

    def test_cap_below_base_rejected(self):
        with pytest.raises(ConfigError, match="backoff_cap_ms"):
            FailoverPolicy(backoff_base_ms=10.0, backoff_cap_ms=5.0)

    def test_slow_threshold_above_one(self):
        with pytest.raises(ConfigError, match="slow_threshold"):
            FailoverPolicy(slow_threshold=1.0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError, match="max_retries"):
            FailoverPolicy(max_retries=-1)


class TestHealthChecker:
    def test_detection_is_first_probe_after_crash(self):
        health = HealthChecker(2, FailoverPolicy(detect_interval_s=0.05))
        assert health.detection_time(0.12) == pytest.approx(0.15)
        # a crash exactly on a probe tick is noticed at the *next* tick
        assert health.detection_time(0.10) == pytest.approx(0.15)

    def test_timeline_records_transitions(self):
        health = HealthChecker(2, FailoverPolicy())
        health.mark_down(1.0, 0)
        health.mark_down(1.5, 0)  # idempotent
        assert health.timeline == [(1.0, 0, "down")]
        assert health.alive_rids() == [1]

    def test_slow_classification(self):
        policy = FailoverPolicy(slow_threshold=1.5)
        health = HealthChecker(1, policy)
        health.observe_completion(1.0, 0, observed_s=0.2, expected_s=0.1)
        assert health.is_slow(0)
        health.observe_completion(2.0, 0, observed_s=0.1, expected_s=0.1)
        assert health.status(0) == "up"


class TestHealthyBaseline:
    def test_no_faults_no_failures(self):
        report = engine(replicas=2).run(requests(), 3)
        s = report.summary
        assert s["failed"] == 0
        assert terminated(s) == s["offered"]
        assert s["failover"]["retries"] == 0

    def test_deterministic(self):
        def run():
            return engine(
                replicas=2,
                faults=[ReplicaFault("crash", 0, 1.0)],
            ).run(requests(), 3).to_json()

        assert run() == run()


class TestFailStop:
    def test_crash_terminates_everything(self):
        report = engine(
            replicas=2, faults=[ReplicaFault("crash", 0, 1.0)]
        ).run(requests(), 3)
        s = report.summary
        assert terminated(s) == s["offered"]
        assert set(s["failed_by_reason"]) <= {FAILED_RETRIES, FAILED_NO_REPLICAS}

    def test_crashed_replica_marked_down(self):
        report = engine(
            replicas=2, faults=[ReplicaFault("crash", 0, 1.0)]
        ).run(requests(), 3)
        detail = {d["rid"]: d for d in report.summary["per_replica"]}
        assert detail[0]["status"] == "down"
        assert detail[0]["crashed_ms"] == pytest.approx(1000.0)
        assert detail[1]["status"] != "down"

    def test_down_transition_at_detection_tick(self):
        policy = FailoverPolicy(detect_interval_s=0.05)
        report = engine(
            replicas=2,
            faults=[ReplicaFault("crash", 0, 1.02)],
            failover_policy=policy,
        ).run(requests(), 3)
        downs = [
            e
            for e in report.summary["failover"]["health_timeline"]
            if e["status"] == "down"
        ]
        assert downs[0]["time_ms"] == pytest.approx(1050.0)

    def test_survivor_serves_the_tail(self):
        report = engine(
            replicas=2, faults=[ReplicaFault("crash", 0, 1.0)]
        ).run(requests(), 3)
        by_replica = {d["rid"]: d["completed"] for d in report.summary["per_replica"]}
        # replica 1 keeps completing after the crash; replica 0 stops
        assert by_replica[1] > by_replica[0]

    def test_zero_retry_budget_fails_lost_batch(self):
        report = engine(
            replicas=2,
            faults=[ReplicaFault("crash", 0, 1.0)],
            failover_policy=FailoverPolicy(max_retries=0),
        ).run(requests(), 3)
        s = report.summary
        assert terminated(s) == s["offered"]
        if s["failed"]:
            assert FAILED_RETRIES in s["failed_by_reason"]
        assert s["failover"]["retries"] == 0

    def test_all_replicas_dead_drains_to_failed(self):
        report = engine(
            replicas=2,
            faults=[
                ReplicaFault("crash", 0, 0.5),
                ReplicaFault("crash", 1, 0.5),
            ],
        ).run(requests(rate=50, duration=2), 2)
        s = report.summary
        assert terminated(s) == s["offered"]
        assert s["failed"] > 0
        assert FAILED_NO_REPLICAS in s["failed_by_reason"]
        # nothing completes after both crashes are detected
        assert all(r.finish_s < 1.0 for r in report.metrics.completed)


class TestFailSlow:
    def test_slow_window_stretches_tail_latency(self):
        slow = engine(
            replicas=2,
            routing="least-loaded",
            faults=[ReplicaFault("slow", 0, 0.5, factor=6.0, duration_s=1.5)],
        ).run(requests(), 3)
        healthy = engine(replicas=2, routing="least-loaded").run(requests(), 3)
        assert (
            slow.summary["latency_ms"]["p99"]
            > healthy.summary["latency_ms"]["p99"]
        )
        assert slow.summary["failed"] == 0

    def test_slow_replica_flagged_in_timeline(self):
        report = engine(
            replicas=2,
            routing="least-loaded",
            faults=[ReplicaFault("slow", 0, 0.5, factor=6.0, duration_s=1.0)],
        ).run(requests(), 3)
        statuses = {
            e["status"] for e in report.summary["failover"]["health_timeline"]
        }
        assert "slow" in statuses


class TestHedging:
    def _run(self, hedge):
        return engine(
            replicas=3,
            routing="least-loaded",
            faults=[ReplicaFault("slow", 0, 0.5, factor=8.0, duration_s=2.0)],
            failover_policy=FailoverPolicy(hedge=hedge),
        ).run(requests(rate=120, duration=3), 3)

    def test_hedging_fires_and_charges_waste(self):
        hedged = self._run(True)
        failover = hedged.summary["failover"]
        assert failover["hedges"] > 0
        assert failover["hedge_wasted_ms"] >= 0.0

    def test_hedging_does_not_lose_requests(self):
        hedged = self._run(True)
        s = hedged.summary
        assert terminated(s) == s["offered"]
        # hedged batches complete once, not twice
        assert s["completed"] == len({r.rid for r in hedged.metrics.completed})

    def test_hedging_improves_tail_under_gray_failure(self):
        hedged = self._run(True)
        unhedged = self._run(False)
        assert (
            hedged.summary["latency_ms"]["p95"]
            <= unhedged.summary["latency_ms"]["p95"]
        )


class TestServiceWindows:
    def test_window_multiplies_service_time(self):
        windowed = engine(
            replicas=2, service_windows=[(0.0, 10.0, 3.0)]
        ).run(requests(rate=40, duration=2), 2)
        plain = engine(replicas=2).run(requests(rate=40, duration=2), 2)
        assert (
            windowed.summary["latency_ms"]["p50"]
            > plain.summary["latency_ms"]["p50"]
        )

    def test_windows_reported_in_summary(self):
        report = engine(
            replicas=1, service_windows=[(1.0, 2.0, 2.0)]
        ).run(requests(rate=20, duration=1), 1)
        windows = report.summary["failover"]["service_windows"]
        assert windows == [
            {"start_ms": 1000.0, "end_ms": 2000.0, "multiplier": 2.0}
        ]
