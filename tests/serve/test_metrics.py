"""Percentile math, summary reduction, and byte-stable JSON export."""

from __future__ import annotations

import json

import pytest

from repro.serve.metrics import (
    MetricsCollector,
    RequestRecord,
    percentile,
    to_json,
)


def rec(rid, arrival, start, finish, deadline, tenant="t", network="alexnet", batch=1):
    return RequestRecord(
        rid=rid,
        tenant=tenant,
        network=network,
        arrival_s=arrival,
        start_s=start,
        finish_s=finish,
        deadline_s=deadline,
        batch_size=batch,
        replica=0,
    )


class TestPercentile:
    def test_empty(self):
        assert percentile([], 95) == 0.0

    def test_single(self):
        assert percentile([7.0], 99) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_order_independent(self):
        assert percentile([3, 1, 2], 50) == percentile([1, 2, 3], 50)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestRequestRecord:
    def test_derived_times(self):
        r = rec(0, arrival=1.0, start=1.2, finish=1.5, deadline=1.6)
        assert r.queue_wait_s == pytest.approx(0.2)
        assert r.service_s == pytest.approx(0.3)
        assert r.latency_s == pytest.approx(0.5)
        assert r.met_deadline

    def test_missed_deadline(self):
        r = rec(0, arrival=1.0, start=1.2, finish=1.7, deadline=1.6)
        assert not r.met_deadline


class TestSummary:
    def _collector(self):
        m = MetricsCollector()
        # two tenants, one missed deadline, one shed
        m.record_completion(rec(0, 0.0, 0.1, 0.2, 0.5, tenant="a"))
        m.record_completion(rec(1, 0.0, 0.3, 0.9, 0.5, tenant="a"))
        m.record_completion(rec(2, 0.5, 0.5, 0.6, 1.0, tenant="b", network="nin"))
        m.record_batch(2)
        m.record_batch(1)
        m.record_shed("a", "queue_full")
        return m

    def test_counts_and_rates(self):
        s = self._collector().summary(duration_s=1.0, replicas=1, busy_s=0.7)
        assert s["offered"] == 4
        assert s["completed"] == 3
        assert s["shed"] == 1
        assert s["shed_rate"] == pytest.approx(0.25)
        assert s["deadline_met"] == 2
        assert s["goodput_rps"] == pytest.approx(2.0)
        assert s["throughput_rps"] == pytest.approx(3.0)
        assert s["shed_by_reason"] == {"queue_full": 1}

    def test_per_tenant_split(self):
        s = self._collector().summary(duration_s=1.0, replicas=1, busy_s=0.7)
        assert set(s["per_tenant"]) == {"a", "b"}
        assert s["per_tenant"]["a"]["offered"] == 3
        assert s["per_tenant"]["a"]["shed"] == 1
        assert s["per_tenant"]["b"]["completed"] == 1
        assert set(s["per_network"]) == {"alexnet", "nin"}

    def test_utilization_uses_makespan(self):
        s = self._collector().summary(duration_s=0.5, replicas=2, busy_s=0.9)
        # makespan = last finish (0.9) > duration (0.5)
        assert s["makespan_s"] == pytest.approx(0.9)
        assert s["utilization"] == pytest.approx(0.9 / (2 * 0.9))

    def test_queue_wait_fraction(self):
        s = self._collector().summary(duration_s=1.0, replicas=1, busy_s=0.7)
        wait = 0.1 + 0.3 + 0.0
        service = 0.1 + 0.6 + 0.1
        assert s["queue_wait_fraction"] == pytest.approx(
            wait / (wait + service), abs=1e-6
        )

    def test_empty_collector(self):
        s = MetricsCollector().summary(duration_s=1.0, replicas=1, busy_s=0.0)
        assert s["offered"] == 0
        assert s["latency_ms"]["p95"] == 0.0
        assert s["utilization"] == 0.0


class TestJson:
    def test_round_trips(self):
        m = MetricsCollector()
        m.record_completion(rec(0, 0.0, 0.1, 0.2, 0.5))
        text = to_json(m.summary(1.0, 1, 0.1))
        assert text.endswith("\n")
        assert json.loads(text)["completed"] == 1

    def test_byte_stable(self):
        def build():
            m = MetricsCollector()
            m.record_completion(rec(0, 0.0, 0.1, 0.2, 0.5))
            m.record_shed("t", "max_age")
            return to_json(m.summary(1.0, 1, 0.1))

        assert build() == build()
