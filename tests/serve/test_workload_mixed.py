"""Mixed-network tenant streams: grammar, validation, determinism."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.workload import (
    MixedTenantSpec,
    mixed_arrivals,
    parse_tenant_mix,
)


class TestSpec:
    def test_networks_property(self):
        spec = MixedTenantSpec(
            name="a", mix=(("alexnet", 3.0), ("vgg", 1.0))
        )
        assert spec.networks == ("alexnet", "vgg")

    def test_empty_mix(self):
        with pytest.raises(ConfigError, match="at least one network"):
            MixedTenantSpec(name="a", mix=())

    def test_duplicate_network_in_mix(self):
        with pytest.raises(ConfigError, match="duplicate network 'alexnet'"):
            MixedTenantSpec(
                name="a", mix=(("alexnet", 1.0), ("alexnet", 2.0))
            )

    @pytest.mark.parametrize("share", [0.0, -1.0])
    def test_bad_share(self, share):
        with pytest.raises(ConfigError, match="share must be"):
            MixedTenantSpec(name="a", mix=(("alexnet", share),))

    def test_bad_weight(self):
        with pytest.raises(ConfigError, match="weight"):
            MixedTenantSpec(name="a", mix=(("alexnet", 1.0),), weight=0.0)


class TestGrammar:
    def test_full_grammar(self):
        tenants = parse_tenant_mix("acme=alexnet:3/vgg:1@2,beta=nin")
        assert len(tenants) == 2
        acme, beta = tenants
        assert acme.name == "acme"
        assert acme.mix == (("alexnet", 3.0), ("vgg", 1.0))
        assert acme.weight == 2.0
        assert beta.mix == (("nin", 1.0),)
        assert beta.weight == 1.0

    def test_share_defaults_to_one(self):
        (t,) = parse_tenant_mix("a=alexnet/nin")
        assert t.mix == (("alexnet", 1.0), ("nin", 1.0))

    def test_slo_flows_through(self):
        (t,) = parse_tenant_mix("a=alexnet", slo_ms=100.0)
        assert t.slo_ms == 100.0

    def test_missing_equals(self):
        with pytest.raises(ConfigError, match="bad tenant-mix entry"):
            parse_tenant_mix("alexnet")

    def test_bad_weight_string(self):
        with pytest.raises(ConfigError, match="bad tenant weight"):
            parse_tenant_mix("a=alexnet@heavy")

    def test_bad_share_string(self):
        with pytest.raises(ConfigError, match="bad network share"):
            parse_tenant_mix("a=alexnet:lots")

    def test_unknown_network_names_choices(self):
        with pytest.raises(ConfigError) as err:
            parse_tenant_mix("a=resnet")
        message = str(err.value)
        assert "unknown network 'resnet'" in message
        assert "alexnet" in message  # the valid choices are listed

    def test_duplicate_tenant_names(self):
        with pytest.raises(ConfigError, match="duplicate tenant name 'a'"):
            parse_tenant_mix("a=alexnet,a=nin")


class TestMixedArrivals:
    TENANTS = parse_tenant_mix("acme=alexnet:3/nin:1@3,beta=nin")

    def test_same_seed_identical_stream(self):
        a = mixed_arrivals(50.0, 4.0, self.TENANTS, seed=11)
        b = mixed_arrivals(50.0, 4.0, self.TENANTS, seed=11)
        assert a == b

    def test_different_seed_differs(self):
        a = mixed_arrivals(50.0, 4.0, self.TENANTS, seed=11)
        b = mixed_arrivals(50.0, 4.0, self.TENANTS, seed=12)
        assert a != b

    def test_draws_are_valid(self):
        requests = mixed_arrivals(80.0, 4.0, self.TENANTS, seed=0)
        assert requests, "expected a non-empty stream"
        by_name = {t.name: t for t in self.TENANTS}
        for r in requests:
            assert r.tenant in by_name
            assert r.network in by_name[r.tenant].networks
            assert 0.0 <= r.arrival_s < 4.0
            assert r.deadline_s > r.arrival_s
        # rids are dense and ordered, arrivals non-decreasing
        assert [r.rid for r in requests] == list(range(len(requests)))
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)

    def test_weights_shape_traffic(self):
        requests = mixed_arrivals(200.0, 10.0, self.TENANTS, seed=1)
        acme = sum(1 for r in requests if r.tenant == "acme")
        # acme carries 3x beta's weight; allow generous sampling slack
        assert acme / len(requests) == pytest.approx(0.75, abs=0.1)

    def test_mix_shapes_networks(self):
        requests = mixed_arrivals(200.0, 10.0, self.TENANTS, seed=1)
        acme = [r for r in requests if r.tenant == "acme"]
        alex = sum(1 for r in acme if r.network == "alexnet")
        assert alex / len(acme) == pytest.approx(0.75, abs=0.1)

    def test_bad_rate(self):
        with pytest.raises(ConfigError, match="rate"):
            mixed_arrivals(0.0, 1.0, self.TENANTS)

    def test_bad_duration(self):
        with pytest.raises(ConfigError, match="duration"):
            mixed_arrivals(10.0, -1.0, self.TENANTS)

    def test_empty_tenants(self):
        with pytest.raises(ConfigError, match="at least one tenant"):
            mixed_arrivals(10.0, 1.0, [])
