"""The ``repro serve`` subcommand and ``repro select --json`` (satellite)."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestServeCommand:
    def test_default_run(self, capsys):
        assert main(["serve", "--rate", "60", "--duration", "2"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "alexnet" in out

    def test_acceptance_invocation_is_deterministic(self, tmp_path, capsys):
        """`repro serve --rate 100 --duration 10 --seed 0` twice -> same bytes."""
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        args = ["serve", "--rate", "100", "--duration", "10", "--seed", "0"]
        assert main(args + ["--json", str(a)]) == 0
        assert main(args + ["--json", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        summary = json.loads(a.read_text())
        assert summary["offered"] == summary["completed"] + summary["shed"]
        assert summary["workload"]["seed"] == 0

    def test_json_to_stdout(self, capsys):
        rc = main(
            ["serve", "--rate", "50", "--duration", "1", "--json", "-"]
        )
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["engine"]["batching"].startswith("dynamic")
        assert summary["replicas"] == 1

    def test_mix_and_knobs(self, capsys):
        rc = main(
            [
                "serve",
                "--mix",
                "alexnet:2,nin:1",
                "--rate",
                "40",
                "--duration",
                "2",
                "--max-batch",
                "4",
                "--replicas",
                "2",
                "--routing",
                "least-loaded",
                "--queue-order",
                "edf",
                "--json",
                "-",
            ]
        )
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert set(summary["per_tenant"]) == {"alexnet", "nin"}
        assert summary["engine"]["routing"] == "least-loaded"
        assert summary["engine"]["max_batch"] == 4

    def test_bursty_arrival(self, capsys):
        rc = main(
            [
                "serve",
                "--arrival",
                "bursty",
                "--rate",
                "40",
                "--duration",
                "2",
                "--json",
                "-",
            ]
        )
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["workload"]["arrival"] == "bursty"

    def test_trace_arrival(self, tmp_path, capsys):
        trace = tmp_path / "trace.csv"
        trace.write_text("0.01\n0.02\n0.50\n")
        rc = main(
            [
                "serve",
                "--arrival",
                "trace",
                "--trace",
                str(trace),
                "--duration",
                "1",
                "--json",
                "-",
            ]
        )
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["offered"] == 3

    def test_trace_requires_file(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="--trace"):
            main(["serve", "--arrival", "trace", "--duration", "1"])


class TestSelectJson:
    def test_select_json_machine_readable(self, capsys):
        assert main(["select", "alexnet", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["network"] == "alexnet"
        assert payload["config"]
        choices = payload["choices"]
        assert choices and {"layer", "scheme", "reason"} <= set(choices[0])
        schemes = {c["scheme"] for c in choices}
        assert schemes <= {"intra", "inter", "inter-improved", "partition"}

    def test_select_plain_unchanged(self, capsys):
        assert main(["select", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "->" in out and "{" not in out
