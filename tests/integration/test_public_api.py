"""Public API smoke tests: the README quickstart must work as written."""

import pytest


def test_quickstart_flow():
    from repro import CONFIG_16_16, build, plan_network

    net = build("alexnet")
    run = plan_network(net, CONFIG_16_16, "adaptive-2")
    assert run.total_cycles > 0
    assert run.milliseconds() > 0
    assert len(run.layers) == 5


def test_select_scheme_export():
    from repro import CONFIG_16_16, build, select_scheme

    choice = select_scheme(build("alexnet").conv1(), CONFIG_16_16)
    assert choice.scheme == "partition"


def test_custom_config_flow():
    from repro import build, named_config, plan_network

    cfg = named_config("16-28").with_frequency(100e6)
    run = plan_network(build("alexnet"), cfg, "adaptive-2")
    assert run.config.tout == 28


def test_machine_flow():
    from repro import CONFIG_16_16, Machine, build
    from repro.isa import compile_network

    program = compile_network(build("alexnet"), CONFIG_16_16, "adaptive-2")
    result = Machine(CONFIG_16_16).execute(program)
    assert result.total_cycles > 0


def test_errors_are_catchable_via_base():
    from repro import ReproError, build

    with pytest.raises(ReproError):
        build("resnet")


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None
