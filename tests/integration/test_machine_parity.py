"""Integration: compiled-program execution == analytical schedules.

This is the reproduction's internal cross-check — the Python analogue of
verifying the RTL (machine) against the performance model (schedules).
"""

import pytest

from repro.adaptive import plan_network
from repro.arch.config import CONFIG_16_16, CONFIG_32_32
from repro.isa.compiler import compile_network
from repro.sim.machine import Machine

POLICIES = ("ideal", "inter", "intra", "partition", "adaptive-1", "adaptive-2")


@pytest.mark.parametrize("config", [CONFIG_16_16, CONFIG_32_32], ids=lambda c: c.name)
@pytest.mark.parametrize("policy", POLICIES)
def test_alexnet_parity(alexnet, config, policy):
    run = plan_network(alexnet, config, policy)
    result = Machine(config).execute(compile_network(alexnet, config, policy))
    assert result.compute_cycles == run.compute_cycles
    assert result.useful_macs == run.total_macs
    assert result.buffer_accesses == run.buffer_accesses
    assert result.dram_words == run.dram_words
    assert result.extra_adds == run.total_extra_adds
    assert result.total_cycles == pytest.approx(run.total_cycles, abs=2.0)


@pytest.mark.parametrize("netname", ["googlenet", "vgg", "nin"])
def test_other_networks_parity_adaptive(netname, request):
    net = request.getfixturevalue(netname)
    config = CONFIG_16_16
    for policy in ("inter", "adaptive-2"):
        run = plan_network(net, config, policy)
        result = Machine(config).execute(compile_network(net, config, policy))
        assert result.buffer_accesses == run.buffer_accesses, policy
        assert result.total_cycles == pytest.approx(run.total_cycles, abs=2.0)


def test_per_buffer_parity(alexnet, cfg16):
    run = plan_network(alexnet, cfg16, "adaptive-2")
    result = Machine(cfg16).execute(compile_network(alexnet, cfg16, "adaptive-2"))
    planned = run.access_totals()
    for name in ("input", "output", "weight", "bias"):
        assert result.accesses[name].loads == planned[name].loads, name
        assert result.accesses[name].stores == planned[name].stores, name


def test_energy_parity(alexnet, cfg16):
    run = plan_network(alexnet, cfg16, "adaptive-2")
    result = Machine(cfg16).execute(compile_network(alexnet, cfg16, "adaptive-2"))
    assert result.energy().total_pj == pytest.approx(
        run.energy().total_pj, rel=1e-6
    )


def test_region_count_matches_layers(alexnet, cfg16):
    result = Machine(cfg16).execute(compile_network(alexnet, cfg16, "adaptive-2"))
    assert len(result.regions) == len(alexnet.conv_contexts())
