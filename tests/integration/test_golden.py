"""Golden-file regression: the headline datasets must not drift silently.

``benchmarks/golden/*.csv`` pin the Fig. 7 and Fig. 8 cycle counts this
release shipped with.  Any model change that moves a number — even inside
the asserted qualitative bands — fails here first, forcing a conscious
decision: fix the regression, or update the goldens *and* EXPERIMENTS.md
together.

Regenerate after an intentional change with:

    python -c "from repro.analysis import *; \
               write_csv(fig7_conv1(), 'benchmarks/golden/fig7.csv'); \
               write_csv(fig8_whole_network(), 'benchmarks/golden/fig8.csv')"
"""

import csv
from pathlib import Path

import pytest

from repro.analysis import fig7_conv1, fig8_whole_network
from repro.analysis.export import rows_to_dicts

GOLDEN = Path(__file__).resolve().parents[2] / "benchmarks" / "golden"

#: relative tolerance for cycle counts; exact reproduction expected, the
#: epsilon only absorbs float formatting
RTOL = 1e-9


def load_golden(name: str):
    with open(GOLDEN / name) as handle:
        return list(csv.DictReader(handle))


def keyed(records, key_fields):
    return {
        tuple(r[k] for k in key_fields): float(r["cycles"]) for r in records
    }


class TestGoldenFig7:
    def test_exact_match(self):
        golden = keyed(load_golden("fig7.csv"), ("config", "network", "scheme"))
        current = keyed(
            [
                {k: str(v) for k, v in r.items()}
                for r in rows_to_dicts(fig7_conv1())
            ],
            ("config", "network", "scheme"),
        )
        assert set(golden) == set(current)
        for key, value in golden.items():
            assert current[key] == pytest.approx(value, rel=RTOL), key


class TestGoldenFig8:
    def test_exact_match(self):
        golden = keyed(load_golden("fig8.csv"), ("config", "network", "policy"))
        current = keyed(
            [
                {k: str(v) for k, v in r.items()}
                for r in rows_to_dicts(fig8_whole_network())
            ],
            ("config", "network", "policy"),
        )
        assert set(golden) == set(current)
        for key, value in golden.items():
            assert current[key] == pytest.approx(value, rel=RTOL), key


def test_goldens_exist():
    assert (GOLDEN / "fig7.csv").exists()
    assert (GOLDEN / "fig8.csv").exists()
