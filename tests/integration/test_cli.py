"""CLI (`python -m repro`) tests."""

import pytest

from repro.__main__ import main


class TestCommands:
    def test_networks(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        for name in ("alexnet", "googlenet", "vgg", "nin"):
            assert name in out
        assert "conv1=(3,11,4,96)" in out

    def test_select(self, capsys):
        assert main(["select", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "partition" in out
        assert "inter-improved" in out

    def test_plan_default(self, capsys):
        assert main(["plan", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "total:" in out
        assert "energy:" in out
        assert "conv1" in out

    def test_plan_custom_config_and_policy(self, capsys):
        assert main(["plan", "nin", "--config", "32-32", "--policy", "inter"]) == 0
        out = capsys.readouterr().out
        assert "policy 'inter'" in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        for artifact in ("Fig. 3", "Fig. 7", "Fig. 8", "Fig. 9",
                         "Table 4", "Table 5", "Fig. 10"):
            assert artifact in out

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "resnet"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "alexnet", "--policy", "magic"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestAnalyze:
    def test_reuse_table(self, capsys):
        from repro.__main__ import main

        assert main(["analyze", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "weight reuse" in out
        assert "partition" in out

    def test_with_quantization(self, capsys):
        from repro.__main__ import main

        assert main(["analyze", "nin", "--quantization"]) == 0
        out = capsys.readouterr().out
        assert "SQNR" in out


class TestSimulate:
    def test_executes_and_reports(self, capsys):
        from repro.__main__ import main

        assert main(["simulate", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "lint: 0 errors" in out
        assert "machine:" in out
        assert "energy:" in out

    def test_asm_dump(self, capsys, tmp_path):
        from repro.__main__ import main

        target = str(tmp_path / "net.s")
        assert main(["simulate", "nin", "--asm", target]) == 0
        text = open(target).read()
        assert "compute" in text and ".meta network nin" in text
