"""Robustness: conclusions must survive model-parameter perturbation,
and the toolchain must hold up on arbitrary (fuzzed) networks."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import plan_network
from repro.arch.config import CONFIG_16_16
from repro.arch.energy import EnergyModel, EnergyTable
from repro.errors import ShapeError
from repro.isa.compiler import compile_run
from repro.nn.zoo import build, sequential_cnn
from repro.sim.machine import Machine


class TestEnergyConstantRobustness:
    """Table 5's *signs* must not depend on the exact pJ constants."""

    PERTURBATIONS = [
        dict(mult_pj=0.3), dict(mult_pj=1.2),
        dict(add_pj=0.025), dict(add_pj=0.1),
        dict(sram_base_pj=0.18), dict(sram_base_pj=0.7),
    ]

    @pytest.mark.parametrize("overrides", PERTURBATIONS)
    def test_table5_ordering_invariant(self, overrides, cfg16):
        table = EnergyTable(**overrides)
        results = {}
        for name in ("alexnet", "vgg"):
            net = build(name)
            energies = {
                policy: plan_network(net, cfg16, policy).pe_energy_pj(
                    EnergyModel(cfg16, table)
                )
                for policy in ("inter", "intra", "partition", "adaptive-1")
            }
            results[name] = energies
        # AlexNet: adaptive saves vs inter; partition saves vs intra
        a = results["alexnet"]
        assert a["adaptive-1"] < a["inter"]
        assert a["partition"] < a["intra"]
        # VGG: intra costs more PE energy than inter
        v = results["vgg"]
        assert v["intra"] > v["inter"]

    @pytest.mark.parametrize("overrides", PERTURBATIONS)
    def test_fig10_key_reduction_invariant(self, overrides, cfg16):
        """adap-2's traffic win is a pure count ratio: constant-free."""
        net = build("alexnet")
        a1 = plan_network(net, cfg16, "adaptive-1").buffer_accesses
        a2 = plan_network(net, cfg16, "adaptive-2").buffer_accesses
        assert a2 < 0.3 * a1  # no energy constants involved at all


def random_spec(draw_blocks):
    """Assemble a DSL spec string from drawn block parameters."""
    tokens = []
    for out, k, s, pool in draw_blocks:
        pad = k // 2 if s == 1 else 0
        tokens.append(f"C{out}k{k}s{s}p{pad}")
        tokens.append("R")
        if pool:
            tokens.append("P2")
    return " ".join(tokens)


block = st.tuples(
    st.sampled_from([4, 8, 16, 24, 32]),   # out maps
    st.sampled_from([1, 3, 5, 7]),          # kernel
    st.sampled_from([1, 2]),                # stride
    st.booleans(),                          # pool after?
)


class TestFuzzedNetworks:
    @settings(deadline=None, max_examples=25)
    @given(blocks=st.lists(block, min_size=1, max_size=4), hw=st.sampled_from([24, 32, 48]))
    def test_plan_and_machine_parity_on_random_nets(self, blocks, hw):
        spec = random_spec(blocks)
        try:
            net = sequential_cnn("fuzz", (3, hw, hw), spec)
        except ShapeError:
            return  # drew a spec that shrinks below the kernel size: fine
        for policy in ("inter", "intra", "partition", "adaptive-2"):
            run = plan_network(net, CONFIG_16_16, policy)
            result = Machine(CONFIG_16_16).execute(
                compile_run(run, CONFIG_16_16)
            )
            assert result.buffer_accesses == run.buffer_accesses, policy
            assert result.dram_words == run.dram_words, policy
            assert result.total_cycles == pytest.approx(
                run.total_cycles, abs=2.0
            ), policy

    @settings(deadline=None, max_examples=25)
    @given(blocks=st.lists(block, min_size=1, max_size=4), hw=st.sampled_from([24, 32, 48]))
    def test_adaptive_never_loses_badly_on_random_nets(self, blocks, hw):
        """Algorithm 2 on arbitrary topologies.

        Fuzzing finds the rule's honest corners, so the bounds encode them:

        * compute within 2x of the best fixed policy — partition's
          zero-padding overhead (g*ks)^2/k^2 peaks at ~1.8x for the
          generator's k=3/s=2 draws, and Algorithm 2 does not model it;
        * wall-clock within 3x — tiny DMA-bound layers (e.g. strided 1x1
          convs, where im2col *deflates* the input to 1/s^2 of the pixels)
          make the rule's inter choice stream the full tensor.

        The oracle policy exists for workloads living in those corners; on
        the paper's benchmarks the rule is within 10% of it (asserted in
        tests/adaptive/test_search.py)."""
        spec = random_spec(blocks)
        try:
            net = sequential_cnn("fuzz", (3, hw, hw), spec)
        except ShapeError:
            return

        def layer_totals(policy):
            run = plan_network(net, CONFIG_16_16, policy)
            return (
                sum(r.total_cycles for r in run.layers),
                sum(r.operations for r in run.layers),
            )

        adaptive_total, adaptive_ops = layer_totals("adaptive-2")
        fixed = [layer_totals(p) for p in ("inter", "intra", "partition")]
        best_fixed_total = min(t for t, _ in fixed)
        best_fixed_ops = min(o for _, o in fixed)
        assert adaptive_ops <= 2.0 * best_fixed_ops
        assert adaptive_total <= 3.0 * best_fixed_total


class TestDegenerateInputs:
    def test_network_without_convs_plans_empty(self, cfg16):
        from repro.nn.layers import ReLULayer, TensorShape
        from repro.nn.network import Network

        net = Network("noconv", TensorShape(1, 4, 4))
        net.add(ReLULayer("r"))
        run = plan_network(net, cfg16, "adaptive-2")
        assert run.layers == []
        assert run.total_cycles == 0

    def test_single_pixel_output_layer(self, cfg16):
        net = sequential_cnn("tiny", (8, 7, 7), "C16k7")
        run = plan_network(net, cfg16, "adaptive-2")
        assert run.total_cycles > 0

    def test_overlap_disabled_config(self, alexnet):
        serial = dataclasses.replace(CONFIG_16_16, overlap_streams=False)
        a = plan_network(alexnet, CONFIG_16_16, "adaptive-2").total_cycles
        b = plan_network(alexnet, serial, "adaptive-2").total_cycles
        assert b > a
