"""Integration: the paper's headline claims hold in the model.

These are the same *shape* assertions the benchmark harness makes, kept in
the fast test suite so a regression is caught without running benchmarks.
"""

import pytest

from repro.adaptive import plan_network
from repro.analysis.metrics import arithmetic_mean, reduction_pct, speedup
from repro.arch.config import CONFIG_16_16, CONFIG_32_32
from repro.schemes import make_scheme


class TestAbstractClaims:
    def test_headline_layer_speedups_4x_to_8x(self, all_networks):
        """Abstract: 'a speedup of 4.0x-8.3x for some layers'."""
        best = 0.0
        for net in all_networks:
            for config in (CONFIG_16_16, CONFIG_32_32):
                ctx = net.conv1()
                inter = make_scheme("inter").schedule(ctx, config)
                part = make_scheme("partition").schedule(ctx, config)
                best = max(best, speedup(inter.total_cycles, part.total_cycles))
        assert best >= 4.0

    def test_conv1_partition_beats_inter_avg(self, all_networks):
        """Sec 5.2: 'partition outperforms inter ... 5.8x speed-ups'
        (we assert > 3x on average across both configs)."""
        ratios = []
        for config in (CONFIG_16_16, CONFIG_32_32):
            for net in all_networks:
                ctx = net.conv1()
                inter = make_scheme("inter").schedule(ctx, config)
                part = make_scheme("partition").schedule(ctx, config)
                ratios.append(inter.total_cycles / part.total_cycles)
        assert arithmetic_mean(ratios) > 3.0

    def test_conv1_partition_beats_intra_avg(self, all_networks):
        """Sec 5.2: partition beats intra ~2.1x on conv1 (assert > 1.5x)."""
        ratios = []
        for config in (CONFIG_16_16, CONFIG_32_32):
            for net in all_networks:
                ctx = net.conv1()
                intra = make_scheme("intra").schedule(ctx, config)
                part = make_scheme("partition").schedule(ctx, config)
                ratios.append(intra.total_cycles / part.total_cycles)
        assert arithmetic_mean(ratios) > 1.5


class TestFig8Claims:
    def test_adaptive_best_or_near_best_everywhere(self, all_networks):
        """Fig. 8: the adaptive scheme outperforms the fixed ones (we allow
        10% slack vs 'partition' which can win on Din-chunk quantization)."""
        for config in (CONFIG_16_16, CONFIG_32_32):
            for net in all_networks:
                adaptive = plan_network(net, config, "adaptive-2").total_cycles
                for policy in ("inter", "intra", "partition"):
                    fixed = plan_network(net, config, policy).total_cycles
                    assert adaptive <= 1.10 * fixed, (net.name, config.name, policy)

    def test_alexnet_adaptive_vs_inter_band(self, alexnet):
        """Paper: 1.83x on AlexNet (16-16); we assert the 1.4x-2.3x band."""
        inter = plan_network(alexnet, CONFIG_16_16, "inter").total_cycles
        adpa = plan_network(alexnet, CONFIG_16_16, "adaptive-2").total_cycles
        assert 1.4 < inter / adpa < 2.3

    def test_four_network_average_speedup(self, all_networks):
        """Paper: 1.43x average vs inter; we assert > 1.2x."""
        ratios = [
            plan_network(n, CONFIG_16_16, "inter").total_cycles
            / plan_network(n, CONFIG_16_16, "adaptive-2").total_cycles
            for n in all_networks
        ]
        assert arithmetic_mean(ratios) > 1.2

    def test_vgg_gain_is_marginal(self, vgg):
        """Paper: VGG's adaptiveness space is marginal (memory bound +
        homogeneous layers)."""
        inter = plan_network(vgg, CONFIG_16_16, "inter").total_cycles
        adpa = plan_network(vgg, CONFIG_16_16, "adaptive-2").total_cycles
        assert inter / adpa < 1.10

    def test_adpa1_equals_adpa2_performance(self, all_networks):
        """'adpa-1 and adpa-2 are the same on performance'."""
        for net in all_networks:
            a1 = plan_network(net, CONFIG_16_16, "adaptive-1").total_cycles
            a2 = plan_network(net, CONFIG_16_16, "adaptive-2").total_cycles
            assert a1 == pytest.approx(a2, rel=1e-9)


class TestEnergyClaims:
    def test_table5_ordering(self):
        """intra < partition < adaptive on AlexNet/GoogLeNet savings."""
        from repro.analysis.experiments import table5_pe_energy

        rows = {(r.network, r.scheme): r.reduction_pct for r in table5_pe_energy()}
        for net in ("alexnet", "googlenet"):
            assert rows[(net, "intra")] < rows[(net, "partition")]
            assert rows[(net, "partition")] < rows[(net, "adaptive-1")]

    def test_vgg_intra_is_negative(self):
        """Table 5: intra *costs* energy on VGG (-44.72% in the paper)."""
        from repro.analysis.experiments import table5_pe_energy

        rows = {(r.network, r.scheme): r.reduction_pct for r in table5_pe_energy()}
        assert rows[("vgg", "intra")] < -20.0

    def test_adap2_within_epsilon_of_adap1(self):
        """'adap-2's reduction is slightly smaller than adap-1' — the extra
        adder group costs a little."""
        from repro.analysis.experiments import table5_pe_energy

        rows = {(r.network, r.scheme): r.reduction_pct for r in table5_pe_energy()}
        for net in ("alexnet", "googlenet", "vgg"):
            gap = rows[(net, "adaptive-1")] - rows[(net, "adaptive-2")]
            assert 0 <= gap < 2.0

    def test_adap2_slashes_buffer_traffic_vs_adap1(self, all_networks):
        """Fig. 10: ~90% reduction in the paper; we assert > 70%."""
        for net in all_networks:
            a1 = plan_network(net, CONFIG_16_16, "adaptive-1").buffer_accesses
            a2 = plan_network(net, CONFIG_16_16, "adaptive-2").buffer_accesses
            assert reduction_pct(a1, a2) > 70.0, net.name

    def test_inter_has_worst_traffic_of_practical_schemes(self, all_networks):
        """Fig. 10: original inter is the traffic hog (partition can exceed
        it on VGG via add-and-store, which the paper also reports)."""
        for net in all_networks:
            inter = plan_network(net, CONFIG_16_16, "inter").buffer_accesses
            a2 = plan_network(net, CONFIG_16_16, "adaptive-2").buffer_accesses
            assert inter > 4 * a2, net.name

    def test_partition_traffic_explodes_on_vgg(self, vgg):
        """Fig. 10: 'partition have more buffer accesses than others' on VGG."""
        part = plan_network(vgg, CONFIG_16_16, "partition").buffer_accesses
        for policy in ("inter", "intra", "adaptive-1", "adaptive-2"):
            other = plan_network(vgg, CONFIG_16_16, policy).buffer_accesses
            assert part > other, policy
