"""Integration: the layout handoff is numerically lossless.

Algorithm 2 (lines 4-5) has each layer store its output in the layout the
next layer streams.  This test executes a forward pass where every
intermediate activation physically round-trips through the layout the
planner assigns (INTER = depth-interleaved, INTRA = planar) and checks the
final activations are identical to the plain forward pass — i.e. the
layout machinery is pure data movement, no values harmed.
"""

import numpy as np

from repro.adaptive import plan_network
from repro.adaptive.selector import layout_for_scheme
from repro.arch.config import CONFIG_16_16
from repro.nn.layers import ConvLayer, TensorShape
from repro.nn.network import Network
from repro.sim.forward import forward, init_weights
from repro.tiling.layout import from_layout, to_layout


def build_mixed_net() -> Network:
    """A net whose adaptive plan mixes partition, intra and inter layers."""
    net = Network("mixed", TensorShape(3, 40, 40))
    net.add(ConvLayer("bottom", in_maps=3, out_maps=16, kernel=5, stride=1))
    net.add(ConvLayer("sliding", in_maps=16, out_maps=24, kernel=2, stride=2))
    net.add(ConvLayer("top", in_maps=24, out_maps=32, kernel=3, pad=1))
    return net


def test_plan_mixes_layouts():
    net = build_mixed_net()
    run = plan_network(net, CONFIG_16_16, "adaptive-2")
    layouts = [r.input_layout for r in run.layers]
    assert len(set(layouts)) == 2  # both INTER and INTRA appear


def test_layout_roundtrip_preserves_forward_pass():
    net = build_mixed_net()
    run = plan_network(net, CONFIG_16_16, "adaptive-2")
    params = init_weights(net, seed=5)
    image = np.random.default_rng(9).standard_normal((3, 40, 40))

    reference = forward(net, image, params=params)

    # now re-run layer by layer, physically storing each activation in the
    # layout its consumer's scheme wants, then reading it back
    from repro.sim.forward import CONV_EXECUTORS

    scheme_by_layer = {r.layer_name: r.scheme for r in run.layers}
    activation = image
    for idx, ctx in enumerate(net.conv_contexts()):
        scheme = scheme_by_layer[ctx.name]
        executor = CONV_EXECUTORS.get(scheme, CONV_EXECUTORS["reference"])
        p = params[ctx.name]
        out = executor(
            activation,
            p["weights"],
            p["bias"],
            ctx.layer.stride,
            ctx.layer.pad,
            ctx.layer.groups,
        )
        # store in the next consumer's layout, then load back
        if idx + 1 < len(run.layers):
            next_layout = run.layers[idx + 1].input_layout
        else:
            next_layout = layout_for_scheme(scheme)
        stored = to_layout(out, next_layout)
        activation = from_layout(stored, next_layout)
        assert np.allclose(activation, reference[ctx.name], atol=1e-9), ctx.name
