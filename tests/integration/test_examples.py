"""The shipped examples must stay runnable (they are the public tutorial).

Each example runs in a subprocess with the repository's interpreter and
must exit 0 and print its headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Per-layer scheme selection" in out
    assert "speedup:" in out
    assert "partition" in out


def test_layer_analysis():
    out = run_example("layer_analysis.py", "nin")
    assert "rule picks" in out
    assert "whole network:" in out


def test_design_space_exploration():
    out = run_example("design_space_exploration.py", "alexnet", "256")
    assert "16-16" in out
    assert "best adaptive shape" in out


def test_custom_network():
    out = run_example("custom_network.py")
    assert "Adaptive plan for custom-detector" in out
    assert "max |err|" in out
    assert "macro instructions" in out


def test_batched_deployment():
    out = run_example("batched_deployment.py", "alexnet")
    assert "images/s" in out
    assert "conv-only compute bound" in out


def test_compile_and_inspect():
    out = run_example("compile_and_inspect.py")
    assert "macro instructions" in out
    assert "lint: 0 errors" in out
    assert "execution" in out and "identical" in out
    assert "region" in out


def test_architecture_comparison():
    out = run_example("architecture_comparison.py", "alexnet")
    assert "diannao" in out
    assert "dataflow gain" in out


def test_serving_demo():
    out = run_example("serving_demo.py", "100", "3")
    assert "batch-1" in out
    assert "dynamic x2" in out
    assert "per-replica capacity" in out


def test_examples_directory_is_covered():
    """Every shipped example has a test here."""
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    tested = {
        "quickstart.py",
        "layer_analysis.py",
        "design_space_exploration.py",
        "custom_network.py",
        "batched_deployment.py",
        "compile_and_inspect.py",
        "architecture_comparison.py",
        "serving_demo.py",
    }
    assert shipped == tested
