"""On-disk persistence of the schedule cache (REPRO_PLAN_CACHE_DIR).

A persisted cache must behave exactly like a warm in-memory cache across
process boundaries: identical results (rebound to the caller), replayed
negative entries, and graceful degradation — a corrupt or unwritable
directory degrades to a cold cache, never to a crash or a wrong schedule.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.arch.config import CONFIG_16_16
from repro.errors import ScheduleError
from repro.nn.layers import ConvLayer, TensorShape
from repro.nn.network import LayerContext
from repro.perf.cache import ScheduleCache


def _ctx(name="conv1", k=11, s=4, hw=227, din=3, dout=96):
    layer = ConvLayer(name, in_maps=din, out_maps=dout, kernel=k, stride=s)
    in_shape = TensorShape(din, hw, hw)
    return LayerContext(layer, in_shape, layer.output_shape(in_shape))


class TestDiskRoundTrip:
    def test_second_cache_hits_from_disk(self, tmp_path):
        persist = str(tmp_path)
        first = ScheduleCache(persist_dir=persist)
        reference = first.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        assert first.stats().disk_writes == 1

        # a fresh cache (new process stand-in) must warm-start from disk
        second = ScheduleCache(persist_dir=persist)
        result = second.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        stats = second.stats()
        assert stats.disk_hits == 1
        assert stats.hits == 1
        assert stats.misses == 0
        assert result.operations == reference.operations
        assert result.accesses.keys() == reference.accesses.keys()

    def test_disk_hit_rebinds_to_caller(self, tmp_path):
        first = ScheduleCache(persist_dir=str(tmp_path))
        first.get_or_schedule("partition", _ctx(name="conv1"), CONFIG_16_16)
        second = ScheduleCache(persist_dir=str(tmp_path))
        # same geometry, different layer name: disk hit, caller's name wins
        renamed = second.get_or_schedule(
            "partition", _ctx(name="conv5"), CONFIG_16_16
        )
        assert second.stats().disk_hits == 1
        assert renamed.layer_name == "conv5"

    def test_negative_entries_replay_from_disk(self, tmp_path):
        # stride >= kernel cannot partition — a deterministic failure
        bad = _ctx(k=2, s=3, hw=9, din=3, dout=4)
        first = ScheduleCache(persist_dir=str(tmp_path))
        with pytest.raises(ScheduleError):
            first.get_or_schedule("partition", bad, CONFIG_16_16)
        second = ScheduleCache(persist_dir=str(tmp_path))
        with pytest.raises(ScheduleError):
            second.get_or_schedule("partition", bad, CONFIG_16_16)
        stats = second.stats()
        assert stats.disk_hits == 1
        assert stats.misses == 0

    def test_clear_keeps_disk_entries(self, tmp_path):
        cache = ScheduleCache(persist_dir=str(tmp_path))
        cache.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        assert len(os.listdir(tmp_path)) == 1
        cache.clear()
        assert len(cache) == 0
        assert len(os.listdir(tmp_path)) == 1  # directory is shared state
        cache.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        assert cache.stats().disk_hits == 1


class TestDegradation:
    def test_corrupt_file_counts_error_and_replans(self, tmp_path):
        first = ScheduleCache(persist_dir=str(tmp_path))
        reference = first.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        (path,) = [tmp_path / f for f in os.listdir(tmp_path)]
        path.write_bytes(b"not a pickle")

        second = ScheduleCache(persist_dir=str(tmp_path))
        result = second.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        stats = second.stats()
        assert stats.disk_errors >= 1
        assert stats.disk_hits == 0
        assert stats.misses == 1  # re-planned from scratch
        assert result.operations == reference.operations

    def test_stale_format_version_is_a_miss(self, tmp_path):
        first = ScheduleCache(persist_dir=str(tmp_path))
        first.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        (path,) = [tmp_path / f for f in os.listdir(tmp_path)]
        version, key, entry = pickle.loads(path.read_bytes())
        path.write_bytes(pickle.dumps((version + 1, key, entry)))

        second = ScheduleCache(persist_dir=str(tmp_path))
        second.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        stats = second.stats()
        assert stats.disk_hits == 0
        assert stats.misses == 1

    def test_key_mismatch_never_serves_wrong_entry(self, tmp_path):
        first = ScheduleCache(persist_dir=str(tmp_path))
        first.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        (path,) = [tmp_path / f for f in os.listdir(tmp_path)]
        version, key, entry = pickle.loads(path.read_bytes())
        # simulate a digest collision: stored key differs from the request
        path.write_bytes(pickle.dumps((version, ("other",) + key[1:], entry)))

        second = ScheduleCache(persist_dir=str(tmp_path))
        second.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        assert second.stats().disk_hits == 0

    def test_unwritable_dir_degrades_gracefully(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where a directory should be")
        cache = ScheduleCache(persist_dir=str(target))
        result = cache.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        assert result.operations > 0
        stats = cache.stats()
        assert stats.disk_errors >= 1
        assert stats.disk_writes == 0

    def test_disabled_when_no_dir_configured(self, tmp_path):
        cache = ScheduleCache()
        cache.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        stats = cache.stats()
        assert stats.persist_dir is None
        assert stats.disk_writes == 0


class TestConfigure:
    def test_configure_persist_dir_toggles(self, tmp_path):
        cache = ScheduleCache()
        cache.configure(persist_dir=str(tmp_path))
        cache.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        assert cache.stats().disk_writes == 1
        cache.configure(persist_dir="")
        assert cache.stats().persist_dir is None
        cache.clear()
        cache.get_or_schedule("partition", _ctx(), CONFIG_16_16)
        assert cache.stats().disk_writes == 0

    def test_env_var_wires_global_cache(self, tmp_path):
        import subprocess
        import sys

        code = (
            "from repro.perf.cache import schedule_cache; "
            "print(schedule_cache.persist_dir)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={
                **os.environ,
                "REPRO_PLAN_CACHE_DIR": str(tmp_path),
                "PYTHONPATH": "src",
            },
            capture_output=True,
            text=True,
            check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert out.stdout.strip() == str(tmp_path)
