"""Schedule-cache correctness: cached == uncached, keys never collide."""

from __future__ import annotations

import dataclasses

import pytest

from repro.adaptive.planner import POLICY_NAMES, plan_network
from repro.arch.config import CONFIG_16_16, CONFIG_32_32, AcceleratorConfig
from repro.errors import ScheduleError
from repro.nn.zoo import NETWORK_BUILDERS, build
from repro.perf.cache import (
    ScheduleCache,
    canonical_key,
    config_key,
    schedule_cache,
)

ZOO = sorted(NETWORK_BUILDERS)


def _layer_fingerprint(result):
    """Everything a ScheduleResult reports, in comparable form."""
    return (
        result.scheme,
        result.layer_name,
        result.operations,
        result.useful_macs,
        result.extra_adds,
        {name: (c.loads, c.stores) for name, c in result.accesses.items()},
        result.dram_words,
        result.dma_cycles,
        result.reshape_cycles,
        result.input_layout,
        result.output_layout,
        result.total_cycles,
        result.buffer_accesses,
    )


def _run_fingerprint(run):
    return (
        run.input_reorder_words,
        run.total_cycles,
        run.buffer_accesses,
        run.dram_words,
        [_layer_fingerprint(r) for r in run.layers],
    )


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts from an empty, enabled process-wide cache."""
    schedule_cache.configure(enabled=True)
    schedule_cache.clear()
    yield
    schedule_cache.configure(enabled=True)
    schedule_cache.clear()


@pytest.mark.parametrize("net_name", ZOO)
@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_cached_identical_to_uncached(net_name, policy):
    """Property: the cache never changes a single reported number."""
    net = build(net_name)
    schedule_cache.configure(enabled=False)
    reference = plan_network(net, CONFIG_16_16, policy)
    schedule_cache.configure(enabled=True)
    schedule_cache.clear()
    cold = plan_network(net, CONFIG_16_16, policy)
    warm = plan_network(net, CONFIG_16_16, policy)
    assert _run_fingerprint(cold) == _run_fingerprint(reference)
    assert _run_fingerprint(warm) == _run_fingerprint(reference)


def test_repeated_plans_hit_the_cache():
    net = build("vgg")
    plan_network(net, CONFIG_16_16, "oracle")
    first = schedule_cache.stats()
    plan_network(net, CONFIG_16_16, "oracle")
    second = schedule_cache.stats()
    assert first.hits > 0  # VGG repeats conv geometries within one plan
    assert second.misses == first.misses  # replan is all hits
    assert second.hits > first.hits


def test_distinct_configs_never_share_entries():
    """Any scheduling-relevant knob must split the key space."""
    ctx = build("alexnet").conv1()
    variants = {
        "tin": CONFIG_16_16.with_pe(8, 16),
        "tout": CONFIG_16_16.with_pe(16, 8),
        "input_buffer_bytes": dataclasses.replace(
            CONFIG_16_16, input_buffer_bytes=CONFIG_16_16.input_buffer_bytes // 2
        ),
        "output_buffer_bytes": dataclasses.replace(
            CONFIG_16_16, output_buffer_bytes=CONFIG_16_16.output_buffer_bytes // 2
        ),
        "weight_buffer_bytes": dataclasses.replace(
            CONFIG_16_16, weight_buffer_bytes=CONFIG_16_16.weight_buffer_bytes // 2
        ),
        "bias_buffer_bytes": dataclasses.replace(
            CONFIG_16_16, bias_buffer_bytes=CONFIG_16_16.bias_buffer_bytes // 2
        ),
        "dram_words_per_cycle": dataclasses.replace(
            CONFIG_16_16, dram_words_per_cycle=CONFIG_16_16.dram_words_per_cycle * 2
        ),
        "32-32": CONFIG_32_32,
    }
    base_key = config_key(CONFIG_16_16)
    schedule_cache.get_or_schedule("inter", ctx, CONFIG_16_16)
    baseline = schedule_cache.stats()
    assert baseline.misses == 1
    for name, variant in variants.items():
        assert config_key(variant) != base_key, name
        assert canonical_key("inter", ctx, variant) != canonical_key(
            "inter", ctx, CONFIG_16_16
        ), name
    # requesting each variant is a fresh miss, never a cross-config hit
    misses = baseline.misses
    for variant in variants.values():
        schedule_cache.get_or_schedule("inter", ctx, variant)
        stats = schedule_cache.stats()
        misses += 1
        assert stats.misses == misses
        assert stats.hits == baseline.hits


def test_hit_rebinds_layer_name_and_config():
    """Same geometry, different layer / clock: the cached result is rebound."""
    net = build("vgg")
    convs = {c.name: c for c in net.conv_contexts()}
    twin_a, twin_b = convs["conv3_2"], convs["conv3_3"]  # identical geometry
    fast = schedule_cache.get_or_schedule("inter-improved", twin_a, CONFIG_16_16)
    slow_cfg = CONFIG_16_16.with_frequency(100e6)  # not part of the key
    hit = schedule_cache.get_or_schedule("inter-improved", twin_b, slow_cfg)
    assert schedule_cache.stats().hits == 1
    assert hit.layer_name == twin_b.name
    assert hit.config is slow_cfg
    assert hit.total_cycles == fast.total_cycles
    assert hit.milliseconds() == pytest.approx(fast.milliseconds() * 10)


def test_returned_results_are_independent_copies():
    ctx = build("alexnet").conv1()
    first = schedule_cache.get_or_schedule("intra", ctx, CONFIG_16_16)
    first.accesses["input"].loads += 12345
    first.notes["tainted"] = True
    second = schedule_cache.get_or_schedule("intra", ctx, CONFIG_16_16)
    assert second.accesses["input"].loads == first.accesses["input"].loads - 12345
    assert "tainted" not in second.notes


def test_illegal_schedules_are_negative_cached():
    # partition cannot map a degenerate s >= k layer
    net = build("googlenet")
    degenerate = next(
        c for c in net.conv_contexts() if c.layer.stride >= c.layer.kernel
    )
    for _ in range(2):
        with pytest.raises(ScheduleError):
            schedule_cache.get_or_schedule("partition", degenerate, CONFIG_16_16)
    stats = schedule_cache.stats()
    assert stats.misses == 1 and stats.hits == 1


def test_lru_eviction_bound():
    cache = ScheduleCache(maxsize=2)
    net = build("alexnet")
    convs = net.conv_contexts()
    cache.get_or_schedule("intra", convs[0], CONFIG_16_16)
    cache.get_or_schedule("intra", convs[1], CONFIG_16_16)
    cache.get_or_schedule("intra", convs[2], CONFIG_16_16)
    stats = cache.stats()
    assert stats.size == 2
    assert stats.evictions == 1
    # the oldest entry was evicted: re-requesting it is a miss again
    cache.get_or_schedule("intra", convs[0], CONFIG_16_16)
    assert cache.stats().misses == 4


def test_disabled_cache_stores_nothing():
    cache = ScheduleCache(enabled=False)
    ctx = build("alexnet").conv1()
    r1 = cache.get_or_schedule("intra", ctx, CONFIG_16_16)
    r2 = cache.get_or_schedule("intra", ctx, CONFIG_16_16)
    stats = cache.stats()
    assert len(cache) == 0 and stats.lookups == 0
    assert _layer_fingerprint(r1) == _layer_fingerprint(r2)
