"""Parallel executor: ordering, fallback, and serial/parallel bit-identity."""

from __future__ import annotations

import pytest

from repro.adaptive.search import (
    CANDIDATE_SCHEMES,
    best_scheme_for_layer,
    search_network,
)
from repro.analysis.experiments import fig8_whole_network, table4_cpu_comparison
from repro.analysis.sweeps import sweep_parameter, sweep_pe_shapes
from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError
from repro.nn.zoo import build
from repro.perf.parallel import (
    get_default_jobs,
    parallel_map,
    resolve_jobs,
    set_default_jobs,
)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


@pytest.fixture(autouse=True)
def _restore_default_jobs():
    before = get_default_jobs()
    yield
    set_default_jobs(before)


def test_resolve_jobs_semantics():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(-1) >= 1  # all CPUs
    set_default_jobs(2)
    assert resolve_jobs(None) == 2
    with pytest.raises(ConfigError):
        set_default_jobs(0)


def test_parallel_map_preserves_order():
    items = list(range(20))
    expected = [_square(x) for x in items]
    assert parallel_map(_square, items, jobs=1) == expected
    assert parallel_map(_square, items, jobs=2) == expected


def test_worker_exceptions_propagate():
    with pytest.raises(ValueError):
        parallel_map(_boom, [1, 2, 3], jobs=2)


def test_progress_callback_serial_counts_up_in_order():
    items = list(range(7))
    seen = []
    result = parallel_map(
        _square, items, jobs=1, progress=lambda done, total: seen.append((done, total))
    )
    assert result == [_square(x) for x in items]
    assert seen == [(k, 7) for k in range(1, 8)]


def test_progress_callback_parallel_counts_up_in_order():
    items = list(range(16))
    seen = []
    result = parallel_map(
        _square, items, jobs=2, progress=lambda done, total: seen.append((done, total))
    )
    assert result == [_square(x) for x in items]
    assert seen == [(k, 16) for k in range(1, 17)]


def test_progress_callback_leaves_results_bit_identical():
    items = list(range(25))
    plain = parallel_map(_square, items, jobs=2)
    with_cb = parallel_map(_square, items, jobs=2, progress=lambda d, t: None)
    assert plain == with_cb == [_square(x) for x in items]


def test_progress_callback_exceptions_propagate():
    with pytest.raises(RuntimeError, match="observer"):
        parallel_map(
            _square,
            [1, 2, 3],
            jobs=1,
            progress=lambda d, t: (_ for _ in ()).throw(RuntimeError("observer")),
        )


def test_progress_callback_not_called_for_empty_input():
    seen = []
    assert parallel_map(_square, [], jobs=2, progress=lambda d, t: seen.append(d)) == []
    assert seen == []


def test_search_network_parallel_matches_serial():
    net = build("vgg")
    serial = search_network(net, CONFIG_16_16, jobs=1)
    fanned = search_network(net, CONFIG_16_16, jobs=2)
    assert [(o.layer_name, o.scheme, o.cycles) for o in serial] == [
        (o.layer_name, o.scheme, o.cycles) for o in fanned
    ]


def test_tie_break_is_candidate_order_independent():
    net = build("googlenet")
    for ctx in net.conv_contexts()[:8]:
        forward = best_scheme_for_layer(ctx, CONFIG_16_16, CANDIDATE_SCHEMES)
        backward = best_scheme_for_layer(
            ctx, CONFIG_16_16, tuple(reversed(CANDIDATE_SCHEMES))
        )
        assert forward.scheme == backward.scheme
        assert forward.cycles == backward.cycles


def test_sweep_parameter_parallel_matches_serial():
    net = build("alexnet")
    values = [1.0, 2.0, 4.0, 8.0]
    serial = sweep_parameter(net, CONFIG_16_16, "dram_words_per_cycle", values)
    fanned = sweep_parameter(
        net, CONFIG_16_16, "dram_words_per_cycle", values, jobs=2
    )
    assert serial == fanned
    assert [p.value for p in fanned] == values


def test_sweep_pe_shapes_parallel_matches_serial():
    net = build("alexnet")
    assert sweep_pe_shapes(net, CONFIG_16_16, 256) == sweep_pe_shapes(
        net, CONFIG_16_16, 256, jobs=2
    )


def test_experiment_drivers_parallel_match_serial():
    assert fig8_whole_network(jobs=2) == fig8_whole_network(jobs=1)
    assert table4_cpu_comparison(jobs=2) == table4_cpu_comparison(jobs=1)
