"""Schedule cache under concurrency: the serving tier's access pattern.

``repro serve`` hammers the cache in two ways at once: many threads of the
same process re-plan batches through the shared ``schedule_cache``, and
``parallel_map`` fans whole plans out to worker *processes* (each worker
warms its own process-local cache).  These tests pin down both properties:
results must be bit-identical with/without the cache and with/without a
pool, and the shared cache's counters must stay consistent (no lost or
double-counted lookups) under a thread race.
"""

from __future__ import annotations

import threading

from repro.adaptive.planner import plan_network
from repro.arch.config import CONFIG_16_16
from repro.nn.zoo import build
from repro.perf.cache import ScheduleCache, schedule_cache
from repro.perf.parallel import parallel_map

NETWORKS = ("alexnet", "googlenet", "vgg", "nin")


def _fingerprint(run):
    return (
        run.network_name,
        run.total_cycles,
        run.buffer_accesses,
        run.dram_words,
        run.input_reorder_words,
        tuple(
            (r.layer_name, r.scheme, r.operations, r.dram_words, r.total_cycles)
            for r in run.layers
        ),
    )


def _plan_one(name):
    """Module-level so it pickles across the process boundary."""
    return _fingerprint(plan_network(build(name), CONFIG_16_16, "adaptive-2"))


def _plan_many(names, jobs):
    return parallel_map(_plan_one, names, jobs=jobs)


class TestParallelMapHammering:
    """Worker processes re-deriving schedules must agree with the parent."""

    def test_parallel_results_bit_identical_with_and_without_cache(self):
        work = list(NETWORKS) * 3  # repeats force cache hits where enabled
        schedule_cache.configure(enabled=True)
        schedule_cache.clear()
        cached_serial = _plan_many(work, jobs=1)
        cached_parallel = _plan_many(work, jobs=4)
        schedule_cache.configure(enabled=False)
        try:
            uncached_serial = _plan_many(work, jobs=1)
            uncached_parallel = _plan_many(work, jobs=4)
        finally:
            schedule_cache.configure(enabled=True)
        assert cached_serial == uncached_serial
        assert cached_parallel == uncached_parallel
        assert cached_serial == cached_parallel

    def test_parent_stats_consistent_after_fanout(self):
        schedule_cache.configure(enabled=True)
        schedule_cache.clear()
        _plan_many(list(NETWORKS) * 2, jobs=4)
        stats = schedule_cache.stats()
        assert stats.lookups == stats.hits + stats.misses
        assert stats.size <= stats.maxsize
        # every entry the parent holds was stored by a counted miss
        assert stats.size <= stats.misses + stats.evictions or stats.lookups == 0


class TestThreadedHammering:
    """Many threads sharing one cache instance (the in-process serve path)."""

    def test_threaded_plans_identical_and_counters_add_up(self):
        cache = ScheduleCache(maxsize=512)
        reference = {name: _plan_one(name) for name in NETWORKS}
        results = []
        errors = []
        lock = threading.Lock()

        def worker(name, rounds=5):
            try:
                for _ in range(rounds):
                    fp = _fingerprint(
                        plan_network(build(name), CONFIG_16_16, "adaptive-2")
                    )
                    with lock:
                        results.append((name, fp))
            except Exception as exc:  # pragma: no cover - diagnostic path
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in NETWORKS
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == len(NETWORKS) * 3 * 5
        for name, fp in results:
            assert fp == reference[name], name

    def test_shared_cache_counters_race_free(self):
        """hits + misses must equal the exact number of lookups issued."""
        cache = ScheduleCache(maxsize=4096)
        net = build("vgg")
        contexts = list(net.conv_contexts())
        rounds = 10
        n_threads = 8

        def worker():
            for _ in range(rounds):
                for ctx in contexts:
                    cache.get_or_schedule("intra", ctx, CONFIG_16_16)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats()
        assert stats.lookups == n_threads * rounds * len(contexts)
        assert stats.lookups == stats.hits + stats.misses
        # identical geometries may race to a miss, but the cache can never
        # report fewer misses than distinct stored entries
        assert stats.misses >= stats.size
        assert stats.evictions == 0
