"""Shared fixtures: accelerator configs, benchmark networks, layer helpers."""

from __future__ import annotations

import pytest

from repro.arch import CONFIG_16_16, CONFIG_32_32
from repro.nn.layers import ConvLayer, TensorShape
from repro.nn.network import LayerContext
from repro.nn.zoo import build


@pytest.fixture(scope="session")
def cfg16():
    return CONFIG_16_16


@pytest.fixture(scope="session")
def cfg32():
    return CONFIG_32_32


@pytest.fixture(scope="session")
def alexnet():
    return build("alexnet")


@pytest.fixture(scope="session")
def googlenet():
    return build("googlenet")


@pytest.fixture(scope="session")
def vgg():
    return build("vgg")


@pytest.fixture(scope="session")
def nin():
    return build("nin")


@pytest.fixture(scope="session")
def all_networks(alexnet, googlenet, vgg, nin):
    return [alexnet, googlenet, vgg, nin]


def make_ctx(
    in_maps=3,
    out_maps=8,
    kernel=3,
    stride=1,
    pad=0,
    groups=1,
    hw=16,
    name="layer",
) -> LayerContext:
    """Build a standalone conv LayerContext for unit tests."""
    layer = ConvLayer(
        name,
        in_maps=in_maps,
        out_maps=out_maps,
        kernel=kernel,
        stride=stride,
        pad=pad,
        groups=groups,
    )
    in_shape = TensorShape(in_maps, hw, hw)
    return LayerContext(layer, in_shape, layer.output_shape(in_shape))


@pytest.fixture
def ctx_factory():
    return make_ctx


@pytest.fixture
def alexnet_conv1_ctx(alexnet):
    return alexnet.conv1()
