"""Functional equivalence tests: every scheme's loop nest == reference conv.

This is the reproduction of the paper's Fig. 5(d) correctness claim, plus
the analogous claims for the improved inter-kernel order and the unrolled
intra-kernel order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.layers import ConvLayer, TensorShape
from repro.sim.functional import (
    conv_via_im2col,
    conv_via_inter_improved,
    conv_via_partition,
    partition_partial_maps,
    random_conv_tensors,
    reference_conv,
)


def tensors(k, s, pad, groups, din, dout, hw, seed=0):
    layer = ConvLayer(
        "t", in_maps=din, out_maps=dout, kernel=k, stride=s, pad=pad, groups=groups
    )
    return random_conv_tensors(layer, TensorShape(din, hw, hw), seed=seed)


class TestReference:
    def test_identity_kernel(self):
        data = np.random.default_rng(0).standard_normal((1, 5, 5))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = reference_conv(data, w, None, 1, 1)
        assert np.allclose(out[0], data[0])

    def test_bias_added(self):
        data = np.zeros((1, 4, 4))
        w = np.zeros((2, 1, 1, 1))
        out = reference_conv(data, w, np.array([1.5, -2.0]), 1, 0)
        assert np.all(out[0] == 1.5)
        assert np.all(out[1] == -2.0)

    def test_stride_downsamples(self):
        data, w, b = tensors(3, 2, 0, 1, 2, 4, 9)
        assert reference_conv(data, w, b, 2, 0).shape == (4, 4, 4)

    def test_group_isolation(self):
        """Group 0's outputs must not see group 1's inputs."""
        data = np.zeros((2, 5, 5))
        data[1] = 100.0  # only group 1's input is hot
        w = np.ones((2, 1, 3, 3))
        out = reference_conv(data, w, None, 1, 0, groups=2)
        assert np.all(out[0] == 0.0)
        assert np.all(out[1] == 900.0)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            reference_conv(np.ones((2, 4, 4)), np.ones((4, 3, 3, 3)), None, 1, 0)
        with pytest.raises(ShapeError):
            reference_conv(np.ones((2, 4, 4)), np.ones((4, 2, 3, 2)), None, 1, 0)


class TestEquivalenceFixedCases:
    """The paper's own geometries."""

    CASES = [
        ("alexnet-conv1", 11, 4, 0, 1, 3, 8, 35),
        ("alexnet-conv2", 5, 1, 2, 2, 8, 8, 13),
        ("vgg-conv", 3, 1, 1, 1, 4, 6, 10),
        ("googlenet-conv1", 7, 2, 3, 1, 3, 4, 21),
        ("1x1-reduce", 1, 1, 0, 1, 8, 4, 7),
        ("k-equals-s", 4, 4, 0, 1, 2, 4, 16),
    ]

    @pytest.mark.parametrize("name,k,s,pad,g,din,dout,hw", CASES)
    def test_im2col(self, name, k, s, pad, g, din, dout, hw):
        data, w, b = tensors(k, s, pad, g, din, dout, hw)
        ref = reference_conv(data, w, b, s, pad, g)
        assert np.allclose(conv_via_im2col(data, w, b, s, pad, g), ref)

    @pytest.mark.parametrize("name,k,s,pad,g,din,dout,hw", CASES)
    def test_inter_improved(self, name, k, s, pad, g, din, dout, hw):
        data, w, b = tensors(k, s, pad, g, din, dout, hw)
        ref = reference_conv(data, w, b, s, pad, g)
        assert np.allclose(conv_via_inter_improved(data, w, b, s, pad, g), ref)

    @pytest.mark.parametrize(
        "name,k,s,pad,g,din,dout,hw",
        [c for c in CASES if c[2] < c[1]],  # s < k only
    )
    def test_partition(self, name, k, s, pad, g, din, dout, hw):
        data, w, b = tensors(k, s, pad, g, din, dout, hw)
        ref = reference_conv(data, w, b, s, pad, g)
        assert np.allclose(conv_via_partition(data, w, b, s, pad, g), ref)


class TestPartitionStructure:
    def test_fig5_piece_count(self):
        """AlexNet conv1: 9 partial maps of 55x55... scaled-down here."""
        data, w, _ = tensors(11, 4, 0, 1, 3, 4, 35)
        partials = partition_partial_maps(data, w, 4)
        assert partials.shape[0] == 9

    def test_partials_sum_to_reference(self):
        data, w, _ = tensors(5, 2, 0, 1, 2, 3, 15)
        partials = partition_partial_maps(data, w, 2)
        ref = reference_conv(data, w, None, 2, 0)
        assert np.allclose(partials.sum(axis=0), ref)

    def test_first_piece_is_topleft_subkernel_conv(self):
        """Piece (0,0) must equal convolving with only the top-left ks x ks
        corner of the kernel."""
        data, w, _ = tensors(5, 2, 0, 1, 1, 1, 11)
        partials = partition_partial_maps(data, w, 2)
        corner = np.zeros_like(w)
        corner[..., :2, :2] = w[..., :2, :2]
        ref = reference_conv(data, corner, None, 2, 0)
        assert np.allclose(partials[0], ref)


class TestEquivalenceProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        k=st.integers(2, 7),
        s=st.integers(1, 4),
        pad=st.integers(0, 2),
        din=st.integers(1, 4),
        dout=st.integers(1, 6),
        hw=st.integers(8, 18),
        seed=st.integers(0, 10_000),
    )
    def test_partition_equals_reference(self, k, s, pad, din, dout, hw, seed):
        if s >= k or k > hw + 2 * pad:
            return
        data, w, b = tensors(k, s, pad, 1, din, dout, hw, seed=seed)
        ref = reference_conv(data, w, b, s, pad)
        out = conv_via_partition(data, w, b, s, pad)
        assert np.allclose(out, ref, atol=1e-9)

    @settings(deadline=None, max_examples=25)
    @given(
        k=st.integers(1, 7),
        s=st.integers(1, 4),
        pad=st.integers(0, 2),
        din=st.integers(1, 4),
        dout=st.integers(1, 6),
        hw=st.integers(8, 18),
        seed=st.integers(0, 10_000),
    )
    def test_all_orders_agree(self, k, s, pad, din, dout, hw, seed):
        if k > hw + 2 * pad:
            return
        data, w, b = tensors(k, s, pad, 1, din, dout, hw, seed=seed)
        ref = reference_conv(data, w, b, s, pad)
        assert np.allclose(conv_via_im2col(data, w, b, s, pad), ref, atol=1e-9)
        assert np.allclose(
            conv_via_inter_improved(data, w, b, s, pad), ref, atol=1e-9
        )
