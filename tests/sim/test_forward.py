"""Network forward-propagation tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn.layers import (
    ConvLayer,
    FCLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    TensorShape,
)
from repro.nn.network import Network
from repro.sim.forward import forward, init_weights, lrn_forward, pool_forward


def tiny_net() -> Network:
    net = Network("tiny", TensorShape(3, 19, 19))
    net.add(ConvLayer("c1", in_maps=3, out_maps=4, kernel=5, stride=2))
    net.add(ReLULayer("r1"))
    net.add(LRNLayer("n1"))
    net.add(PoolLayer("p1", kernel=2, stride=2))
    net.add(ConvLayer("c2", in_maps=4, out_maps=6, kernel=3, pad=1))
    net.add(ReLULayer("r2"))
    net.add(FCLayer("fc", out_features=5))
    return net


class TestPooling:
    def test_max_pool(self):
        layer = PoolLayer("p", kernel=2, stride=2)
        data = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = pool_forward(layer, data)
        assert out.shape == (1, 2, 2)
        assert out[0, 0, 0] == 5.0  # max of [[0,1],[4,5]]

    def test_avg_pool(self):
        layer = PoolLayer("p", kernel=2, stride=2, mode="avg")
        data = np.ones((2, 4, 4))
        out = pool_forward(layer, data)
        assert np.all(out == 1.0)

    def test_ceil_mode_edge_window(self):
        layer = PoolLayer("p", kernel=3, stride=2, ceil_mode=True)
        data = np.arange(36, dtype=float).reshape(1, 6, 6)
        out = pool_forward(layer, data)
        assert out.shape == (1, 3, 3)
        # bottom-right ceil window max is the global max
        assert out[0, 2, 2] == 35.0

    def test_shapes_match_inference(self, googlenet):
        """pool_forward must agree with PoolLayer.output_shape (incl. ceil)."""
        layer = googlenet.layer("pool1/3x3_s2")
        in_shape = googlenet.input_shape_of("pool1/3x3_s2")
        data = np.zeros(in_shape.as_tuple())
        out = pool_forward(layer, data)
        assert out.shape == googlenet.shape_of("pool1/3x3_s2").as_tuple()


class TestLrn:
    def test_preserves_shape(self):
        layer = LRNLayer("n")
        data = np.random.default_rng(0).standard_normal((8, 3, 3))
        assert lrn_forward(layer, data).shape == data.shape

    def test_normalizes_downward(self):
        layer = LRNLayer("n", alpha=1.0, beta=0.75, local_size=5)
        data = np.full((8, 2, 2), 10.0)
        out = lrn_forward(layer, data)
        assert np.all(np.abs(out) < np.abs(data))

    def test_zero_input_stays_zero(self):
        layer = LRNLayer("n")
        assert np.all(lrn_forward(layer, np.zeros((4, 2, 2))) == 0.0)


class TestForward:
    def test_all_layer_shapes(self):
        net = tiny_net()
        image = np.random.default_rng(1).standard_normal((3, 19, 19))
        acts = forward(net, image)
        for layer in net:
            assert acts[layer.name].shape == net.shape_of(layer.name).as_tuple()

    def test_wrong_image_shape(self):
        with pytest.raises(ShapeError):
            forward(tiny_net(), np.zeros((3, 5, 5)))

    def test_unknown_scheme(self):
        net = tiny_net()
        with pytest.raises(ConfigError):
            forward(net, np.zeros((3, 19, 19)), conv_scheme="2dpe")

    def test_deterministic_given_seed(self):
        net = tiny_net()
        image = np.ones((3, 19, 19))
        a = forward(net, image, seed=7)
        b = forward(net, image, seed=7)
        assert np.array_equal(a["fc"], b["fc"])

    @pytest.mark.parametrize("scheme", ["partition", "intra", "inter-improved"])
    def test_scheme_executors_match_reference_end_to_end(self, scheme):
        """Full-network Fig. 5(d): every activation identical under the
        scheme's loop nest."""
        net = tiny_net()
        image = np.random.default_rng(3).standard_normal((3, 19, 19))
        params = init_weights(net, seed=11)
        ref = forward(net, image, params=params, conv_scheme="reference")
        alt = forward(net, image, params=params, conv_scheme=scheme)
        for layer in net:
            assert np.allclose(
                alt[layer.name], ref[layer.name], atol=1e-8
            ), layer.name

    def test_googlenet_inception_module_runs(self, googlenet):
        """Branch/concat wiring executes numerically (downscaled input via
        a purpose-built single-module net would lose the wiring under test,
        so we run the real first module on a real-size image)."""
        image = np.random.default_rng(0).standard_normal((3, 224, 224)) * 0.1
        # run only up to the first inception output by truncating execution:
        # forward() computes everything, so instead verify shapes on a cheap
        # single pass with zero image (conv of zeros is bias-only, fast path
        # is the same code).
        acts = forward(googlenet, np.zeros((3, 224, 224)), seed=1)
        assert acts["inception_3a/output"].shape == (256, 28, 28)
        assert acts["loss3/classifier"].shape == (1000, 1, 1)
