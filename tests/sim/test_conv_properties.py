"""Bit-identical equivalence of every conv path, in the integer-code domain.

`test_functional.py` already checks float equivalence within tolerance;
these tests make the stronger claim the ABFT guard depends on: on int64
codes the three scheme executions are *bit-identical* to the reference —
integer accumulation is exact and associative, so summation order cannot
leak into the result.  The seeded grid crosses odd/even kernels,
stride > kernel (the partition fallback), padding and grouped
convolution, with no dependency beyond numpy and pytest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import ConvLayer, TensorShape
from repro.sim.functional import (
    conv_via_im2col,
    conv_via_inter_improved,
    conv_via_partition,
    random_conv_tensors,
    reference_conv,
)

#: (k, s, pad, groups, din, dout, hw) — every geometry class the schemes
#: distinguish: odd/even k, s > 1, s > k, pad > 0, groups > 1, and combos
GRID = [
    (1, 1, 0, 1, 3, 4, 6),
    (2, 1, 0, 1, 4, 4, 7),
    (3, 1, 0, 1, 3, 4, 8),
    (3, 1, 1, 1, 3, 4, 8),
    (3, 2, 1, 1, 3, 4, 9),
    (4, 2, 1, 1, 3, 4, 10),
    (5, 2, 2, 1, 3, 6, 11),
    (2, 3, 0, 1, 3, 4, 9),  # s > k: partition falls back
    (3, 4, 0, 1, 3, 4, 11),  # s > k, odd kernel
    (3, 1, 1, 2, 4, 6, 8),  # grouped
    (5, 2, 1, 2, 4, 8, 11),  # grouped + stride + pad
    (11, 4, 0, 1, 3, 8, 19),  # AlexNet conv1 shape class
]

PATHS = [conv_via_partition, conv_via_im2col, conv_via_inter_improved]


def code_tensors(k, s, pad, groups, din, dout, hw, seed):
    """Integer-code operands: int64 with a dynamic range that cannot overflow."""
    rng = np.random.default_rng(seed)
    data = rng.integers(-(1 << 15), 1 << 15, (din, hw, hw), dtype=np.int64)
    weights = rng.integers(
        -(1 << 15), 1 << 15, (dout, din // groups, k, k), dtype=np.int64
    )
    bias = rng.integers(-(1 << 20), 1 << 20, (dout,), dtype=np.int64)
    return data, weights, bias


class TestBitIdenticalEquivalence:
    @pytest.mark.parametrize("backend", ["loop", "vector"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k,s,pad,groups,din,dout,hw", GRID)
    def test_all_paths_match_reference_exactly(
        self, k, s, pad, groups, din, dout, hw, seed, backend
    ):
        data, weights, bias = code_tensors(k, s, pad, groups, din, dout, hw, seed)
        ref = reference_conv(
            data, weights, bias, stride=s, pad=pad, groups=groups, backend=backend
        )
        assert ref.dtype == np.int64
        for path in PATHS:
            out = path(
                data, weights, bias, stride=s, pad=pad, groups=groups, backend=backend
            )
            assert out.dtype == np.int64, path.__name__
            assert np.array_equal(out, ref), (path.__name__, k, s, pad, groups)

    @pytest.mark.parametrize("backend", ["loop", "vector"])
    @pytest.mark.parametrize("k,s,pad,groups,din,dout,hw", GRID[:6])
    def test_no_bias_also_exact(self, k, s, pad, groups, din, dout, hw, backend):
        data, weights, _ = code_tensors(k, s, pad, groups, din, dout, hw, seed=7)
        ref = reference_conv(
            data, weights, None, stride=s, pad=pad, groups=groups, backend=backend
        )
        for path in PATHS:
            out = path(
                data, weights, None, stride=s, pad=pad, groups=groups, backend=backend
            )
            assert np.array_equal(out, ref), path.__name__


class TestRandomConvTensors:
    def test_same_seed_same_tensors(self):
        layer = ConvLayer("c", in_maps=3, out_maps=4, kernel=3)
        shape = TensorShape(3, 8, 8)
        a = random_conv_tensors(layer, shape, seed=11)
        b = random_conv_tensors(layer, shape, seed=11)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_different_seeds_differ(self):
        layer = ConvLayer("c", in_maps=3, out_maps=4, kernel=3)
        shape = TensorShape(3, 8, 8)
        a = random_conv_tensors(layer, shape, seed=1)
        b = random_conv_tensors(layer, shape, seed=2)
        assert not np.array_equal(a[0], b[0])

    def test_explicit_rng_overrides_seed(self):
        layer = ConvLayer("c", in_maps=3, out_maps=4, kernel=3)
        shape = TensorShape(3, 8, 8)
        a = random_conv_tensors(layer, shape, rng=np.random.default_rng(5))
        b = random_conv_tensors(layer, shape, seed=999, rng=np.random.default_rng(5))
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_dtype_guarantee_is_float64(self):
        layer = ConvLayer("c", in_maps=3, out_maps=4, kernel=3)
        data, weights, bias = random_conv_tensors(layer, TensorShape(3, 8, 8))
        assert data.dtype == np.float64
        assert weights.dtype == np.float64
        assert bias.dtype == np.float64

    def test_no_global_seed_pollution(self):
        layer = ConvLayer("c", in_maps=3, out_maps=4, kernel=3)
        np.random.seed(0)
        before = np.random.get_state()[1][:4].copy()
        random_conv_tensors(layer, TensorShape(3, 8, 8), seed=42)
        after = np.random.get_state()[1][:4]
        assert np.array_equal(before, after)
