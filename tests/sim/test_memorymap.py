"""External-memory map allocator tests."""

import pytest

from repro.adaptive import plan_network
from repro.errors import ConfigError
from repro.sim.memorymap import Region, allocate_memory_map
from repro.tiling.layout import Layout


@pytest.fixture
def alexnet_map(alexnet, cfg16):
    run = plan_network(alexnet, cfg16, "adaptive-2")
    return allocate_memory_map(alexnet, run)


class TestRegion:
    def test_overlap_detection(self):
        a = Region("a", "weights", 0, 100, Layout.INTRA)
        b = Region("b", "weights", 100, 50, Layout.INTRA)
        c = Region("c", "weights", 99, 10, Layout.INTRA)
        assert not a.overlaps(b)
        assert a.overlaps(c)
        assert c.overlaps(b)


class TestAllocation:
    def test_every_conv_gets_weights_and_output(self, alexnet, alexnet_map):
        names = {r.name for r in alexnet_map.regions}
        for ctx in alexnet.conv_contexts():
            assert f"{ctx.name}/weights" in names
            assert f"{ctx.name}/output" in names
        assert "__input__" in names

    def test_weight_region_sizes(self, alexnet, alexnet_map):
        for ctx in alexnet.conv_contexts():
            region = alexnet_map.region(f"{ctx.name}/weights")
            assert region.words == ctx.weights

    def test_no_overlaps(self, alexnet_map):
        alexnet_map.validate()  # raises on violation

    def test_bases_aligned(self, alexnet_map):
        for r in alexnet_map.regions:
            assert r.base % 64 == 0, r.name

    def test_ping_pong_alternates(self, alexnet_map):
        acts = alexnet_map.activation_regions()
        bases = [r.base for r in acts]
        # consecutive activations live in different arenas
        for a, b in zip(bases, bases[1:]):
            assert a != b

    def test_arena_fits_largest_activation(self, alexnet, alexnet_map):
        largest = max(
            max(c.in_shape.elements, c.out_shape.elements)
            for c in alexnet.conv_contexts()
        )
        assert alexnet_map.arena_words >= largest

    def test_total_is_weights_plus_two_arenas(self, alexnet, alexnet_map):
        weight_words = sum(r.words for r in alexnet_map.static_regions())
        assert alexnet_map.total_words >= weight_words + 2 * alexnet_map.arena_words

    def test_layouts_follow_plan(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        memory_map = allocate_memory_map(alexnet, run)
        planned = {r.layer_name: r.output_layout for r in run.layers}
        for ctx in alexnet.conv_contexts():
            assert memory_map.region(f"{ctx.name}/output").layout is planned[ctx.name]

    def test_invalid_alignment(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        with pytest.raises(ConfigError):
            allocate_memory_map(alexnet, run, alignment=0)

    def test_ping_pong_beats_sum_allocation(self, vgg, cfg16):
        """The point of the arenas: VGG's 30+ activations fit in two
        arenas instead of the sum of all of them."""
        run = plan_network(vgg, cfg16, "adaptive-2")
        memory_map = allocate_memory_map(vgg, run)
        sum_all = sum(c.out_shape.elements for c in vgg.conv_contexts())
        # VGG's largest activation (conv1_x at 224^2 x 64) dominates the
        # arena, so the saving is ~2.3x rather than the layer count
        assert 2 * memory_map.arena_words < sum_all / 2

    def test_unknown_region(self, alexnet_map):
        with pytest.raises(KeyError):
            alexnet_map.region("nope")
