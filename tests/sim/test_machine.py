"""Machine (instruction interpreter) tests."""

import pytest

from repro.errors import ConfigError
from repro.isa.instructions import Instruction, Opcode, Program
from repro.sim.machine import Machine


def prog(*instructions) -> Program:
    p = Program("test")
    for inst in instructions:
        p.emit(inst)
    return p


class TestDispatch:
    def test_compute_tallies_pe(self, cfg16):
        m = Machine(cfg16)
        res = m.execute(
            prog(
                Instruction(Opcode.COMPUTE, operations=100, macs=25600),
                Instruction(Opcode.SYNC),
            )
        )
        assert res.compute_cycles == 100
        assert res.useful_macs == 25600
        assert res.utilization == pytest.approx(1.0)

    def test_buffer_reads_and_writes_counted(self, cfg16):
        m = Machine(cfg16)
        res = m.execute(
            prog(
                Instruction(Opcode.BUF_READ_INPUT, words=10),
                Instruction(Opcode.BUF_READ_WEIGHT, words=20),
                Instruction(Opcode.BUF_WRITE_OUTPUT, words=5),
                Instruction(Opcode.BUF_READ_OUTPUT, words=3),
                Instruction(Opcode.SYNC),
            )
        )
        assert res.accesses["input"].loads == 10
        assert res.accesses["weight"].loads == 20
        assert res.accesses["output"].stores == 5
        assert res.accesses["output"].loads == 3
        assert res.buffer_accesses == 38

    def test_dma_fills_count_as_buffer_stores(self, cfg16):
        m = Machine(cfg16)
        res = m.execute(
            prog(
                Instruction(Opcode.DMA_LOAD_INPUT, words=100),
                Instruction(Opcode.DMA_LOAD_WEIGHT, words=50),
                Instruction(Opcode.SYNC),
            )
        )
        assert res.accesses["input"].stores == 100
        assert res.accesses["weight"].stores == 50
        assert res.dram_words == 150

    def test_output_drain_counts_as_buffer_load(self, cfg16):
        m = Machine(cfg16)
        res = m.execute(
            prog(
                Instruction(Opcode.DMA_STORE_OUTPUT, words=40),
                Instruction(Opcode.SYNC),
            )
        )
        assert res.accesses["output"].loads == 40
        assert res.dram_words == 40

    def test_overcommitted_compute_rejected(self, cfg16):
        m = Machine(cfg16)
        with pytest.raises(ConfigError):
            m.execute(prog(Instruction(Opcode.COMPUTE, operations=1, macs=999)))


class TestTiming:
    def test_compute_bound_region(self, cfg16):
        m = Machine(cfg16)
        res = m.execute(
            prog(
                Instruction(Opcode.DMA_LOAD_INPUT, words=40),  # 10 dma cycles
                Instruction(Opcode.COMPUTE, operations=1000, macs=0),
                Instruction(Opcode.SYNC),
            )
        )
        assert res.total_cycles == 1000

    def test_memory_bound_region(self, cfg16):
        m = Machine(cfg16)
        res = m.execute(
            prog(
                Instruction(Opcode.DMA_LOAD_INPUT, words=8000),  # 2000 cycles
                Instruction(Opcode.COMPUTE, operations=100, macs=0),
                Instruction(Opcode.SYNC),
            )
        )
        assert res.total_cycles == 2000

    def test_host_reshape_bounds_region(self, cfg16):
        m = Machine(cfg16)
        res = m.execute(
            prog(
                Instruction(Opcode.HOST_RESHAPE, words=5000),
                Instruction(Opcode.DMA_LOAD_INPUT, words=400),
                Instruction(Opcode.COMPUTE, operations=100, macs=0),
                Instruction(Opcode.SYNC),
            )
        )
        assert res.total_cycles == 5000

    def test_regions_sum(self, cfg16):
        m = Machine(cfg16)
        res = m.execute(
            prog(
                Instruction(Opcode.COMPUTE, operations=100, macs=0),
                Instruction(Opcode.SYNC),
                Instruction(Opcode.COMPUTE, operations=200, macs=0),
                Instruction(Opcode.SYNC),
            )
        )
        assert res.total_cycles == 300
        assert len(res.regions) == 2

    def test_unterminated_region_still_counted(self, cfg16):
        m = Machine(cfg16)
        res = m.execute(prog(Instruction(Opcode.COMPUTE, operations=77, macs=0)))
        assert res.total_cycles == 77

    def test_accumulate_off_critical_path(self, cfg16):
        m = Machine(cfg16)
        res = m.execute(
            prog(
                Instruction(Opcode.COMPUTE, operations=10, macs=0),
                Instruction(Opcode.ACCUMULATE, operations=1_000_000),
                Instruction(Opcode.SYNC),
            )
        )
        assert res.total_cycles == 10
        assert res.extra_adds == 1_000_000

    def test_reset_between_programs(self, cfg16):
        m = Machine(cfg16)
        m.execute(prog(Instruction(Opcode.COMPUTE, operations=10, macs=0)))
        res = m.execute(prog(Instruction(Opcode.COMPUTE, operations=5, macs=0)))
        assert res.compute_cycles == 5


class TestResultHelpers:
    def test_milliseconds(self, cfg16):
        m = Machine(cfg16)
        res = m.execute(
            prog(Instruction(Opcode.COMPUTE, operations=1_000_000, macs=0))
        )
        assert res.milliseconds() == pytest.approx(1.0)

    def test_energy_consistent_with_model(self, cfg16):
        from repro.arch.energy import EnergyModel

        m = Machine(cfg16)
        res = m.execute(
            prog(
                Instruction(Opcode.COMPUTE, operations=100, macs=25600),
                Instruction(Opcode.BUF_READ_INPUT, words=1000),
                Instruction(Opcode.SYNC),
            )
        )
        bd = res.energy()
        model = EnergyModel(cfg16)
        assert bd.pe_pj == pytest.approx(model.pe_energy_pj(100))
        assert bd.input_buffer_pj == pytest.approx(
            1000 * model.buffer_access_pj("input")
        )
