"""Loop-nest enumeration vs analytical counts — the third derivation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import AcceleratorConfig, CONFIG_16_16
from repro.errors import ScheduleError
from repro.schemes import make_scheme
from repro.sim.loopnest import (
    enumerate_inter,
    enumerate_intra,
    enumerate_partition,
    touched_input_positions,
)

from tests.conftest import make_ctx

ENUMERATORS = {
    "inter": enumerate_inter,
    "intra": enumerate_intra,
    "partition": enumerate_partition,
}

SMALL_CASES = [
    # k, s, d, dout, hw, groups
    (3, 1, 4, 8, 8, 1),
    (5, 2, 3, 4, 11, 1),
    (11, 4, 3, 4, 19, 1),
    (2, 2, 8, 8, 8, 1),
    (1, 1, 20, 8, 5, 1),
    (3, 1, 4, 8, 8, 2),
    (7, 3, 2, 4, 14, 1),
]


def small_ctx(k, s, d, dout, hw, groups):
    return make_ctx(in_maps=d, out_maps=dout, kernel=k, stride=s, hw=hw, groups=groups)


class TestCountsMatchAnalytical:
    @pytest.mark.parametrize("case", SMALL_CASES)
    @pytest.mark.parametrize("scheme", ["inter", "intra", "partition"])
    def test_operation_count(self, case, scheme):
        ctx = small_ctx(*case)
        config = CONFIG_16_16
        try:
            analytical = make_scheme(scheme).schedule(ctx, config)
        except ScheduleError:
            with pytest.raises(ScheduleError):
                list(ENUMERATORS[scheme](ctx, config))
            return
        ops = list(ENUMERATORS[scheme](ctx, config))
        assert len(ops) == analytical.operations, (case, scheme)

    @pytest.mark.parametrize("case", SMALL_CASES)
    @pytest.mark.parametrize("scheme", ["inter", "intra", "partition"])
    def test_useful_macs_sum(self, case, scheme):
        """Especially sharp for partition: pad slots are counted as array
        work but not as useful MACs, and the totals must still balance."""
        ctx = small_ctx(*case)
        config = CONFIG_16_16
        try:
            ops = list(ENUMERATORS[scheme](ctx, config))
        except ScheduleError:
            return
        assert sum(op.useful_macs for op in ops) == ctx.macs, (case, scheme)

    @pytest.mark.parametrize("case", SMALL_CASES)
    @pytest.mark.parametrize("scheme", ["inter", "intra", "partition"])
    def test_physical_limits(self, case, scheme):
        ctx = small_ctx(*case)
        config = CONFIG_16_16
        try:
            ops = list(ENUMERATORS[scheme](ctx, config))
        except ScheduleError:
            return
        peak = config.tin * config.tout
        for op in ops:
            assert len(op.data) <= config.tin
            assert op.weight_count <= peak
            assert op.useful_macs <= peak


class TestCoverage:
    @pytest.mark.parametrize("case", SMALL_CASES[:4])
    @pytest.mark.parametrize("scheme", ["inter", "intra"])
    def test_exact_input_coverage(self, case, scheme):
        """inter/intra touch exactly the layer's receptive positions."""
        ctx = small_ctx(*case)
        ops = list(ENUMERATORS[scheme](ctx, CONFIG_16_16))
        touched = set()
        for op in ops:
            touched |= op.data
        assert touched == touched_input_positions(ctx)

    def test_partition_covers_superset_with_padding(self):
        """partition touches all real positions plus the zero-pad fringe."""
        ctx = small_ctx(11, 4, 3, 4, 19, 1)
        ops = list(enumerate_partition(ctx, CONFIG_16_16))
        touched = set()
        for op in ops:
            touched |= op.data
        assert touched >= touched_input_positions(ctx)


class TestProperties:
    @settings(deadline=None, max_examples=15)
    @given(
        k=st.integers(2, 6),
        s=st.integers(1, 3),
        d=st.integers(1, 6),
        dout=st.integers(1, 10),
        hw=st.integers(6, 12),
        tin=st.sampled_from([4, 8, 16]),
        tout=st.sampled_from([4, 8]),
    )
    def test_partition_enumeration_matches_any_array(self, k, s, d, dout, hw, tin, tout):
        if s >= k or k > hw:
            return
        ctx = make_ctx(in_maps=d, out_maps=dout, kernel=k, stride=s, hw=hw)
        config = AcceleratorConfig(tin=tin, tout=tout)
        analytical = make_scheme("partition").schedule(ctx, config)
        ops = list(enumerate_partition(ctx, config))
        assert len(ops) == analytical.operations
        assert sum(op.useful_macs for op in ops) == ctx.macs
