"""Backend registry semantics and loop-vs-vector bit identity.

The ``vector`` backend's whole contract is that it is an *invisible*
substitution for the ``loop`` oracle in the int64 code domain: outputs,
partial maps, injected-fault hook firings and the resulting verdicts must
be byte-identical.  These tests pin that contract on a seeded geometry
grid covering every edge the schemes distinguish — 1x1 kernels, k == s,
s > k (partition fallback), padding, and grouped convolution — plus the
selection machinery itself (argument > set_backend > env var > default).
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.integrity.sdc import SDCInjector
from repro.resilience.faults import BITFLIP_SITES, seeded_bitflips
from repro.sim import backend as backend_mod
from repro.sim.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.sim.datapath import (
    conv_codes_direct,
    conv_codes_inter_improved,
    conv_codes_partitioned,
)
from repro.sim.functional import (
    conv_via_im2col,
    conv_via_inter_improved,
    conv_via_partition,
    partition_partial_maps,
    reference_conv,
)
from repro.tiling.unroll import im2col

#: (k, s, pad, groups, din, dout, hw) — edge geometries named in the issue:
#: 1x1, k == s, s > k, stride/pad combos, grouped
EDGE_GRID = [
    (1, 1, 0, 1, 3, 4, 6),  # 1x1 kernel
    (2, 2, 0, 1, 3, 4, 8),  # k == s: partition degenerates
    (2, 3, 0, 1, 3, 4, 9),  # s > k: partition falls back to reference
    (3, 1, 1, 1, 3, 4, 8),
    (3, 2, 1, 2, 4, 6, 9),  # grouped + stride + pad
    (5, 2, 2, 1, 3, 6, 11),
    (11, 4, 0, 1, 3, 8, 19),  # AlexNet conv1 class
]

PATHS = [
    reference_conv,
    conv_via_partition,
    conv_via_im2col,
    conv_via_inter_improved,
]


def code_tensors(k, s, pad, groups, din, dout, hw, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.integers(-(1 << 15), 1 << 15, (din, hw, hw), dtype=np.int64)
    weights = rng.integers(
        -(1 << 15), 1 << 15, (dout, din // groups, k, k), dtype=np.int64
    )
    bias = rng.integers(-(1 << 20), 1 << 20, (dout,), dtype=np.int64)
    return data, weights, bias


@pytest.fixture(autouse=True)
def _restore_backend():
    """Leave the process-wide backend exactly as each test found it."""
    previous = get_backend()
    yield
    set_backend(previous)


class TestSelection:
    def test_default_is_vector(self):
        assert DEFAULT_BACKEND == "vector"
        assert set(BACKENDS) == {"loop", "vector"}

    def test_set_backend_returns_previous(self):
        first = set_backend("loop")
        assert get_backend() == "loop"
        assert set_backend(first) == "loop"

    def test_use_backend_restores_on_exit(self):
        set_backend("vector")
        with use_backend("loop") as active:
            assert active == "loop"
            assert get_backend() == "loop"
        assert get_backend() == "vector"

    def test_use_backend_restores_on_exception(self):
        set_backend("vector")
        with pytest.raises(RuntimeError):
            with use_backend("loop"):
                raise RuntimeError("boom")
        assert get_backend() == "vector"

    def test_explicit_argument_beats_active(self):
        set_backend("loop")
        assert resolve_backend("vector") == "vector"
        assert resolve_backend(None) == "loop"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            set_backend("simd")
        with pytest.raises(ConfigError):
            resolve_backend("turbo")

    def test_env_var_sets_initial_backend(self):
        # first get_backend() in a fresh process resolves the env var
        code = (
            "from repro.sim.backend import get_backend; print(get_backend())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "REPRO_SIM_BACKEND": "loop"},
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == "loop"

    def test_bad_env_var_raises_on_first_use(self):
        code = (
            "from repro.errors import ConfigError\n"
            "from repro.sim.backend import get_backend\n"
            "try:\n"
            "    get_backend()\n"
            "except ConfigError:\n"
            "    print('rejected')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "REPRO_SIM_BACKEND": "nope"},
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == "rejected"


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize("k,s,pad,groups,din,dout,hw", EDGE_GRID)
    def test_vector_matches_loop_on_every_path(
        self, k, s, pad, groups, din, dout, hw, seed
    ):
        data, weights, bias = code_tensors(k, s, pad, groups, din, dout, hw, seed)
        for path in PATHS:
            loop_out = path(
                data, weights, bias, stride=s, pad=pad, groups=groups, backend="loop"
            )
            vec_out = path(
                data, weights, bias, stride=s, pad=pad, groups=groups, backend="vector"
            )
            assert loop_out.dtype == vec_out.dtype == np.int64
            assert np.array_equal(loop_out, vec_out), (path.__name__, k, s, pad)

    @pytest.mark.parametrize("k,s,pad", [(3, 1, 0), (3, 1, 1), (5, 2, 1), (11, 4, 0)])
    def test_partial_maps_identical(self, k, s, pad):
        data, weights, _ = code_tensors(k, s, pad, 1, 3, 4, 4 * k, seed=5)
        loop_p = partition_partial_maps(data, weights, s, pad, backend="loop")
        vec_p = partition_partial_maps(data, weights, s, pad, backend="vector")
        assert np.array_equal(loop_p, vec_p)

    @pytest.mark.parametrize("k,s,pad", [(3, 1, 1), (5, 2, 0), (2, 2, 0)])
    def test_im2col_byte_identical_even_on_floats(self, k, s, pad):
        # unrolling is pure data movement: float matrices must match to
        # the byte, not merely allclose
        rng = np.random.default_rng(9)
        data = rng.standard_normal((3, 11, 11))
        loop_m = im2col(data, k, s, pad, backend="loop")
        vec_m = im2col(data, k, s, pad, backend="vector")
        assert loop_m.dtype == vec_m.dtype == np.float64
        assert np.array_equal(
            loop_m.view(np.uint64), vec_m.view(np.uint64)
        ), "im2col backends diverged at the byte level"

    @pytest.mark.parametrize("k,s,pad,groups,din,dout,hw", EDGE_GRID[:5])
    def test_float_paths_allclose_across_backends(
        self, k, s, pad, groups, din, dout, hw
    ):
        # float operands only promise closeness (summation order differs)
        rng = np.random.default_rng(2)
        data = rng.standard_normal((din, hw, hw))
        weights = rng.standard_normal((dout, din // groups, k, k))
        for path in PATHS:
            loop_out = path(data, weights, None, stride=s, pad=pad, groups=groups,
                            backend="loop")
            vec_out = path(data, weights, None, stride=s, pad=pad, groups=groups,
                           backend="vector")
            assert np.allclose(loop_out, vec_out), path.__name__

    def test_process_wide_backend_is_honored(self):
        data, weights, bias = code_tensors(3, 1, 1, 1, 3, 4, 8)
        expected = reference_conv(data, weights, bias, pad=1, backend="loop")
        set_backend("vector")
        assert np.array_equal(reference_conv(data, weights, bias, pad=1), expected)
        set_backend("loop")
        assert np.array_equal(reference_conv(data, weights, bias, pad=1), expected)


class TestInjectedFaultIdentity:
    """Injected-fault hook firings and corrupted outputs must match exactly.

    The psum hooks see live accumulators; if the vector backend changed
    the accumulation structure, the same seeded flip would corrupt a
    different value and the sweep verdicts would drift across backends.
    """

    INJECT_PATHS = [conv_via_partition, conv_via_im2col, conv_via_inter_improved]

    @pytest.mark.parametrize("site", BITFLIP_SITES)
    @pytest.mark.parametrize("k,s,pad,groups,din,dout,hw", EDGE_GRID[:6])
    def test_corrupted_outputs_identical(self, k, s, pad, groups, din, dout, hw, site):
        data, weights, bias = code_tensors(k, s, pad, groups, din, dout, hw, seed=1)
        for pi, path in enumerate(self.INJECT_PATHS):
            outs = {}
            events = {}
            for backend in BACKENDS:
                fault = seeded_bitflips(k * 131 + s * 17 + pi, 1, sites=(site,))[0]
                injector = SDCInjector([fault])
                outs[backend] = path(
                    data,
                    weights,
                    bias,
                    stride=s,
                    pad=pad,
                    groups=groups,
                    inject=injector,
                    backend=backend,
                )
                # before/after capture the LIVE value at the hook site —
                # equality here proves both backends expose the same
                # accumulator state to the fault model, not just the same
                # final output
                events[backend] = [e.to_dict() for e in injector.events]
            assert events["loop"] == events["vector"], (path.__name__, site)
            assert np.array_equal(outs["loop"], outs["vector"]), (
                path.__name__,
                site,
            )


class TestDatapathIdentity:
    """The 16-bit integer datapath paths are backend-identical too."""

    DP_PATHS = [conv_codes_direct, conv_codes_partitioned, conv_codes_inter_improved]

    @pytest.mark.parametrize("k,s,pad", [(3, 1, 1), (5, 2, 1), (2, 2, 0), (11, 4, 0)])
    def test_codes_identical_across_backends(self, k, s, pad):
        rng = np.random.default_rng(4)
        data = rng.integers(-(1 << 7), 1 << 7, (3, 4 * k, 4 * k), dtype=np.int64)
        weights = rng.integers(-(1 << 7), 1 << 7, (4, 3, k, k), dtype=np.int64)
        bias = rng.integers(-(1 << 7), 1 << 7, (4,), dtype=np.int64)
        for path in self.DP_PATHS:
            loop_out = path(data, weights, bias, stride=s, pad=pad, backend="loop")
            vec_out = path(data, weights, bias, stride=s, pad=pad, backend="vector")
            assert np.array_equal(loop_out, vec_out), path.__name__


class TestPrimitives:
    def test_window_columns_matches_loop_im2col_layout(self):
        data = np.arange(2 * 6 * 6, dtype=np.int64).reshape(2, 6, 6)
        loop_m = im2col(data, 3, 2, 1, backend="loop")
        win = backend_mod.conv_window_view(
            np.pad(data, ((0, 0), (1, 1), (1, 1))), 3, 2, 3, 3
        )
        assert np.array_equal(backend_mod.window_columns(win), loop_m)

    def test_conv_window_view_is_a_view(self):
        data = np.zeros((1, 8, 8))
        win = backend_mod.conv_window_view(data, 3, 1, 6, 6)
        assert win.base is not None
        data[0, 0, 0] = 7.0
        assert win[0, 0, 0, 0, 0] == 7.0
