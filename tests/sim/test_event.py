"""Event-driven pipeline simulator tests.

The key result: the analytical ``max(compute, stream)`` timing model is the
*limit* of the explicit double-buffered pipeline as the pass count grows —
the event simulator converges onto it from the serialized side.
"""

import dataclasses

import pytest

from repro.adaptive import plan_network
from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError
from repro.sim.event import simulate_layer, simulate_run


class TestSimulateLayer:
    def test_invalid_passes(self, alexnet, cfg16):
        result = plan_network(alexnet, cfg16, "adaptive-2").layers[0]
        with pytest.raises(ConfigError):
            simulate_layer(result, passes=0)

    def test_single_pass_serializes(self, alexnet, cfg16):
        """With one pass nothing overlaps: total ~= compute + stream."""
        result = plan_network(alexnet, cfg16, "adaptive-2").layers[1]
        timeline = simulate_layer(result, passes=1)
        serial = result.operations + result.stream_cycles
        assert timeline.total_cycles == pytest.approx(serial, rel=0.02)

    def test_timeline_is_causally_ordered(self, alexnet, cfg16):
        result = plan_network(alexnet, cfg16, "adaptive-2").layers[0]
        timeline = simulate_layer(result, passes=8)
        prev_fill, prev_compute = -1.0, -1.0
        for p in timeline.passes:
            assert p.fill_start <= p.fill_done
            assert p.fill_done <= p.compute_start + 1e-9
            assert p.compute_start <= p.compute_done
            assert p.fill_done >= prev_fill
            assert p.compute_done >= prev_compute
            prev_fill, prev_compute = p.fill_done, p.compute_done

    def test_never_faster_than_either_engine(self, alexnet, cfg16):
        for result in plan_network(alexnet, cfg16, "intra").layers:
            timeline = simulate_layer(result, passes=16)
            assert timeline.total_cycles >= result.operations
            # inbound stream is serial on the DMA/host engines
            inbound = result.dram_words - max(
                0,
                result.dram_words
                - result.accesses["input"].stores
                - result.accesses["weight"].stores,
            )
            assert (
                timeline.total_cycles
                >= inbound / cfg16.dram_words_per_cycle - 1e-6
            )


class TestConvergence:
    @pytest.mark.parametrize("netname", ["alexnet", "vgg"])
    @pytest.mark.parametrize("policy", ["adaptive-2", "inter"])
    def test_monotone_in_passes(self, netname, policy, request, cfg16):
        net = request.getfixturevalue(netname)
        run = plan_network(net, cfg16, policy)
        previous = float("inf")
        for passes in (1, 2, 4, 8, 16, 32):
            current = simulate_run(run, passes)
            assert current <= previous * 1.0001, passes
            previous = current

    @pytest.mark.parametrize("netname", ["alexnet", "googlenet", "vgg", "nin"])
    def test_converges_to_analytical_model(self, netname, request, cfg16):
        """Deep pipelining lands within a few percent of max(compute, stream)
        — from above for startup bubbles, slightly below where output
        drains hide behind the next layer's compute."""
        net = request.getfixturevalue(netname)
        run = plan_network(net, cfg16, "adaptive-2")
        event = simulate_run(run, passes=64)
        assert 0.97 < event / run.total_cycles < 1.05

    def test_serialized_limit_matches_overlap_off_config(self, alexnet):
        """passes=1 event sim ~= the overlap_streams=False analytical model."""
        serial_cfg = dataclasses.replace(CONFIG_16_16, overlap_streams=False)
        run_overlap = plan_network(alexnet, CONFIG_16_16, "adaptive-2")
        run_serial = plan_network(alexnet, serial_cfg, "adaptive-2")
        event_1pass = simulate_run(run_overlap, passes=1)
        assert event_1pass == pytest.approx(run_serial.total_cycles, rel=0.05)
