"""Bit-exact integer datapath tests: scheme orders are identical in hardware."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.fixedpoint import Q7_8, FixedPointFormat, dequantize, quantize
from repro.errors import ShapeError
from repro.sim.datapath import (
    conv_codes_direct,
    conv_codes_inter_improved,
    conv_codes_partitioned,
    requantize,
    saturate,
)


def random_codes(k, din, dout, hw, seed=0):
    rng = np.random.default_rng(seed)
    data = quantize(rng.uniform(-2, 2, (din, hw, hw)))
    weights = quantize(rng.uniform(-1, 1, (dout, din, k, k)))
    bias = quantize(rng.uniform(-1, 1, dout))
    return data, weights, bias


class TestPrimitives:
    def test_saturate(self):
        codes = np.array([40000, -40000, 100])
        out = saturate(codes)
        assert out.tolist() == [Q7_8.max_int, Q7_8.min_int, 100]

    def test_requantize_rounds_half_away(self):
        fmt = FixedPointFormat(16, 8)
        # 1.5 in 2n-fraction accumulator units = 1.5 * 256 codes... the
        # accumulator holds products with 16 fraction bits; 1.5 output LSBs
        acc = np.array([384 << 8, -(384 << 8)])  # +-1.5 in Q.16 terms
        out = requantize(acc, fmt)
        assert out.tolist() == [384, -384]
        half = np.array([1 << 7, -(1 << 7)])  # exactly +-0.5 LSB
        assert requantize(half, fmt).tolist() == [1, -1]

    def test_requantize_saturates(self):
        acc = np.array([10**12, -(10**12)])
        out = requantize(acc)
        assert out.tolist() == [Q7_8.max_int, Q7_8.min_int]


class TestBitExactEquivalence:
    """Integer addition is associative: all orders give identical codes."""

    @pytest.mark.parametrize(
        "k,s,pad,din,dout,hw",
        [
            (11, 4, 0, 3, 4, 35),
            (5, 1, 2, 4, 4, 13),
            (3, 1, 1, 2, 6, 9),
            (7, 2, 3, 3, 4, 21),
            (3, 2, 0, 2, 4, 9),
        ],
    )
    def test_partitioned_identical(self, k, s, pad, din, dout, hw):
        data, weights, bias = random_codes(k, din, dout, hw)
        direct = conv_codes_direct(data, weights, bias, s, pad)
        part = conv_codes_partitioned(data, weights, bias, s, pad)
        assert np.array_equal(direct, part)

    @pytest.mark.parametrize(
        "k,s,pad", [(3, 1, 1), (5, 2, 0), (1, 1, 0)]
    )
    def test_inter_improved_identical(self, k, s, pad):
        data, weights, bias = random_codes(k, 3, 4, 12)
        direct = conv_codes_direct(data, weights, bias, s, pad)
        impr = conv_codes_inter_improved(data, weights, bias, s, pad)
        assert np.array_equal(direct, impr)

    @settings(deadline=None, max_examples=20)
    @given(
        k=st.integers(2, 6),
        s=st.integers(1, 3),
        pad=st.integers(0, 1),
        din=st.integers(1, 3),
        dout=st.integers(1, 4),
        hw=st.integers(7, 13),
        seed=st.integers(0, 5000),
    )
    def test_property_all_orders(self, k, s, pad, din, dout, hw, seed):
        if s >= k or k > hw + 2 * pad:
            return
        data, weights, bias = random_codes(k, din, dout, hw, seed=seed)
        direct = conv_codes_direct(data, weights, bias, s, pad)
        assert np.array_equal(
            direct, conv_codes_partitioned(data, weights, bias, s, pad)
        )
        assert np.array_equal(
            direct, conv_codes_inter_improved(data, weights, bias, s, pad)
        )


class TestAgainstFloatReference:
    def test_matches_quantized_float_within_rounding(self):
        """The integer datapath equals the float computation on dequantized
        operands up to one output LSB (the single requantize round)."""
        from repro.sim.functional import reference_conv

        data, weights, bias = random_codes(3, 2, 4, 9, seed=7)
        int_out = conv_codes_direct(data, weights, bias, 1, 1)
        float_out = reference_conv(
            dequantize(data), dequantize(weights), dequantize(bias), 1, 1
        )
        err = np.abs(dequantize(int_out) - float_out)
        assert err.max() <= Q7_8.resolution

    def test_saturation_engages_on_hot_inputs(self):
        data = np.full((4, 6, 6), Q7_8.max_int, dtype=np.int64)
        weights = np.full((1, 4, 3, 3), Q7_8.max_int, dtype=np.int64)
        out = conv_codes_direct(data, weights, None, 1, 0)
        assert np.all(out == Q7_8.max_int)

    def test_shape_errors(self):
        with pytest.raises(ShapeError):
            conv_codes_direct(np.zeros((2, 4, 4)), np.zeros((1, 3, 3, 3)), None)
        with pytest.raises(ShapeError):
            conv_codes_direct(np.zeros((2, 4)), np.zeros((1, 2, 3, 3)), None)
