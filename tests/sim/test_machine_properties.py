"""Property/fuzz tests for the machine: random programs, exact accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import CONFIG_16_16
from repro.isa.instructions import Instruction, Opcode, Program
from repro.sim.machine import Machine

_TRANSFER_OPS = [
    Opcode.DMA_LOAD_INPUT,
    Opcode.DMA_LOAD_WEIGHT,
    Opcode.DMA_LOAD_BIAS,
    Opcode.DMA_STORE_OUTPUT,
    Opcode.BUF_READ_INPUT,
    Opcode.BUF_READ_WEIGHT,
    Opcode.BUF_READ_BIAS,
    Opcode.BUF_READ_OUTPUT,
    Opcode.BUF_WRITE_OUTPUT,
    Opcode.HOST_RESHAPE,
]


def transfer_instruction():
    return st.builds(
        Instruction,
        opcode=st.sampled_from(_TRANSFER_OPS),
        words=st.integers(0, 10_000),
    )


def compute_instruction():
    return st.integers(0, 1000).flatmap(
        lambda ops: st.builds(
            Instruction,
            opcode=st.just(Opcode.COMPUTE),
            operations=st.just(ops),
            macs=st.integers(0, ops * CONFIG_16_16.multipliers),
        )
    )


def any_instruction():
    return st.one_of(
        transfer_instruction(),
        compute_instruction(),
        st.builds(Instruction, opcode=st.just(Opcode.SYNC)),
        st.builds(
            Instruction,
            opcode=st.just(Opcode.ACCUMULATE),
            operations=st.integers(0, 10_000),
        ),
    )


def program_from(instructions) -> Program:
    p = Program("fuzz")
    for inst in instructions:
        p.emit(inst)
    return p


class TestAccountingExactness:
    @settings(deadline=None, max_examples=60)
    @given(st.lists(any_instruction(), max_size=60))
    def test_totals_equal_operand_sums(self, instructions):
        program = program_from(instructions)
        result = Machine(CONFIG_16_16).execute(program)

        expected_compute = sum(
            i.operations for i in program if i.opcode is Opcode.COMPUTE
        )
        expected_macs = sum(i.macs for i in program if i.opcode is Opcode.COMPUTE)
        expected_dram = sum(i.words for i in program if i.is_dma)
        expected_adds = sum(
            i.operations for i in program if i.opcode is Opcode.ACCUMULATE
        )
        assert result.compute_cycles == expected_compute
        assert result.useful_macs == expected_macs
        assert result.dram_words == expected_dram
        assert result.extra_adds == expected_adds

    @settings(deadline=None, max_examples=60)
    @given(st.lists(any_instruction(), max_size=60))
    def test_wall_clock_is_sum_of_region_maxima(self, instructions):
        program = program_from(instructions)
        machine = Machine(CONFIG_16_16)
        result = machine.execute(program)
        recomputed = sum(
            r.wall_clock(CONFIG_16_16) for r in result.regions
        )
        assert result.total_cycles == recomputed

    @settings(deadline=None, max_examples=40)
    @given(st.lists(any_instruction(), max_size=40))
    def test_wall_clock_bounds(self, instructions):
        """Wall-clock is at least compute and at least total DMA time, and
        at most their sum plus host cycles (regions serialize)."""
        program = program_from(instructions)
        result = Machine(CONFIG_16_16).execute(program)
        dma_cycles = result.dram_words / CONFIG_16_16.dram_words_per_cycle
        host = sum(
            i.words for i in program if i.opcode is Opcode.HOST_RESHAPE
        )
        assert result.total_cycles >= result.compute_cycles
        assert result.total_cycles >= dma_cycles - 1e-9
        assert result.total_cycles <= result.compute_cycles + dma_cycles + host + 1e-9

    @settings(deadline=None, max_examples=40)
    @given(st.lists(any_instruction(), max_size=30))
    def test_sync_placement_never_changes_totals(self, instructions):
        """Extra SYNCs re-partition regions but cannot change the activity
        totals (only the overlap, hence wall-clock may only grow)."""
        base = program_from(instructions)
        synced = Program("synced")
        for inst in instructions:
            synced.emit(inst)
            synced.emit(Instruction(Opcode.SYNC))
        a = Machine(CONFIG_16_16).execute(base)
        b = Machine(CONFIG_16_16).execute(synced)
        assert a.compute_cycles == b.compute_cycles
        assert a.buffer_accesses == b.buffer_accesses
        assert a.dram_words == b.dram_words
        assert b.total_cycles >= a.total_cycles - 1e-9

    @settings(deadline=None, max_examples=40)
    @given(
        st.lists(any_instruction(), max_size=20),
        st.lists(any_instruction(), max_size=20),
    )
    def test_concatenation_adds_activity(self, first, second):
        pa = program_from(first)
        pb = program_from(second)
        combined = program_from(first + second)
        machine = Machine(CONFIG_16_16)
        a = machine.execute(pa)
        b = machine.execute(pb)
        c = machine.execute(combined)
        assert c.compute_cycles == a.compute_cycles + b.compute_cycles
        assert c.dram_words == a.dram_words + b.dram_words
        assert c.buffer_accesses == a.buffer_accesses + b.buffer_accesses
