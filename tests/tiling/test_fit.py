"""Buffer-fit / off-chip traffic tests (the VGG 8 MB story)."""

import pytest

from repro.errors import ShapeError
from repro.nn.layers import ReLULayer, TensorShape
from repro.nn.network import LayerContext
from repro.tiling.fit import analyze_fit, working_set

from tests.conftest import make_ctx


class TestWorkingSet:
    def test_counts(self):
        ctx = make_ctx(in_maps=4, out_maps=8, kernel=3, pad=1, hw=10)
        ws = working_set(ctx)
        assert ws.input_words == 400
        assert ws.output_words == 800
        assert ws.weight_words == 9 * 4 * 8
        assert ws.total_words == 400 + 800 + 288

    def test_grouped_weights(self):
        plain = working_set(make_ctx(in_maps=4, out_maps=8, kernel=3, pad=1))
        grouped = working_set(
            make_ctx(in_maps=4, out_maps=8, kernel=3, pad=1, groups=2)
        )
        assert grouped.weight_words == plain.weight_words // 2

    def test_non_conv_rejected(self):
        layer = ReLULayer("r")
        shape = TensorShape(1, 2, 2)
        with pytest.raises(ShapeError):
            working_set(LayerContext(layer, shape, shape))


class TestAnalyzeFit:
    def test_small_layer_fits(self, cfg16):
        report = analyze_fit(make_ctx(), cfg16)
        assert report.everything_fits
        assert report.spill_words == 0
        assert report.weight_passes == 1
        assert report.input_strips == 1
        assert report.total_traffic_words == report.compulsory_words

    def test_alexnet_activations_fit(self, alexnet, cfg16):
        """AlexNet activations stay on chip; only conv3/conv4 weights
        (1.7 MB / 1.3 MB vs the 1 MB weight buffer) need two passes."""
        for ctx in alexnet.conv_contexts():
            report = analyze_fit(ctx, cfg16)
            assert report.input_fits, ctx.name
            assert report.output_fits, ctx.name
            assert report.weight_passes <= 2, ctx.name

    def test_vgg_bottom_layers_overflow(self, vgg, cfg16):
        """Paper: 'the biggest layer need 8M buffer, so we have to exchange
        data frequently between on-chip buffer and off-chip memory'."""
        ctx = vgg.conv_contexts()[1]  # conv1_2: 64 x 224 x 224 in AND out
        report = analyze_fit(ctx, cfg16)
        assert not report.input_fits
        assert not report.output_fits
        assert report.input_strips > 1
        assert report.spill_words > 0

    def test_vgg_top_layer_weights_overflow(self, vgg, cfg16):
        # conv5_x: 3*3*512*512 = 2.36M words > 512K-word weight buffer
        ctx = vgg.conv_contexts()[-1]
        report = analyze_fit(ctx, cfg16)
        assert not report.weight_fits
        assert report.weight_passes > 1
        # each extra weight pass re-streams the input
        assert report.spill_words >= (report.weight_passes - 1) * ctx.in_shape.elements

    def test_halo_scales_with_kernel_minus_stride(self, cfg16):
        # force striping with a big input, compare k=3 vs k=5 halo
        small_k = analyze_fit(
            make_ctx(in_maps=8, out_maps=8, kernel=3, pad=1, hw=600), cfg16
        )
        big_k = analyze_fit(
            make_ctx(in_maps=8, out_maps=8, kernel=5, pad=2, hw=600), cfg16
        )
        assert small_k.input_strips == big_k.input_strips > 1
        assert big_k.spill_words > small_k.spill_words

    def test_dma_cycles_proportional_to_traffic(self, cfg16):
        ctx = make_ctx(in_maps=8, out_maps=8, kernel=3, pad=1, hw=64)
        report = analyze_fit(ctx, cfg16)
        assert report.dma_cycles == pytest.approx(
            report.total_traffic_words / cfg16.dram_words_per_cycle
        )

    def test_compulsory_covers_each_tensor_once(self, cfg16):
        ctx = make_ctx(in_maps=2, out_maps=4, kernel=3, hw=12)
        report = analyze_fit(ctx, cfg16)
        ws = report.working_set
        assert report.compulsory_words == (
            ws.input_words + ws.output_words + ws.weight_words
        )
