"""Kernel partitioning (Eq. 2 / Fig. 5) transform tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError, ShapeError
from repro.tiling.partition import (
    pad_data_for_partition,
    padded_input_extent,
    partition_geometry,
    partition_weights,
)


class TestEquation2:
    def test_alexnet_conv1(self):
        """k=11, s=4: 'the original big kernel is partitioned into 9 small
        sub-kernels (4x4)' (Fig. 5)."""
        g = partition_geometry(11, 4)
        assert g.groups_per_side == 3
        assert g.sub_kernel == 4
        assert g.pieces == 9
        assert g.padded_kernel == 12
        assert g.pad_overhead == pytest.approx(144 / 121)

    def test_googlenet_conv1(self):
        g = partition_geometry(7, 2)
        assert (g.groups_per_side, g.sub_kernel, g.pieces) == (4, 2, 16)

    def test_stride1_small_kernel(self):
        g = partition_geometry(3, 1)
        assert (g.groups_per_side, g.sub_kernel) == (3, 1)
        assert g.pad_overhead == pytest.approx(1.0)  # 3*1 == 3, no padding

    def test_degenerate_rejected(self):
        with pytest.raises(ScheduleError):
            partition_geometry(3, 3)
        with pytest.raises(ScheduleError):
            partition_geometry(1, 1)
        with pytest.raises(ScheduleError):
            partition_geometry(3, 4)

    def test_invalid_rejected(self):
        with pytest.raises(ShapeError):
            partition_geometry(0, 1)

    @given(k=st.integers(2, 15), s=st.integers(1, 14))
    def test_invariants(self, k, s):
        if s >= k:
            return
        g = partition_geometry(k, s)
        # the padded grid always covers the original kernel
        assert g.padded_kernel >= k
        # and never by more than one full sub-kernel per side
        assert g.padded_kernel - k < g.sub_kernel
        assert g.pad_overhead >= 1.0
        assert g.sub_kernel == s


class TestPartitionWeights:
    def test_piece_count_and_shape(self):
        w = np.arange(11 * 11, dtype=float).reshape(11, 11)
        pieces = partition_weights(w, stride=4)
        assert pieces.shape == (9, 4, 4)

    def test_values_preserved_with_zero_padding(self):
        w = np.arange(11 * 11, dtype=float).reshape(11, 11)
        pieces = partition_weights(w, stride=4)
        # total mass unchanged: padding contributes zeros
        assert pieces.sum() == pytest.approx(w.sum())
        # first piece is the top-left 4x4 corner
        assert np.array_equal(pieces[0], w[:4, :4])
        # last piece holds the bottom-right 3x3 remnant plus zero padding
        assert np.array_equal(pieces[8][:3, :3], w[8:, 8:])
        assert pieces[8][3, :].sum() == 0
        assert pieces[8][:, 3].sum() == 0

    def test_leading_axes_preserved(self):
        w = np.random.default_rng(0).standard_normal((6, 3, 5, 5))
        pieces = partition_weights(w, stride=2)
        assert pieces.shape == (6, 3, 9, 2, 2)

    def test_non_square_rejected(self):
        with pytest.raises(ShapeError):
            partition_weights(np.ones((3, 4)), stride=1)

    @settings(deadline=None)
    @given(
        k=st.integers(2, 9),
        s=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    def test_mass_conservation(self, k, s, seed):
        if s >= k:
            return
        w = np.random.default_rng(seed).standard_normal((k, k))
        pieces = partition_weights(w, s)
        assert pieces.sum() == pytest.approx(w.sum())
        geom = partition_geometry(k, s)
        assert pieces.shape == (geom.pieces, s, s)


class TestPaddedExtent:
    def test_alexnet_conv1_gets_227_to_228(self):
        """Fig. 5a: 227 input, last sub-kernel scans d3,3..d57,57 with a
        reach of (55-1)*4 + 12 = 228."""
        out, padded = padded_input_extent(227, 11, 4, 0)
        assert out == 55
        assert padded == 228

    def test_no_extra_padding_when_kernel_divides(self):
        out, padded = padded_input_extent(9, 3, 1, 0)
        assert out == 7
        assert padded == 9  # (7-1)*1 + 3 = 9

    def test_pad_data_shape(self):
        data = np.ones((3, 227, 227))
        padded = pad_data_for_partition(data, kernel=11, stride=4, pad=0)
        assert padded.shape == (3, 228, 228)
        # padding is zeros
        assert padded[:, 227, :].sum() == 0

    def test_pad_data_with_conv_padding(self):
        data = np.ones((2, 27, 27))
        padded = pad_data_for_partition(data, kernel=5, stride=1, pad=2)
        # conv pad symmetric: original content starts at (2, 2)
        assert padded[0, 2, 2] == 1.0
        assert padded[0, 0, 0] == 0.0
        # enough room for the farthest sub-kernel offset
        out, extent = padded_input_extent(27, 5, 1, 2)
        assert padded.shape[1] == extent
        assert out == 27

    def test_rejects_non_3d(self):
        with pytest.raises(ShapeError):
            pad_data_for_partition(np.ones((4, 4)), 3, 1, 0)

    def test_zero_pad_returns_input_unchanged(self):
        """Regression: no copy when neither conv nor scan padding is needed.

        k=3, s=1 on a 9-wide map: (7-1)*1 + 3 = 9 — the scan already fits,
        so the exact input array must come back (identity, not a copy).
        """
        data = np.ones((2, 9, 9))
        assert pad_data_for_partition(data, kernel=3, stride=1, pad=0) is data

    def test_zero_conv_pad_still_pads_for_scan_when_needed(self):
        # k=11, s=4 on 227: scan reach is 228 — a copy is unavoidable here
        data = np.ones((1, 227, 227))
        padded = pad_data_for_partition(data, kernel=11, stride=4, pad=0)
        assert padded is not data
        assert padded.shape == (1, 228, 228)
