"""Unrolling (Eq. 1 / im2col) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.layers import ConvLayer, TensorShape
from repro.tiling.unroll import im2col, pad_input, unroll_factor, unroll_stats


class TestEquation1:
    def test_paper_example_28x28_k5(self):
        """'given a 28x28 map with k=5 and s=1 ... 24x24x25' -> T ~= 18.4."""
        t = unroll_factor(28, 28, 5, 1)
        assert t == pytest.approx(24 * 24 * 25 / (28 * 28))

    def test_alexnet_conv1(self):
        # 227x227, k=11, s=4 -> 55x55 windows of 121 pixels
        t = unroll_factor(227, 227, 11, 4)
        assert t == pytest.approx(55 * 55 * 121 / (227 * 227))
        assert 7 < t < 8

    def test_k_equals_s_no_duplication(self):
        assert unroll_factor(16, 16, 4, 4) == pytest.approx(1.0)

    def test_kernel_too_large(self):
        with pytest.raises(ShapeError):
            unroll_factor(4, 4, 5, 1)

    @given(
        hw=st.integers(8, 48),
        k=st.integers(1, 7),
        s=st.integers(1, 3),
    )
    def test_factor_at_least_stride_normalized(self, hw, k, s):
        if k > hw or s > k:
            return
        t = unroll_factor(hw, hw, k, s)
        # duplication approaches (k/s)^2 for large maps, never exceeds it
        assert t <= (k / s) ** 2 + 1e-9


class TestUnrollStats:
    def test_fig3_band(self):
        """Fig. 3: unrolled size is 9x-18.9x raw for bottom layers (with
        padding included our band is slightly wider, ~7x-25x)."""
        from repro.analysis.experiments import fig3_unrolling

        for row in fig3_unrolling():
            assert 5.0 < row.factor < 30.0

    def test_counts_all_input_maps(self):
        layer = ConvLayer("c", in_maps=3, out_maps=8, kernel=3)
        stats = unroll_stats(layer, TensorShape(3, 10, 10))
        assert stats.raw_elements == 300
        assert stats.unrolled_elements == 8 * 8 * 9 * 3

    def test_bits(self):
        layer = ConvLayer("c", in_maps=1, out_maps=1, kernel=1)
        stats = unroll_stats(layer, TensorShape(1, 4, 4))
        assert stats.raw_bits() == 16 * 16
        assert stats.unrolled_bits(word_bits=8) == stats.unrolled_elements * 8


class TestIm2col:
    def test_shape(self):
        data = np.arange(2 * 6 * 6, dtype=float).reshape(2, 6, 6)
        cols = im2col(data, kernel=3, stride=1)
        assert cols.shape == (16, 18)

    def test_first_row_is_first_window(self):
        data = np.arange(1 * 4 * 4, dtype=float).reshape(1, 4, 4)
        cols = im2col(data, kernel=2, stride=1)
        assert np.array_equal(cols[0], data[0, :2, :2].reshape(-1))

    def test_stride_skips_windows(self):
        data = np.arange(1 * 6 * 6, dtype=float).reshape(1, 6, 6)
        cols = im2col(data, kernel=2, stride=2)
        assert cols.shape == (9, 4)
        assert np.array_equal(cols[1], data[0, 0:2, 2:4].reshape(-1))

    def test_padding(self):
        data = np.ones((1, 3, 3))
        cols = im2col(data, kernel=3, stride=1, pad=1)
        assert cols.shape == (9, 9)
        # the corner window sees 4 real pixels and 5 zeros
        assert cols[0].sum() == 4

    def test_rejects_non_3d(self):
        with pytest.raises(ShapeError):
            im2col(np.ones((4, 4)), 2, 1)

    @settings(deadline=None)
    @given(
        hw=st.integers(4, 12),
        k=st.integers(1, 4),
        s=st.integers(1, 3),
        d=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    def test_row_count_matches_output_pixels(self, hw, k, s, d, seed):
        if k > hw:
            return
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((d, hw, hw))
        cols = im2col(data, k, s)
        out_hw = (hw - k) // s + 1
        assert cols.shape == (out_hw * out_hw, d * k * k)


class TestPadInput:
    def test_zero_pad_identity(self):
        data = np.ones((1, 3, 3))
        assert pad_input(data, 0) is data

    def test_pad_shape_and_zeros(self):
        data = np.ones((2, 3, 3))
        padded = pad_input(data, 2)
        assert padded.shape == (2, 7, 7)
        assert padded[:, 0, :].sum() == 0
        assert padded[:, 2:5, 2:5].sum() == 18

    def test_negative_rejected(self):
        with pytest.raises(ShapeError):
            pad_input(np.ones((1, 2, 2)), -1)
