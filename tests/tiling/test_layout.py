"""Layout (inter-order vs intra-order) tests — Algorithm 2 lines 4-5."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.layers import TensorShape
from repro.tiling.layout import (
    Layout,
    from_layout,
    linear_address,
    reorder_moves,
    to_layout,
)


class TestConversions:
    def test_intra_is_identity(self):
        data = np.arange(24).reshape(2, 3, 4)
        assert to_layout(data, Layout.INTRA) is data

    def test_inter_is_depth_last(self):
        data = np.arange(24).reshape(2, 3, 4)
        stored = to_layout(data, Layout.INTER)
        assert stored.shape == (3, 4, 2)
        assert stored[1, 2, 0] == data[0, 1, 2]

    @given(
        d=st.integers(1, 4),
        h=st.integers(1, 5),
        w=st.integers(1, 5),
        layout=st.sampled_from(list(Layout)),
    )
    def test_roundtrip(self, d, h, w, layout):
        data = np.arange(d * h * w).reshape(d, h, w)
        assert np.array_equal(from_layout(to_layout(data, layout), layout), data)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ShapeError):
            to_layout(np.ones((2, 2)), Layout.INTER)


class TestLinearAddress:
    def test_inter_order_depth_is_unit_stride(self):
        """Inter-kernel streams consecutive input maps at one pixel: those
        words must be adjacent in INTER layout."""
        shape = TensorShape(8, 5, 5)
        a0 = linear_address(shape, 0, 2, 3, Layout.INTER)
        a1 = linear_address(shape, 1, 2, 3, Layout.INTER)
        assert a1 - a0 == 1

    def test_intra_order_x_is_unit_stride(self):
        """Intra-kernel streams consecutive pixels of one map: those words
        must be adjacent in INTRA layout."""
        shape = TensorShape(8, 5, 5)
        a0 = linear_address(shape, 3, 2, 0, Layout.INTRA)
        a1 = linear_address(shape, 3, 2, 1, Layout.INTRA)
        assert a1 - a0 == 1

    def test_addresses_are_a_bijection(self):
        shape = TensorShape(2, 3, 4)
        for layout in Layout:
            seen = {
                linear_address(shape, d, y, x, layout)
                for d in range(2)
                for y in range(3)
                for x in range(4)
            }
            assert seen == set(range(24))

    def test_out_of_bounds(self):
        with pytest.raises(ShapeError):
            linear_address(TensorShape(2, 2, 2), 2, 0, 0, Layout.INTRA)

    def test_matches_numpy_flat_index(self):
        data = np.arange(2 * 3 * 4).reshape(2, 3, 4)
        shape = TensorShape(2, 3, 4)
        inter = to_layout(data, Layout.INTER).reshape(-1)
        for d in range(2):
            for y in range(3):
                for x in range(4):
                    assert data[d, y, x] == inter[
                        linear_address(shape, d, y, x, Layout.INTER)
                    ]


class TestReorderMoves:
    def test_same_layout_free(self):
        shape = TensorShape(4, 8, 8)
        assert reorder_moves(shape, Layout.INTRA, Layout.INTRA) == 0

    def test_cross_layout_moves_everything(self):
        shape = TensorShape(4, 8, 8)
        assert reorder_moves(shape, Layout.INTRA, Layout.INTER) == 256
