"""Per-layer breakdown report tests."""

import pytest

from repro.adaptive import plan_network
from repro.analysis.layerwise import layerwise_rows, render_layerwise


class TestLayerwiseRows:
    def test_one_row_per_layer(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        rows = layerwise_rows(run)
        assert [r.layer for r in rows] == [r.layer_name for r in run.layers]

    def test_values_match_run(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        rows = layerwise_rows(run)
        for row, layer in zip(rows, run.layers):
            assert row.cycles == layer.total_cycles
            assert row.scheme == layer.scheme
            assert row.buffer_words == layer.buffer_accesses

    def test_energy_sums_to_run_total(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        total = sum(r.energy_pj for r in layerwise_rows(run))
        assert total == pytest.approx(run.energy().total_pj, rel=1e-6)

    def test_bound_classification(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        rows = {r.layer: r for r in layerwise_rows(run)}
        # AlexNet conv layers at 4 w/cyc are compute-bound under adaptive
        assert rows["conv2"].bound == "compute"

    def test_intra_conv1_is_stream_bound(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "intra")
        rows = {r.layer: r for r in layerwise_rows(run)}
        assert rows["conv1"].bound == "stream"


class TestRender:
    def test_contains_all_layers(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        text = render_layerwise(run)
        for r in run.layers:
            assert r.layer_name in text

    def test_top_filter(self, googlenet, cfg16):
        run = plan_network(googlenet, cfg16, "adaptive-2")
        text = render_layerwise(run, top=3)
        data_lines = [
            l for l in text.splitlines()[3:] if l.strip()
        ]  # skip title+header+rule
        assert len(data_lines) == 3
        # the most expensive GoogLeNet layer is conv2/3x3
        assert "conv2/3x3" in text

    def test_title_carries_totals(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        text = render_layerwise(run)
        assert "alexnet / adaptive-2 on 16-16" in text
