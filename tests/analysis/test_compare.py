"""Run-comparison tool tests."""

import pytest

from repro.adaptive import plan_network
from repro.analysis.compare import compare_runs, render_comparison
from repro.errors import ConfigError


class TestCompareRuns:
    def test_layer_alignment(self, alexnet, cfg16):
        a = plan_network(alexnet, cfg16, "inter")
        b = plan_network(alexnet, cfg16, "adaptive-2")
        deltas = compare_runs(a, b)
        assert [d.layer for d in deltas] == [r.layer_name for r in a.layers]

    def test_conv1_is_the_mover(self, alexnet, cfg16):
        a = plan_network(alexnet, cfg16, "inter")
        b = plan_network(alexnet, cfg16, "adaptive-2")
        deltas = {d.layer: d for d in compare_runs(a, b)}
        assert deltas["conv1"].scheme_changed
        assert deltas["conv1"].speedup > 4.0
        # the top layers keep inter's cycles (improved variant, same time)
        assert deltas["conv2"].speedup == pytest.approx(1.0)

    def test_traffic_deltas(self, alexnet, cfg16):
        a = plan_network(alexnet, cfg16, "adaptive-1")
        b = plan_network(alexnet, cfg16, "adaptive-2")
        for d in compare_runs(a, b):
            assert d.traffic_a >= d.traffic_b  # adap-2 never adds traffic

    def test_self_comparison_is_identity(self, alexnet, cfg16):
        a = plan_network(alexnet, cfg16, "adaptive-2")
        for d in compare_runs(a, a):
            assert d.cycles_delta == 0
            assert not d.scheme_changed

    def test_different_networks_rejected(self, alexnet, nin, cfg16):
        a = plan_network(alexnet, cfg16, "inter")
        b = plan_network(nin, cfg16, "inter")
        with pytest.raises(ConfigError):
            compare_runs(a, b)

    def test_different_layer_sets_rejected(self, alexnet, cfg16):
        a = plan_network(alexnet, cfg16, "inter")
        b = plan_network(alexnet, cfg16, "inter", include_non_conv=True)
        with pytest.raises(ConfigError):
            compare_runs(a, b)


class TestRender:
    def test_title_names_movers(self, alexnet, cfg16):
        a = plan_network(alexnet, cfg16, "inter")
        b = plan_network(alexnet, cfg16, "adaptive-2")
        text = render_comparison(a, b)
        assert "1.65x overall" in text
        assert "conv1" in text.splitlines()[0]

    def test_cli_command(self, capsys):
        from repro.__main__ import main

        assert main(["compare", "nin", "inter", "adaptive-2"]) == 0
        out = capsys.readouterr().out
        assert "overall" in out
        assert "scheme A" in out
