"""Experiment driver tests: row structure and basic invariants.

The full paper-shape assertions live in benchmarks/; here we verify the
drivers produce complete, well-formed data quickly-checkable subsets.
"""

import pytest

from repro.analysis.experiments import (
    fig3_unrolling,
    fig7_conv1,
    fig9_zhang_comparison,
    table4_cpu_comparison,
    table5_pe_energy,
)
from repro.analysis.report import (
    render_fig3,
    render_fig7,
    render_fig9,
    render_table4,
    render_table5,
    format_table,
)
from repro.arch.config import CONFIG_16_16


class TestFig3:
    def test_ten_layers(self):
        rows = fig3_unrolling()
        assert len(rows) == 10
        assert {r.network for r in rows} == {"alexnet", "googlenet"}

    def test_unrolled_always_bigger(self):
        for row in fig3_unrolling():
            assert row.unrolled_bits > row.raw_bits

    def test_word_bits_scale(self):
        r16 = fig3_unrolling(word_bits=16)
        r32 = fig3_unrolling(word_bits=32)
        assert r32[0].raw_bits == 2 * r16[0].raw_bits


class TestFig7:
    def test_row_coverage(self):
        rows = fig7_conv1(configs=[CONFIG_16_16])
        assert len(rows) == 4 * 4  # 4 nets x 4 schemes
        assert {r.scheme for r in rows} == {"ideal", "inter", "intra", "partition"}

    def test_cycles_positive(self):
        for r in fig7_conv1(configs=[CONFIG_16_16]):
            assert r.cycles > 0


class TestFig9:
    def test_designs(self):
        rows = fig9_zhang_comparison()
        assert [r.design for r in rows] == [
            "zhang-7,64",
            "adpa-16-24",
            "adpa-16-28",
            "adpa-16-32",
        ]

    def test_conv1_fraction_of_whole(self):
        for r in fig9_zhang_comparison():
            assert 0 < r.conv1_ms < r.whole_ms


class TestTable4:
    def test_rows(self):
        rows = table4_cpu_comparison()
        assert [r.network for r in rows] == ["alexnet", "googlenet", "vgg", "nin"]
        for r in rows:
            assert r.speedup16 > 1
            assert r.speedup32 > r.speedup16


class TestTable5:
    def test_inter_is_implicit_baseline(self):
        rows = table5_pe_energy()
        assert {r.scheme for r in rows} == {
            "intra",
            "partition",
            "adaptive-1",
            "adaptive-2",
        }
        nets = {r.network for r in rows}
        assert nets == {"alexnet", "googlenet", "vgg"}


class TestRendering:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_renderers_mention_artifacts(self):
        assert "Fig. 3" in render_fig3(fig3_unrolling())
        assert "Fig. 7" in render_fig7(fig7_conv1(configs=[CONFIG_16_16]))
        assert "Fig. 9" in render_fig9(fig9_zhang_comparison())
        assert "Table 4" in render_table4(table4_cpu_comparison())
        assert "Table 5" in render_table5(table5_pe_energy())

    def test_fig7_pivot_has_all_columns(self):
        text = render_fig7(fig7_conv1(configs=[CONFIG_16_16]))
        for scheme in ("ideal", "inter", "intra", "partition"):
            assert scheme in text


class TestTable1:
    def test_three_rows(self):
        from repro.analysis.experiments import table1_scheme_comparison

        rows = table1_scheme_comparison()
        assert [r.scheme for r in rows] == ["inter", "intra", "partition"]

    def test_render(self):
        from repro.analysis.experiments import table1_scheme_comparison
        from repro.analysis.report import render_table1

        text = render_table1(table1_scheme_comparison())
        assert "Table 1" in text
        assert "kernel = stride" in text


class TestHeadline:
    def test_values_in_sane_ranges(self):
        from repro.analysis.headline import headline_numbers

        h = headline_numbers()
        assert h.best_layer_speedup >= h.conv1_partition_vs_inter >= 1.0
        assert h.avg_adaptive_vs_inter >= 1.0
        assert -100 < h.avg_pe_energy_saving_pct < 100

    def test_render_mentions_paper_values(self):
        from repro.analysis.headline import headline_numbers, render_headline

        text = render_headline(headline_numbers())
        assert "5.80" in text and "28.04" in text


class TestEnergyBreakdownRender:
    def test_rows_and_components(self, alexnet, cfg16):
        from repro.adaptive import plan_network
        from repro.analysis.report import render_energy_breakdown

        runs = [plan_network(alexnet, cfg16, p) for p in ("inter", "adaptive-2")]
        text = render_energy_breakdown(runs)
        assert "alexnet/inter" in text
        assert "alexnet/adaptive-2" in text
        for col in ("PE", "in-buf", "out-buf", "w-buf", "DRAM", "total"):
            assert col in text
