"""ASCII plotting tests."""

import pytest

from repro.analysis.plots import grouped_log_chart, hbar_chart
from repro.errors import ConfigError


class TestHbarChart:
    def test_contains_labels_and_values(self):
        text = hbar_chart({"a": 10.0, "b": 100.0}, title="demo")
        assert "demo" in text
        assert "a |" in text.replace("  ", " ") or "a |" in text
        assert "100" in text

    def test_max_bar_for_max_value(self):
        text = hbar_chart({"small": 1.0, "big": 100.0}, max_width=20)
        lines = text.splitlines()
        big_line = [l for l in lines if "big" in l][0]
        small_line = [l for l in lines if "small" in l][0]
        assert big_line.count("█") > small_line.count("█")

    def test_log_scale_compresses(self):
        lin = hbar_chart({"a": 1.0, "b": 1000.0}, max_width=40, log=False)
        log = hbar_chart({"a": 1.0, "b": 1000.0}, max_width=40, log=True)
        a_lin = [l for l in lin.splitlines() if l.startswith("a ")][0].count("█")
        a_log = [l for l in log.splitlines() if l.startswith("a ")][0].count("█")
        assert a_log <= a_lin  # log floor is 1 char; both tiny but log <= lin
        b_log = [l for l in log.splitlines() if l.startswith("b ")][0].count("█")
        assert b_log == 40

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            hbar_chart({})

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            hbar_chart({"a": 0.0})

    def test_equal_values_ok(self):
        text = hbar_chart({"a": 5.0, "b": 5.0}, log=True)
        assert text.count("\n") == 1


class TestGroupedChart:
    DATA = {
        "g1": {"inter": 100.0, "partition": 10.0},
        "g2": {"inter": 200.0, "partition": 50.0},
    }

    def test_all_groups_and_series_present(self):
        text = grouped_log_chart(self.DATA, title="t")
        assert "-- g1" in text and "-- g2" in text
        assert text.count("inter") == 2
        assert text.count("partition") == 2

    def test_shared_scale_across_groups(self):
        text = grouped_log_chart(self.DATA, max_width=30)
        lines = [l for l in text.splitlines() if "inter" in l]
        # g2's inter (global max) has the full width
        assert max(l.count("█") for l in lines) == 30

    def test_series_order_respected(self):
        text = grouped_log_chart(self.DATA, series_order=["partition", "inter"])
        g1_block = text.split("-- g2")[0]
        assert g1_block.index("partition") < g1_block.index("inter")

    def test_missing_series_skipped(self):
        data = {"g1": {"a": 1.0}, "g2": {"a": 2.0, "b": 3.0}}
        text = grouped_log_chart(data)
        assert text.count(" a ") + text.count(" a|") >= 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            grouped_log_chart({})
