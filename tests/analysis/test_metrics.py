"""Metric helper tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.metrics import (
    arithmetic_mean,
    geomean,
    reduction_pct,
    speedup,
)
from repro.errors import ConfigError


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 5.0) == 2.0

    def test_slowdown_below_one(self):
        assert speedup(5.0, 10.0) == 0.5

    def test_invalid(self):
        with pytest.raises(ConfigError):
            speedup(0.0, 1.0)
        with pytest.raises(ConfigError):
            speedup(1.0, -1.0)


class TestReduction:
    def test_basic(self):
        assert reduction_pct(100.0, 10.0) == pytest.approx(90.0)

    def test_negative_when_worse(self):
        """Table 5's VGG intra row is negative: intra costs MORE energy."""
        assert reduction_pct(100.0, 144.72) == pytest.approx(-44.72)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigError):
            reduction_pct(0.0, 1.0)


class TestMeans:
    def test_geomean_of_equal_values(self):
        assert geomean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_geomean_known(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            geomean([1.0, 0.0])
        with pytest.raises(ConfigError):
            geomean([])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    def test_arithmetic_mean_empty(self):
        with pytest.raises(ConfigError):
            arithmetic_mean([])

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20))
    def test_geomean_leq_arithmetic(self, values):
        """AM-GM inequality holds for our implementations."""
        assert geomean(values) <= arithmetic_mean(values) + 1e-9

    @given(
        st.floats(0.1, 100.0),
        st.floats(0.1, 100.0),
    )
    def test_speedup_reduction_consistency(self, base, new):
        """speedup s and reduction r satisfy r = 100 * (1 - 1/s)."""
        s = speedup(base, new)
        r = reduction_pct(base, new)
        assert r == pytest.approx(100.0 * (1.0 - 1.0 / s))
