"""Sweep utility tests."""

import pytest

from repro.analysis.sweeps import (
    pe_shapes_for_budget,
    sweep_parameter,
    sweep_pe_shapes,
)
from repro.errors import ConfigError


class TestSweepParameter:
    def test_bandwidth_sweep_monotone(self, alexnet, cfg16):
        points = sweep_parameter(
            alexnet, cfg16, "dram_words_per_cycle", [1, 2, 4, 8]
        )
        cycles = [p.total_cycles for p in points]
        assert cycles == sorted(cycles, reverse=True)
        assert [p.value for p in points] == [1, 2, 4, 8]

    def test_compute_cycles_invariant_under_bandwidth(self, alexnet, cfg16):
        points = sweep_parameter(
            alexnet, cfg16, "dram_words_per_cycle", [1, 8]
        )
        assert points[0].compute_cycles == points[1].compute_cycles

    def test_unknown_parameter(self, alexnet, cfg16):
        with pytest.raises(ConfigError):
            sweep_parameter(alexnet, cfg16, "cache_ways", [1, 2])

    def test_policy_passthrough(self, alexnet, cfg16):
        inter = sweep_parameter(
            alexnet, cfg16, "dram_words_per_cycle", [4], policy="inter"
        )[0]
        adaptive = sweep_parameter(
            alexnet, cfg16, "dram_words_per_cycle", [4], policy="adaptive-2"
        )[0]
        assert adaptive.total_cycles < inter.total_cycles

    def test_milliseconds_helper(self, alexnet, cfg16):
        point = sweep_parameter(alexnet, cfg16, "dram_words_per_cycle", [4])[0]
        assert point.milliseconds(1e9) == pytest.approx(
            point.total_cycles / 1e6
        )


class TestPeShapes:
    def test_exact_budget(self):
        shapes = pe_shapes_for_budget(256, tolerance=0.0)
        assert set(shapes) == {(4, 64), (8, 32), (16, 16), (32, 8), (64, 4)}

    def test_tolerance_widens(self):
        strict = pe_shapes_for_budget(256, tolerance=0.0)
        loose = pe_shapes_for_budget(256, tolerance=1.0)
        assert len(loose) > len(strict)

    def test_invalid_budget(self):
        with pytest.raises(ConfigError):
            pe_shapes_for_budget(0)

    def test_no_match_raises(self):
        with pytest.raises(ConfigError):
            pe_shapes_for_budget(7, tolerance=0.0)

    def test_sweep_pe_shapes(self, alexnet, cfg16):
        results = sweep_pe_shapes(alexnet, cfg16, 256)
        assert "16-16" in results
        # narrow-Tin shapes beat wide-Tin shapes on AlexNet (shallow conv1)
        assert results["8-32"].total_cycles <= results["64-4"].total_cycles
        for point in results.values():
            assert 0 < point.utilization <= 1.0
