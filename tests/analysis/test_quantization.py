"""16-bit fixed-point accuracy tests (the Table 3 'good enough' claim)."""

import math

import pytest

from repro.analysis.quantization import (
    quantization_report,
    render_quantization,
)
from repro.arch.fixedpoint import FixedPointFormat
from repro.errors import ConfigError
from repro.nn.zoo import sequential_cnn


def small_net():
    return sequential_cnn(
        "qnet", (3, 24, 24), "C16k5s2 R C24k3s1p1 R P2 C10k1"
    )


class TestQuantizationReport:
    def test_every_layer_reported(self):
        net = small_net()
        rows = quantization_report(net)
        assert [r.layer for r in rows] == [l.name for l in net]

    def test_q78_is_good_enough(self):
        """DianNao-class target: comfortably above 30 dB everywhere."""
        for row in quantization_report(small_net()):
            assert row.sqnr_db > 30.0, row.layer

    def test_wider_fraction_is_more_accurate(self):
        net = small_net()
        q8 = quantization_report(net, fmt=FixedPointFormat(16, 8))
        q12 = quantization_report(net, fmt=FixedPointFormat(16, 12))
        # compare final-layer SQNR: 4 more fraction bits ~ +24 dB
        assert q12[-1].sqnr_db > q8[-1].sqnr_db + 10.0

    def test_errors_bounded(self):
        for row in quantization_report(small_net()):
            assert row.max_abs_error < 0.1

    def test_deterministic(self):
        a = quantization_report(small_net(), seed=3)
        b = quantization_report(small_net(), seed=3)
        assert a == b

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            quantization_report(small_net(), image_scale=0)

    def test_render(self):
        text = render_quantization(quantization_report(small_net()))
        assert "SQNR" in text
        assert "conv1" in text

    def test_relu_cannot_worsen_sqnr_to_nan(self):
        rows = quantization_report(small_net())
        for row in rows:
            assert not math.isnan(row.sqnr_db)
