"""Reuse analytics tests — the paper's reuse claims as numbers."""

import pytest

from repro.analysis.reuse import render_reuse, reuse_for_layer, reuse_table
from repro.errors import ScheduleError

from tests.conftest import make_ctx


class TestReuseFactors:
    def test_inter_has_no_weight_reuse(self, cfg16):
        """'each operation has to reload and flush the data and weight':
        inter's weight reuse is exactly 1 MAC per weight word fetched."""
        ctx = make_ctx(in_maps=16, out_maps=16, kernel=3, pad=1, hw=12)
        row = reuse_for_layer(ctx, cfg16, "inter")
        assert row.weight_reuse == pytest.approx(1.0)

    def test_improved_inter_hits_weight_ceiling(self, cfg16):
        """Weight-resident streaming: every weight fetched exactly once."""
        ctx = make_ctx(in_maps=32, out_maps=32, kernel=3, pad=1, hw=12)
        row = reuse_for_layer(ctx, cfg16, "inter-improved")
        # ceiling counts the bias words too; allow that epsilon
        assert row.weight_reuse >= 0.95 * row.weight_reuse_ceiling

    def test_intra_weight_reuse_near_ceiling(self, cfg16):
        ctx = make_ctx(in_maps=4, out_maps=16, kernel=5, stride=1, hw=16)
        row = reuse_for_layer(ctx, cfg16, "intra")
        assert row.weight_reuse >= 0.95 * row.weight_reuse_ceiling

    def test_partition_beats_inter_on_both_axes_for_conv1(
        self, alexnet_conv1_ctx, cfg16
    ):
        """Table 1's 'both of above' row, quantified."""
        inter = reuse_for_layer(alexnet_conv1_ctx, cfg16, "inter")
        part = reuse_for_layer(alexnet_conv1_ctx, cfg16, "partition")
        assert part.weight_reuse > 10 * inter.weight_reuse
        assert part.macs_per_buffer_access > inter.macs_per_buffer_access

    def test_reuse_never_exceeds_ceiling_pathologically(self, cfg16):
        """Reuse above the ceiling would mean fetching fewer words than
        exist — only possible via the >=1 clamps on degenerate layers."""
        ctx = make_ctx(in_maps=16, out_maps=16, kernel=3, pad=1, hw=12)
        for scheme in ("inter", "inter-improved", "intra", "partition"):
            row = reuse_for_layer(ctx, cfg16, scheme)
            assert row.data_reuse <= row.data_reuse_ceiling * 1.01, scheme


class TestReuseTable:
    def test_skips_illegal_schemes(self, cfg16):
        ctx = make_ctx(in_maps=16, out_maps=16, kernel=1, hw=8)
        rows = reuse_table(ctx, cfg16)
        assert "partition" not in {r.scheme for r in rows}
        assert len(rows) == 3

    def test_render(self, alexnet_conv1_ctx, cfg16):
        text = render_reuse(reuse_table(alexnet_conv1_ctx, cfg16))
        assert "weight reuse" in text
        assert "partition" in text

    def test_unknown_scheme_raises(self, cfg16):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            reuse_for_layer(make_ctx(), cfg16, "warp")
