"""Timeline rendering tests."""

import pytest

from repro.adaptive import plan_network
from repro.analysis.timeline import render_timeline
from repro.errors import ConfigError
from repro.sim.trace import NetworkRun


class TestRenderTimeline:
    def test_two_lines_per_layer_plus_title(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        text = render_timeline(run)
        assert len(text.splitlines()) == 1 + 2 * len(run.layers)

    def test_bound_markers(self, alexnet, cfg16):
        """intra's conv1 is memory-bound [M], its conv3 compute-bound [C]."""
        run = plan_network(alexnet, cfg16, "intra")
        text = render_timeline(run)
        conv1_line = [l for l in text.splitlines() if l.lstrip().startswith("conv1")][0]
        conv3_line = [l for l in text.splitlines() if l.lstrip().startswith("conv3")][0]
        assert "[M]" in conv1_line
        assert "[C]" in conv3_line

    def test_longest_layer_gets_full_width(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        text = render_timeline(run, width=30)
        assert max(l.count("█") for l in text.splitlines()) == 30

    def test_top_filter(self, googlenet, cfg16):
        run = plan_network(googlenet, cfg16, "adaptive-2")
        text = render_timeline(run, top=4)
        assert len(text.splitlines()) == 1 + 2 * 4

    def test_empty_run_rejected(self, cfg16):
        empty = NetworkRun(network_name="x", policy="p", config=cfg16)
        with pytest.raises(ConfigError):
            render_timeline(empty)
