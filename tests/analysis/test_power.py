"""Power-trace tests."""

import pytest

from repro.adaptive import plan_network
from repro.analysis.power import (
    average_power_w,
    peak_power_w,
    power_trace,
    render_power,
)
from repro.errors import ConfigError
from repro.sim.trace import NetworkRun


class TestPowerTrace:
    def test_one_sample_per_layer_with_cumulative_starts(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        samples = power_trace(run)
        assert len(samples) == len(run.layers)
        for earlier, later in zip(samples, samples[1:]):
            assert later.start_ms == pytest.approx(
                earlier.start_ms + earlier.duration_ms
            )

    def test_energy_sums_to_run_total(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        total = sum(s.energy_uj for s in power_trace(run))
        assert total == pytest.approx(run.energy().total_pj / 1e6, rel=1e-6)

    def test_durations_span_the_run(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        samples = power_trace(run)
        end = samples[-1].start_ms + samples[-1].duration_ms
        assert end == pytest.approx(run.milliseconds(), rel=1e-9)


class TestPowerFigures:
    def test_average_in_plausible_band(self, alexnet, cfg16):
        """A 256-multiplier 45 nm design draws somewhere between tens of
        mW and a handful of watts — DianNao-era territory."""
        run = plan_network(alexnet, cfg16, "adaptive-2")
        avg = average_power_w(run)
        assert 0.05 < avg < 10.0

    def test_peak_at_least_average(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        assert peak_power_w(run) >= average_power_w(run) * 0.999

    def test_adaptive_draws_less_average_power_than_inter(self, alexnet, cfg16):
        """Less traffic at similar-or-better time: the adaptive plan's
        average power is lower, not just its energy."""
        inter = plan_network(alexnet, cfg16, "inter")
        adaptive = plan_network(alexnet, cfg16, "adaptive-2")
        assert average_power_w(adaptive) < average_power_w(inter)

    def test_empty_run_rejected(self, cfg16):
        empty = NetworkRun(network_name="x", policy="p", config=cfg16)
        with pytest.raises(ConfigError):
            average_power_w(empty)
        with pytest.raises(ConfigError):
            peak_power_w(empty)


class TestRender:
    def test_render_and_top(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        text = render_power(run)
        assert "avg" in text and "peak" in text
        top = render_power(run, top=2)
        data_lines = [l for l in top.splitlines()[3:] if l.strip()]
        assert len(data_lines) == 2
