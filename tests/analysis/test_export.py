"""CSV/JSON export tests."""

import csv
import io
import json

import pytest

from repro.analysis.experiments import fig3_unrolling, fig7_conv1, table4_cpu_comparison
from repro.analysis.export import rows_to_dicts, to_csv, to_json, write_csv, write_json
from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError


class TestRowsToDicts:
    def test_fields_present(self):
        records = rows_to_dicts(fig7_conv1(configs=[CONFIG_16_16]))
        assert set(records[0]) == {"config", "network", "scheme", "cycles"}

    def test_derived_properties_included(self):
        records = rows_to_dicts(fig3_unrolling())
        assert "factor" in records[0]
        assert records[0]["factor"] == pytest.approx(
            records[0]["unrolled_bits"] / records[0]["raw_bits"]
        )

    def test_table4_speedups_included(self):
        records = rows_to_dicts(table4_cpu_comparison())
        assert "speedup16" in records[0] and "speedup32" in records[0]

    def test_empty(self):
        assert rows_to_dicts([]) == []

    def test_non_dataclass_rejected(self):
        with pytest.raises(ConfigError):
            rows_to_dicts([{"not": "a dataclass"}])


class TestCsv:
    def test_roundtrip(self):
        rows = fig7_conv1(configs=[CONFIG_16_16])
        text = to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(rows)
        assert parsed[0]["network"] == rows[0].network
        assert float(parsed[0]["cycles"]) == rows[0].cycles

    def test_empty(self):
        assert to_csv([]) == ""

    def test_write(self, tmp_path):
        path = tmp_path / "fig7.csv"
        write_csv(fig7_conv1(configs=[CONFIG_16_16]), str(path))
        assert path.read_text().startswith("config,network,scheme,cycles")


class TestJson:
    def test_roundtrip(self):
        rows = fig3_unrolling()
        parsed = json.loads(to_json(rows))
        assert len(parsed) == 10
        assert parsed[0]["network"] == "alexnet"

    def test_write(self, tmp_path):
        path = tmp_path / "fig3.json"
        write_json(fig3_unrolling(), str(path))
        assert json.loads(path.read_text())[0]["layer"] == "conv1"
