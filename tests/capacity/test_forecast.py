"""Forecast specs and the mixed diurnal generator: determinism and shape."""

from __future__ import annotations

import pytest

from repro.capacity.forecast import ForecastSpec
from repro.errors import ConfigError
from repro.serve.workload import (
    MixedTenantSpec,
    mixed_arrivals,
    mixed_diurnal_arrivals,
    parse_tenant_mix,
)

TENANTS = tuple(parse_tenant_mix("acme=alexnet:3/nin:1@2,beta=nin", slo_ms=150.0))


class TestMixedDiurnalArrivals:
    def test_same_seed_same_requests(self):
        a = mixed_diurnal_arrivals(10.0, 60.0, 1.0, TENANTS, seed=7, day_s=4.0)
        b = mixed_diurnal_arrivals(10.0, 60.0, 1.0, TENANTS, seed=7, day_s=4.0)
        assert a == b
        assert a != mixed_diurnal_arrivals(10.0, 60.0, 1.0, TENANTS, seed=8, day_s=4.0)

    def test_draws_networks_from_tenant_mixes(self):
        requests = mixed_diurnal_arrivals(
            20.0, 120.0, 1.0, TENANTS, seed=1, day_s=4.0
        )
        by_tenant = {t.name: set() for t in TENANTS}
        for r in requests:
            by_tenant[r.tenant].add(r.network)
        assert by_tenant["acme"] == {"alexnet", "nin"}
        assert by_tenant["beta"] == {"nin"}

    def test_flash_crowd_adds_traffic(self):
        calm = mixed_diurnal_arrivals(20.0, 40.0, 1.0, TENANTS, seed=3, day_s=4.0)
        flashy = mixed_diurnal_arrivals(
            20.0, 40.0, 1.0, TENANTS, seed=3, day_s=4.0,
            flash_crowds=((1.0, 2.0, 4.0),),
        )
        assert len(flashy) > len(calm)

    def test_validation(self):
        with pytest.raises(ConfigError, match="peak_rate"):
            mixed_diurnal_arrivals(10.0, 5.0, 1.0, TENANTS)
        with pytest.raises(ConfigError, match="flash crowd"):
            mixed_diurnal_arrivals(
                10.0, 20.0, 1.0, TENANTS, flash_crowds=((0.0, -1.0, 2.0),)
            )


class TestForecastSpec:
    def test_parse_round_trips_the_tenant_grammar(self):
        spec = ForecastSpec.parse(
            "acme=alexnet:3/nin:1@2,beta=nin", rate=50.0, duration_s=2.0,
            slo_ms=150.0, seed=4,
        )
        assert [t.name for t in spec.tenants] == ["acme", "beta"]
        assert spec.max_slo_s == pytest.approx(0.15)

    def test_requests_are_deterministic_and_match_the_generator(self):
        spec = ForecastSpec(tenants=TENANTS, rate=40.0, duration_s=2.0, seed=9)
        assert spec.requests() == spec.requests()
        assert spec.requests() == mixed_arrivals(40.0, 2.0, list(TENANTS), seed=9)

    def test_diurnal_kind_uses_the_diurnal_generator(self):
        spec = ForecastSpec(
            tenants=TENANTS, rate=10.0, duration_s=8.0, kind="diurnal",
            peak_rate=60.0, day_s=4.0, seed=2,
        )
        assert spec.requests() == mixed_diurnal_arrivals(
            10.0, 60.0, 2.0, list(TENANTS), seed=2, day_s=4.0
        )

    def test_network_shares_fold_tenant_weights(self):
        spec = ForecastSpec(tenants=TENANTS, rate=1.0, duration_s=1.0)
        shares = dict(spec.network_shares())
        # acme carries 2/3 of traffic, split 3:1 alexnet:nin; beta is all nin
        assert shares["alexnet"] == pytest.approx(0.5)
        assert shares["nin"] == pytest.approx(0.5)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigError, match="unknown forecast kind"):
            ForecastSpec(tenants=TENANTS, rate=1.0, duration_s=1.0, kind="spiky")
        with pytest.raises(ConfigError, match="at least one tenant"):
            ForecastSpec(tenants=(), rate=1.0, duration_s=1.0)
        with pytest.raises(ConfigError, match="peak_rate"):
            ForecastSpec(
                tenants=TENANTS, rate=10.0, duration_s=1.0, kind="diurnal",
                peak_rate=5.0,
            )

    def test_spec_is_hashable_for_the_worker_memo(self):
        spec = ForecastSpec(tenants=TENANTS, rate=1.0, duration_s=1.0)
        assert {spec: 1}[spec] == 1

    def test_to_dict_is_json_stable(self):
        spec = ForecastSpec(
            tenants=(MixedTenantSpec("t", (("nin", 1.0),)),),
            rate=5.0, duration_s=2.0, kind="diurnal", peak_rate=9.0, day_s=4.0,
        )
        d = spec.to_dict()
        assert d["kind"] == "diurnal"
        assert d["peak_rate_rps"] == 9.0
        assert d["tenants"][0]["mix"] == [["nin", 1.0]]
