"""Analytic bounds: probes, mix weighting, and the one-sidedness invariant."""

from __future__ import annotations

import pytest

from repro.capacity.bounds import (
    attainment_bound,
    candidate_capacity_rps,
    mix_image_seconds,
    probe_batches,
)
from repro.capacity.forecast import ForecastSpec
from repro.capacity.grid import Candidate
from repro.serve.batcher import BatchCoster
from repro.serve.workload import parse_tenant_mix

TENANTS = tuple(parse_tenant_mix("acme=alexnet:1/nin:1", slo_ms=200.0))
FORECAST = ForecastSpec(tenants=TENANTS, rate=50.0, duration_s=2.0, seed=1)


def test_probe_batches_covers_one_and_the_cap():
    assert probe_batches(1) == [1]
    assert probe_batches(16) == [1, 2, 4, 8, 16]
    assert probe_batches(12) == [1, 2, 4, 8, 12]


def test_mix_image_seconds_is_the_share_weighted_mean(cfg16):
    coster = BatchCoster(cfg16)
    shares = FORECAST.network_shares()
    expected = sum(
        share * coster.image_seconds(net, 4) for net, share in shares
    )
    assert mix_image_seconds(coster, shares, 4) == pytest.approx(expected)


def test_capacity_scales_with_replicas():
    one = candidate_capacity_rps(Candidate("16-16", 1), FORECAST)
    four = candidate_capacity_rps(Candidate("16-16", 4), FORECAST)
    assert four == pytest.approx(4 * one)


def test_batching_never_hurts_the_bound():
    b1 = candidate_capacity_rps(Candidate("16-16", 1, max_batch=1), FORECAST)
    b16 = candidate_capacity_rps(Candidate("16-16", 1, max_batch=16), FORECAST)
    assert b16 >= b1


def test_sharded_capacity_costs_through_the_shard_model():
    from repro.cluster.link import LinkSpec
    from repro.cluster.replica import PipelinedReplica

    candidate = Candidate("16-16", 2, "pipeline", group=2, max_batch=8)
    got = candidate_capacity_rps(candidate, FORECAST, link_gbs=25.0)
    shard = PipelinedReplica(
        Candidate("16-16", 2).config, 2, link=LinkSpec(bandwidth_gbs=25.0),
        strategy="pipeline",
    )
    shares = FORECAST.network_shares()
    expected = 1.0 / min(
        mix_image_seconds(shard, shares, b) for b in probe_batches(8)
    )
    assert got == pytest.approx(expected)

def test_attainment_bound_clamps_and_scales():
    assert attainment_bound(100.0, 0, 10.0, 0.25) == 1.0
    assert attainment_bound(100.0, 10_000, 10.0, 0.25) == pytest.approx(0.1025)
    assert attainment_bound(1e9, 10, 10.0, 0.25) == 1.0
