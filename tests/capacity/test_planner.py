"""Planner end-to-end: determinism, pruning safety, faults, cache wiring."""

from __future__ import annotations

import json
import os

import pytest

from repro.capacity import (
    CandidateGrid,
    FaultModel,
    ForecastSpec,
    plan_capacity,
    render_report,
    report_to_json,
)
from repro.errors import ConfigError
from repro.perf.cache import schedule_cache

TENANTS = "acme=alexnet:3/nin:1@2,beta=nin"

GRID = CandidateGrid(
    geometries=("16-16",),
    chip_counts=(1, 2),
    strategies=("replicated", "pipeline"),
    groups=(2,),
    max_batches=(8,),
)

FORECAST = ForecastSpec.parse(
    TENANTS, rate=150.0, duration_s=2.5, slo_ms=150.0, seed=3
)

FAULTS = FaultModel(seed=2, crashes=1)


@pytest.fixture(autouse=True)
def _leave_cache_unpersisted():
    yield
    schedule_cache.configure(persist_dir="")


def _plan(tmp_path, **kwargs):
    kwargs.setdefault("grid", GRID)
    kwargs.setdefault("forecast", FORECAST)
    kwargs.setdefault("slo_target", 0.9)
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    return plan_capacity(**kwargs)


class TestDeterminism:
    def test_ranked_json_byte_identical_across_jobs_and_reruns(self, tmp_path):
        a = report_to_json(_plan(tmp_path, fault_model=FAULTS, jobs=1))
        b = report_to_json(_plan(tmp_path, fault_model=FAULTS, jobs=2))
        c = report_to_json(_plan(tmp_path, fault_model=FAULTS, jobs=2))
        assert a == b  # fan-out must not leak into the ranking
        assert b == c  # warm disk cache must not either

    def test_progress_callback_observes_without_perturbing(self, tmp_path):
        seen = []
        with_cb = _plan(
            tmp_path, jobs=1, progress=lambda done, total: seen.append((done, total))
        )
        without = _plan(tmp_path, jobs=1)
        assert report_to_json(with_cb) == report_to_json(without)
        total = with_cb["search"]["simulated"]
        assert seen == [(k, total) for k in range(1, total + 1)]


class TestPruningSafety:
    def test_bound_dominates_simulated_attainment(self, tmp_path):
        report = _plan(tmp_path, prune=False)
        for name, entry in report["deployments"].items():
            assert (
                entry["bound"]["attainment"] + 1e-6
                >= entry["healthy"]["attainment"]
            ), name

    def test_pruning_preserves_the_exhaustive_winner(self, tmp_path):
        forecast = ForecastSpec.parse(
            TENANTS, rate=250.0, duration_s=2.5, slo_ms=150.0, seed=3
        )
        pruned = _plan(tmp_path, forecast=forecast)
        full = _plan(tmp_path, forecast=forecast, prune=False)
        assert pruned["search"]["pruned"] > 0  # the test must actually prune
        assert pruned["winner"] == full["winner"]
        # every feasible candidate survived pruning, in the same order
        n_feasible = full["search"]["feasible"]
        assert pruned["search"]["feasible"] == n_feasible
        assert pruned["ranking"][:n_feasible] == full["ranking"][:n_feasible]

    def test_rescue_pass_restores_exhaustive_ranking(self, tmp_path):
        # a forecast nothing in the grid can satisfy: everything is pruned,
        # so the rescue pass must simulate it all and match exhaustive
        forecast = ForecastSpec.parse(
            TENANTS, rate=4000.0, duration_s=1.0, slo_ms=50.0, seed=3
        )
        grid = CandidateGrid(
            geometries=("16-16",), chip_counts=(1, 2), max_batches=(8,)
        )
        rescued = _plan(tmp_path, grid=grid, forecast=forecast, slo_target=0.99)
        full = _plan(
            tmp_path, grid=grid, forecast=forecast, slo_target=0.99, prune=False
        )
        assert rescued["search"]["rescued"] is True
        assert rescued["search"]["simulated"] == len(grid.enumerate())
        assert rescued["ranking"] == full["ranking"]
        assert rescued["winner"] == full["winner"]


class TestFaultsAndAbft:
    def test_fault_model_rewards_redundancy(self, tmp_path):
        grid = CandidateGrid(
            geometries=("16-16",), chip_counts=(1, 4), max_batches=(8,)
        )
        report = _plan(tmp_path, grid=grid, fault_model=FAULTS)
        lone = report["deployments"]["16-16 x1 replicated b8"]["degraded"]
        quad = report["deployments"]["16-16 x4 replicated b8"]["degraded"]
        # losing 1 of 4 chips must hurt less than losing your only chip
        assert quad["attainment"] > lone["attainment"]

    def test_sdc_escapes_only_without_abft(self, tmp_path):
        grid = CandidateGrid(
            geometries=("16-16",), chip_counts=(1,), max_batches=(8,)
        )
        sdc = FaultModel(seed=2, crashes=0, sdc_windows=2)
        unguarded = _plan(tmp_path, grid=grid, fault_model=sdc)
        guarded = _plan(tmp_path, grid=grid, fault_model=sdc, abft=True)
        name = "16-16 x1 replicated b8"
        loose = unguarded["deployments"][name]["degraded"]
        tight = guarded["deployments"][name]["degraded"]
        assert loose["escaped_requests"] > 0
        assert loose["verified_attainment"] < loose["attainment"]
        assert tight["escaped_requests"] == 0

    def test_crashes_clamp_to_fleet_size(self, tmp_path):
        grid = CandidateGrid(
            geometries=("16-16",), chip_counts=(1,), max_batches=(8,)
        )
        report = _plan(
            tmp_path, grid=grid, fault_model=FaultModel(seed=2, crashes=3)
        )
        entry = report["deployments"]["16-16 x1 replicated b8"]
        assert entry["degraded"]["attainment"] < entry["healthy"]["attainment"]


class TestCacheWiring:
    def test_persists_to_planner_local_dir_by_default(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_PLAN_CACHE_DIR", raising=False)
        schedule_cache.clear()  # force misses so entries actually spill
        grid = CandidateGrid(
            geometries=("16-16",), chip_counts=(1,), max_batches=(4,)
        )
        forecast = ForecastSpec.parse(
            "t=nin", rate=30.0, duration_s=1.0, slo_ms=200.0, seed=1
        )
        report = plan_capacity(grid, forecast, slo_target=0.5, jobs=1)
        assert os.path.isdir(".repro-plan-cache")
        assert report["cache"]["persist_dir"] == ".repro-plan-cache"

    def test_opt_out_leaves_no_directory(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_PLAN_CACHE_DIR", raising=False)
        grid = CandidateGrid(
            geometries=("16-16",), chip_counts=(1,), max_batches=(4,)
        )
        forecast = ForecastSpec.parse(
            "t=nin", rate=30.0, duration_s=1.0, slo_ms=200.0, seed=1
        )
        report = plan_capacity(
            grid, forecast, slo_target=0.5, jobs=1, persist_cache=False
        )
        assert not os.path.exists(".repro-plan-cache")
        assert report["cache"]["persist_dir"] is None

    def test_stats_surface_in_text_report_but_not_in_json(self, tmp_path):
        report = _plan(tmp_path, jobs=1)
        text = render_report(report)
        assert "plan cache:" in text
        assert "disk writes" in text
        payload = json.loads(report_to_json(report))
        assert "cache" not in payload
        assert "winner" in payload


class TestValidation:
    def test_slo_target_range(self, tmp_path):
        with pytest.raises(ConfigError, match="slo_target"):
            _plan(tmp_path, slo_target=0.0)

    def test_fault_model_validation(self):
        with pytest.raises(ConfigError, match="crashes"):
            FaultModel(crashes=-1)
        with pytest.raises(ConfigError, match="sdc_per_batch"):
            FaultModel(sdc_per_batch=0.0)
