"""`python -m repro capacity` CLI tests."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.errors import ConfigError
from repro.perf.cache import schedule_cache

_FAST = [
    "--tenants", "acme=alexnet:3/nin:1@2,beta=nin",
    "--rate", "120", "--duration", "2", "--seed", "3",
    "--slo-ms", "150", "--slo-target", "0.9",
    "--geometries", "16-16", "--chips", "1,2",
    "--strategies", "replicated,pipeline", "--groups", "2",
    "--max-batches", "8",
]


@pytest.fixture(autouse=True)
def _leave_cache_unpersisted():
    yield
    schedule_cache.configure(persist_dir="")


def _cache_args(tmp_path):
    return ["--cache-dir", str(tmp_path / "cache")]


def test_table_output(capsys, tmp_path):
    assert main(["capacity"] + _FAST + _cache_args(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "capacity plan:" in out
    assert "winner:" in out
    assert "plan cache:" in out
    assert "cost/Mreq" in out


def test_json_stdout_is_ranked_and_stable(capsys, tmp_path):
    args = ["capacity"] + _FAST + _cache_args(tmp_path) + ["--json", "-"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args + ["--jobs", "2"]) == 0
    second = capsys.readouterr().out
    assert first == second  # byte-stable across reruns and --jobs
    payload = json.loads(first)
    assert payload["winner"] == payload["ranking"][0]
    assert "cache" not in payload
    assert payload["search"]["candidates"] == len(payload["deployments"])


def test_json_to_file_with_faults(capsys, tmp_path):
    target = tmp_path / "capacity.json"
    assert (
        main(
            ["capacity"] + _FAST + _cache_args(tmp_path)
            + ["--crashes", "1", "--json", str(target)]
        )
        == 0
    )
    payload = json.loads(target.read_text())
    assert payload["fault_model"]["crashes"] == 1
    winner = payload["deployments"][payload["winner"]]
    assert winner["degraded"] is not None


def test_progress_goes_to_stderr(capsys, tmp_path):
    assert main(["capacity"] + _FAST + _cache_args(tmp_path) + ["--progress"]) == 0
    captured = capsys.readouterr()
    assert "simulated" in captured.err
    assert "candidates" in captured.err


def test_no_persist_cache_opt_out(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.delenv("REPRO_PLAN_CACHE_DIR", raising=False)
    args = [
        "capacity", "--tenants", "t=nin", "--rate", "30", "--duration", "1",
        "--slo-target", "0.5", "--geometries", "16-16", "--chips", "1",
        "--max-batches", "4", "--no-persist-cache",
    ]
    assert main(args) == 0
    assert not (tmp_path / ".repro-plan-cache").exists()
    assert "persistence off" in capsys.readouterr().out


def test_bad_tenant_mix_rejected(tmp_path):
    with pytest.raises(ConfigError, match="bad tenant-mix entry"):
        main(["capacity", "--tenants", "oops"] + _cache_args(tmp_path))
