"""Candidate/grid semantics: validation, naming, fault mapping, enumeration."""

from __future__ import annotations

import pytest

from repro.capacity.grid import Candidate, CandidateGrid
from repro.errors import ConfigError


class TestCandidate:
    def test_name_is_stable_and_self_describing(self):
        c = Candidate("16-16", 4, "pipeline", group=2, max_batch=8)
        assert c.name == "16-16 x4 pipeline/g2 b8"
        assert Candidate("32-32", 2, "partitioned", split=2).name == (
            "32-32 x2 partitioned/2 b16"
        )
        assert Candidate("16-16", 1).name == "16-16 x1 replicated b16"

    def test_replica_counts_per_strategy(self):
        assert Candidate("16-16", 4).n_replicas == 4
        assert Candidate("16-16", 4, "pipeline", group=2).n_replicas == 2
        assert Candidate("16-16", 4, "data-parallel", group=4).n_replicas == 1
        assert Candidate("16-16", 2, "partitioned", split=2).n_replicas == 4

    def test_partitioned_slot_config_shrinks_the_array(self):
        c = Candidate("16-16", 1, "partitioned", split=2)
        assert c.slot_config.tin == 8
        assert c.slot_config.tout == 16

    def test_fleet_weight_uses_reference_multipliers(self):
        assert Candidate("16-16", 3).fleet_weight == 3.0
        assert Candidate("32-32", 1).fleet_weight == 4.0
        # partitioning rearranges a chip; it does not change what it costs
        assert Candidate("32-32", 1, "partitioned", split=2).fleet_weight == 4.0

    def test_group_must_divide_chips(self):
        with pytest.raises(ConfigError, match="does not divide"):
            Candidate("16-16", 3, "pipeline", group=2)

    def test_split_must_tile_the_pe_array(self):
        with pytest.raises(ConfigError, match="divisible"):
            Candidate("16-16", 1, "partitioned", split=3)

    def test_irrelevant_axes_must_stay_at_one(self):
        with pytest.raises(ConfigError, match="group=1"):
            Candidate("16-16", 4, "replicated", group=2)
        with pytest.raises(ConfigError, match="split=1"):
            Candidate("16-16", 4, "pipeline", group=2, split=2)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError, match="unknown strategy"):
            Candidate("16-16", 1, "mesh")


class TestChipReplicaMapping:
    def test_replicated_chip_is_its_own_replica(self):
        c = Candidate("16-16", 4)
        assert c.chip_replica(0) == (0,)
        assert c.chip_replica(3) == (3,)

    def test_sharded_group_dies_with_any_member_chip(self):
        c = Candidate("16-16", 4, "pipeline", group=2)
        assert c.chip_replica(0) == (0,)
        assert c.chip_replica(1) == (0,)
        assert c.chip_replica(2) == (1,)
        assert c.chip_replica(3) == (1,)

    def test_partitioned_chip_takes_all_coresident_partitions_down(self):
        c = Candidate("16-16", 2, "partitioned", split=2)
        assert c.chip_replica(0) == (0, 1)
        assert c.chip_replica(1) == (2, 3)

    def test_out_of_range_chip_rejected(self):
        with pytest.raises(ConfigError, match="out of range"):
            Candidate("16-16", 2).chip_replica(2)


class TestCandidateGrid:
    def test_enumeration_is_deterministic_and_deduplicated(self):
        grid = CandidateGrid(
            geometries=("16-16",),
            chip_counts=(1, 2, 4),
            strategies=("replicated", "pipeline", "partitioned"),
            groups=(2,),
            splits=(2,),
            max_batches=(1, 16),
        )
        first = [c.name for c in grid.enumerate()]
        second = [c.name for c in grid.enumerate()]
        assert first == second
        assert len(first) == len(set(first))
        # n_chips=1 cannot shard in groups of 2 — silently skipped
        assert not any("x1 pipeline" in name for name in first)
        assert "16-16 x4 pipeline/g2 b16" in first

    def test_extras_join_the_grid_once(self):
        extra = Candidate("32-32", 1, max_batch=4)
        grid = CandidateGrid(geometries=("16-16",), extras=(extra, extra))
        names = [c.name for c in grid.enumerate()]
        assert names.count(extra.name) == 1

    def test_empty_grid_is_an_error(self):
        with pytest.raises(ConfigError, match="empty"):
            CandidateGrid(
                geometries=("16-16",),
                chip_counts=(1,),
                strategies=("pipeline",),
                groups=(2,),
            ).enumerate()

    def test_axis_validation(self):
        with pytest.raises(ConfigError, match="at least one geometry"):
            CandidateGrid(geometries=())
        with pytest.raises(ConfigError, match="unknown strategy"):
            CandidateGrid(strategies=("mesh",))
        with pytest.raises(ConfigError, match="link_gbs"):
            CandidateGrid(link_gbs=0.0)
