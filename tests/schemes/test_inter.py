"""Inter-kernel scheme tests (Sec 4.1.1) — utilization cliffs and traffic."""

import math

import pytest

from repro.arch.config import CONFIG_16_16, CONFIG_32_32
from repro.schemes import make_scheme

from tests.conftest import make_ctx


class TestCycles:
    def test_formula(self, cfg16):
        ctx = make_ctx(in_maps=32, out_maps=32, kernel=3, pad=1, hw=8)
        r = make_scheme("inter").schedule(ctx, cfg16)
        assert r.operations == 64 * 9 * math.ceil(32 / 16) * math.ceil(32 / 16)

    def test_conv1_wastes_13_of_16_lanes(self, alexnet_conv1_ctx, cfg16):
        """Din=3 with Tin=16: '13 PEs unutilized' (Sec 4.1.1)."""
        r = make_scheme("inter").schedule(alexnet_conv1_ctx, cfg16)
        # data-side utilization is 3/16; output side is full (96 % 16 == 0)
        assert r.utilization == pytest.approx(3 / 16)

    def test_wider_array_wastes_more(self, alexnet_conv1_ctx):
        """'with Tin wider, more and more computing resources wasted'."""
        u16 = make_scheme("inter").schedule(alexnet_conv1_ctx, CONFIG_16_16).utilization
        u32 = make_scheme("inter").schedule(alexnet_conv1_ctx, CONFIG_32_32).utilization
        assert u32 < u16

    def test_matched_depth_reaches_ideal_compute(self, cfg16):
        """'When the number of input maps matches Tin, real == ideal'."""
        ctx = make_ctx(in_maps=16, out_maps=16, kernel=3, pad=1, hw=16)
        inter = make_scheme("inter").schedule(ctx, cfg16)
        ideal = make_scheme("ideal").schedule(ctx, cfg16)
        assert inter.operations == ideal.operations

    def test_chunk_quantization(self, cfg16):
        # Din=17 needs two chunks, one nearly empty
        ctx = make_ctx(in_maps=17, out_maps=16, kernel=3, pad=1, hw=8)
        r = make_scheme("inter").schedule(ctx, cfg16)
        assert r.utilization == pytest.approx(17 / 32)

    def test_grouped_layers(self, alexnet, cfg16):
        conv2 = [c for c in alexnet.conv_contexts() if c.name == "conv2"][0]
        r = make_scheme("inter").schedule(conv2, cfg16)
        # per group: 27*27 pixels, 25 window, ceil(48/16)=3, ceil(128/16)=8
        assert r.operations == 2 * 729 * 25 * 3 * 8


class TestTraffic:
    def test_no_weight_reuse(self, cfg16):
        """Every weight is re-fetched for every output pixel."""
        ctx = make_ctx(in_maps=16, out_maps=16, kernel=3, pad=1, hw=8)
        r = make_scheme("inter").schedule(ctx, cfg16)
        weights = 9 * 16 * 16
        assert r.accesses["weight"].loads == 64 * weights

    def test_data_refetched_per_output_chunk(self, cfg16):
        narrow = make_scheme("inter").schedule(
            make_ctx(in_maps=16, out_maps=16, kernel=3, pad=1, hw=8), cfg16
        )
        wide = make_scheme("inter").schedule(
            make_ctx(in_maps=16, out_maps=32, kernel=3, pad=1, hw=8), cfg16
        )
        assert wide.accesses["input"].loads == 2 * narrow.accesses["input"].loads

    def test_one_store_per_output_pixel(self, cfg16):
        ctx = make_ctx(in_maps=16, out_maps=16, kernel=3, pad=1, hw=8)
        r = make_scheme("inter").schedule(ctx, cfg16)
        # partial sums complete inside the PE: drain-only output traffic
        assert r.accesses["output"].stores == ctx.out_shape.elements

    def test_layouts_are_inter_order(self, cfg16):
        from repro.tiling.layout import Layout

        r = make_scheme("inter").schedule(make_ctx(), cfg16)
        assert r.input_layout is Layout.INTER
        assert r.output_layout is Layout.INTER

    def test_dram_matches_fills_plus_drain(self, cfg16, all_networks):
        for net in all_networks:
            for ctx in net.conv_contexts():
                r = make_scheme("inter").schedule(ctx, cfg16)
                fills = r.accesses["input"].stores + r.accesses["weight"].stores
                assert r.dram_words == fills + ctx.out_shape.elements, (
                    net.name,
                    ctx.name,
                )
