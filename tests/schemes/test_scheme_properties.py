"""Cross-scheme property tests: invariants every mapping must satisfy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import AcceleratorConfig, CONFIG_16_16
from repro.errors import ScheduleError
from repro.schemes import all_scheme_names, make_scheme

from tests.conftest import make_ctx

PRACTICAL = ("inter", "inter-improved", "intra", "partition", "pe2d")


def random_ctx(draw_tuple):
    k, s, d, dout, hw, groups = draw_tuple
    if k > hw or d % groups or dout % groups:
        return None
    return make_ctx(in_maps=d, out_maps=dout, kernel=k, stride=s, hw=hw, groups=groups)


layer_params = st.tuples(
    st.integers(1, 9),       # k
    st.integers(1, 4),       # s
    st.integers(1, 64),      # d
    st.integers(1, 64),      # dout
    st.integers(10, 40),     # hw
    st.sampled_from([1, 2]), # groups
)


class TestUniversalInvariants:
    @settings(deadline=None, max_examples=60)
    @given(params=layer_params, scheme=st.sampled_from(PRACTICAL))
    def test_core_invariants(self, params, scheme):
        ctx = random_ctx(params)
        if ctx is None:
            return
        try:
            r = make_scheme(scheme).schedule(ctx, CONFIG_16_16)
        except ScheduleError:
            return
        # MACs are exactly the layer's work
        assert r.useful_macs == ctx.macs
        # the array can physically perform the claimed MACs
        assert r.useful_macs <= r.operations * CONFIG_16_16.multipliers
        # wall-clock covers compute
        assert r.total_cycles >= r.operations
        # every receptive field must be read at least once (note: a strided
        # 1x1 conv legitimately never touches the skipped input pixels, so
        # the bound is per-output coverage, not the raw input size; pe2d
        # reads each touched input once per output map, which also covers it)
        out_pixels = ctx.out_shape.height * ctx.out_shape.width
        assert r.accesses["input"].loads >= out_pixels
        assert r.accesses["output"].stores >= ctx.out_shape.elements
        assert r.dram_words >= ctx.out_shape.elements

    @settings(deadline=None, max_examples=40)
    @given(params=layer_params)
    def test_wider_tout_never_slower_compute(self, params):
        """More output lanes can only reduce (or keep) compute cycles."""
        ctx = random_ctx(params)
        if ctx is None:
            return
        narrow = AcceleratorConfig(tin=16, tout=8)
        wide = AcceleratorConfig(tin=16, tout=32)
        for scheme in ("inter", "intra"):
            a = make_scheme(scheme).schedule(ctx, narrow)
            b = make_scheme(scheme).schedule(ctx, wide)
            assert b.operations <= a.operations, scheme

    @settings(deadline=None, max_examples=40)
    @given(params=layer_params)
    def test_improved_inter_pareto(self, params):
        """Sec 4.2.2 is a strict refinement: same cycles, never more
        weight-buffer loads."""
        ctx = random_ctx(params)
        if ctx is None:
            return
        orig = make_scheme("inter").schedule(ctx, CONFIG_16_16)
        impr = make_scheme("inter-improved").schedule(ctx, CONFIG_16_16)
        assert impr.operations == orig.operations
        assert impr.accesses["weight"].loads <= orig.accesses["weight"].loads

    @settings(deadline=None, max_examples=40)
    @given(params=layer_params)
    def test_partition_legality_boundary(self, params):
        """partition schedules exactly the s < k layers."""
        ctx = random_ctx(params)
        if ctx is None:
            return
        scheme = make_scheme("partition")
        legal = ctx.layer.stride < ctx.layer.kernel
        assert scheme.supports(ctx, CONFIG_16_16) == legal

    @settings(deadline=None, max_examples=30)
    @given(params=layer_params)
    def test_all_schemes_consistent_macs(self, params):
        """Every legal scheme reports identical useful MACs (they compute
        the same convolution)."""
        ctx = random_ctx(params)
        if ctx is None:
            return
        macs = set()
        for name in all_scheme_names():
            try:
                macs.add(make_scheme(name).schedule(ctx, CONFIG_16_16).useful_macs)
            except ScheduleError:
                continue
        assert len(macs) == 1
