"""Auxiliary (non-conv) layer schedule tests."""

import math

import pytest

from repro.errors import ScheduleError
from repro.nn.layers import (
    ConcatLayer,
    ConvLayer,
    FCLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    TensorShape,
)
from repro.nn.network import LayerContext
from repro.schemes.auxiliary import schedule_auxiliary, supports_auxiliary

from tests.conftest import make_ctx


def aux_ctx(layer, in_shape):
    return LayerContext(layer, in_shape, layer.output_shape(in_shape))


class TestPool:
    def test_cycles(self, cfg16):
        ctx = aux_ctx(PoolLayer("p", kernel=3, stride=2), TensorShape(32, 27, 27))
        r = schedule_auxiliary(ctx, cfg16)
        # 13x13 outputs, ceil(9/16)=1 lane-cycle, ceil(32/16)=2 channel chunks
        assert r.operations == 169 * 1 * 2
        assert r.scheme == "aux-pool"
        assert r.useful_macs == 0

    def test_traffic(self, cfg16):
        ctx = aux_ctx(PoolLayer("p", kernel=2, stride=2), TensorShape(8, 8, 8))
        r = schedule_auxiliary(ctx, cfg16)
        assert r.accesses["input"].loads == 16 * 4 * 8
        assert r.accesses["output"].stores == 8 * 16


class TestFc:
    def test_cycles_and_macs(self, cfg16):
        ctx = aux_ctx(FCLayer("fc", out_features=64), TensorShape(32, 4, 4))
        r = schedule_auxiliary(ctx, cfg16)
        assert r.operations == math.ceil(512 / 16) * math.ceil(64 / 16)
        assert r.useful_macs == 512 * 64

    def test_fc_is_dma_bound(self, cfg16):
        """Batch-1 FC streams every weight once: memory bound."""
        ctx = aux_ctx(FCLayer("fc6", out_features=4096), TensorShape(256, 6, 6))
        r = schedule_auxiliary(ctx, cfg16)
        assert r.dma_cycles > r.operations
        assert r.total_cycles == pytest.approx(r.dma_cycles)

    def test_weights_loaded_once(self, cfg16):
        ctx = aux_ctx(FCLayer("fc", out_features=10), TensorShape(4, 2, 2))
        r = schedule_auxiliary(ctx, cfg16)
        assert r.accesses["weight"].loads == 160


class TestElementwise:
    def test_lrn_one_element_per_cycle(self, cfg16):
        ctx = aux_ctx(LRNLayer("n"), TensorShape(16, 10, 10))
        r = schedule_auxiliary(ctx, cfg16)
        assert r.operations == 1600

    def test_relu_is_free(self, cfg16):
        ctx = aux_ctx(ReLULayer("r"), TensorShape(16, 10, 10))
        r = schedule_auxiliary(ctx, cfg16)
        assert r.total_cycles == 0
        assert r.buffer_accesses == 0

    def test_concat_is_free(self, cfg16):
        layer = ConcatLayer("cat", branch_depths=(4, 4))
        ctx = LayerContext(
            layer, TensorShape(4, 6, 6), layer.output_shape(TensorShape(4, 6, 6))
        )
        r = schedule_auxiliary(ctx, cfg16)
        assert r.total_cycles == 0


class TestDispatch:
    def test_supports(self, cfg16):
        assert supports_auxiliary(aux_ctx(ReLULayer("r"), TensorShape(1, 2, 2)))
        assert not supports_auxiliary(make_ctx())

    def test_conv_rejected(self, cfg16):
        with pytest.raises(ScheduleError):
            schedule_auxiliary(make_ctx(), cfg16)


class TestWholeNetworkInclusion:
    def test_full_run_has_all_layers(self, alexnet, cfg16):
        from repro.adaptive import plan_network

        full = plan_network(alexnet, cfg16, "adaptive-2", include_non_conv=True)
        assert len(full.layers) == len(alexnet)

    def test_conv_dominates_macs_not_time(self, alexnet, cfg16):
        """The paper's 90%-of-workload claim is about MACs; batch-1 FC
        layers are DMA-bound and dominate *time* on this buffer budget."""
        from repro.adaptive import plan_network

        conv = plan_network(alexnet, cfg16, "adaptive-2")
        full = plan_network(alexnet, cfg16, "adaptive-2", include_non_conv=True)
        assert conv.total_macs / full.total_macs > 0.9
        assert full.total_cycles > conv.total_cycles

    def test_conv_only_totals_unchanged(self, alexnet, cfg16):
        from repro.adaptive import plan_network

        conv = plan_network(alexnet, cfg16, "adaptive-2")
        full = plan_network(alexnet, cfg16, "adaptive-2", include_non_conv=True)
        conv_in_full = [r for r in full.layers if not r.scheme.startswith("aux-")]
        assert sum(r.total_cycles for r in conv_in_full) == pytest.approx(
            sum(r.total_cycles for r in conv.layers)
        )
