"""Kernel-partitioning scheme tests (Sec 4.2.1 / Algorithm 1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import CONFIG_16_16, CONFIG_32_32
from repro.errors import ScheduleError
from repro.schemes import make_scheme
from repro.tiling.layout import Layout

from tests.conftest import make_ctx


class TestLegality:
    def test_rejects_k_equal_s(self, cfg16):
        with pytest.raises(ScheduleError):
            make_scheme("partition").schedule(
                make_ctx(kernel=2, stride=2, hw=16), cfg16
            )

    def test_rejects_1x1(self, cfg16):
        with pytest.raises(ScheduleError):
            make_scheme("partition").schedule(make_ctx(kernel=1), cfg16)

    def test_accepts_all_k_gt_s(self, cfg16):
        for k, s in [(11, 4), (7, 2), (5, 1), (3, 1), (3, 2)]:
            ctx = make_ctx(in_maps=3, out_maps=8, kernel=k, stride=s, hw=24)
            r = make_scheme("partition").schedule(ctx, cfg16)
            assert r.operations > 0


class TestConv1Cycles:
    def test_alexnet_conv1_formula(self, alexnet_conv1_ctx, cfg16):
        """9 pieces x 3 maps x 6 output chunks x 3025 window scans."""
        r = make_scheme("partition").schedule(alexnet_conv1_ctx, cfg16)
        # ks = 4, ks^2 = 16 = Tin: one window per op
        assert r.operations == 9 * 3 * 6 * 3025

    def test_alexnet_conv1_near_ideal(self, alexnet_conv1_ctx, cfg16):
        """Fig. 7: partition 'almost reaches the upper bound performance';
        the only overhead is the 144/121 zero-padding factor."""
        part = make_scheme("partition").schedule(alexnet_conv1_ctx, cfg16)
        ideal = make_scheme("ideal").schedule(alexnet_conv1_ctx, cfg16)
        ratio = part.total_cycles / ideal.total_cycles
        assert 1.0 <= ratio < 1.3

    def test_multiple_windows_per_op_on_wider_array(self, alexnet_conv1_ctx):
        r16 = make_scheme("partition").schedule(alexnet_conv1_ctx, CONFIG_16_16)
        r32 = make_scheme("partition").schedule(alexnet_conv1_ctx, CONFIG_32_32)
        assert r16.notes["windows_per_op"] == 1
        assert r32.notes["windows_per_op"] == 2
        # twice the windows per op -> about half the scan operations
        assert r32.operations < 0.7 * r16.operations

    def test_sub_window_larger_than_tin(self):
        """ks^2 > Tin: a window takes several operations."""
        from repro.arch.config import AcceleratorConfig

        tiny = AcceleratorConfig(tin=8, tout=8)
        ctx = make_ctx(in_maps=3, out_maps=8, kernel=11, stride=4, hw=35)
        r = make_scheme("partition").schedule(ctx, tiny)
        # ks^2 = 16 -> 2 ops per window
        out_pixels = ctx.out_shape.height * ctx.out_shape.width
        assert r.operations == 9 * 3 * 1 * out_pixels * 2

    def test_beats_inter_on_all_conv1(self, all_networks, cfg16):
        """The headline: partition >> inter for the critical bottom layers."""
        for net in all_networks:
            ctx = net.conv1()
            part = make_scheme("partition").schedule(ctx, cfg16)
            inter = make_scheme("inter").schedule(ctx, cfg16)
            assert inter.total_cycles > 2.0 * part.total_cycles, net.name


class TestTraffic:
    def test_weight_loads_cover_padded_grid_once(self, alexnet_conv1_ctx, cfg16):
        r = make_scheme("partition").schedule(alexnet_conv1_ctx, cfg16)
        # 9 pieces x 16 padded weights x 3 maps x 96 outputs
        assert r.accesses["weight"].loads == 9 * 16 * 3 * 96

    def test_add_and_store_per_piece_and_map(self, alexnet_conv1_ctx, cfg16):
        """Algorithm 1 lines 7-8: the output buffer accumulates G*d passes."""
        r = make_scheme("partition").schedule(alexnet_conv1_ctx, cfg16)
        out_elements = 96 * 55 * 55
        assert r.accesses["output"].stores == out_elements * 27
        assert r.extra_adds == out_elements * 26

    def test_top_layer_output_traffic_explodes(self, cfg16):
        """Why partition is wrong for top layers: G*d passes with d large."""
        top = make_ctx(in_maps=128, out_maps=128, kernel=3, pad=1, hw=14)
        part = make_scheme("partition").schedule(top, cfg16)
        impr = make_scheme("inter-improved").schedule(top, cfg16)
        assert part.accesses["output"].total > 5 * impr.accesses["output"].total

    def test_window_data_loads(self, alexnet_conv1_ctx, cfg16):
        r = make_scheme("partition").schedule(alexnet_conv1_ctx, cfg16)
        # per scan: 3025 windows x 16 words; scans = 9 pieces x 3 maps x 6 chunks
        assert r.accesses["input"].loads == 9 * 3 * 6 * 3025 * 16

    def test_dram_includes_partition_padding_only(self, alexnet_conv1_ctx, cfg16):
        r = make_scheme("partition").schedule(alexnet_conv1_ctx, cfg16)
        padded_input = 3 * 228 * 228
        padded_weights = 9 * 16 * 3 * 96
        out = 96 * 55 * 55
        assert r.dram_words == padded_input + padded_weights + out

    def test_layouts_are_intra_order(self, cfg16):
        r = make_scheme("partition").schedule(make_ctx(kernel=3, stride=1), cfg16)
        assert r.input_layout is Layout.INTRA
        assert r.output_layout is Layout.INTRA


class TestProperties:
    @settings(deadline=None, max_examples=40)
    @given(
        k=st.integers(2, 11),
        s=st.integers(1, 4),
        d=st.integers(1, 8),
        dout=st.sampled_from([8, 16, 24]),
        hw=st.integers(16, 40),
    )
    def test_cycles_at_least_padded_ideal(self, k, s, d, dout, hw):
        """Partition ops always cover the padded-MAC lower bound."""
        if s >= k or k > hw:
            return
        ctx = make_ctx(in_maps=d, out_maps=dout, kernel=k, stride=s, hw=hw)
        r = make_scheme("partition").schedule(ctx, CONFIG_16_16)
        padded_macs = r.useful_macs * r.notes["pad_overhead"]
        assert r.operations * CONFIG_16_16.multipliers >= padded_macs * 0.99

    @settings(deadline=None, max_examples=40)
    @given(k=st.integers(2, 9), s=st.integers(1, 4), hw=st.integers(16, 48))
    def test_pieces_note_matches_geometry(self, k, s, hw):
        if s >= k or k > hw:
            return
        ctx = make_ctx(in_maps=3, out_maps=8, kernel=k, stride=s, hw=hw)
        r = make_scheme("partition").schedule(ctx, CONFIG_16_16)
        assert r.notes["pieces"] == math.ceil(k / s) ** 2
        assert r.notes["sub_kernel"] == s
