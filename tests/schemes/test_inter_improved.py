"""Improved inter-kernel tests (Sec 4.2.2): same cycles, less traffic."""

import pytest

from repro.schemes import make_scheme

from tests.conftest import make_ctx


def top_layer_ctx():
    """A VGG-ish top layer: many maps, small kernel."""
    return make_ctx(in_maps=128, out_maps=128, kernel=3, pad=1, hw=14)


class TestPerformanceParity:
    def test_same_cycles_as_original(self, cfg16, all_networks):
        """'adpa-1 and adpa-2 are the same on performance'."""
        inter = make_scheme("inter")
        improved = make_scheme("inter-improved")
        for net in all_networks:
            for ctx in net.conv_contexts():
                assert (
                    improved.schedule(ctx, cfg16).operations
                    == inter.schedule(ctx, cfg16).operations
                ), (net.name, ctx.name)

    def test_same_utilization(self, cfg16):
        ctx = top_layer_ctx()
        assert (
            make_scheme("inter-improved").schedule(ctx, cfg16).utilization
            == make_scheme("inter").schedule(ctx, cfg16).utilization
        )


class TestTrafficTradeoff:
    def test_weights_loaded_exactly_once(self, cfg16):
        ctx = top_layer_ctx()
        r = make_scheme("inter-improved").schedule(ctx, cfg16)
        assert r.accesses["weight"].loads == 9 * 128 * 128

    def test_weight_load_savings_factor(self, cfg16):
        """The savings the paper quotes: ~X*Y*Dout*k*k*Din/Tin load ops."""
        ctx = top_layer_ctx()
        orig = make_scheme("inter").schedule(ctx, cfg16)
        impr = make_scheme("inter-improved").schedule(ctx, cfg16)
        saved = orig.accesses["weight"].loads - impr.accesses["weight"].loads
        out_pixels = ctx.out_shape.height * ctx.out_shape.width
        assert saved == (out_pixels - 1) * 9 * 128 * 128

    def test_extra_stores_per_partial_sum_pass(self, cfg16):
        """'induces X*Y*Dout*k*k more store operations' (x Din chunks)."""
        ctx = top_layer_ctx()
        r = make_scheme("inter-improved").schedule(ctx, cfg16)
        passes = 9 * 8  # k*k * ceil(128/16)
        assert r.accesses["output"].stores == ctx.out_shape.elements * passes

    def test_partial_sums_reloaded(self, cfg16):
        ctx = top_layer_ctx()
        r = make_scheme("inter-improved").schedule(ctx, cfg16)
        passes = 9 * 8
        # (passes - 1) accumulation reloads + 1 final drain
        assert r.accesses["output"].loads == ctx.out_shape.elements * passes

    def test_extra_adds_recorded(self, cfg16):
        ctx = top_layer_ctx()
        r = make_scheme("inter-improved").schedule(ctx, cfg16)
        assert r.extra_adds == ctx.out_shape.elements * (9 * 8 - 1)

    def test_net_traffic_reduction_on_top_layers(self, cfg16):
        """'Since Din is always much bigger than Tin in top layers, this
        method dramatically decreases buffer bandwidth occupancy'."""
        ctx = top_layer_ctx()
        orig = make_scheme("inter").schedule(ctx, cfg16)
        impr = make_scheme("inter-improved").schedule(ctx, cfg16)
        assert impr.buffer_accesses < orig.buffer_accesses / 3

    def test_no_benefit_needed_for_tiny_dout(self, cfg16):
        """Sanity: the scheme stays legal on bottom layers too."""
        ctx = make_ctx(in_maps=3, out_maps=8, kernel=11, stride=4, hw=35)
        r = make_scheme("inter-improved").schedule(ctx, cfg16)
        assert r.operations > 0

    def test_data_loads_unchanged(self, cfg16):
        ctx = top_layer_ctx()
        orig = make_scheme("inter").schedule(ctx, cfg16)
        impr = make_scheme("inter-improved").schedule(ctx, cfg16)
        assert impr.accesses["input"].loads == orig.accesses["input"].loads
