"""Intra-kernel scheme tests (Sec 4.1.2): sliding vs unrolling realizations."""

import math

import pytest

from repro.schemes import make_scheme
from repro.schemes.intra import IntraKernelScheme
from repro.tiling.layout import Layout

from tests.conftest import make_ctx


class TestModeSelection:
    def test_sliding_when_k_equals_s(self, cfg16):
        ctx = make_ctx(in_maps=4, out_maps=8, kernel=2, stride=2, hw=16)
        r = make_scheme("intra").schedule(ctx, cfg16)
        assert r.notes["mode"] == "sliding"
        assert r.reshape_cycles == 0

    def test_unrolling_otherwise(self, cfg16):
        ctx = make_ctx(in_maps=4, out_maps=8, kernel=3, stride=1, hw=16)
        r = make_scheme("intra").schedule(ctx, cfg16)
        assert r.notes["mode"] == "unrolling"
        assert r.reshape_cycles > 0

    def test_padding_forces_unrolling(self, cfg16):
        ctx = make_ctx(in_maps=4, out_maps=8, kernel=2, stride=2, pad=1, hw=16)
        r = make_scheme("intra").schedule(ctx, cfg16)
        assert r.notes["mode"] == "unrolling"


class TestCycles:
    def test_receptive_field_vectorization(self, cfg16):
        # field = 3*3*4 = 36 -> 3 chunks of 16
        ctx = make_ctx(in_maps=4, out_maps=16, kernel=3, pad=1, hw=8)
        r = make_scheme("intra").schedule(ctx, cfg16)
        assert r.operations == 64 * math.ceil(36 / 16) * 1

    def test_conv1_nearly_ideal_compute(self, alexnet_conv1_ctx, cfg16):
        """With k*k*Din = 363 >> Tin, conv1 utilizes the array well."""
        r = make_scheme("intra").schedule(alexnet_conv1_ctx, cfg16)
        ideal = make_scheme("ideal").schedule(alexnet_conv1_ctx, cfg16)
        assert r.operations < 1.05 * ideal.operations

    def test_conv1_wallclock_hurt_by_unrolling(self, alexnet_conv1_ctx, cfg16):
        """'Since the extra memory traffic of unrolling, intra is slower
        than partition' — the wall-clock is stream-bound."""
        r = make_scheme("intra").schedule(alexnet_conv1_ctx, cfg16)
        assert r.stream_cycles > r.operations
        assert r.total_cycles == r.stream_cycles


class TestTraffic:
    def test_weights_loaded_once(self, cfg16):
        ctx = make_ctx(in_maps=4, out_maps=16, kernel=3, pad=1, hw=8)
        r = make_scheme("intra").schedule(ctx, cfg16)
        assert r.accesses["weight"].loads == 9 * 4 * 16

    def test_dram_inflated_by_unroll_factor(self, cfg16):
        ctx = make_ctx(in_maps=4, out_maps=8, kernel=3, stride=1, hw=32)
        r = make_scheme("intra").schedule(ctx, cfg16)
        assert r.notes["stream_words"] == 30 * 30 * 9 * 4
        assert r.dram_words >= r.notes["stream_words"]

    def test_sliding_no_inflation(self, cfg16):
        ctx = make_ctx(in_maps=4, out_maps=8, kernel=2, stride=2, hw=16)
        r = make_scheme("intra").schedule(ctx, cfg16)
        assert r.notes["stream_words"] == ctx.in_shape.elements

    def test_nonresident_excess_refetched_per_output_chunk(self, cfg16):
        """The 'redundant data' penalty: unrolled tensors that overflow the
        input buffer re-fetch the excess on every Dout-chunk pass."""
        # in: 64 maps of 112^2 -> unrolled 9x = 7.2M words >> 1M-word buffer
        ctx = make_ctx(in_maps=64, out_maps=128, kernel=3, pad=1, hw=112)
        r = make_scheme("intra").schedule(ctx, cfg16)
        unrolled = 112 * 112 * 9 * 64
        excess = unrolled - cfg16.input_buffer_words
        dout_chunks = 128 // 16
        expected_extra = (dout_chunks - 1) * excess
        assert r.dram_words >= unrolled + expected_extra

    def test_small_unrolled_tensor_not_penalized(self, cfg16):
        ctx = make_ctx(in_maps=8, out_maps=32, kernel=3, pad=1, hw=16)
        r = make_scheme("intra").schedule(ctx, cfg16)
        unrolled = 16 * 16 * 9 * 8
        weights = 9 * 8 * 32
        assert r.dram_words == unrolled + weights + ctx.out_shape.elements

    def test_add_and_store_partials(self, cfg16):
        ctx = make_ctx(in_maps=4, out_maps=16, kernel=3, pad=1, hw=8)
        r = make_scheme("intra").schedule(ctx, cfg16)
        chunks = math.ceil(36 / 16)
        assert r.accesses["output"].stores == ctx.out_shape.elements * chunks

    def test_layouts_are_intra_order(self, cfg16):
        r = make_scheme("intra").schedule(make_ctx(), cfg16)
        assert r.input_layout is Layout.INTRA
        assert r.output_layout is Layout.INTRA


class TestReshapeRate:
    def test_reshape_cycles_scale_with_rate(self):
        from repro.arch.config import CONFIG_16_16

        ctx = make_ctx(in_maps=4, out_maps=8, kernel=3, stride=1, hw=32)
        slow = IntraKernelScheme(reshape_words_per_cycle=1.0).schedule(
            ctx, CONFIG_16_16
        )
        fast = IntraKernelScheme(reshape_words_per_cycle=4.0).schedule(
            ctx, CONFIG_16_16
        )
        assert slow.reshape_cycles == pytest.approx(4 * fast.reshape_cycles)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            IntraKernelScheme(reshape_words_per_cycle=0)
