"""Ideal-bound scheme tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import CONFIG_16_16
from repro.errors import ScheduleError
from repro.schemes import all_scheme_names, make_scheme

from tests.conftest import make_ctx


class TestIdeal:
    def test_cycles_are_macs_over_multipliers(self, cfg16):
        ctx = make_ctx(in_maps=8, out_maps=16, kernel=3, pad=1, hw=12)
        r = make_scheme("ideal").schedule(ctx, cfg16)
        assert r.operations == math.ceil(ctx.macs / 256)

    def test_full_utilization(self, cfg16):
        ctx = make_ctx(in_maps=16, out_maps=16, kernel=4, stride=4, hw=16)
        r = make_scheme("ideal").schedule(ctx, cfg16)
        assert r.utilization == pytest.approx(1.0)

    def test_minimal_traffic(self, cfg16):
        ctx = make_ctx(in_maps=4, out_maps=8, kernel=3, hw=10)
        r = make_scheme("ideal").schedule(ctx, cfg16)
        assert r.accesses["input"].loads == ctx.in_shape.elements
        assert r.accesses["output"].stores == ctx.out_shape.elements


class TestIdealIsLowerBound:
    """Every real scheme's compute must be >= the ideal bound."""

    @settings(deadline=None, max_examples=30)
    @given(
        k=st.integers(1, 7),
        s=st.integers(1, 4),
        d=st.integers(1, 40),
        dout=st.integers(1, 40),
        hw=st.integers(8, 32),
    )
    def test_property(self, k, s, d, dout, hw):
        if k > hw:
            return
        ctx = make_ctx(in_maps=d, out_maps=dout, kernel=k, stride=s, hw=hw)
        ideal = make_scheme("ideal").schedule(ctx, CONFIG_16_16)
        for name in all_scheme_names():
            if name == "ideal":
                continue
            try:
                r = make_scheme(name).schedule(ctx, CONFIG_16_16)
            except ScheduleError:
                continue
            assert r.operations >= ideal.operations, name
            assert r.total_cycles >= ideal.operations, name

    def test_on_benchmark_conv1(self, all_networks, cfg16):
        for net in all_networks:
            ctx = net.conv1()
            ideal = make_scheme("ideal").schedule(ctx, cfg16)
            for name in ("inter", "intra", "partition", "inter-improved"):
                r = make_scheme(name).schedule(ctx, cfg16)
                assert r.operations >= ideal.operations, (net.name, name)


class TestRegistry:
    def test_all_names(self):
        assert set(all_scheme_names()) == {
            "ideal",
            "inter",
            "inter-improved",
            "intra",
            "partition",
            "pe2d",
        }

    def test_unknown_scheme(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            make_scheme("systolic")

    def test_scheme_names_match_attribute(self):
        for name in all_scheme_names():
            assert make_scheme(name).name == name
