"""Scheme base-layer tests: geometry, result record, access merging."""

import pytest

from repro.arch.config import CONFIG_16_16
from repro.errors import ScheduleError
from repro.nn.layers import PoolLayer, TensorShape
from repro.nn.network import LayerContext
from repro.schemes import make_scheme
from repro.schemes.base import group_geometry, merge_accesses

from tests.conftest import make_ctx


class TestGroupGeometry:
    def test_plain(self):
        geom = group_geometry(make_ctx(in_maps=6, out_maps=8, kernel=3, hw=10))
        assert geom.groups == 1
        assert geom.d == 6
        assert geom.dout_g == 8
        assert (geom.ox, geom.oy) == (8, 8)
        assert geom.out_pixels == 64

    def test_grouped_alexnet_conv2_quotes_48(self, alexnet):
        geom = group_geometry(
            [c for c in alexnet.conv_contexts() if c.name == "conv2"][0]
        )
        assert geom.groups == 2
        assert geom.d == 48  # the paper's 'Din=48' for c2
        assert geom.dout_g == 128

    def test_macs_match_layer(self):
        ctx = make_ctx(in_maps=4, out_maps=8, kernel=3, pad=1, groups=2, hw=12)
        assert group_geometry(ctx).macs == ctx.macs

    def test_non_conv_rejected(self):
        layer = PoolLayer("p", kernel=2, stride=2)
        shape = TensorShape(4, 8, 8)
        ctx = LayerContext(layer, shape, layer.output_shape(shape))
        with pytest.raises(ScheduleError):
            group_geometry(ctx)


class TestMergeAccesses:
    def test_basic(self):
        acc = merge_accesses({"input_loads": 5, "output_stores": 7})
        assert acc["input"].loads == 5
        assert acc["output"].stores == 7
        assert acc["weight"].total == 0

    def test_multiple_mappings_accumulate(self):
        acc = merge_accesses({"input_loads": 5}, {"input_loads": 3})
        assert acc["input"].loads == 8

    def test_bad_key(self):
        with pytest.raises(ScheduleError):
            merge_accesses({"cache_loads": 1})
        with pytest.raises(ScheduleError):
            merge_accesses({"input_reads": 1})

    def test_negative(self):
        with pytest.raises(ScheduleError):
            merge_accesses({"input_loads": -1})


class TestScheduleResult:
    def test_total_cycles_compute_bound(self, cfg16):
        ctx = make_ctx(in_maps=64, out_maps=64, kernel=3, pad=1, hw=16)
        r = make_scheme("inter").schedule(ctx, cfg16)
        assert r.total_cycles == max(r.operations, r.stream_cycles)

    def test_utilization_bounds(self, cfg16, all_networks):
        for net in all_networks:
            for ctx in net.conv_contexts():
                for name in ("ideal", "inter", "intra", "partition"):
                    scheme = make_scheme(name)
                    try:
                        r = scheme.schedule(ctx, cfg16)
                    except ScheduleError:
                        continue
                    assert 0.0 < r.utilization <= 1.0, (net.name, ctx.name, name)

    def test_milliseconds(self, cfg16):
        ctx = make_ctx()
        r = make_scheme("ideal").schedule(ctx, cfg16)
        assert r.milliseconds() == pytest.approx(
            r.total_cycles / cfg16.frequency_hz * 1e3
        )

    def test_buffer_access_bits_is_16x_words(self, cfg16):
        ctx = make_ctx()
        r = make_scheme("inter").schedule(ctx, cfg16)
        assert r.buffer_access_bits == 16 * r.buffer_accesses

    def test_supports(self, cfg16):
        partition = make_scheme("partition")
        assert partition.supports(make_ctx(kernel=3, stride=1), cfg16)
        assert not partition.supports(make_ctx(kernel=1, stride=1), cfg16)
