"""The ABFT guard's cost model, priced through the scheme cost models."""

from __future__ import annotations

import pytest

from repro.arch.config import CONFIG_16_16
from repro.nn.layers import ConvLayer, TensorShape
from repro.nn.network import LayerContext
from repro.schemes import make_scheme
from repro.schemes.abft import AbftOverhead, abft_overhead


def context(k=3, s=1, pad=1, groups=1, din=64, dout=64, hw=28):
    layer = ConvLayer(
        "conv", in_maps=din, out_maps=dout, kernel=k, stride=s, pad=pad, groups=groups
    )
    in_shape = TensorShape(din, hw, hw)
    return LayerContext(layer, in_shape, layer.output_shape(in_shape))


def overhead(scheme="inter-improved", **kwargs):
    ctx = context(**kwargs)
    base = make_scheme(scheme).schedule(ctx, CONFIG_16_16)
    return abft_overhead(ctx, CONFIG_16_16, base)


class TestOverheadModel:
    def test_guard_costs_more_than_nothing_but_less_than_rerun(self):
        over = overhead()
        assert over.checksum_cycles > 0
        assert 1.0 < over.latency_ratio < 2.0

    def test_verified_cycles_stack_on_base(self):
        over = overhead()
        assert over.verified_cycles == over.base_cycles + over.checksum_cycles

    def test_checksum_macs_are_a_small_fraction(self):
        over = overhead()
        # k*(oy+ox) dot products per map vs oy*ox*k^2 useful MACs per map
        assert 0 < over.mac_overhead < 0.25

    def test_reduce_adds_scale_with_padded_input(self):
        small = overhead(hw=14, pad=0)
        big = overhead(hw=28, pad=0)
        assert big.reduce_adds == 4 * small.reduce_adds

    def test_grouped_layer_priced(self):
        over = overhead(scheme="partition", k=3, s=1, pad=1, groups=2, din=8, dout=8)
        assert over.checksum_macs > 0
        assert over.base_scheme == "partition"

    def test_to_dict_rounds_and_names(self):
        d = overhead().to_dict()
        assert d["layer"] == "conv"
        assert d["latency_ratio"] == round(d["verified_cycles"] / d["base_cycles"], 6)
        for key in ("reduce_adds", "checksum_macs", "compare_ops", "extra_words"):
            assert isinstance(d[key], int)

    def test_zero_base_cycles_ratio_defined(self):
        over = AbftOverhead(
            layer_name="x",
            base_scheme="s",
            reduce_adds=0,
            checksum_macs=0,
            compare_ops=0,
            extra_words=0,
            checksum_cycles=0.0,
            base_cycles=0.0,
            verified_cycles=0.0,
        )
        assert over.latency_ratio == 1.0
        assert over.mac_overhead == 0.0
