"""2D-PE mesh scheme tests (Sec 4.1.2 approach 3, the extension scheme)."""

import math

import pytest

from repro.arch.config import CONFIG_16_16
from repro.schemes import make_scheme

from tests.conftest import make_ctx


class TestCycles:
    def test_stride1_vision_layer_is_efficient(self, cfg16):
        """The paper: 'very effective when dealing with specific network
        topology in vision processing' — a stride-1 map that tiles the mesh
        exactly runs near the ideal bound."""
        ctx = make_ctx(in_maps=8, out_maps=16, kernel=3, pad=1, hw=16)
        r = make_scheme("pe2d").schedule(ctx, cfg16)
        ideal = make_scheme("ideal").schedule(ctx, cfg16)
        assert r.operations <= 1.05 * ideal.operations

    def test_stride_breaks_propagation(self, cfg16):
        """Stride-s layers stall the supply network by a factor s."""
        s1 = make_scheme("pe2d").schedule(
            make_ctx(in_maps=3, out_maps=8, kernel=5, stride=1, hw=37), cfg16
        )
        s4 = make_scheme("pe2d").schedule(
            make_ctx(in_maps=3, out_maps=8, kernel=5, stride=4, hw=37), cfg16
        )
        assert s4.notes["stride_stall_factor"] == 4
        assert s1.notes["stride_stall_factor"] == 1
        # per useful MAC, the strided layer is ~4x more expensive
        cost1 = s1.operations / s1.useful_macs
        cost4 = s4.operations / s4.useful_macs
        assert cost4 > 3.0 * cost1

    def test_tile_quantization(self, cfg16):
        """A 13x13 output map uses 169/256 of a 16x16 mesh."""
        ctx = make_ctx(in_maps=16, out_maps=16, kernel=3, pad=1, hw=13)
        r = make_scheme("pe2d").schedule(ctx, cfg16)
        assert r.notes["tiles"] == 1
        assert r.utilization == pytest.approx(169 / 256)

    def test_alexnet_conv1_much_worse_than_partition(self, alexnet_conv1_ctx, cfg16):
        """The degradation the adaptive design exists to avoid: the rigid
        mesh loses badly on the strided bottom layer."""
        mesh = make_scheme("pe2d").schedule(alexnet_conv1_ctx, cfg16)
        part = make_scheme("partition").schedule(alexnet_conv1_ctx, cfg16)
        assert mesh.total_cycles > 3.0 * part.total_cycles

    def test_operations_formula(self, cfg16):
        ctx = make_ctx(in_maps=4, out_maps=8, kernel=3, pad=1, hw=20)
        r = make_scheme("pe2d").schedule(ctx, cfg16)
        tiles = math.ceil(20 / 16) * math.ceil(20 / 16)
        assert r.operations == tiles * 9 * 4 * 8  # stride 1, no stall


class TestTraffic:
    def test_input_streamed_once_per_output_map(self, cfg16):
        """The mesh's selling point: inter-PE propagation means each input
        word is read once per output-map pass, not once per window."""
        ctx = make_ctx(in_maps=4, out_maps=8, kernel=3, pad=1, hw=20)
        r = make_scheme("pe2d").schedule(ctx, cfg16)
        assert r.accesses["input"].loads == ctx.in_shape.elements * 8

    def test_less_input_traffic_than_inter(self, cfg16):
        ctx = make_ctx(in_maps=16, out_maps=16, kernel=5, pad=2, hw=24)
        mesh = make_scheme("pe2d").schedule(ctx, cfg16)
        inter = make_scheme("inter").schedule(ctx, cfg16)
        assert mesh.accesses["input"].loads < inter.accesses["input"].loads

    def test_weights_broadcast_once(self, cfg16):
        ctx = make_ctx(in_maps=4, out_maps=8, kernel=3, pad=1, hw=20)
        r = make_scheme("pe2d").schedule(ctx, cfg16)
        assert r.accesses["weight"].loads == 9 * 4 * 8

    def test_utilization_bounds(self, all_networks, cfg16):
        for net in all_networks:
            for ctx in net.conv_contexts():
                r = make_scheme("pe2d").schedule(ctx, cfg16)
                assert 0 < r.utilization <= 1.0, (net.name, ctx.name)
