"""The injection sweep: headline claims and byte-stable rollups."""

from __future__ import annotations

import pytest

from repro.integrity import SWEEP_LAYERS, run_sweep, sweep_to_json
from repro.resilience.faults import BITFLIP_SITES


@pytest.fixture(scope="module")
def smoke():
    return run_sweep(seed=0, smoke=True)


class TestHeadline:
    def test_full_detection_on_smoke_grid(self, smoke):
        head = smoke["headline"]
        assert head["detection_rate"] == 1.0
        assert head["escaped"] == 0

    def test_zero_false_positives(self, smoke):
        head = smoke["headline"]
        assert head["false_positives"] == 0
        assert head["false_positive_rate"] == 0.0
        assert head["clean_runs"] > 0

    def test_recovery_bit_identical(self, smoke):
        assert smoke["headline"]["recovery_bit_identical"]
        assert smoke["headline"]["corrected_fraction"] == 1.0

    def test_overhead_modelled_and_modest(self, smoke):
        ratio = smoke["headline"]["mean_latency_ratio"]
        assert 1.0 < ratio < 1.5


class TestStructure:
    def test_every_site_and_layer_present(self, smoke):
        assert set(smoke["sites"]) == set(BITFLIP_SITES)
        assert len(smoke["layers"]) == 3  # smoke subset
        assert smoke["smoke"] is True

    def test_full_sweep_covers_all_layers(self):
        names = [spec[0] for spec in SWEEP_LAYERS]
        assert len(names) == len(set(names)) == 5

    def test_tallies_are_conserved(self, smoke):
        for tally in smoke["sites"].values():
            assert tally["fired"] + tally["skipped"] == tally["injections"]
            assert tally["corrupted"] + tally["masked"] == tally["fired"]
            assert tally["detected"] + tally["escaped"] == tally["corrupted"]


class TestDeterminism:
    def test_byte_identical_reruns(self, smoke):
        again = run_sweep(seed=0, smoke=True)
        assert sweep_to_json(smoke) == sweep_to_json(again)

    def test_seed_changes_rollup(self, smoke):
        other = run_sweep(seed=1, smoke=True)
        assert sweep_to_json(smoke) != sweep_to_json(other)

    def test_json_ends_with_newline(self, smoke):
        assert sweep_to_json(smoke).endswith("\n")
