"""ABFT exactness is backend-independent, bit for bit.

The integrity guard's claims — exact checksums, zero false positives,
bit-identical recovery — were proved on the loop nests; these tests show
the vector backend inherits every one of them unchanged: predicted
checksums, verified-conv outputs and verdicts, localization decisions and
recomputed results are byte-identical across backends, including under
seeded fault injection at every buffer site.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.integrity.abft import (
    ABFT_PATHS,
    check_output,
    golden_codes,
    predicted_checksums,
    quantize_conv_operands,
    recompute_flagged,
    verified_conv,
)
from repro.integrity.sdc import SDCInjector
from repro.nn.layers import ConvLayer, TensorShape
from repro.resilience.faults import BITFLIP_SITES, seeded_bitflips
from repro.sim.backend import BACKENDS
from repro.sim.functional import random_conv_tensors

#: (k, s, pad, groups, din, dout, hw) — the sweep's geometry classes
GRID = [
    (11, 4, 0, 1, 3, 8, 35),
    (3, 1, 1, 1, 4, 8, 14),
    (2, 1, 0, 1, 4, 6, 12),
    (5, 2, 1, 2, 4, 8, 16),
    (2, 3, 0, 1, 3, 6, 13),  # s > k fallback
]


def operands(k, s, pad, groups, din, dout, hw, seed=0):
    layer = ConvLayer(
        "l", in_maps=din, out_maps=dout, kernel=k, stride=s, pad=pad, groups=groups
    )
    data, weights, bias = random_conv_tensors(layer, TensorShape(din, hw, hw), seed=seed)
    return quantize_conv_operands(data, weights, bias)


class TestChecksumIdentity:
    @pytest.mark.parametrize("k,s,pad,groups,din,dout,hw", GRID)
    def test_predicted_checksums_identical(self, k, s, pad, groups, din, dout, hw):
        data_codes, weight_codes, bias_codes = operands(k, s, pad, groups, din, dout, hw)
        loop_c = predicted_checksums(
            data_codes, weight_codes, bias_codes, s, pad, groups, backend="loop"
        )
        vec_c = predicted_checksums(
            data_codes, weight_codes, bias_codes, s, pad, groups, backend="vector"
        )
        assert np.array_equal(loop_c.row, vec_c.row)
        assert np.array_equal(loop_c.col, vec_c.col)
        assert np.array_equal(loop_c.total, vec_c.total)

    @pytest.mark.parametrize("k,s,pad,groups,din,dout,hw", GRID[:3])
    def test_no_bias_checksums_identical(self, k, s, pad, groups, din, dout, hw):
        data_codes, weight_codes, _ = operands(k, s, pad, groups, din, dout, hw)
        loop_c = predicted_checksums(
            data_codes, weight_codes, None, s, pad, groups, backend="loop"
        )
        vec_c = predicted_checksums(
            data_codes, weight_codes, None, s, pad, groups, backend="vector"
        )
        assert np.array_equal(loop_c.row, vec_c.row)
        assert np.array_equal(loop_c.col, vec_c.col)

    @pytest.mark.parametrize("k,s,pad,groups,din,dout,hw", GRID)
    def test_golden_codes_identical(self, k, s, pad, groups, din, dout, hw):
        data_codes, weight_codes, bias_codes = operands(k, s, pad, groups, din, dout, hw)
        loop_g = golden_codes(
            data_codes, weight_codes, bias_codes, s, pad, groups, backend="loop"
        )
        vec_g = golden_codes(
            data_codes, weight_codes, bias_codes, s, pad, groups, backend="vector"
        )
        assert np.array_equal(loop_g, vec_g)


class TestVerifiedConvIdentity:
    @pytest.mark.parametrize("path", ABFT_PATHS)
    @pytest.mark.parametrize("k,s,pad,groups,din,dout,hw", GRID)
    def test_clean_runs_identical(self, k, s, pad, groups, din, dout, hw, path):
        data_codes, weight_codes, bias_codes = operands(k, s, pad, groups, din, dout, hw)
        results = {
            backend: verified_conv(
                data_codes,
                weight_codes,
                bias_codes,
                stride=s,
                pad=pad,
                groups=groups,
                path=path,
                backend=backend,
            )
            for backend in BACKENDS
        }
        assert not results["loop"].detected and not results["vector"].detected
        assert np.array_equal(results["loop"].output, results["vector"].output)

    @pytest.mark.parametrize("site", BITFLIP_SITES)
    @pytest.mark.parametrize("path", ABFT_PATHS)
    def test_injected_verdicts_identical(self, path, site):
        k, s, pad, groups, din, dout, hw = GRID[0]
        data_codes, weight_codes, bias_codes = operands(k, s, pad, groups, din, dout, hw)
        for fi in range(3):
            results = {}
            for backend in BACKENDS:
                fault = seeded_bitflips(fi * 7919 + 13, 1, sites=(site,))[0]
                results[backend] = verified_conv(
                    data_codes,
                    weight_codes,
                    bias_codes,
                    stride=s,
                    pad=pad,
                    groups=groups,
                    path=path,
                    inject=SDCInjector([fault]),
                    backend=backend,
                )
            loop_r, vec_r = results["loop"], results["vector"]
            # verdicts, raw (possibly corrupted) output, localization and
            # the recovered output must all agree byte-for-byte
            assert loop_r.detected == vec_r.detected, (path, site, fi)
            assert loop_r.corrected == vec_r.corrected, (path, site, fi)
            assert np.array_equal(loop_r.raw_output, vec_r.raw_output)
            assert np.array_equal(loop_r.output, vec_r.output)
            assert loop_r.check.to_dict() == vec_r.check.to_dict()
            if loop_r.recovery is not None:
                assert vec_r.recovery is not None
                assert loop_r.recovery.to_dict() == vec_r.recovery.to_dict()
                assert loop_r.recovery.recomputed == vec_r.recovery.recomputed


class TestRecomputeIdentity:
    def test_recompute_flagged_identical_across_backends(self):
        k, s, pad, groups, din, dout, hw = GRID[1]
        data_codes, weight_codes, bias_codes = operands(k, s, pad, groups, din, dout, hw)
        golden = golden_codes(
            data_codes, weight_codes, bias_codes, s, pad, groups, backend="loop"
        )
        predicted = predicted_checksums(
            data_codes, weight_codes, bias_codes, s, pad, groups, backend="loop"
        )
        recovered = {}
        for backend in BACKENDS:
            damaged = golden.copy()
            damaged[1, 2, 3] ^= 1 << 9  # single-element corruption
            damaged[4] += 17  # whole-map smear
            report = check_output(damaged, predicted)
            assert not report.clean
            rec = recompute_flagged(
                damaged,
                report,
                data_codes,
                weight_codes,
                bias_codes,
                predicted,
                stride=s,
                pad=pad,
                groups=groups,
                backend=backend,
            )
            assert rec.clean_after
            recovered[backend] = (damaged, rec)
        loop_out, loop_rec = recovered["loop"]
        vec_out, vec_rec = recovered["vector"]
        assert np.array_equal(loop_out, vec_out)
        assert np.array_equal(loop_out, golden)
        assert loop_rec.recomputed == vec_rec.recomputed
        assert loop_rec.row_recomputes == vec_rec.row_recomputes
        assert loop_rec.map_recomputes == vec_rec.map_recomputes
