"""`python -m repro integrity` CLI tests."""

import json

from repro.__main__ import main


class TestIntegrityCommand:
    def test_smoke_table(self, capsys):
        assert main(["integrity", "--smoke"]) == 0
        out = capsys.readouterr().out
        for site in ("activation", "weight", "psum", "output"):
            assert site in out
        assert "false positives" in out
        assert "recovery bit-identical: True" in out

    def test_json_stdout(self, capsys):
        assert main(["integrity", "--smoke", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["smoke"] is True
        assert payload["headline"]["detection_rate"] == 1.0
        assert payload["headline"]["false_positives"] == 0

    def test_json_to_file(self, capsys, tmp_path):
        target = tmp_path / "integrity.json"
        assert main(["integrity", "--smoke", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["config"] == "16-16"
        assert "written to" in capsys.readouterr().out

    def test_seed_flag_changes_output(self, capsys):
        assert main(["integrity", "--smoke", "--json", "-", "--seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["integrity", "--smoke", "--json", "-", "--seed", "4"]) == 0
        assert first != capsys.readouterr().out
