"""ABFT checksum prediction, detection, localization and recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.integrity.abft import (
    ABFT_PATHS,
    check_output,
    golden_codes,
    predicted_checksums,
    quantize_conv_operands,
    verified_conv,
)
from repro.integrity.sdc import SDCInjector
from repro.nn.layers import ConvLayer, TensorShape
from repro.resilience.faults import BITFLIP_SITES, BitFlipFault
from repro.sim.functional import random_conv_tensors

#: (k, s, pad, groups, din, dout, hw) — odd/even kernels, stride, padding,
#: groups, and the stride >= kernel partition fallback
GEOMETRIES = [
    (3, 1, 0, 1, 3, 4, 8),
    (3, 1, 1, 1, 3, 4, 8),
    (2, 1, 0, 1, 4, 4, 7),
    (5, 2, 1, 1, 3, 4, 11),
    (3, 2, 1, 2, 4, 6, 9),
    (2, 3, 0, 1, 3, 4, 9),
]


def tensors(k, s, pad, groups, din, dout, hw, seed=0):
    layer = ConvLayer(
        "t", in_maps=din, out_maps=dout, kernel=k, stride=s, pad=pad, groups=groups
    )
    return random_conv_tensors(layer, TensorShape(din, hw, hw), seed=seed)


class TestPrediction:
    @pytest.mark.parametrize("k,s,pad,groups,din,dout,hw", GEOMETRIES)
    def test_predicted_sums_match_golden(self, k, s, pad, groups, din, dout, hw):
        data, weights, bias = tensors(k, s, pad, groups, din, dout, hw)
        codes = quantize_conv_operands(data, weights, bias)
        predicted = predicted_checksums(*codes, stride=s, pad=pad, groups=groups)
        golden = golden_codes(data, weights, bias, stride=s, pad=pad, groups=groups)
        assert np.array_equal(predicted.row, golden.sum(axis=2))
        assert np.array_equal(predicted.col, golden.sum(axis=1))
        assert np.array_equal(predicted.total, golden.sum(axis=(1, 2)))

    def test_no_bias(self):
        data, weights, _ = tensors(3, 1, 0, 1, 3, 4, 8)
        dc, wc, _ = quantize_conv_operands(data, weights, None)
        predicted = predicted_checksums(dc, wc)
        golden = golden_codes(data, weights, None)
        assert np.array_equal(predicted.total, golden.sum(axis=(1, 2)))

    def test_float_tensors_rejected(self):
        with pytest.raises(ConfigError, match="integer-code"):
            predicted_checksums(np.zeros((1, 4, 4)), np.zeros((1, 1, 3, 3)))

    def test_extra_macs_counts_row_and_col_cells(self):
        data, weights, bias = tensors(3, 1, 0, 1, 3, 4, 8)
        codes = quantize_conv_operands(data, weights, bias)
        predicted = predicted_checksums(*codes)
        assert predicted.extra_macs == predicted.row.size + predicted.col.size


class TestCheck:
    def test_clean_output_passes(self):
        data, weights, bias = tensors(3, 1, 1, 1, 3, 4, 8)
        codes = quantize_conv_operands(data, weights, bias)
        predicted = predicted_checksums(*codes, stride=1, pad=1)
        report = check_output(
            golden_codes(data, weights, bias, stride=1, pad=1), predicted
        )
        assert report.clean
        assert report.mismatches == 0

    def test_single_element_corruption_localizes(self):
        data, weights, bias = tensors(3, 1, 0, 1, 3, 4, 8)
        codes = quantize_conv_operands(data, weights, bias)
        predicted = predicted_checksums(*codes)
        out = golden_codes(data, weights, bias).copy()
        out[2, 3, 1] += 77
        report = check_output(out, predicted)
        assert not report.clean
        assert report.flagged_maps == (2,)
        assert report.flagged_rows[2] == (3,)
        assert report.flagged_cols[2] == (1,)

    def test_float_output_rejected(self):
        data, weights, bias = tensors(3, 1, 0, 1, 3, 4, 8)
        codes = quantize_conv_operands(data, weights, bias)
        predicted = predicted_checksums(*codes)
        with pytest.raises(ConfigError, match="integer-code"):
            check_output(np.zeros((4, 6, 6)), predicted)


class TestVerifiedConv:
    @pytest.mark.parametrize("path", ABFT_PATHS)
    @pytest.mark.parametrize("k,s,pad,groups,din,dout,hw", GEOMETRIES)
    def test_clean_runs_never_flag(self, path, k, s, pad, groups, din, dout, hw):
        data, weights, bias = tensors(k, s, pad, groups, din, dout, hw)
        result = verified_conv(
            data, weights, bias, stride=s, pad=pad, groups=groups, path=path
        )
        assert not result.detected
        assert result.recovery is None
        golden = golden_codes(data, weights, bias, stride=s, pad=pad, groups=groups)
        assert np.array_equal(result.output, golden)

    @pytest.mark.parametrize("path", ABFT_PATHS)
    @pytest.mark.parametrize("site", BITFLIP_SITES)
    def test_fired_flips_detected_and_recovered(self, path, site):
        data, weights, bias = tensors(3, 1, 1, 1, 3, 4, 8, seed=5)
        golden = golden_codes(data, weights, bias, stride=1, pad=1)
        for trial in range(3):
            inj = SDCInjector([BitFlipFault(site, 11 * trial + 3, 5 + trial)])
            result = verified_conv(
                data, weights, bias, stride=1, pad=1, path=path, inject=inj
            )
            if not inj.events:
                continue  # site has no hook on this path (psum on fallback)
            if np.array_equal(result.raw_output, golden):
                continue  # flip masked by an unused margin
            assert result.detected
            assert result.corrected
            assert np.array_equal(result.output, golden)

    def test_output_flip_triggers_row_recompute_only(self):
        data, weights, bias = tensors(3, 1, 0, 1, 3, 4, 8)
        inj = SDCInjector([BitFlipFault("output", 9, 12)])
        result = verified_conv(data, weights, bias, path="im2col", inject=inj)
        assert result.detected
        assert result.recovery.row_recomputes >= 1
        assert result.recovery.map_recomputes == 0

    def test_weight_flip_triggers_map_recompute(self):
        data, weights, bias = tensors(3, 1, 0, 1, 3, 4, 8)
        inj = SDCInjector([BitFlipFault("weight", 5, 14)])
        result = verified_conv(data, weights, bias, path="im2col", inject=inj)
        assert result.detected
        assert result.recovery.map_recomputes >= 1

    def test_raw_output_preserved_alongside_correction(self):
        data, weights, bias = tensors(3, 1, 0, 1, 3, 4, 8)
        inj = SDCInjector([BitFlipFault("output", 2, 13)])
        result = verified_conv(data, weights, bias, inject=inj)
        golden = golden_codes(data, weights, bias)
        assert not np.array_equal(result.raw_output, golden)
        assert np.array_equal(result.output, golden)

    def test_unknown_path_rejected(self):
        data, weights, bias = tensors(3, 1, 0, 1, 3, 4, 8)
        with pytest.raises(ConfigError, match="unknown ABFT path"):
            verified_conv(data, weights, bias, path="winograd")

    def test_integer_operands_pass_through(self):
        rng = np.random.default_rng(3)
        data = rng.integers(-100, 100, (3, 8, 8), dtype=np.int64)
        weights = rng.integers(-50, 50, (4, 3, 3, 3), dtype=np.int64)
        result = verified_conv(data, weights, None)
        assert not result.detected
        assert np.array_equal(result.output, golden_codes(data, weights, None))
