"""Bit-flip mechanics and the SDC injector's hook contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.integrity.sdc import PSUM_BITS, FlipEvent, SDCInjector, flip_code
from repro.resilience.faults import BitFlipFault


class TestFlipCode:
    def test_flips_chosen_bit(self):
        assert flip_code(0, 0, 16) == 1
        assert flip_code(1, 0, 16) == 0
        assert flip_code(0, 3, 16) == 8

    def test_sign_bit_wraps_twos_complement(self):
        assert flip_code(0, 15, 16) == -(1 << 15)
        assert flip_code(-(1 << 15), 15, 16) == 0

    def test_involution(self):
        for value in (0, 1, -1, 123, -456, 32767, -32768):
            for bit in (0, 7, 15):
                assert flip_code(flip_code(value, bit, 16), bit, 16) == value

    def test_wide_word(self):
        assert flip_code(0, 39, PSUM_BITS) == -(1 << 39)

    def test_bit_out_of_range(self):
        with pytest.raises(ConfigError, match="bit"):
            flip_code(0, 16, 16)
        with pytest.raises(ConfigError, match="bit"):
            flip_code(0, -1, 16)


class TestInjectorValidation:
    def test_rejects_non_faults(self):
        with pytest.raises(ConfigError, match="BitFlipFault"):
            SDCInjector(["activation"])

    @pytest.mark.parametrize("bad", [1, 65, 0])
    def test_word_bits_bounds(self, bad):
        with pytest.raises(ConfigError, match="word_bits"):
            SDCInjector([], word_bits=bad)

    def test_float_tensor_rejected(self):
        inj = SDCInjector([BitFlipFault("output", 0, 0)])
        with pytest.raises(ConfigError, match="integer-code"):
            inj.on_output(np.zeros((2, 2, 2)))


class TestHooks:
    def test_activation_flip_copies_not_mutates(self):
        original = np.zeros((2, 3, 3), dtype=np.int64)
        inj = SDCInjector([BitFlipFault("activation", 4, 2)])
        corrupted = inj.on_activation(original)
        assert original.sum() == 0
        assert corrupted.reshape(-1)[4] == 4
        assert len(inj.events) == 1
        assert inj.events[0].site == "activation"

    def test_weight_flip(self):
        weights = np.zeros((2, 2, 3, 3), dtype=np.int64)
        inj = SDCInjector([BitFlipFault("weight", 7, 0)])
        corrupted = inj.on_weight(weights)
        assert corrupted.reshape(-1)[7] == 1
        assert weights.sum() == 0

    def test_psum_fires_only_at_matching_step(self):
        acc = np.zeros((4,), dtype=np.int64)
        inj = SDCInjector([BitFlipFault("psum", 1, 0, step=2)])
        inj.on_psum(acc, step=0, steps_total=4)
        assert not inj.events and acc.sum() == 0
        inj.on_psum(acc, step=2, steps_total=4)
        assert acc[1] == 1
        assert inj.events[0].step == 2

    def test_psum_step_wraps_modulo_total(self):
        acc = np.zeros((4,), dtype=np.int64)
        inj = SDCInjector([BitFlipFault("psum", 0, 0, step=7)])
        inj.on_psum(acc, step=1, steps_total=3)  # 7 % 3 == 1
        assert acc[0] == 1

    def test_output_flip_in_place(self):
        out = np.zeros((2, 2, 2), dtype=np.int64)
        inj = SDCInjector([BitFlipFault("output", 3, 5)])
        inj.on_output(out)
        assert out.reshape(-1)[3] == 32

    def test_index_and_bit_wrap(self):
        out = np.zeros((2,), dtype=np.int64)
        inj = SDCInjector([BitFlipFault("output", 5, 17)])
        inj.on_output(out)
        event = inj.events[0]
        assert event.flat_index == 1  # 5 % 2
        assert event.bit == 1  # 17 % 16

    def test_each_fault_fires_once(self):
        out = np.zeros((4,), dtype=np.int64)
        inj = SDCInjector([BitFlipFault("output", 0, 0)])
        assert inj.pending_count == 1
        inj.on_output(out)
        inj.on_output(out)
        assert len(inj.events) == 1
        assert inj.pending_count == 0

    def test_no_fault_returns_same_array(self):
        data = np.zeros((2, 2, 2), dtype=np.int64)
        inj = SDCInjector([BitFlipFault("weight", 0, 0)])
        assert inj.on_activation(data) is data


class TestFlipEvent:
    def test_to_dict(self):
        event = FlipEvent("psum", 9, 3, before=10, after=2, step=4)
        assert event.to_dict() == {
            "site": "psum",
            "flat_index": 9,
            "bit": 3,
            "before": 10,
            "after": 2,
            "step": 4,
        }
