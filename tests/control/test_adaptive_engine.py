"""AdaptiveServingEngine: epoch stepping, fleet mutation, chip-seconds."""

from __future__ import annotations

import math

import pytest

from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.engine import (
    AdaptiveServingEngine,
    ServingEngine,
    _peak_fleet_size,
    AdaptiveReplica,
)
from repro.serve.workload import TenantSpec, poisson_arrivals

ALEX = [TenantSpec("alexnet", "alexnet")]
MIXED = [
    TenantSpec("alexnet", "alexnet", weight=2.0),
    TenantSpec("nin", "nin", weight=1.0, slo_ms=500.0),
]

_COSTER = BatchCoster(CONFIG_16_16)


def adaptive(**kwargs):
    kwargs.setdefault("coster", _COSTER)
    return AdaptiveServingEngine(CONFIG_16_16, **kwargs)


def static(**kwargs):
    kwargs.setdefault("coster", _COSTER)
    return ServingEngine(CONFIG_16_16, **kwargs)


class TestParityWithStaticEngine:
    """With no mid-run actions the adaptive engine is the static engine."""

    @pytest.mark.parametrize("routing", ["round-robin", "least-loaded"])
    def test_completions_match(self, routing):
        reqs = poisson_arrivals(120, 3, MIXED, seed=11)
        a = adaptive(replicas=3, routing=routing).run(reqs, 3)
        b = static(replicas=3, routing=routing).run(reqs, 3)
        assert [
            (r.rid, r.start_s, r.finish_s, r.replica, r.batch_size)
            for r in a.metrics.completed
        ] == [
            (r.rid, r.start_s, r.finish_s, r.replica, r.batch_size)
            for r in b.metrics.completed
        ]

    def test_epoch_stepping_equals_one_shot(self):
        reqs = poisson_arrivals(100, 4, MIXED, seed=3)
        stepped = adaptive(replicas=2)
        stepped.ingest(reqs)
        for k in range(8):
            stepped.advance_to((k + 1) * 0.5)
        a = stepped.finish(4)
        b = adaptive(replicas=2).run(reqs, 4)
        assert [
            (r.rid, r.start_s, r.finish_s, r.replica)
            for r in a.metrics.completed
        ] == [
            (r.rid, r.start_s, r.finish_s, r.replica)
            for r in b.metrics.completed
        ]

    def test_summary_marks_adaptive(self):
        report = adaptive().run(poisson_arrivals(20, 1, ALEX, seed=0), 1)
        assert report.summary["engine"]["adaptive"] is True
        assert "fleet" in report.summary


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, True, 2.0])
    def test_replicas(self, bad):
        with pytest.raises(ConfigError):
            adaptive(replicas=bad)

    def test_advance_backwards_rejected(self):
        eng = adaptive()
        eng.advance_to(2.0)
        with pytest.raises(ConfigError, match="already at"):
            eng.advance_to(1.0)

    def test_stale_ingest_rejected(self):
        eng = adaptive()
        eng.advance_to(5.0)
        with pytest.raises(ConfigError, match="already advanced"):
            eng.ingest(poisson_arrivals(20, 1, ALEX, seed=0))

    def test_drain_unknown_replica(self):
        with pytest.raises(ConfigError, match="unknown replica"):
            adaptive(replicas=2).drain_replica(7)

    def test_drain_last_active_refused(self):
        with pytest.raises(ConfigError, match="last active"):
            adaptive(replicas=1).drain_replica(0)

    def test_double_drain_refused(self):
        eng = adaptive(replicas=3)
        eng.drain_replica(2)
        with pytest.raises(ConfigError, match="already retired"):
            eng.drain_replica(2)

    def test_bad_slow_injection(self):
        eng = adaptive(replicas=1)
        with pytest.raises(ConfigError, match="slow factor"):
            eng.set_slow(0, 0.5, 0, 1)
        with pytest.raises(ConfigError, match="until > from"):
            eng.set_slow(0, 2.0, 3, 3)

    def test_set_batch_policy_type_checked(self):
        with pytest.raises(ConfigError, match="BatchPolicy"):
            adaptive().set_batch_policy({"max_batch": 4})


class TestFleetMutation:
    def test_add_replica_assigns_fresh_rids(self):
        eng = adaptive(replicas=2)
        assert eng.add_replica() == 2
        eng.drain_replica(2)
        # rid 2 is retired, new provisions never reuse it
        assert eng.add_replica() == 3
        assert [r.rid for r in eng.active_replicas()] == [0, 1, 3]

    def test_drained_replica_takes_no_new_work(self):
        reqs = poisson_arrivals(150, 2, ALEX, seed=5)
        eng = adaptive(replicas=2, routing="least-loaded")
        eng.ingest(reqs)
        eng.advance_to(1.0)
        eng.drain_replica(1)
        eng.advance_to(math.inf)
        late = [r for r in eng.metrics.completed if r.start_s > 1.0]
        assert late and all(r.replica == 0 for r in late)

    def test_added_replica_serves_after_join(self):
        reqs = poisson_arrivals(200, 2, ALEX, seed=5)
        eng = adaptive(replicas=1, routing="least-loaded")
        eng.ingest(reqs)
        eng.advance_to(1.0)
        rid = eng.add_replica()
        report = eng.finish(2)
        served = [r for r in report.metrics.completed if r.replica == rid]
        assert served and all(r.start_s >= 1.0 for r in served)

    def test_retune_applies_to_later_dispatches_only(self):
        reqs = poisson_arrivals(100, 2, ALEX, seed=1)
        eng = adaptive(batch_policy=BatchPolicy(max_batch=16, max_wait_ms=10))
        eng.ingest(reqs)
        eng.advance_to(1.0)
        eng.set_batch_policy(BatchPolicy(max_batch=1, max_wait_ms=0.0))
        eng.advance_to(math.inf)
        after = [r for r in eng.metrics.completed if r.start_s > 1.0]
        assert after and all(r.batch_size == 1 for r in after)
        assert any(r.batch_size > 1 for r in eng.metrics.completed)

    def test_fleet_events_logged(self):
        eng = adaptive(replicas=2)
        eng.add_replica()
        eng.drain_replica(0, reason="unhealthy")
        eng.set_batch_policy(BatchPolicy(max_batch=4, max_wait_ms=2.0))
        kinds = [event for _, event, _, _ in eng.fleet_events]
        assert kinds == ["add", "drain", "retune"]


class TestChipSeconds:
    def test_static_fleet_is_replicas_times_makespan(self):
        reqs = poisson_arrivals(50, 2, ALEX, seed=0)
        eng = adaptive(replicas=3)
        report = eng.run(reqs, 2)
        chip = report.summary["fleet"]["chip_seconds"]
        assert chip == pytest.approx(3 * report.summary["makespan_s"], rel=1e-6)

    def test_drain_releases_the_chip(self):
        eng = adaptive(replicas=2)
        eng.advance_to(4.0)
        eng.drain_replica(1)
        report = eng.finish(10)
        per = {r["rid"]: r for r in report.summary["per_replica"]}
        assert per[1]["retired_ms"] == pytest.approx(4000.0)
        assert report.summary["fleet"]["chip_seconds"] == pytest.approx(
            10.0 + 4.0, rel=1e-6
        )

    def test_drain_holds_chip_until_inflight_finishes(self):
        # vgg batches run for ~1.3 simulated seconds, so work is in flight
        vgg = [TenantSpec("vgg", "vgg")]
        reqs = poisson_arrivals(40, 1, vgg, seed=2)
        eng = adaptive(replicas=2, routing="least-loaded")
        eng.ingest(reqs)
        eng.advance_to(0.5)
        busy = next(r for r in eng.replicas if r.rid == 1)
        assert busy.free_at > 0.5  # in-flight batch
        retired = eng.drain_replica(1)
        assert retired == pytest.approx(busy.free_at)

    def test_peak_fleet_size_orders_swap_correctly(self):
        # drain + add at the same instant must not read as peak+1
        rs = [
            AdaptiveReplica(0, added_s=0.0),
            AdaptiveReplica(1, added_s=0.0, retired_s=5.0),
            AdaptiveReplica(2, added_s=5.0),
        ]
        assert _peak_fleet_size(rs) == 2

    def test_slow_window_stretches_service(self):
        reqs = poisson_arrivals(50, 1, ALEX, seed=0)
        fast = adaptive(replicas=1)
        fast.ingest(reqs)
        slow = adaptive(replicas=1)
        slow.set_slow(0, 4.0, 0.0, 10.0)
        slow.ingest(reqs)
        a = fast.finish(1)
        b = slow.finish(1)
        assert b.summary["latency_ms"]["p95"] > a.summary["latency_ms"]["p95"]
