"""Detector windowing: exact partitioning, byte-stability, health ratios."""

from __future__ import annotations

import json
import math

import pytest

from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.engine import AdaptiveServingEngine
from repro.serve.metrics import to_json
from repro.serve.workload import TenantSpec, poisson_arrivals, bursty_arrivals

ALEX = [TenantSpec("alexnet", "alexnet", slo_ms=100.0)]
MIXED = [
    TenantSpec("alexnet", "alexnet", weight=2.0, slo_ms=100.0),
    TenantSpec("nin", "nin", weight=1.0, slo_ms=500.0),
]

_COSTER = BatchCoster(CONFIG_16_16)

from repro.control.telemetry import Detector  # noqa: E402


def engine(**kwargs):
    kwargs.setdefault("coster", _COSTER)
    return AdaptiveServingEngine(CONFIG_16_16, **kwargs)


def windowed_run(reqs, duration, epoch_s, tenants, **kwargs):
    """Step an engine through fixed epochs collecting WindowStats."""
    eng = engine(**kwargs)
    det = Detector(eng, tenants)
    eng.ingest(reqs)
    windows = []
    n = int(math.ceil(duration / epoch_s))
    for k in range(n):
        t_end = min((k + 1) * epoch_s, duration)
        eng.advance_to(t_end)
        windows.append(det.observe(t_end))
    # one final drain window past the nominal duration
    eng.advance_to(math.inf)
    windows.append(det.observe(duration + 1e6))
    return eng, windows


class TestWindowPartitioning:
    """Summing any column over the windows reproduces the run totals."""

    @pytest.mark.parametrize("epoch_s", [0.25, 0.5, 1.0, 3.0])
    def test_completions_partition_exactly(self, epoch_s):
        reqs = poisson_arrivals(120, 4, MIXED, seed=7)
        eng, windows = windowed_run(reqs, 4, epoch_s, MIXED)
        assert sum(w.completed for w in windows) == len(eng.metrics.completed)
        assert sum(w.deadline_met for w in windows) == sum(
            1 for r in eng.metrics.completed if r.met_deadline
        )

    def test_sheds_and_arrivals_partition_exactly(self):
        # tiny queue so plenty is shed
        from repro.serve.queue import QueuePolicy

        reqs = bursty_arrivals(300, 3, ALEX, seed=1, burst_factor=4)
        eng, windows = windowed_run(
            reqs, 3, 0.5, ALEX, queue_policy=QueuePolicy(max_depth=8)
        )
        assert sum(w.shed for w in windows) == eng.metrics.shed_total
        assert sum(w.arrivals for w in windows) == len(reqs)

    def test_boundary_exactly_on_finish_no_double_count(self):
        """A completion finishing exactly at t_end lands in that window only."""
        reqs = poisson_arrivals(60, 2, ALEX, seed=3)
        eng = engine()
        det = Detector(eng, ALEX)
        eng.ingest(reqs)
        eng.advance_to(math.inf)
        finish = eng.metrics.completed[5].finish_s
        w1 = det.observe(finish)  # boundary == a real finish instant
        w2 = det.observe(finish + 10.0)
        assert w1.completed + w2.completed == len(eng.metrics.completed)
        # the record at the boundary went to the earlier window
        boundary_hits = sum(
            1 for r in eng.metrics.completed if r.finish_s == finish
        )
        assert w1.completed >= boundary_hits

    def test_windows_never_see_future_finishes(self):
        reqs = poisson_arrivals(100, 2, MIXED, seed=9)
        eng, windows = windowed_run(reqs, 2, 0.25, MIXED)
        for w in windows:
            # every record in a window finished inside it; latency percentiles
            # of an empty window are 0 by convention
            if w.completed == 0:
                assert w.p95_ms == 0.0

    def test_observe_must_advance(self):
        eng = engine()
        det = Detector(eng, ALEX)
        eng.advance_to(1.0)
        det.observe(1.0)
        with pytest.raises(ConfigError, match="does not advance"):
            det.observe(1.0)


class TestByteStability:
    def test_window_dicts_byte_identical_across_runs(self):
        def run():
            reqs = poisson_arrivals(150, 3, MIXED, seed=21)
            _, windows = windowed_run(reqs, 3, 0.5, MIXED)
            return to_json([w.to_dict() for w in windows])

        assert run() == run()

    def test_window_dict_round_trips_through_json(self):
        reqs = poisson_arrivals(80, 2, MIXED, seed=4)
        _, windows = windowed_run(reqs, 2, 0.5, MIXED)
        for w in windows:
            d = w.to_dict()
            assert json.loads(to_json(d)) == json.loads(to_json(d))
            assert d["arrivals"] >= 0 and d["completed"] >= 0


class TestSignals:
    def test_slo_frac_is_worst_tenant(self):
        reqs = poisson_arrivals(150, 2, MIXED, seed=2)
        _, windows = windowed_run(reqs, 2, 1.0, MIXED)
        busy = [w for w in windows if w.completed]
        assert busy
        for w in busy:
            assert w.slo_p95_frac >= 0.0

    def test_network_mix_shares_sum_to_one(self):
        reqs = poisson_arrivals(200, 2, MIXED, seed=5)
        _, windows = windowed_run(reqs, 2, 1.0, MIXED)
        for w in windows:
            if w.network_mix:
                assert sum(w.network_mix.values()) == pytest.approx(1.0)

    def test_healthy_replica_ratio_near_one(self):
        reqs = poisson_arrivals(100, 2, ALEX, seed=6)
        _, windows = windowed_run(reqs, 2, 1.0, ALEX)
        for w in windows:
            for ratio in w.replica_service_ratio.values():
                assert ratio == pytest.approx(1.0, rel=1e-6)

    def test_slow_replica_ratio_matches_injected_factor(self):
        reqs = poisson_arrivals(100, 2, ALEX, seed=6)
        eng = engine()
        eng.set_slow(0, 3.0, 0.0, 10.0)
        det = Detector(eng, ALEX)
        eng.ingest(reqs)
        eng.advance_to(1.0)
        w = det.observe(1.0)
        assert w.replica_service_ratio[0] == pytest.approx(3.0, rel=1e-6)

    def test_utilization_bounded_and_positive_under_load(self):
        reqs = poisson_arrivals(200, 2, ALEX, seed=8)
        _, windows = windowed_run(reqs, 2, 0.5, ALEX)
        loaded = [w for w in windows if w.completed]
        assert any(w.utilization > 0 for w in loaded)
        for w in loaded:
            assert 0.0 <= w.utilization <= 1.0 + 1e-9

    def test_deadline_hit_rate_defaults_to_one_when_idle(self):
        eng = engine()
        det = Detector(eng, ALEX)
        eng.advance_to(1.0)
        w = det.observe(1.0)
        assert w.deadline_hit_rate == 1.0
