"""Boundary behavior of the hysteresis bands and the oscillation guard."""

from __future__ import annotations

from repro.arch.config import CONFIG_16_16
from repro.serve.batcher import BatchCoster
from repro.serve.engine import AdaptiveServingEngine
from repro.control.actuator import AppliedAction
from repro.control.policy import Action, AutoscalePolicy, Planner
from repro.control.telemetry import WindowStats
from repro.control.verifier import Verifier, VerifierPolicy

_COSTER = BatchCoster(CONFIG_16_16)

SLO = {"vgg": 600.0}


def window(**kwargs):
    base = dict(
        epoch=0,
        start_s=0.0,
        end_s=2.0,
        arrivals=0,
        completed=0,
        shed=0,
        deadline_met=0,
        queue_depth=0,
        active_replicas=2,
        p50_ms=50.0,
        p95_ms=80.0,
        p99_ms=90.0,
        slo_p95_frac=0.2,
        shed_rate=0.0,
        utilization=0.3,
        arrival_rate_rps=5.0,
        network_mix={"vgg": 1.0},
        replica_service_ratio={},
        replica_batches={},
    )
    base.update(kwargs)
    return WindowStats(**base)


def planner(**kwargs):
    return Planner(AutoscalePolicy(**kwargs), _COSTER, SLO)


def scale(kind, epoch):
    """A direction entry for the guard; clipped, so no expectation pends."""
    action = Action(kind=kind, epoch=epoch, time_s=2.0 * epoch, target=2,
                    reason="")
    return AppliedAction(action, clipped=True)


def engine():
    return AdaptiveServingEngine(CONFIG_16_16, replicas=2, coster=_COSTER)


class TestHysteresisBandEdges:
    """The bands are strict inequalities: sitting exactly ON a band edge
    must not trigger, one representable step past it must."""

    def test_p95_exactly_at_high_band_is_not_a_breach(self):
        assert planner().plan(window(slo_p95_frac=0.8)) == []

    def test_p95_just_above_high_band_scales_up(self):
        acts = planner().plan(
            window(slo_p95_frac=0.8000001, arrival_rate_rps=50.0)
        )
        assert [a.kind for a in acts] == ["scale-up"]
        assert acts[0].target > 2

    def test_p95_exactly_at_low_band_is_not_calm(self):
        acts = planner().plan(window(epoch=5, slo_p95_frac=0.35))
        assert acts == []

    def test_p95_just_below_low_band_scales_down(self):
        acts = planner().plan(window(epoch=5, slo_p95_frac=0.3499999))
        assert [a.kind for a in acts] == ["scale-down"]

    def test_utilization_exactly_at_low_util_blocks_scale_down(self):
        assert planner().plan(
            window(epoch=5, slo_p95_frac=0.2, utilization=0.5)
        ) == []

    def test_queue_exactly_at_backlog_threshold_is_not_a_breach(self):
        # queue_hi=32 per active replica; 64 queued on 2 replicas is the edge
        assert planner().plan(window(queue_depth=64)) == []
        acts = planner().plan(window(queue_depth=65, arrival_rate_rps=50.0))
        assert [a.kind for a in acts] == ["scale-up"]


class TestOscillationWindowEdge:
    POLICY = VerifierPolicy(max_flips=1, oscillation_window=4)

    def flip_pair(self):
        verifier = Verifier(self.POLICY)
        verifier.register([scale("scale-up", 0)], 0)
        verifier.register([scale("scale-down", 1)], 1)
        return verifier

    def test_flip_inside_window_trips_the_guard(self):
        verifier = self.flip_pair()
        feedback = verifier.check(engine(), 3)
        assert verifier.freezes == [
            {"epoch": 3, "until_epoch": 3 + self.POLICY.freeze_epochs,
             "flips": 1}
        ]
        assert feedback.frozen_until_epoch == 3 + self.POLICY.freeze_epochs

    def test_flip_exactly_at_window_edge_is_excluded(self):
        # window_start = epoch - oscillation_window = 0: the scale-up at
        # epoch 0 sits exactly on the edge and must NOT count (strict >)
        verifier = self.flip_pair()
        feedback = verifier.check(engine(), 4)
        assert verifier.freezes == []
        assert feedback.frozen_until_epoch == -1

    def test_repairs_never_feed_the_guard(self):
        verifier = Verifier(self.POLICY)
        verifier.register([scale("replace", 0)], 0)
        verifier.register([scale("rollback", 1)], 1)
        assert verifier.check(engine(), 3).frozen_until_epoch == -1


class TestGuardRelease:
    POLICY = VerifierPolicy(
        max_flips=1, oscillation_window=10, freeze_epochs=2
    )

    def test_no_refreeze_inside_the_freeze_window(self):
        verifier = Verifier(self.POLICY)
        verifier.register([scale("scale-up", 0)], 0)
        verifier.register([scale("scale-down", 1)], 1)
        assert verifier.check(engine(), 2).frozen_until_epoch == 4
        # flips persist, but the guard only re-arms once epoch > frozen_until
        assert verifier.check(engine(), 3).frozen_until_epoch == 4
        assert verifier.check(engine(), 4).frozen_until_epoch == 4
        assert len(verifier.freezes) == 1

    def test_rearms_after_the_freeze_window_expires(self):
        verifier = Verifier(self.POLICY)
        verifier.register([scale("scale-up", 0)], 0)
        verifier.register([scale("scale-down", 1)], 1)
        verifier.check(engine(), 2)
        feedback = verifier.check(engine(), 5)  # 5 > 4: guard re-armed
        assert feedback.frozen_until_epoch == 7
        assert [f["epoch"] for f in verifier.freezes] == [2, 5]

    def test_planner_resumes_after_release(self):
        verifier = Verifier(self.POLICY)
        verifier.register([scale("scale-up", 0)], 0)
        verifier.register([scale("scale-down", 1)], 1)
        feedback = verifier.check(engine(), 2)
        breach = dict(slo_p95_frac=0.95, arrival_rate_rps=50.0)
        p = planner()
        assert p.plan(window(epoch=4, **breach), feedback) == []  # frozen
        acts = p.plan(window(epoch=5, **breach), feedback)  # 5 > 4: released
        assert [a.kind for a in acts] == ["scale-up"]
