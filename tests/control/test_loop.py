"""Closed-loop integration: determinism, scaling economics, drain/repair."""

from __future__ import annotations

import json

import pytest

from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.workload import TenantSpec, diurnal_arrivals, poisson_arrivals
from repro.control import (
    AutoscalePolicy,
    ControlLoop,
    VerifierPolicy,
    run_static,
    static_fleet_sizes,
)

#: vgg is the heavy network (~12 req/s per replica at batch 16), so small
#: request counts already force multi-replica fleets
VGG = [TenantSpec("vgg", "vgg", slo_ms=600.0)]
MIXED = [
    TenantSpec("vgg", "vgg", weight=3.0, slo_ms=600.0),
    TenantSpec("alexnet", "alexnet", weight=1.0, slo_ms=600.0),
]

_COSTER = BatchCoster(CONFIG_16_16)


def diurnal(base=6.0, peak=40.0, days=2, day_s=60.0, seed=42, tenants=MIXED,
            **kwargs):
    return (
        diurnal_arrivals(
            base, peak, days, tenants, seed=seed, day_s=day_s,
            flash_crowds=[(0.55 * day_s, 6.0, 2.5)], **kwargs
        ),
        days * day_s,
    )


def loop(tenants=MIXED, **kwargs):
    kwargs.setdefault("coster", _COSTER)
    kwargs.setdefault(
        "autoscale", AutoscalePolicy(epoch_s=2.0, max_replicas=12)
    )
    return ControlLoop(CONFIG_16_16, tenants, **kwargs)


class TestValidation:
    def test_needs_tenants(self):
        with pytest.raises(ConfigError, match="tenant"):
            ControlLoop(CONFIG_16_16, [], coster=_COSTER)

    def test_initial_replicas_within_bounds(self):
        with pytest.raises(ConfigError, match="outside the autoscale bounds"):
            loop(replicas=20)

    def test_duration_positive(self):
        with pytest.raises(ConfigError, match="duration"):
            loop().run([], 0.0)

    def test_static_sizes_reject_peak_below_mean(self):
        with pytest.raises(ConfigError, match="below mean"):
            static_fleet_sizes(_COSTER, MIXED, 10.0, 5.0, 16)


class TestDeterminism:
    def test_full_decisions_log_byte_identical(self):
        def run():
            reqs, duration = diurnal()
            report = loop(replicas=2).run(
                reqs, duration, extra_meta={"seed": 42}
            )
            return report.to_json()

        a, b = run(), run()
        assert a == b
        # and the log is non-trivial: the fleet actually moved
        control = json.loads(a)["control"]
        assert control["actions_by_kind"].get("scale-up", 0) > 0

    def test_seed_changes_decisions(self):
        def run(seed):
            reqs, duration = diurnal(seed=seed)
            return loop(replicas=2).run(reqs, duration).to_json()

        assert run(1) != run(2)

    def test_epoch_records_cover_every_epoch(self):
        reqs, duration = diurnal(days=1)
        report = loop(replicas=2).run(reqs, duration)
        control = report.summary["control"]
        assert [e["epoch"] for e in report.epochs] == list(
            range(control["n_epochs"])
        )
        # windows partition the run: completions sum to the engine total
        assert sum(
            e["window"]["completed"] for e in report.epochs
        ) <= report.summary["completed"]


class TestScalingEconomics:
    """The acceptance criterion from the issue, in miniature."""

    def test_autoscaler_beats_the_static_tradeoff(self):
        reqs, duration = diurnal()
        mean_rate = len(reqs) / duration
        peak_inst = 40.0 * 2.5  # crest rate x flash factor
        mean_n, peak_n = static_fleet_sizes(
            _COSTER, MIXED, mean_rate, peak_inst, 16
        )
        assert mean_n < peak_n

        auto = loop(replicas=2).run(reqs, duration)
        mean_rep, _ = run_static(
            CONFIG_16_16, reqs, duration, mean_n, coster=_COSTER
        )
        _, peak_chip = run_static(
            CONFIG_16_16, reqs, duration, peak_n, coster=_COSTER
        )
        # at least the mean fleet's SLO attainment, below the peak
        # fleet's chip bill — the whole point of closing the loop
        assert auto.slo_attainment >= float(
            mean_rep.summary["deadline_hit_rate"]
        )
        assert auto.chip_seconds < peak_chip

    def test_fleet_grows_into_the_peak_and_shrinks_after(self):
        reqs, duration = diurnal(days=1)
        report = loop(replicas=1).run(reqs, duration)
        sizes = [e["window"]["active_replicas"] for e in report.epochs]
        assert max(sizes) > 2  # grew into the mid-day crest
        assert sizes[-1] < max(sizes)  # released chips in the night trough
        assert report.summary["fleet"]["peak_replicas"] == max(
            max(sizes), report.summary["fleet"]["peak_replicas"]
        )

    def test_quiet_workload_takes_no_actions(self):
        reqs = poisson_arrivals(2.0, 20, [MIXED[1]], seed=0)  # alexnet trickle
        report = loop(tenants=[MIXED[1]], replicas=1).run(reqs, 20.0)
        control = report.summary["control"]
        assert control["actions_by_kind"].get("scale-up", 0) == 0
        assert control["actions_by_kind"].get("scale-down", 0) == 0
        assert report.summary["fleet"]["chip_seconds"] == pytest.approx(
            float(report.summary["makespan_s"]), rel=1e-6
        )


class TestDrainRepair:
    def test_gray_failure_is_drained_and_replaced(self):
        # steady vgg load on 2 replicas; rid 1 goes 4x slow mid-run
        reqs = poisson_arrivals(16.0, 30, VGG, seed=3)
        autoscale = AutoscalePolicy(
            epoch_s=2.0, max_replicas=6, slow_ratio=1.5, slow_epochs=2,
            retune=False,
        )
        report = loop(
            tenants=VGG, autoscale=autoscale, replicas=2
        ).run(reqs, 30.0, slow_injections=[(1, 4.0, 4.0, 30.0)])
        control = report.summary["control"]
        assert control["actions_by_kind"].get("drain", 0) >= 1
        drains = [
            a
            for e in report.epochs
            for a in e["actions"]
            if a["kind"] == "drain"
        ]
        assert drains[0]["replica"] == 1
        assert drains[0]["drained"] == [1] and len(drains[0]["added"]) == 1
        # the drain verdict confirmed
        assert any(
            v["kind"] == "drain" and v["status"] == "confirmed"
            for v in control["verdicts"]
        )

    def test_all_verdicts_confirm_in_a_synchronous_world(self):
        reqs, duration = diurnal(days=1)
        report = loop(replicas=2).run(reqs, duration)
        statuses = report.summary["control"]["verdicts_by_status"]
        assert statuses.get("failed", 0) == 0
        assert report.summary["control"]["unresolved_expectations"] == 0


class TestOscillationGuard:
    def test_thrash_prone_policy_gets_frozen(self):
        # bands glued together + zero cooldown: every epoch flips direction
        reqs, duration = diurnal(days=1, base=10.0, peak=14.0)
        autoscale = AutoscalePolicy(
            epoch_s=1.0, max_replicas=8, high_band=0.30, low_band=0.29,
            low_util=0.98, cooldown_epochs=0, headroom=0.0, retune=False,
        )
        verifier = VerifierPolicy(max_flips=2, oscillation_window=6,
                                  freeze_epochs=8)
        report = loop(autoscale=autoscale, verifier=verifier, replicas=2).run(
            reqs, duration
        )
        control = report.summary["control"]
        ups = control["actions_by_kind"].get("scale-up", 0)
        downs = control["actions_by_kind"].get("scale-down", 0)
        if ups and downs:  # direction flipped at least once
            # guard must have engaged and epochs marked frozen
            assert control["freezes"]
            assert any(e["frozen"] for e in report.epochs)
            # while frozen, no scale actions are emitted
            for e in report.epochs:
                if e["frozen"]:
                    assert not any(
                        a["kind"].startswith("scale") for a in e["actions"]
                    )
