"""Self-healing control loop: repair, restart, and determinism."""

from __future__ import annotations

import pytest

from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError
from repro.resilience.faults import FaultSchedule, MaskFault, PEMask
from repro.serve.batcher import BatchCoster
from repro.serve.failover import ReplicaFault
from repro.serve.workload import parse_mix, poisson_arrivals
from repro.control.policy import AutoscalePolicy
from repro.control.chaos import (
    ActuationFault,
    ControlFaultSchedule,
    LoopCrash,
    SafeModePolicy,
    TelemetryFault,
)
from repro.control.healing import HealingPolicy, SelfHealingControlLoop

_COSTER = BatchCoster(CONFIG_16_16)
_TENANTS = parse_mix("alexnet", slo_ms=250.0)
_POLICY = AutoscalePolicy(epoch_s=2.0, min_replicas=2, max_replicas=6)
_DURATION = 20.0


def requests(rate=150.0, seed=3):
    return poisson_arrivals(rate, _DURATION, _TENANTS, seed=seed)


def loop(healing=HealingPolicy(), control_faults=ControlFaultSchedule(),
         safe_mode=SafeModePolicy(enabled=False), replicas=3):
    return SelfHealingControlLoop(
        CONFIG_16_16,
        _TENANTS,
        autoscale=_POLICY,
        healing=healing,
        safe_mode=safe_mode,
        control_faults=control_faults,
        replicas=replicas,
        coster=_COSTER,
    )


def action_kinds(report):
    return report.summary["control"]["actions_by_kind"]


class TestRepairs:
    def test_crashed_replica_replaced(self):
        faults = FaultSchedule(
            replica_faults=(ReplicaFault("crash", 1, 5.0),)
        )
        run = loop()
        report = run.run(requests(), _DURATION, data_faults=faults)
        replaces = [
            act
            for rec in report.epochs
            for act in rec.get("actions", ())
            if act["kind"] == "replace"
        ]
        assert replaces and replaces[0]["replica"] == 1
        assert replaces[0]["added"]  # a fresh rid was provisioned
        assert report.epochs[-1]["probe"]["crashed_unreplaced"] == []
        # the non-healing loop leaves the hole open to the end of the run
        dead = loop(healing=HealingPolicy.disabled())
        dead_report = dead.run(requests(), _DURATION, data_faults=faults)
        assert "replace" not in action_kinds(dead_report)
        assert dead_report.epochs[-1]["probe"]["crashed_unreplaced"] == [1]

    def test_degraded_replica_replanned(self):
        faults = FaultSchedule(
            mask_faults=(MaskFault(5.0, 0, PEMask(masked_cols=4)),)
        )
        report = loop().run(requests(), _DURATION, data_faults=faults)
        assert action_kinds(report).get("replan", 0) >= 1
        replans = [
            act
            for rec in report.epochs
            for act in rec.get("actions", ())
            if act["kind"] == "replan"
        ]
        assert replans[0]["replica"] == 0

    def test_failed_actuation_retried(self):
        # lose the opening scale-up command of a demand spike; verification
        # must notice and the planner must re-issue
        run = loop(
            control_faults=ControlFaultSchedule(
                actuation=(ActuationFault(0, "fail"),)
            ),
            replicas=2,
        )
        report = run.run(requests(rate=600.0), _DURATION)
        retries = [
            act
            for rec in report.epochs
            for act in rec.get("actions", ())
            if act["reason"].startswith("retry after failed verification")
        ]
        assert report.summary["healing"]["actuation_injected"] == [
            {"epoch": 0, "mode": "fail"}
        ]
        assert retries
        assert report.summary["control"]["verdicts_by_status"].get("failed", 0) >= 1


class TestTelemetryGuard:
    def test_stale_window_flagged_as_identity_mismatch(self):
        run = loop(
            control_faults=ControlFaultSchedule(
                telemetry=(TelemetryFault("stale", 3),)
            )
        )
        report = run.run(requests(), _DURATION)
        flags = report.epochs[3]["telemetry_faults"]
        assert [f["kind"] for f in flags] == ["identity-mismatch"]
        assert report.summary["healing"]["telemetry_flags"] == 1
        assert report.epochs[3]["window"] is None  # refuses to plan on it

    def test_lossy_window_flagged_as_counter_mismatch(self):
        run = loop(
            control_faults=ControlFaultSchedule(
                telemetry=(TelemetryFault("loss", 3, 0.5),)
            )
        )
        report = run.run(requests(), _DURATION)
        flags = report.epochs[3]["telemetry_faults"]
        assert [f["kind"] for f in flags] == ["counter-mismatch"]
        assert flags[0]["claimed_arrivals"] < flags[0]["ingress_arrivals"]

    def test_duplicate_delivery_keeps_the_genuine_window(self):
        run = loop(
            control_faults=ControlFaultSchedule(
                telemetry=(TelemetryFault("duplicate", 3),)
            )
        )
        report = run.run(requests(), _DURATION)
        rec = report.epochs[3]
        assert rec["delivered_epochs"] == [2, 3]
        assert [f["kind"] for f in rec["telemetry_faults"]] == [
            "identity-mismatch"
        ]
        assert rec["window"] is not None and rec["window"]["epoch"] == 3

    def test_unguarded_loop_swallows_tampered_windows(self):
        run = loop(
            healing=HealingPolicy.disabled(),
            control_faults=ControlFaultSchedule(
                telemetry=(TelemetryFault("stale", 3),)
            ),
        )
        report = run.run(requests(), _DURATION)
        rec = report.epochs[3]
        assert rec["telemetry_faults"] == []
        assert rec["window"]["epoch"] == 2  # trusts the replayed window


class TestCrashRestart:
    FAULTS = ControlFaultSchedule(crashes=(LoopCrash(3, 2),))

    def test_outage_epochs_then_journal_restart(self):
        run = loop(control_faults=self.FAULTS)
        report = run.run(requests(), _DURATION)
        outages = [rec["epoch"] for rec in report.epochs if rec.get("outage")]
        assert outages == [3, 4]
        healing = report.summary["healing"]
        assert healing["crash_events"][0]["epoch"] == 3
        assert healing["restarts"] == [
            {
                "epoch": 5,
                "journal_epochs": 5,
                "expectations_lost": 0,
                "frozen_until": -1,
            }
        ]

    def test_non_restarting_loop_stays_dead(self):
        run = loop(
            healing=HealingPolicy.disabled(), control_faults=self.FAULTS
        )
        report = run.run(requests(), _DURATION)
        outages = [rec["epoch"] for rec in report.epochs if rec.get("outage")]
        assert outages == list(range(3, 10))  # dead to the end of the run
        assert report.summary["healing"]["restarts"] == []

    def test_restart_preserves_byte_determinism(self):
        first = loop(control_faults=self.FAULTS).run(requests(), _DURATION)
        second = loop(control_faults=self.FAULTS).run(requests(), _DURATION)
        assert first.to_json() == second.to_json()


class TestLoopValidation:
    def test_replicas_outside_autoscale_bounds(self):
        with pytest.raises(ConfigError, match="outside the autoscale bounds"):
            loop(replicas=7)

    def test_no_tenants(self):
        with pytest.raises(ConfigError, match="at least one tenant"):
            SelfHealingControlLoop(CONFIG_16_16, [], coster=_COSTER)

    def test_duration_must_be_positive(self):
        with pytest.raises(ConfigError, match="duration"):
            loop().run(requests(), 0.0)


class TestDeterminism:
    def test_clean_run_byte_identical(self):
        first = loop().run(requests(), _DURATION)
        second = loop().run(requests(), _DURATION)
        assert first.to_json() == second.to_json()

    def test_stormy_run_byte_identical(self):
        faults = FaultSchedule(
            replica_faults=(ReplicaFault("crash", 1, 5.0),),
            mask_faults=(MaskFault(9.0, 0, PEMask(masked_cols=4)),),
        )
        control = ControlFaultSchedule(
            telemetry=(TelemetryFault("loss", 6, 0.5),),
            crashes=(LoopCrash(4, 1),),
        )

        def run_once():
            return loop(control_faults=control).run(
                requests(), _DURATION, data_faults=faults
            )

        assert run_once().to_json() == run_once().to_json()
