"""Chaos-under-autoscaling scenario catalogue and `repro chaos --control`."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.__main__ import main
from repro.errors import ConfigError
from repro.resilience.faults import FaultSchedule, LinkFault
from repro.control.chaos_scenarios import (
    CONTROL_INVARIANT_NAMES,
    CONTROL_SCENARIO_NAMES,
    ControlChaosScenario,
    build_control_scenario,
    rollup_to_json,
    run_control_scenario,
)


class TestCatalogue:
    def test_names_sorted_and_complete(self):
        assert list(CONTROL_SCENARIO_NAMES) == sorted(CONTROL_SCENARIO_NAMES)
        assert "composite-storm" in CONTROL_SCENARIO_NAMES
        assert len(CONTROL_SCENARIO_NAMES) >= 6

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown control scenario"):
            build_control_scenario("meteor-strike")

    def test_every_scenario_declares_known_invariants(self):
        for name in CONTROL_SCENARIO_NAMES:
            scenario = build_control_scenario(name)
            assert scenario.invariants, name
            for inv in scenario.invariants:
                assert inv in CONTROL_INVARIANT_NAMES

    def test_unknown_invariant_rejected(self):
        with pytest.raises(ConfigError, match="unknown invariant"):
            dataclasses.replace(
                build_control_scenario("crash-replace"),
                invariants=("zero-silent-drops", "always-sunny"),
            )

    def test_link_faults_rejected(self):
        with pytest.raises(ConfigError, match="price link faults"):
            dataclasses.replace(
                build_control_scenario("crash-replace"),
                data_faults=FaultSchedule(
                    link_faults=(
                        LinkFault(time_s=1.0, factor=4.0, duration_s=0.5),
                    )
                ),
            )


class TestRunner:
    @pytest.fixture(scope="class")
    def rollup(self):
        return run_control_scenario(build_control_scenario("crash-replace"))

    def test_four_arms_share_the_offered_load(self, rollup):
        arms = rollup["arms"]
        assert set(arms) == {
            "frozen-healthy",
            "frozen-faulted",
            "nonhealing",
            "healing",
        }
        offered = {arm["offered"] for arm in arms.values()}
        assert len(offered) == 1  # identical seeded requests per arm

    def test_attainment_deltas_consistent(self, rollup):
        att = rollup["attainment"]
        assert att["delta_vs_frozen"] == pytest.approx(
            att["healing"] - att["frozen_faulted"]
        )
        assert att["delta_vs_nonhealing"] == pytest.approx(
            att["healing"] - att["nonhealing"]
        )
        assert att["healing"] > att["frozen_faulted"]

    def test_invariants_match_declaration_and_hold(self, rollup):
        scenario = build_control_scenario("crash-replace")
        assert list(rollup["invariants"]) == list(scenario.invariants)
        assert all(rollup["invariants"].values())

    def test_recovery_section(self, rollup):
        recovery = rollup["recovery"]
        assert recovery["recovered"] is True
        assert recovery["mttr_ms"] is not None
        assert recovery["mttr_ms"] <= 10_000.0  # the declared deadline

    def test_rollup_byte_stable(self, rollup):
        again = run_control_scenario(build_control_scenario("crash-replace"))
        assert rollup_to_json(rollup) == rollup_to_json(again)

    def test_missed_deadline_fails_bounded_mttr(self):
        tight = dataclasses.replace(
            build_control_scenario("crash-replace"), mttr_deadline_s=0.001
        )
        rollup = run_control_scenario(tight)
        assert rollup["invariants"]["bounded-mttr"] is False


class TestCli:
    def test_list_names_all_scenarios(self, capsys):
        assert main(["chaos", "--control", "--list"]) == 0
        out = capsys.readouterr().out
        for name in CONTROL_SCENARIO_NAMES:
            assert name in out

    def test_single_scenario_table(self, capsys):
        assert main(["chaos", "--control", "crash-replace"]) == 0
        out = capsys.readouterr().out
        assert "healing" in out and "nonheal" in out and "mttr ms" in out
        assert "INVARIANT VIOLATED" not in out

    def test_json_stdout_byte_stable(self, capsys):
        assert main(["chaos", "--control", "crash-replace", "--json", "-"]) == 0
        first = capsys.readouterr().out
        payload = json.loads(first)
        assert payload["scenario"]["name"] == "crash-replace"
        assert all(payload["invariants"].values())
        assert main(["chaos", "--control", "crash-replace", "--json", "-"]) == 0
        assert capsys.readouterr().out == first

    def test_multi_scenario_json_wraps(self, capsys):
        assert main(
            ["chaos", "--control", "crash-replace", "mask-replan",
             "--json", "-"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["scenarios"]) == {"crash-replace", "mask-replan"}

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigError, match="unknown control scenario"):
            main(["chaos", "--control", "meteor-strike"])

    def test_violation_exits_nonzero(self, capsys, monkeypatch):
        import repro.control.chaos_scenarios as mod

        def broken(name, seed=1):
            return dataclasses.replace(
                mod._BUILDERS[name](seed), mttr_deadline_s=0.001
            )

        monkeypatch.setattr(mod, "build_control_scenario", broken)
        assert main(["chaos", "--control", "crash-replace"]) == 1
        out = capsys.readouterr().out
        assert "INVARIANT VIOLATED: crash-replace: bounded-mttr" in out
