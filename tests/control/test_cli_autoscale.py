"""The ``repro autoscale`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.errors import ConfigError

FAST = ["autoscale", "--days", "1", "--day-s", "40", "--peak-rate", "30"]


class TestAutoscaleCommand:
    def test_default_run(self, capsys):
        assert main(FAST) == 0
        out = capsys.readouterr().out
        assert "autoscaler:" in out
        assert "chip-seconds" in out

    def test_json_is_byte_stable(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(FAST + ["--seed", "7", "--json", str(a)]) == 0
        assert main(FAST + ["--seed", "7", "--json", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        summary = json.loads(a.read_text())
        assert summary["engine"]["adaptive"] is True
        assert summary["control"]["n_epochs"] == 20
        assert summary["workload"]["seed"] == 7

    def test_compare_adds_baselines(self, capsys):
        assert main(FAST + ["--compare", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["baselines"]) == {"static_mean", "static_peak"}
        for stats in payload["baselines"].values():
            assert stats["replicas"] >= 1

    def test_explicit_flash_window(self, capsys):
        assert main(FAST + ["--flash", "10:5:3", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["offered"] > 0

    def test_bad_flash_spec_rejected(self):
        with pytest.raises(ConfigError, match="bad --flash"):
            main(FAST + ["--flash", "oops"])

    def test_knobs_reach_the_policy(self, capsys):
        rc = main(
            FAST
            + [
                "--max-replicas", "4", "--epoch-s", "1.0", "--no-retune",
                "--json", "-",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        policy = payload["control"]["policy"]
        assert policy["max_replicas"] == 4
        assert policy["epoch_s"] == 1.0
        assert policy["retune"] is False
        assert payload["fleet"]["peak_replicas"] <= 4
