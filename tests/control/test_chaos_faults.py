"""Control-plane fault model: validation, tampering, safe mode."""

from __future__ import annotations

import pytest

from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError
from repro.resilience.faults import FaultSchedule, MaskFault, PEMask
from repro.serve.batcher import BatchCoster
from repro.serve.engine import AdaptiveServingEngine
from repro.serve.failover import ReplicaFault
from repro.serve.workload import parse_mix, poisson_arrivals
from repro.control.actuator import Actuator
from repro.control.chaos import (
    ActuationFault,
    ControlFaultSchedule,
    FlakyActuator,
    LoopCrash,
    SafeModeController,
    SafeModePolicy,
    TelemetryChannel,
    TelemetryFault,
    apply_fault_schedule,
    naive_mask_factor,
)
from repro.control.policy import Action
from repro.control.telemetry import Detector

_COSTER = BatchCoster(CONFIG_16_16)
_TENANTS = parse_mix("alexnet", slo_ms=250.0)


def engine(replicas=2):
    return AdaptiveServingEngine(
        CONFIG_16_16, replicas=replicas, coster=_COSTER
    )


class TestFaultValidation:
    def test_unknown_telemetry_kind(self):
        with pytest.raises(ConfigError, match="telemetry fault kind"):
            TelemetryFault("garbled", 1)

    def test_stale_needs_a_previous_window(self):
        with pytest.raises(ConfigError, match=">= 1"):
            TelemetryFault("stale", 0)
        with pytest.raises(ConfigError, match=">= 1"):
            TelemetryFault("duplicate", 0)
        assert TelemetryFault("loss", 0).epoch == 0

    @pytest.mark.parametrize("frac", [0.0, 1.0, -0.5, 1.5])
    def test_bad_drop_frac(self, frac):
        with pytest.raises(ConfigError, match="drop_frac"):
            TelemetryFault("loss", 1, frac)

    def test_unknown_actuation_mode(self):
        with pytest.raises(ConfigError, match="actuation fault mode"):
            ActuationFault(1, "maybe")

    def test_crash_at_epoch_zero_rejected(self):
        with pytest.raises(ConfigError, match=">= 1"):
            LoopCrash(0)

    def test_duplicate_epoch_rejected_naming_entries(self):
        with pytest.raises(
            ConfigError, match=r"actuation: duplicate.*entries 0 and 1"
        ):
            ControlFaultSchedule(
                actuation=(ActuationFault(3), ActuationFault(3, "partial"))
            )

    def test_sorted_and_serializable(self):
        schedule = ControlFaultSchedule(
            telemetry=(TelemetryFault("stale", 5), TelemetryFault("loss", 2)),
            crashes=(LoopCrash(4, 2),),
        )
        assert [f.epoch for f in schedule.telemetry] == [2, 5]
        assert schedule.to_dict()["crashes"] == [
            {"epoch": 4, "down_epochs": 2}
        ]
        assert not schedule.is_empty
        assert ControlFaultSchedule().is_empty


class TestTelemetryChannel:
    def run_channel(self, faults, epochs=3, rate=50.0):
        eng = engine()
        detector = Detector(eng, _TENANTS)
        channel = TelemetryChannel(detector, faults)
        eng.ingest(poisson_arrivals(rate, 2.0 * epochs, _TENANTS, seed=0))
        out = []
        for k in range(epochs):
            eng.advance_to(2.0 * (k + 1))
            out.append(channel.deliver(2.0 * (k + 1)))
        return out

    def test_clean_delivery_is_identity(self):
        deliveries = self.run_channel(())
        assert [len(d) for d in deliveries] == [1, 1, 1]
        assert [d[0].epoch for d in deliveries] == [0, 1, 2]

    def test_loss_undercounts_but_keeps_identity(self):
        clean = self.run_channel(())
        lossy = self.run_channel((TelemetryFault("loss", 1, 0.5),))
        tampered = lossy[1][0]
        assert tampered.epoch == 1 and tampered.end_s == 4.0
        assert tampered.arrivals < clean[1][0].arrivals
        assert tampered.arrival_rate_rps < clean[1][0].arrival_rate_rps

    def test_stale_replays_previous_window(self):
        deliveries = self.run_channel((TelemetryFault("stale", 2),))
        assert [s.epoch for s in deliveries[2]] == [1]

    def test_duplicate_delivers_both(self):
        deliveries = self.run_channel((TelemetryFault("duplicate", 2),))
        assert [s.epoch for s in deliveries[2]] == [1, 2]

    def test_injected_log_records_exercised_faults(self):
        eng = engine()
        channel = TelemetryChannel(
            Detector(eng, _TENANTS), (TelemetryFault("loss", 0, 0.5),)
        )
        eng.ingest(poisson_arrivals(50.0, 2.0, _TENANTS, seed=0))
        eng.advance_to(2.0)
        channel.deliver(2.0)
        assert channel.injected == [{"epoch": 0, "kind": "loss"}]

    def test_detector_ground_truth_untouched(self):
        # the channel tampers the delivery, not the detector's cursors:
        # the next window must be exact, not offset by the lost records
        clean = self.run_channel(())
        lossy = self.run_channel((TelemetryFault("loss", 1, 0.5),))
        assert lossy[2][0] == clean[2][0]


class TestFlakyActuator:
    def apply(self, faults, actions, epoch, replicas=2):
        eng = engine(replicas)
        flaky = FlakyActuator(Actuator(eng), faults)
        return eng, flaky.apply(actions, epoch=epoch)

    def scale_up(self, target):
        return Action(
            kind="scale-up", epoch=1, time_s=2.0, target=target, reason=""
        )

    def test_clean_epoch_passes_through(self):
        eng, applied = self.apply((), [self.scale_up(3)], epoch=1)
        assert eng.n_active() == 3
        assert applied[0].added == [2]

    def test_fail_mode_loses_the_command(self):
        eng, applied = self.apply(
            (ActuationFault(1, "fail"),), [self.scale_up(3)], epoch=1
        )
        assert eng.n_active() == 2  # nothing reached the engine
        assert applied[0].note == "actuation-fault: command lost"
        assert applied[0].action.target == 3  # verifier sees the intent

    def test_partial_mode_halves_a_scale_up(self):
        eng, applied = self.apply(
            (ActuationFault(1, "partial"),), [self.scale_up(6)], epoch=1
        )
        assert eng.n_active() == 4  # need 4, landed 2
        # the record still claims the original target: verification catches it
        assert applied[0].action.target == 6
        assert applied[0].note == "actuation-fault: partial"

    def test_partial_mode_single_add_is_atomic(self):
        eng, applied = self.apply(
            (ActuationFault(1, "partial"),), [self.scale_up(3)], epoch=1
        )
        assert eng.n_active() == 3

    def test_fault_on_empty_epoch_not_exercised(self):
        eng = engine()
        flaky = FlakyActuator(Actuator(eng), (ActuationFault(1, "fail"),))
        assert flaky.apply([], epoch=1) == []
        assert flaky.injected == []


class TestSafeMode:
    def test_trips_at_threshold_and_releases_after_clean_run(self):
        safe = SafeModeController(
            SafeModePolicy(fault_threshold=3, window_epochs=4, clean_epochs=2)
        )
        assert not safe.update(0, 1)
        assert not safe.update(1, 1)
        assert safe.update(2, 1)  # 3 faults in window -> safe mode
        assert safe.update(3, 0)  # one clean epoch: not enough
        assert not safe.update(4, 0)  # two clean epochs: released
        assert safe.intervals == [
            {"entered_epoch": 2, "exited_epoch": 4, "window_faults": 3}
        ]

    def test_faults_age_out_of_the_window(self):
        safe = SafeModeController(
            SafeModePolicy(fault_threshold=2, window_epochs=2, clean_epochs=1)
        )
        assert not safe.update(0, 1)
        assert not safe.update(5, 1)  # first fault long gone

    def test_fault_during_cooldown_resets_clean_count(self):
        safe = SafeModeController(
            SafeModePolicy(fault_threshold=1, window_epochs=2, clean_epochs=2)
        )
        assert safe.update(0, 1)
        assert safe.update(1, 0)
        assert safe.update(2, 1)  # reset
        assert safe.update(3, 0)
        assert not safe.update(4, 0)

    def test_disabled_never_trips(self):
        safe = SafeModeController(SafeModePolicy(enabled=False))
        assert not safe.update(0, 99)

    def test_replay_reconstructs_state(self):
        policy = SafeModePolicy(fault_threshold=2, window_epochs=3, clean_epochs=2)
        live = SafeModeController(policy)
        records = [(0, 1), (1, 1), (2, 0), (3, 0)]
        for epoch, count in records:
            live.update(epoch, count)
        replayed = SafeModeController(policy)
        replayed.replay(records)
        assert replayed.active == live.active
        assert replayed.intervals == live.intervals


class TestApplyFaultSchedule:
    def test_crash_and_mask_armed(self):
        eng = engine(replicas=3)
        schedule = FaultSchedule(
            replica_faults=(ReplicaFault("crash", 2, 1.0),),
            mask_faults=(MaskFault(0.5, 0, PEMask(masked_cols=4)),),
        )
        apply_fault_schedule(eng, schedule, CONFIG_16_16)
        eng.ingest(poisson_arrivals(60.0, 4.0, _TENANTS, seed=0))
        eng.advance_to(4.0)
        crashed = next(r for r in eng.replicas if r.rid == 2)
        assert not crashed.active
        masked = next(r for r in eng.replicas if r.rid == 0)
        assert masked.degraded and masked.degraded["masked_cols"] == 4

    def test_mask_factor_matches_lane_loss(self):
        factor = naive_mask_factor(CONFIG_16_16, 4, 0)
        assert factor == pytest.approx((16 * 16) / (12 * 16))

    def test_link_faults_require_priced_windows(self):
        from repro.resilience.faults import LinkFault

        schedule = FaultSchedule(
            link_faults=(LinkFault(time_s=1.0, factor=4.0, duration_s=0.5),)
        )
        with pytest.raises(ConfigError, match="link_windows"):
            apply_fault_schedule(engine(), schedule, CONFIG_16_16)
