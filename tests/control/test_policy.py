"""Planner decisions, actuator application, verifier feedback."""

from __future__ import annotations

import pytest

from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError
from repro.serve.batcher import BatchCoster
from repro.serve.engine import AdaptiveServingEngine
from repro.control.actuator import Actuator, AppliedAction
from repro.control.policy import (
    ACTION_KINDS,
    Action,
    AutoscalePolicy,
    Planner,
    PlannerFeedback,
)
from repro.control.telemetry import WindowStats
from repro.control.verifier import Verifier, VerifierPolicy

_COSTER = BatchCoster(CONFIG_16_16)

SLO = {"vgg": 600.0}


def window(**kwargs):
    base = dict(
        epoch=0,
        start_s=0.0,
        end_s=2.0,
        arrivals=0,
        completed=0,
        shed=0,
        deadline_met=0,
        queue_depth=0,
        active_replicas=2,
        p50_ms=50.0,
        p95_ms=80.0,
        p99_ms=90.0,
        slo_p95_frac=0.2,
        shed_rate=0.0,
        utilization=0.3,
        arrival_rate_rps=5.0,
        network_mix={"vgg": 1.0},
        replica_service_ratio={},
        replica_batches={},
    )
    base.update(kwargs)
    return WindowStats(**base)


def planner(**kwargs):
    return Planner(AutoscalePolicy(**kwargs), _COSTER, SLO)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epoch_s": 0},
            {"min_replicas": 0},
            {"max_replicas": 0},
            {"low_band": 0.9, "high_band": 0.8},
            {"low_util": 0},
            {"shed_hi": -0.1},
            {"queue_hi": 0},
            {"headroom": -0.5},
            {"cooldown_epochs": -1},
            {"slow_ratio": 1.0},
            {"slow_epochs": 0},
            {"min_health_batches": 0},
            {"batch_slo_frac": 0},
            {"retune_cooldown_epochs": -1},
        ],
    )
    def test_bad_knobs(self, kwargs):
        with pytest.raises(ConfigError):
            AutoscalePolicy(**kwargs)

    def test_unknown_action_kind(self):
        with pytest.raises(ConfigError, match="unknown action kind"):
            Action(kind="reboot", epoch=0, time_s=0.0, reason="")

    def test_planner_needs_slos(self):
        with pytest.raises(ConfigError, match="tenant SLO"):
            Planner(AutoscalePolicy(), _COSTER, {})


class TestScaling:
    def test_dead_zone_produces_no_action(self):
        p = planner(retune=False)
        assert p.plan(window(slo_p95_frac=0.5, utilization=0.7)) == []

    def test_breach_scales_up_to_demand(self):
        p = planner(retune=False, max_replicas=10)
        # vgg at batch 16 serves ~12 req/s per replica; 50 rps needs 6 chips
        acts = p.plan(window(slo_p95_frac=0.95, arrival_rate_rps=50.0))
        assert [a.kind for a in acts] == ["scale-up"]
        assert acts[0].target == p.demand_target(
            window(arrival_rate_rps=50.0), 16
        )
        assert acts[0].target > 3  # jumped, not crept

    def test_shed_alone_is_a_breach(self):
        p = planner(retune=False)
        acts = p.plan(window(shed_rate=0.1, shed=5))
        assert [a.kind for a in acts] == ["scale-up"]

    def test_backlog_alone_is_a_breach(self):
        p = planner(retune=False)
        acts = p.plan(window(queue_depth=100, active_replicas=2))
        assert [a.kind for a in acts] == ["scale-up"]

    def test_scale_up_capped_at_max_replicas(self):
        p = planner(retune=False, max_replicas=3)
        acts = p.plan(window(slo_p95_frac=0.95, arrival_rate_rps=500.0))
        assert acts[0].target == 3

    def test_calm_scales_down_toward_demand(self):
        p = planner(retune=False)
        # 2 rps against ~12 rps/replica capacity: demand is one replica,
        # and the shrink goes there in one decision (cooldown rate-limits)
        acts = p.plan(
            window(active_replicas=4, slo_p95_frac=0.1, utilization=0.2,
                   arrival_rate_rps=2.0)
        )
        assert [a.kind for a in acts] == ["scale-down"]
        assert acts[0].target == 1

    def test_scale_down_never_undershoots_demand(self):
        p = planner(retune=False, max_replicas=10)
        # demand ~3 replicas at 30 rps: shrink from 5 stops at demand
        acts = p.plan(
            window(active_replicas=5, slo_p95_frac=0.1, utilization=0.2,
                   arrival_rate_rps=30.0)
        )
        assert acts and acts[0].target == p.demand_target(
            window(arrival_rate_rps=30.0), 16
        )

    def test_no_scale_down_below_min(self):
        p = planner(retune=False, min_replicas=2)
        acts = p.plan(
            window(active_replicas=2, slo_p95_frac=0.1, utilization=0.1,
                   arrival_rate_rps=0.5)
        )
        assert acts == []

    def test_cooldown_blocks_consecutive_scale_downs(self):
        p = planner(retune=False, cooldown_epochs=3)
        calm = dict(slo_p95_frac=0.1, utilization=0.1, arrival_rate_rps=0.5)
        first = p.plan(window(epoch=0, active_replicas=5, **calm))
        assert first and first[0].kind == "scale-down"
        assert p.plan(window(epoch=1, active_replicas=4, **calm)) == []
        assert p.plan(window(epoch=2, active_replicas=4, **calm)) == []
        later = p.plan(window(epoch=4, active_replicas=4, **calm))
        assert later and later[0].kind == "scale-down"

    def test_cooldown_still_allows_raising_the_target(self):
        p = planner(retune=False, max_replicas=10, cooldown_epochs=4)
        p.plan(window(epoch=0, slo_p95_frac=0.95, arrival_rate_rps=30.0))
        # pressure rose during cooldown: the planner may still raise
        acts = p.plan(
            window(epoch=1, active_replicas=4, slo_p95_frac=0.95,
                   arrival_rate_rps=90.0)
        )
        assert acts and acts[0].kind == "scale-up" and acts[0].target > 4

    def test_freeze_blocks_all_scaling(self):
        p = planner(retune=False)
        fb = PlannerFeedback(frozen_until_epoch=5)
        assert (
            p.plan(window(epoch=3, slo_p95_frac=0.95, arrival_rate_rps=50.0), fb)
            == []
        )
        acts = p.plan(
            window(epoch=6, slo_p95_frac=0.95, arrival_rate_rps=50.0), fb
        )
        assert acts and acts[0].kind == "scale-up"


class TestDrainRepair:
    def test_slow_streak_triggers_one_drain(self):
        p = planner(retune=False, slow_ratio=1.5, slow_epochs=2)
        sick = dict(
            utilization=0.6,  # dead zone: no scale action rides along
            replica_service_ratio={0: 2.5, 1: 1.0},
            replica_batches={0: 3, 1: 3},
        )
        assert p.plan(window(epoch=0, **sick)) == []  # streak 1
        acts = p.plan(window(epoch=1, **sick))  # streak 2 -> drain
        assert [a.kind for a in acts] == ["drain"]
        assert acts[0].replica == 0
        # never re-drains the same rid
        assert p.plan(window(epoch=2, **sick)) == []

    def test_recovery_resets_the_streak(self):
        p = planner(retune=False, slow_epochs=2)
        p.plan(window(epoch=0, utilization=0.6, replica_service_ratio={0: 2.0},
                      replica_batches={0: 2}))
        p.plan(window(epoch=1, utilization=0.6, replica_service_ratio={0: 1.0},
                      replica_batches={0: 2}))
        acts = p.plan(window(epoch=2, utilization=0.6,
                             replica_service_ratio={0: 2.0},
                             replica_batches={0: 2}))
        assert acts == []  # streak restarted

    def test_too_few_batches_is_not_a_verdict(self):
        p = planner(retune=False, slow_epochs=1, min_health_batches=4)
        acts = p.plan(window(epoch=0, utilization=0.6,
                             replica_service_ratio={0: 3.0},
                             replica_batches={0: 1}))
        assert acts == []


class TestRetune:
    def test_picks_largest_batch_fitting_the_budget(self):
        p = planner(cooldown_epochs=0)
        p.notify_batcher(16, 10.0)
        # vgg batch-16 service ~1.29s >> 0.5 * 600ms; batch 2 fits
        acts = p.plan(window(completed=50, arrival_rate_rps=20.0))
        retunes = [a for a in acts if a.kind == "retune"]
        assert len(retunes) == 1
        assert retunes[0].max_batch in (1, 2)
        assert retunes[0].max_wait_ms <= 10.0

    def test_retune_cooldown(self):
        p = planner(retune_cooldown_epochs=10)
        p.notify_batcher(16, 10.0)
        acts = p.plan(window(epoch=0, completed=50, arrival_rate_rps=20.0))
        assert any(a.kind == "retune" for a in acts)
        p.notify_batcher(16, 10.0)  # pretend the loop reverted it
        acts = p.plan(window(epoch=1, completed=50, arrival_rate_rps=20.0))
        assert not any(a.kind == "retune" for a in acts)

    def test_no_retune_when_disabled(self):
        p = planner(retune=False)
        acts = p.plan(window(completed=50, arrival_rate_rps=20.0))
        assert not any(a.kind == "retune" for a in acts)


class TestActuator:
    def make(self, replicas=2):
        eng = AdaptiveServingEngine(CONFIG_16_16, replicas=replicas, coster=_COSTER)
        return eng, Actuator(eng)

    def act(self, kind, **kwargs):
        return Action(kind=kind, epoch=0, time_s=0.0, reason="t", **kwargs)

    def test_scale_up_adds_to_target(self):
        eng, act = self.make(2)
        (applied,) = act.apply([self.act("scale-up", target=5)])
        assert eng.n_active() == 5
        assert applied.added == [2, 3, 4] and not applied.clipped

    def test_scale_up_already_there_is_clipped(self):
        eng, act = self.make(3)
        (applied,) = act.apply([self.act("scale-up", target=3)])
        assert applied.clipped and applied.added == []

    def test_scale_down_drains_highest_rids_first(self):
        eng, act = self.make(4)
        (applied,) = act.apply([self.act("scale-down", target=2)])
        assert applied.drained == [3, 2]
        assert [r.rid for r in eng.active_replicas()] == [0, 1]

    def test_scale_down_never_strands_the_queue(self):
        eng, act = self.make(2)
        (applied,) = act.apply([self.act("scale-down", target=0)])
        assert eng.n_active() == 1 and applied.clipped

    def test_drain_repair_swaps_one_for_one(self):
        eng, act = self.make(2)
        (applied,) = act.apply([self.act("drain", replica=0)])
        assert applied.drained == [0] and applied.added == [2]
        assert eng.n_active() == 2  # capacity held through the repair

    def test_drain_of_gone_replica_is_clipped(self):
        eng, act = self.make(3)
        eng.drain_replica(2)
        (applied,) = act.apply([self.act("drain", replica=2)])
        assert applied.clipped and "already gone" in applied.note

    def test_retune_swaps_the_live_policy(self):
        eng, act = self.make(1)
        act.apply([self.act("retune", max_batch=4, max_wait_ms=2.0)])
        assert eng.batch_policy.max_batch == 4
        assert eng.batch_policy.max_wait_ms == 2.0

    @pytest.mark.parametrize(
        "kind,kwargs",
        [("scale-up", {}), ("scale-down", {}), ("drain", {}), ("retune", {})],
    )
    def test_incomplete_actions_rejected(self, kind, kwargs):
        _, act = self.make(2)
        with pytest.raises(ConfigError):
            act.apply([self.act(kind, **kwargs)])


class TestVerifier:
    def make(self, replicas=2, **kwargs):
        eng = AdaptiveServingEngine(CONFIG_16_16, replicas=replicas, coster=_COSTER)
        return eng, Actuator(eng), Verifier(VerifierPolicy(**kwargs))

    def act(self, kind, **kwargs):
        return Action(kind=kind, epoch=0, time_s=0.0, reason="t", **kwargs)

    def test_applied_action_confirms(self):
        eng, actuator, ver = self.make(2)
        applied = actuator.apply([self.act("scale-up", target=4)])
        ver.register(applied, epoch=0)
        fb = ver.check(eng, epoch=1)
        assert fb.failed_kinds == []
        assert [v["status"] for v in ver.verdicts] == ["confirmed"]

    def test_unmet_expectation_fails_after_deadline(self):
        eng, actuator, ver = self.make(2, verify_deadline_epochs=1)
        # register an expectation by hand that the engine never satisfies
        ver.register(
            [AppliedAction(self.act("scale-up", target=9), added=[])], epoch=0
        )
        assert ver.check(eng, epoch=1).failed_kinds == []  # still pending
        fb = ver.check(eng, epoch=2)
        assert fb.failed_kinds == ["scale-up"]
        assert [v["status"] for v in ver.verdicts] == ["failed"]

    def test_oscillation_trips_the_freeze(self):
        eng, actuator, ver = self.make(2, max_flips=3, freeze_epochs=6)
        kinds = ["scale-up", "scale-down", "scale-up", "scale-down"]
        for k, kind in enumerate(kinds):
            target = eng.n_active() + (1 if kind == "scale-up" else -1)
            applied = actuator.apply([self.act(kind, target=target)])
            ver.register(applied, epoch=k)
        fb = ver.check(eng, epoch=4)
        assert fb.frozen_until_epoch == 10
        assert ver.freezes and ver.freezes[0]["flips"] == 3

    def test_steady_scaling_never_freezes(self):
        eng, actuator, ver = self.make(1, max_flips=3)
        for k in range(4):
            applied = actuator.apply(
                [self.act("scale-up", target=eng.n_active() + 1)]
            )
            ver.register(applied, epoch=k)
        fb = ver.check(eng, epoch=4)
        assert fb.frozen_until_epoch == -1 and not ver.freezes

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"verify_deadline_epochs": -1},
            {"max_flips": 0},
            {"oscillation_window": 1},
            {"freeze_epochs": 0},
        ],
    )
    def test_bad_policy(self, kwargs):
        with pytest.raises(ConfigError):
            VerifierPolicy(**kwargs)
