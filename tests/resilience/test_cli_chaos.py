"""`python -m repro chaos` CLI tests."""

import json

import pytest

from repro.__main__ import main
from repro.errors import ConfigError


class TestChaosCommand:
    def test_list_names_all_scenarios(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("single-crash", "fail-slow", "link-flap", "cascade",
                     "pe-mask", "chip-loss", "sdc-storm", "sdc-silent"):
            assert name in out

    def test_single_scenario_table(self, capsys):
        assert main(["chaos", "single-crash"]) == 0
        out = capsys.readouterr().out
        assert "avail" in out
        assert "mttr ms" in out
        assert "single-crash" in out

    def test_json_stdout_single(self, capsys):
        assert main(["chaos", "single-crash", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["name"] == "single-crash"
        assert payload["availability"] >= 0.0
        assert "recovery" in payload

    def test_json_stdout_multi_wraps_scenarios(self, capsys):
        assert main(
            ["chaos", "single-crash", "pe-mask", "--json", "-"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 1
        assert set(payload["scenarios"]) == {"single-crash", "pe-mask"}

    def test_json_to_file(self, capsys, tmp_path):
        target = tmp_path / "chaos.json"
        assert main(["chaos", "single-crash", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["scenario"]["name"] == "single-crash"
        assert "written to" in capsys.readouterr().out

    def test_pe_mask_prints_degrade_digest(self, capsys):
        assert main(["chaos", "pe-mask"]) == 0
        out = capsys.readouterr().out
        assert "degraded 16x16 -> 3x16" in out
        assert "conv1 partition->inter-improved" in out

    def test_chip_loss_prints_repair_digest(self, capsys):
        assert main(["chaos", "chip-loss"]) == 0
        out = capsys.readouterr().out
        assert "lost chip(s) [1]" in out
        assert "throughput" in out

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            main(["chaos", "meteor-strike"])

    def test_sdc_storm_prints_integrity_digest_and_passes(self, capsys):
        assert main(["chaos", "sdc-storm"]) == 0
        out = capsys.readouterr().out
        assert "corrupted batches" in out
        assert "drained [1]" in out
        assert "INVARIANT VIOLATED" not in out

    def test_sdc_silent_has_no_invariants_to_violate(self, capsys):
        assert main(["chaos", "sdc-silent"]) == 0
        out = capsys.readouterr().out
        assert "escaped" in out

    def test_sdc_storm_json_carries_invariants(self, capsys):
        assert main(["chaos", "sdc-storm", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["invariants_declared"] == [
            "zero-silent-drops",
            "zero-escaped",
            "sdc-drained",
        ]
        assert payload["invariants"] == {
            "zero-silent-drops": True,
            "zero-escaped": True,
            "sdc-drained": True,
        }
        assert payload["integrity"]["escaped_batches"] == 0

    def test_seed_flag_changes_output(self, capsys):
        assert main(["chaos", "single-crash", "--json", "-", "--seed", "1"]) == 0
        first = capsys.readouterr().out
        assert main(["chaos", "single-crash", "--json", "-", "--seed", "2"]) == 0
        second = capsys.readouterr().out
        assert first != second
