"""Fault schedule construction, validation, and seeded determinism."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.resilience.faults import (
    BITFLIP_SITES,
    BitFlipFault,
    FaultSchedule,
    LinkFault,
    PEMask,
    ReplicaFault,
    SDCFault,
    flapping_link,
    seeded_bitflips,
)


class TestPEMask:
    def test_noop_default(self):
        assert PEMask().is_noop
        assert not PEMask(masked_cols=1).is_noop

    @pytest.mark.parametrize("bad", [-1, True, 1.5, "2"])
    def test_bad_counts_rejected(self, bad):
        with pytest.raises(ConfigError):
            PEMask(masked_cols=bad)
        with pytest.raises(ConfigError):
            PEMask(masked_rows=bad)

    def test_to_dict(self):
        assert PEMask(masked_cols=3, masked_rows=2).to_dict() == {
            "masked_cols": 3,
            "masked_rows": 2,
        }


class TestLinkFault:
    def test_end_time(self):
        fault = LinkFault(time_s=1.0, factor=4.0, duration_s=0.5)
        assert fault.end_s == 1.5

    @pytest.mark.parametrize("bad_factor", [0.5, 0.0, math.nan, math.inf])
    def test_bad_factor_rejected(self, bad_factor):
        with pytest.raises(ConfigError, match="factor"):
            LinkFault(time_s=0.0, factor=bad_factor, duration_s=1.0)

    @pytest.mark.parametrize("bad_duration", [0.0, -1.0, math.nan, math.inf])
    def test_bad_duration_rejected(self, bad_duration):
        with pytest.raises(ConfigError, match="duration"):
            LinkFault(time_s=0.0, factor=2.0, duration_s=bad_duration)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError, match="time"):
            LinkFault(time_s=-0.1, factor=2.0, duration_s=1.0)


class TestFlappingLink:
    def test_periodic_windows(self):
        flaps = flapping_link(
            start_s=1.0, period_s=0.5, down_fraction=0.4, factor=4.0, flaps=3
        )
        assert [f.time_s for f in flaps] == [1.0, 1.5, 2.0]
        assert all(f.duration_s == pytest.approx(0.2) for f in flaps)
        assert all(f.factor == 4.0 for f in flaps)

    def test_windows_do_not_overlap(self):
        flaps = flapping_link(
            start_s=0.0, period_s=1.0, down_fraction=0.9, factor=2.0, flaps=4
        )
        for a, b in zip(flaps, flaps[1:]):
            assert a.end_s <= b.time_s

    @pytest.mark.parametrize("frac", [0.0, 1.0, -0.1, 1.5])
    def test_bad_down_fraction(self, frac):
        with pytest.raises(ConfigError, match="down_fraction"):
            flapping_link(0.0, 1.0, frac, 2.0, 1)

    def test_bad_flap_count(self):
        with pytest.raises(ConfigError, match="flap count"):
            flapping_link(0.0, 1.0, 0.5, 2.0, 0)


class TestFaultSchedule:
    def test_normalized_to_time_order(self):
        schedule = FaultSchedule(
            replica_faults=(
                ReplicaFault("crash", 1, 2.0),
                ReplicaFault("crash", 0, 1.0),
            )
        )
        assert [f.time_s for f in schedule.replica_faults] == [1.0, 2.0]

    def test_crash_slow_split(self):
        schedule = FaultSchedule(
            replica_faults=(
                ReplicaFault("crash", 0, 1.0),
                ReplicaFault("slow", 1, 0.5, factor=2.0, duration_s=1.0),
            )
        )
        assert len(schedule.crashes) == 1
        assert len(schedule.slowdowns) == 1
        assert schedule.first_crash_s() == 1.0

    def test_empty_schedule(self):
        assert FaultSchedule().is_empty
        assert FaultSchedule(pe_mask=PEMask()).is_empty
        assert not FaultSchedule(pe_mask=PEMask(masked_cols=1)).is_empty
        assert FaultSchedule().first_crash_s() is None

    def test_validate_for_rejects_out_of_range(self):
        schedule = FaultSchedule(replica_faults=(ReplicaFault("crash", 3, 1.0),))
        with pytest.raises(ConfigError, match="replica 3"):
            schedule.validate_for(2)
        schedule.validate_for(4)  # fine

    def test_to_dict_round_trips_structure(self):
        schedule = FaultSchedule(
            replica_faults=(ReplicaFault("crash", 0, 1.0),),
            pe_mask=PEMask(masked_cols=2),
            seed=7,
        )
        d = schedule.to_dict()
        assert d["seed"] == 7
        assert d["replica_faults"][0]["kind"] == "crash"
        assert d["pe_mask"] == {"masked_cols": 2, "masked_rows": 0}


class TestBitFlipFault:
    def test_sites_cover_the_datapath(self):
        assert BITFLIP_SITES == ("activation", "weight", "psum", "output")

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError, match="site"):
            BitFlipFault("cache", 0, 0)

    @pytest.mark.parametrize("bad", [-1, True, 1.5])
    def test_bad_index_bit_step(self, bad):
        with pytest.raises(ConfigError):
            BitFlipFault("psum", bad, 0)
        with pytest.raises(ConfigError):
            BitFlipFault("psum", 0, bad)
        with pytest.raises(ConfigError):
            BitFlipFault("psum", 0, 0, step=bad)

    def test_bit_bounded_to_word(self):
        with pytest.raises(ConfigError, match="bit"):
            BitFlipFault("output", 0, 64)

    def test_to_dict(self):
        d = BitFlipFault("psum", 12, 3, step=2).to_dict()
        assert d["site"] == "psum"
        assert d["index"] == 12


class TestSeededBitflips:
    def test_same_seed_same_family(self):
        assert seeded_bitflips(9, 8) == seeded_bitflips(9, 8)

    def test_round_robin_covers_every_site(self):
        family = seeded_bitflips(0, 8)
        assert [f.site for f in family[:4]] == list(BITFLIP_SITES)
        assert [f.site for f in family[4:]] == list(BITFLIP_SITES)

    def test_site_restriction(self):
        family = seeded_bitflips(0, 5, sites=("weight",))
        assert all(f.site == "weight" for f in family)

    def test_psum_uses_wide_word(self):
        family = seeded_bitflips(3, 40, psum_bits=24, word_bits=16)
        assert all(f.bit < 16 for f in family if f.site != "psum")
        assert all(f.bit < 24 for f in family if f.site == "psum")

    def test_bad_count_rejected(self):
        with pytest.raises(ConfigError, match="count"):
            seeded_bitflips(0, -1)

    def test_empty_sites_rejected(self):
        with pytest.raises(ConfigError, match="at least one site"):
            seeded_bitflips(0, 1, sites=())


class TestSDCInSchedule:
    def test_sdc_faults_sorted_and_counted(self):
        schedule = FaultSchedule(
            sdc_faults=(
                SDCFault(replica=1, time_s=2.0, duration_s=0.5),
                SDCFault(replica=0, time_s=1.0, duration_s=0.5),
            )
        )
        assert [f.time_s for f in schedule.sdc_faults] == [1.0, 2.0]
        assert not schedule.is_empty
        assert schedule.to_dict()["sdc_faults"][0]["replica"] == 0

    def test_validate_for_checks_sdc_targets(self):
        schedule = FaultSchedule(
            sdc_faults=(SDCFault(replica=5, time_s=0.0, duration_s=1.0),)
        )
        with pytest.raises(ConfigError, match="replica 5"):
            schedule.validate_for(2)


class TestSeeded:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.seeded(5, n_replicas=4, duration_s=4.0, crashes=2)
        b = FaultSchedule.seeded(5, n_replicas=4, duration_s=4.0, crashes=2)
        assert a == b

    def test_different_seeds_differ(self):
        a = FaultSchedule.seeded(1, n_replicas=4, duration_s=4.0, crashes=2)
        b = FaultSchedule.seeded(2, n_replicas=4, duration_s=4.0, crashes=2)
        assert a != b

    def test_crashes_hit_distinct_replicas(self):
        schedule = FaultSchedule.seeded(3, n_replicas=4, duration_s=4.0, crashes=4)
        assert {f.replica for f in schedule.crashes} == {0, 1, 2, 3}

    def test_fault_times_in_middle_window(self):
        schedule = FaultSchedule.seeded(
            11, n_replicas=3, duration_s=10.0, crashes=2, slowdowns=2
        )
        for fault in schedule.replica_faults:
            assert 2.0 <= fault.time_s < 8.0

    def test_too_many_crashes_rejected(self):
        with pytest.raises(ConfigError, match="cannot crash"):
            FaultSchedule.seeded(0, n_replicas=2, duration_s=1.0, crashes=3)

    def test_link_flaps_generated(self):
        schedule = FaultSchedule.seeded(
            0, n_replicas=2, duration_s=4.0, crashes=0, link_flaps=3
        )
        assert len(schedule.link_faults) == 3

    def test_slow_factor_in_range(self):
        schedule = FaultSchedule.seeded(
            9, n_replicas=3, duration_s=4.0, crashes=0, slowdowns=3,
            slow_factor_range=(2.0, 4.0),
        )
        for fault in schedule.slowdowns:
            assert 2.0 <= fault.factor <= 4.0


class TestScheduleEntryValidation:
    """Satellite: reject bad times and duplicate (time, target) entries,
    naming the offending entry in the trace_arrivals style."""

    def test_infinite_time_rejected_naming_entry(self):
        with pytest.raises(ConfigError, match=r"non-finite.*entry 0"):
            FaultSchedule(
                replica_faults=(ReplicaFault("crash", 0, math.inf),)
            )

    def test_negative_time_rejected_at_fault_level(self):
        with pytest.raises(ConfigError, match="time"):
            ReplicaFault("crash", 0, -1.0)

    def test_nan_time_rejected_at_fault_level(self):
        with pytest.raises(ConfigError, match="time"):
            ReplicaFault("crash", 0, math.nan)

    def test_duplicate_time_and_target_rejected_naming_entries(self):
        with pytest.raises(
            ConfigError, match=r"duplicate.*replica 1.*entries 0 and 1"
        ):
            FaultSchedule(
                replica_faults=(
                    ReplicaFault("crash", 1, 2.0),
                    ReplicaFault("slow", 1, 2.0, factor=2.0, duration_s=1.0),
                )
            )

    def test_same_time_different_replicas_allowed(self):
        schedule = FaultSchedule(
            replica_faults=(
                ReplicaFault("crash", 0, 2.0),
                ReplicaFault("crash", 1, 2.0),
            )
        )
        assert len(schedule.crashes) == 2

    def test_duplicate_link_fault_rejected(self):
        with pytest.raises(ConfigError, match=r"link_faults: duplicate"):
            FaultSchedule(
                link_faults=(
                    LinkFault(time_s=1.0, factor=2.0, duration_s=0.5),
                    LinkFault(time_s=1.0, factor=4.0, duration_s=0.25),
                )
            )

    def test_duplicate_sdc_fault_rejected(self):
        with pytest.raises(ConfigError, match=r"sdc_faults: duplicate"):
            FaultSchedule(
                sdc_faults=(
                    SDCFault(replica=1, time_s=0.5, duration_s=0.5),
                    SDCFault(replica=1, time_s=0.5, duration_s=1.0),
                )
            )

    def test_duplicate_mask_fault_rejected(self):
        from repro.resilience.faults import MaskFault

        with pytest.raises(ConfigError, match=r"mask_faults: duplicate"):
            FaultSchedule(
                mask_faults=(
                    MaskFault(1.0, 0, PEMask(masked_cols=2)),
                    MaskFault(1.0, 0, PEMask(masked_rows=3)),
                )
            )


class TestMaskFault:
    def test_valid_mask_fault(self):
        from repro.resilience.faults import MaskFault

        fault = MaskFault(2.5, 1, PEMask(masked_cols=4))
        assert fault.to_dict() == {
            "time_ms": 2500.0,
            "replica": 1,
            "mask": {"masked_cols": 4, "masked_rows": 0},
        }

    def test_noop_mask_rejected(self):
        from repro.resilience.faults import MaskFault

        with pytest.raises(ConfigError, match="non-noop"):
            MaskFault(1.0, 0, PEMask())

    def test_infinite_time_rejected(self):
        from repro.resilience.faults import MaskFault

        with pytest.raises(ConfigError, match="finite"):
            MaskFault(math.inf, 0, PEMask(masked_cols=1))

    def test_validated_against_replica_count(self):
        from repro.resilience.faults import MaskFault

        schedule = FaultSchedule(
            mask_faults=(MaskFault(1.0, 5, PEMask(masked_cols=1)),)
        )
        with pytest.raises(ConfigError, match="replica 5"):
            schedule.validate_for(3)
