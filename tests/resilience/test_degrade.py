"""Degraded-geometry replanning: mask arithmetic, scheme flips, cache keys.

The satellite requirement pinned here: PE mask → effective Tin/Tout →
Algorithm 2 scheme flip is *deterministic*, and the degraded config is
*cache-keyed distinctly* from the healthy one.
"""

from __future__ import annotations

import pytest

from repro.arch.config import CONFIG_16_16
from repro.errors import ConfigError
from repro.nn.zoo import build
from repro.nn.zoo.custom import sequential_cnn
from repro.perf.cache import canonical_key, config_key
from repro.resilience.degrade import degraded_config, replan_degraded
from repro.resilience.faults import PEMask

#: conv1 has Din=8 < Tin=16 -> partition on the healthy array; masking 9
#: columns gives Tin=7 <= 8, so Algorithm 2 flips it to inter-kernel
DIN8 = sequential_cnn("din8", (8, 32, 32), "C32k3s1p1 R")


class TestDegradedConfig:
    def test_mask_arithmetic(self):
        degraded = degraded_config(CONFIG_16_16, PEMask(masked_cols=9, masked_rows=4))
        assert degraded.tin == 7
        assert degraded.tout == 12

    def test_noop_mask_keeps_geometry(self):
        degraded = degraded_config(CONFIG_16_16, PEMask())
        assert (degraded.tin, degraded.tout) == (16, 16)

    def test_all_columns_masked_rejected(self):
        with pytest.raises(ConfigError, match="input lane"):
            degraded_config(CONFIG_16_16, PEMask(masked_cols=16))

    def test_all_rows_masked_rejected(self):
        with pytest.raises(ConfigError, match="adder tree"):
            degraded_config(CONFIG_16_16, PEMask(masked_rows=20))


class TestSchemeFlip:
    def test_din8_flips_partition_to_inter(self):
        report = replan_degraded(DIN8, CONFIG_16_16, PEMask(masked_cols=9))
        assert len(report.flips) == 1
        flip = report.flips[0]
        assert flip.layer_name == "conv1"
        assert flip.healthy_scheme == "partition"
        assert flip.degraded_scheme == "inter-improved"

    def test_flip_is_deterministic(self):
        def run():
            return replan_degraded(
                DIN8, CONFIG_16_16, PEMask(masked_cols=9)
            ).to_dict()

        assert run() == run()

    def test_small_mask_does_not_flip(self):
        # Tin=14 still exceeds Din=8, so the partition verdict stands
        report = replan_degraded(DIN8, CONFIG_16_16, PEMask(masked_cols=2))
        assert report.flips == ()

    def test_alexnet_conv1_flips_under_deep_mask(self):
        report = replan_degraded(
            build("alexnet"), CONFIG_16_16, PEMask(masked_cols=13)
        )
        assert any(
            f.layer_name == "conv1" and f.degraded_scheme == "inter-improved"
            for f in report.flips
        )


class TestCacheKeys:
    def test_degraded_config_keys_distinct(self):
        degraded = degraded_config(CONFIG_16_16, PEMask(masked_cols=9))
        assert config_key(degraded) != config_key(CONFIG_16_16)

    def test_canonical_keys_distinct_per_geometry(self):
        ctx = DIN8.conv_contexts()[0]
        degraded = degraded_config(CONFIG_16_16, PEMask(masked_cols=9))
        healthy_key = canonical_key("partition", ctx, CONFIG_16_16)
        degraded_key = canonical_key("partition", ctx, degraded)
        assert healthy_key != degraded_key

    def test_row_only_mask_also_distinct(self):
        ctx = DIN8.conv_contexts()[0]
        degraded = degraded_config(CONFIG_16_16, PEMask(masked_rows=1))
        assert canonical_key("intra", ctx, degraded) != canonical_key(
            "intra", ctx, CONFIG_16_16
        )


class TestReplanReport:
    def test_degraded_is_slower(self):
        report = replan_degraded(DIN8, CONFIG_16_16, PEMask(masked_cols=9))
        assert report.degraded_ms > report.healthy_ms
        assert report.slowdown > 1.0

    def test_to_dict_shape(self):
        d = replan_degraded(DIN8, CONFIG_16_16, PEMask(masked_cols=9)).to_dict()
        assert d["network"] == "din8"
        assert d["healthy_pe"] == [16, 16]
        assert d["degraded_pe"] == [7, 16]
        assert d["scheme_flips"][0]["layer"] == "conv1"
        assert d["slowdown"] == pytest.approx(
            d["degraded_ms"] / d["healthy_ms"], rel=1e-4
        )
