"""Chaos scenario runner: determinism, invariants, MTTR, rollup shape."""

from __future__ import annotations

import pytest

from repro.arch.config import CONFIG_16_16
from repro.cluster.link import LinkSpec
from repro.errors import ConfigError
from repro.resilience.faults import FaultSchedule, LinkFault, PEMask
from repro.resilience.scenarios import (
    INVARIANT_NAMES,
    SCENARIO_NAMES,
    ChaosScenario,
    build_scenario,
    rollup_to_json,
    run_scenario,
)
from repro.serve.batcher import BatchCoster

#: one shared coster so the expensive plans derive once per test session
_COSTER = BatchCoster(CONFIG_16_16)


def run(name, seed=1):
    return run_scenario(build_scenario(name, seed=seed), coster=_COSTER)


@pytest.fixture(scope="module")
def single_crash():
    return run("single-crash")


class TestRegistry:
    def test_names_sorted_and_complete(self):
        assert SCENARIO_NAMES == tuple(sorted(SCENARIO_NAMES))
        for expected in ("single-crash", "fail-slow", "pe-mask", "cascade"):
            assert expected in SCENARIO_NAMES

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            build_scenario("meteor-strike")

    def test_builders_embed_seed(self):
        scenario = build_scenario("single-crash", seed=42)
        assert scenario.seed == 42
        assert scenario.schedule.seed == 42


class TestValidation:
    def test_link_faults_require_chips(self):
        with pytest.raises(ConfigError, match="link faults"):
            ChaosScenario(
                name="x",
                description="",
                schedule=FaultSchedule(
                    link_faults=(LinkFault(1.0, 2.0, 0.5),)
                ),
                chips=1,
            )

    def test_fault_replica_out_of_range(self):
        from repro.resilience.faults import ReplicaFault

        with pytest.raises(ConfigError, match="replica 5"):
            ChaosScenario(
                name="x",
                description="",
                schedule=FaultSchedule(
                    replica_faults=(ReplicaFault("crash", 5, 1.0),)
                ),
                replicas=2,
            )


class TestDeterminism:
    def test_byte_identical_reruns(self, single_crash):
        assert rollup_to_json(single_crash) == rollup_to_json(run("single-crash"))

    def test_seed_changes_rollup(self, single_crash):
        assert rollup_to_json(single_crash) != rollup_to_json(
            run("single-crash", seed=2)
        )


class TestInvariants:
    def test_every_request_terminates(self, single_crash):
        for side in ("healthy", "faulted"):
            digest = single_crash[side]
            assert (
                digest["completed"] + digest["shed"] + digest["failed"]
                == digest["offered"]
            )

    def test_healthy_and_faulted_see_same_offered_load(self, single_crash):
        assert single_crash["healthy"]["offered"] == single_crash["faulted"]["offered"]

    def test_availability_matches_digest(self, single_crash):
        f = single_crash["faulted"]
        assert single_crash["availability"] == pytest.approx(
            f["completed"] / f["offered"], abs=1e-6
        )


class TestRecovery:
    def test_single_crash_recovers_to_survivor_fraction(self, single_crash):
        rec = single_crash["recovery"]
        assert rec["crashed_replicas"] == 1
        assert rec["survivor_fraction"] == pytest.approx(2 / 3)
        assert rec["recovered"] is True
        assert rec["mttr_ms"] is not None and rec["mttr_ms"] > 0
        # the acceptance bar: goodput under fault >= (N-1)/N of healthy
        assert single_crash["goodput_ratio"] >= rec["survivor_fraction"]

    def test_goodput_series_starts_at_crash(self, single_crash):
        rec = single_crash["recovery"]
        assert rec["goodput_series"][0]["t_ms"] == rec["first_crash_ms"]

    def test_no_crash_no_mttr(self):
        rollup = run("pe-mask")
        rec = rollup["recovery"]
        assert rec["first_crash_ms"] is None
        assert rec["mttr_ms"] is None
        assert rec["recovered"] is False


class TestDegradeSection:
    def test_pe_mask_reports_flip_and_slowdown(self):
        rollup = run("pe-mask")
        degrade = rollup["degrade"]["alexnet"]
        assert degrade["degraded_pe"] == [3, 16]
        assert any(f["layer"] == "conv1" for f in degrade["scheme_flips"])
        assert degrade["slowdown"] > 1.5
        # the tier actually serves at the degraded geometry
        assert rollup["latency_ratio"]["p95"] > 1.5

    def test_crash_scenarios_have_no_degrade_section(self, single_crash):
        assert single_crash["degrade"] is None


class TestRepairSection:
    def test_chip_loss_reports_rebalance(self):
        rollup = run("chip-loss")
        repair = rollup["repair"]
        assert repair["lost_chips"] == [1]
        assert repair["healthy_chips"] == 3
        assert 0.0 < repair["throughput_ratio"] <= 1.0
        assert repair["rebalance_bytes"] > 0


class TestSDCScenarios:
    @pytest.fixture(scope="class")
    def storm(self):
        return run("sdc-storm")

    def test_registered(self):
        assert "sdc-storm" in SCENARIO_NAMES
        assert "sdc-silent" in SCENARIO_NAMES

    def test_storm_detects_corrects_and_drains(self, storm):
        integrity = storm["integrity"]
        assert integrity["corrupted_batches"] > 0
        assert integrity["detected"] == integrity["corrupted_batches"]
        assert integrity["corrected"] == integrity["detected"]
        assert integrity["escaped_batches"] == 0
        assert integrity["drained_replicas"] == [1]

    def test_storm_invariants_hold(self, storm):
        assert storm["invariants"] == {
            "zero-silent-drops": True,
            "zero-escaped": True,
            "sdc-drained": True,
        }
        assert storm["invariants_declared"] == list(INVARIANT_NAMES)

    def test_storm_quotes_verified_latency_tax(self, storm):
        ratio = storm["integrity"]["verified_latency_ratio"]
        assert ratio["p50"] >= 1.0
        assert ratio["p95"] >= 1.0

    def test_silent_tier_escapes_every_corruption(self):
        rollup = run("sdc-silent")
        integrity = rollup["integrity"]
        assert integrity["detected"] == 0
        assert integrity["escaped_batches"] == integrity["corrupted_batches"] > 0
        # every catalogue scenario declares the universal accounting invariant
        assert rollup["invariants"] == {"zero-silent-drops": True}
        assert rollup["invariants_declared"] == ["zero-silent-drops"]

    def test_storm_meta_names_verification_and_invariants(self, storm):
        meta = storm["scenario"]
        assert "verification(" in meta["verification"]
        assert meta["invariants"] == list(INVARIANT_NAMES)

    def test_unknown_invariant_rejected(self):
        with pytest.raises(ConfigError, match="invariant"):
            ChaosScenario(
                name="x",
                description="",
                schedule=FaultSchedule(),
                invariants=("always-sunny",),
            )

    def test_byte_identical_reruns(self):
        assert rollup_to_json(run("sdc-storm")) == rollup_to_json(run("sdc-storm"))

    def test_violated_invariant_reports_false(self):
        from repro.serve.verified import SDCFault

        # declare zero-escaped on an unguarded tier: it must evaluate False
        scenario = ChaosScenario(
            name="sdc-unguarded",
            description="corruption with no verification",
            schedule=FaultSchedule(
                sdc_faults=(SDCFault(replica=1, time_s=0.8, duration_s=1.2),),
                seed=1,
            ),
            invariants=("zero-escaped",),
        )
        rollup = run_scenario(scenario, coster=_COSTER)
        assert rollup["invariants"] == {"zero-escaped": False}


class TestLinkWindows:
    def test_flap_windows_surface_in_failover_section(self):
        scenario = build_scenario("link-flap", seed=1)
        rollup = run_scenario(scenario, coster=_COSTER)
        # three flaps -> latency under fault strictly worse than healthy
        assert rollup["latency_ratio"]["p99"] > 1.0
        assert len(scenario.schedule.link_faults) == 3

    def test_degraded_link_validation_flows_through(self):
        with pytest.raises(ConfigError, match="factor"):
            LinkSpec().degraded(0.5)
