"""Pipeline repair: DP rebalance over survivors, link-charged weight moves."""

from __future__ import annotations

import math

import pytest

from repro.arch.config import CONFIG_16_16
from repro.cluster.link import LinkSpec
from repro.errors import ConfigError
from repro.nn.zoo import build
from repro.resilience.repair import repair_pipeline

ALEX = build("alexnet")


class TestValidation:
    def test_no_lost_chips_rejected(self):
        with pytest.raises(ConfigError, match="at least one lost chip"):
            repair_pipeline(ALEX, CONFIG_16_16, 3, [])

    def test_out_of_range_chip_rejected(self):
        with pytest.raises(ConfigError, match="out of range"):
            repair_pipeline(ALEX, CONFIG_16_16, 3, [3])

    def test_all_chips_lost_rejected(self):
        with pytest.raises(ConfigError, match="nothing left"):
            repair_pipeline(ALEX, CONFIG_16_16, 2, [0, 1])

    def test_non_int_chip_rejected(self):
        with pytest.raises(ConfigError, match="int"):
            repair_pipeline(ALEX, CONFIG_16_16, 3, [1.0])


class TestRepair:
    def test_survivors_and_stage_count(self):
        plan = repair_pipeline(ALEX, CONFIG_16_16, 3, [1])
        assert plan.lost_chips == (1,)
        assert plan.surviving_chips == (0, 2)
        assert plan.healthy.n_chips == 3
        assert plan.repaired.n_chips == 2

    def test_throughput_degrades_but_not_to_zero(self):
        plan = repair_pipeline(ALEX, CONFIG_16_16, 3, [1])
        assert 0.0 < plan.throughput_ratio <= 1.0

    def test_lost_chips_layers_always_move(self):
        plan = repair_pipeline(ALEX, CONFIG_16_16, 3, [1])
        lost_stage = plan.healthy.stages[1]
        for name in lost_stage.layer_names:
            assert name in plan.moved_layers

    def test_rebalance_bytes_are_moved_weights(self):
        plan = repair_pipeline(ALEX, CONFIG_16_16, 3, [1])
        weights = {ctx.name: ctx.weights for ctx in ALEX.contexts()}
        expected = sum(
            weights[name] * CONFIG_16_16.word_bytes for name in plan.moved_layers
        )
        assert plan.rebalance_bytes == expected

    def test_rebalance_charged_through_link(self):
        slow = repair_pipeline(
            ALEX, CONFIG_16_16, 3, [1], link=LinkSpec(bandwidth_gbs=1.0)
        )
        fast = repair_pipeline(
            ALEX, CONFIG_16_16, 3, [1], link=LinkSpec(bandwidth_gbs=math.inf)
        )
        # same DP partition geometry either way at these extremes may differ,
        # but byte-for-byte the slower link can never ship weights faster
        if slow.rebalance_bytes >= fast.rebalance_bytes:
            assert slow.rebalance_s >= fast.rebalance_s

    def test_deterministic(self):
        a = repair_pipeline(ALEX, CONFIG_16_16, 4, [0, 2]).to_dict()
        b = repair_pipeline(ALEX, CONFIG_16_16, 4, [0, 2]).to_dict()
        assert a == b

    def test_to_dict_shape(self):
        d = repair_pipeline(ALEX, CONFIG_16_16, 3, [1]).to_dict()
        assert d["network"] == "alexnet"
        assert d["lost_chips"] == [1]
        assert d["surviving_chips"] == [0, 2]
        assert d["healthy_chips"] == 3
        assert 0.0 < d["throughput_ratio"] <= 1.0
        assert d["rebalance_ms"] >= 0.0
        assert set(d["moved_layers"]) <= {ctx.name for ctx in ALEX.contexts()}
