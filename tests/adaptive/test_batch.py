"""Batched-inference extension tests."""

import pytest

from repro.adaptive.batch import batch_layer, plan_batch
from repro.adaptive.planner import plan_network
from repro.errors import ConfigError


class TestBatchLayer:
    def test_batch1_is_identity(self, alexnet, cfg16):
        single = plan_network(alexnet, cfg16, "adaptive-2").layers[0]
        assert batch_layer(single, 1) is single

    def test_compute_scales_linearly(self, alexnet, cfg16):
        single = plan_network(alexnet, cfg16, "adaptive-2").layers[0]
        b4 = batch_layer(single, 4)
        assert b4.operations == 4 * single.operations
        assert b4.useful_macs == 4 * single.useful_macs

    def test_weight_dma_amortized(self, alexnet, cfg16):
        single = plan_network(alexnet, cfg16, "adaptive-2").layers[1]
        b8 = batch_layer(single, 8)
        assert b8.accesses["weight"].stores == single.accesses["weight"].stores
        assert b8.accesses["weight"].loads == 8 * single.accesses["weight"].loads
        saved = 7 * single.accesses["weight"].stores
        assert b8.dram_words == 8 * single.dram_words - saved

    def test_invalid_batch(self, alexnet, cfg16):
        single = plan_network(alexnet, cfg16, "adaptive-2").layers[0]
        with pytest.raises(ConfigError):
            batch_layer(single, 0)

    @pytest.mark.parametrize("bad", [True, False, 4.0, 2.5, "8", None])
    def test_non_int_batch_rejected(self, alexnet, cfg16, bad):
        single = plan_network(alexnet, cfg16, "adaptive-2").layers[0]
        with pytest.raises(ConfigError, match="must be an int"):
            batch_layer(single, bad)

    def test_error_names_the_offending_value(self, alexnet, cfg16):
        single = plan_network(alexnet, cfg16, "adaptive-2").layers[0]
        with pytest.raises(ConfigError, match=r"4\.0.*float"):
            batch_layer(single, 4.0)
        with pytest.raises(ConfigError, match="-3"):
            batch_layer(single, -3)


class TestPlanBatch:
    def test_batch1_matches_plan_network(self, alexnet, cfg16):
        single = plan_network(alexnet, cfg16, "adaptive-2", include_non_conv=True)
        batched = plan_batch(alexnet, cfg16, "adaptive-2", batch_size=1)
        assert batched.total_cycles == pytest.approx(single.total_cycles)

    def test_fc_amortization_improves_throughput(self, alexnet, cfg16):
        """Batch-1 AlexNet is FC-DMA-bound; batching must raise images/s."""
        b1 = plan_batch(alexnet, cfg16, batch_size=1)
        b16 = plan_batch(alexnet, cfg16, batch_size=16)
        assert b16.images_per_second() > 2.0 * b1.images_per_second()

    def test_throughput_saturates(self, alexnet, cfg16):
        """Once the weight streams are hidden, more batch buys ~nothing."""
        b64 = plan_batch(alexnet, cfg16, batch_size=64)
        b256 = plan_batch(alexnet, cfg16, batch_size=256)
        gain = b256.images_per_second() / b64.images_per_second()
        assert 1.0 <= gain < 1.15

    def test_conv_only_network_insensitive(self, nin, cfg16):
        """NiN has no FC layers: batching cannot help much."""
        b1 = plan_batch(nin, cfg16, batch_size=1)
        b16 = plan_batch(nin, cfg16, batch_size=16)
        gain = b16.images_per_second() / b1.images_per_second()
        assert gain < 1.4

    def test_latency_grows_with_batch(self, alexnet, cfg16):
        b1 = plan_batch(alexnet, cfg16, batch_size=1)
        b16 = plan_batch(alexnet, cfg16, batch_size=16)
        assert b16.latency_ms() > b1.latency_ms()

    @pytest.mark.parametrize("bad", [True, 16.0, "16", None, 2.5])
    def test_plan_batch_rejects_non_int(self, alexnet, cfg16, bad):
        with pytest.raises(ConfigError, match="must be an int"):
            plan_batch(alexnet, cfg16, batch_size=bad)

    def test_cycles_per_image_decreases(self, alexnet, cfg16):
        b1 = plan_batch(alexnet, cfg16, batch_size=1)
        b16 = plan_batch(alexnet, cfg16, batch_size=16)
        assert b16.cycles_per_image < b1.cycles_per_image

    def test_policy_tag(self, alexnet, cfg16):
        batched = plan_batch(alexnet, cfg16, "adaptive-2", batch_size=4)
        assert batched.run.policy == "adaptive-2@batch4"
