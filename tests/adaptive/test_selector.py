"""Algorithm 2 selector tests."""

import pytest

from repro.adaptive.selector import layout_for_scheme, select_scheme
from repro.arch.config import CONFIG_16_16, CONFIG_32_32
from repro.tiling.layout import Layout

from tests.conftest import make_ctx


class TestRule:
    def test_k_equals_s_picks_intra(self, cfg16):
        ctx = make_ctx(in_maps=32, out_maps=32, kernel=2, stride=2, hw=16)
        assert select_scheme(ctx, cfg16).scheme == "intra"

    def test_1x1_goes_inter_not_intra(self, cfg16):
        """Line 1's 'k != 1' guard: 1x1 kernels are plain depth reductions."""
        ctx = make_ctx(in_maps=64, out_maps=64, kernel=1, stride=1, hw=16)
        assert select_scheme(ctx, cfg16).scheme == "inter-improved"

    def test_shallow_input_picks_partition(self, alexnet_conv1_ctx, cfg16):
        assert select_scheme(alexnet_conv1_ctx, cfg16).scheme == "partition"

    def test_deep_input_picks_inter(self, cfg16):
        ctx = make_ctx(in_maps=64, out_maps=64, kernel=3, pad=1, hw=16)
        assert select_scheme(ctx, cfg16).scheme == "inter-improved"

    def test_improved_flag_switches_variant(self, cfg16):
        ctx = make_ctx(in_maps=64, out_maps=64, kernel=3, pad=1, hw=16)
        assert select_scheme(ctx, cfg16, improved_inter=False).scheme == "inter"

    def test_threshold_is_tin(self):
        """Din=24 is 'deep' for Tin=16 but 'shallow' for Tin=32."""
        ctx = make_ctx(in_maps=24, out_maps=32, kernel=3, pad=1, hw=16)
        assert select_scheme(ctx, CONFIG_16_16).scheme == "inter-improved"
        assert select_scheme(ctx, CONFIG_32_32).scheme == "partition"

    def test_reason_is_informative(self, alexnet_conv1_ctx, cfg16):
        choice = select_scheme(alexnet_conv1_ctx, cfg16)
        assert "Din = 3" in choice.reason

    def test_grouped_layer_uses_per_group_depth(self, alexnet, cfg32):
        """conv2's per-group depth (48) is compared to Tin, not 96."""
        conv2 = [c for c in alexnet.conv_contexts() if c.name == "conv2"][0]
        # 48 >= 32 would be false... 48 >= 32 is true -> inter
        assert select_scheme(conv2, cfg32).scheme == "inter-improved"
        from repro.arch.config import AcceleratorConfig

        wide = AcceleratorConfig(tin=64, tout=64)
        assert select_scheme(conv2, wide).scheme == "partition"


class TestBenchmarkSelections:
    def test_alexnet_16_16(self, alexnet, cfg16):
        """Bottom layer partitioned, the rest inter (Din >= 16 everywhere)."""
        choices = {
            c.name: select_scheme(c, cfg16).scheme
            for c in alexnet.conv_contexts()
        }
        assert choices["conv1"] == "partition"
        for name in ("conv2", "conv3", "conv4", "conv5"):
            assert choices[name] == "inter-improved"

    def test_googlenet_mixes_three_schemes_at_32(self, googlenet, cfg32):
        """With Tin=32, GoogLeNet exercises partition AND inter paths."""
        schemes = {
            select_scheme(c, cfg32).scheme for c in googlenet.conv_contexts()
        }
        assert "partition" in schemes
        assert "inter-improved" in schemes

    def test_vgg_is_nearly_all_inter(self, vgg, cfg16):
        """'all the layers of VGG use almost the same parameter ... the
        space for adaptiveness is rather marginal'."""
        choices = [select_scheme(c, cfg16).scheme for c in vgg.conv_contexts()]
        assert choices[0] == "partition"  # conv1_1 has Din=3
        assert all(s == "inter-improved" for s in choices[1:])


class TestAlgorithm2EdgeCases:
    """Boundary geometries of the three-way rule, with stable reasons."""

    def test_1x1_conv_must_not_take_intra_branch(self, cfg16):
        """k == s == 1: the 'k != 1' guard routes 1x1 away from intra even
        though k == s holds — a 1x1 window has no in-map reuse to exploit."""
        for din in (3, 8, 16, 64):
            ctx = make_ctx(in_maps=din, out_maps=32, kernel=1, stride=1, hw=14)
            choice = select_scheme(ctx, cfg16)
            assert choice.scheme != "intra", f"Din={din}"
            # s < k is false for k == s == 1, so the partition branch is
            # unreachable too: every 1x1 falls through to inter-kernel
            assert choice.scheme == "inter-improved"

    def test_1x1_reason_string_is_stable(self, cfg16):
        ctx = make_ctx(in_maps=64, out_maps=64, kernel=1, stride=1, hw=14)
        assert select_scheme(ctx, cfg16).reason == (
            "Din = 64 >= Tin = 16 (or 1x1 kernel): "
            "depth parallelism saturates the array"
        )

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_k_equals_s_above_one_takes_intra(self, cfg16, k):
        """Non-overlapping windows (k == s > 1) always slide, regardless of
        depth, and the reason names the geometry."""
        for din in (3, 64):
            ctx = make_ctx(in_maps=din, out_maps=32, kernel=k, stride=k, hw=4 * k)
            choice = select_scheme(ctx, cfg16)
            assert choice.scheme == "intra"
            assert choice.reason == (
                f"k == s == {k}: sliding window aligns perfectly"
            )

    def test_zoo_1x1_layers_all_avoid_intra(self, all_networks, cfg16):
        """Every 1x1 conv in the zoo (NiN mlpconv, GoogLeNet reductions)
        goes to inter-kernel; none slips into the k == s intra branch."""
        seen_1x1 = 0
        for net in all_networks:
            for ctx in net.conv_contexts():
                if ctx.layer.kernel == 1 and ctx.layer.stride == 1:
                    seen_1x1 += 1
                    choice = select_scheme(ctx, cfg16)
                    assert choice.scheme == "inter-improved", (net.name, ctx.name)
                    assert "1x1 kernel" in choice.reason
        assert seen_1x1 > 0, "zoo unexpectedly lost its 1x1 layers"

    def test_zoo_k_equals_s_layers_all_take_intra(self, all_networks, cfg16):
        """Any zoo conv with non-overlapping windows (k == s > 1) must pick
        intra with the canonical reason; the scan also pins down how the
        rule partitions the zoo today."""
        for net in all_networks:
            for ctx in net.conv_contexts():
                k, s = ctx.layer.kernel, ctx.layer.stride
                if k == s and k > 1:
                    choice = select_scheme(ctx, cfg16)
                    assert choice.scheme == "intra", (net.name, ctx.name)
                    assert choice.reason == (
                        f"k == s == {k}: sliding window aligns perfectly"
                    )

    def test_reason_templates_cover_all_three_branches(self, cfg16):
        """The selector's reasons are consumed by `repro select --json`;
        pin the exact templates so downstream parsing stays stable."""
        intra = select_scheme(
            make_ctx(in_maps=8, out_maps=8, kernel=2, stride=2, hw=8), cfg16
        )
        partition = select_scheme(
            make_ctx(in_maps=3, out_maps=8, kernel=5, stride=1, hw=16), cfg16
        )
        inter = select_scheme(
            make_ctx(in_maps=32, out_maps=8, kernel=3, stride=1, hw=16), cfg16
        )
        assert intra.reason == "k == s == 2: sliding window aligns perfectly"
        assert partition.reason == (
            "Din = 3 < Tin = 16: inter-kernel would idle 13/16 of the array"
        )
        assert inter.reason == (
            "Din = 32 >= Tin = 16 (or 1x1 kernel): "
            "depth parallelism saturates the array"
        )


class TestLayoutDecision:
    def test_inter_schemes_want_inter_order(self):
        assert layout_for_scheme("inter") is Layout.INTER
        assert layout_for_scheme("inter-improved") is Layout.INTER

    def test_map_local_schemes_want_intra_order(self):
        assert layout_for_scheme("intra") is Layout.INTRA
        assert layout_for_scheme("partition") is Layout.INTRA
        assert layout_for_scheme("ideal") is Layout.INTRA
