"""Whole-network planner tests (Fig. 8 machinery)."""

import pytest

from repro.adaptive import choices_for_network, plan_network
from repro.errors import ConfigError
from repro.tiling.layout import Layout


class TestPolicies:
    def test_unknown_policy(self, alexnet, cfg16):
        with pytest.raises(ConfigError):
            plan_network(alexnet, cfg16, "magic")

    def test_layer_count_matches_convs(self, all_networks, cfg16):
        for net in all_networks:
            run = plan_network(net, cfg16, "adaptive-2")
            assert len(run.layers) == len(net.conv_contexts())

    def test_fixed_policy_uses_one_scheme(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "inter")
        assert all(r.scheme == "inter" for r in run.layers)

    def test_partition_policy_falls_back_on_degenerate_layers(self, nin, cfg16):
        """NiN's 1x1 cccp layers cannot be partitioned -> intra fallback."""
        run = plan_network(nin, cfg16, "partition")
        schemes = {r.layer_name: r.scheme for r in run.layers}
        assert schemes["conv1"] == "partition"
        assert schemes["cccp1"] == "intra"

    def test_adaptive_2_uses_improved_inter(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        schemes = {r.scheme for r in run.layers}
        assert "inter-improved" in schemes
        assert "inter" not in schemes

    def test_adaptive_1_uses_original_inter(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-1")
        schemes = {r.scheme for r in run.layers}
        assert "inter" in schemes
        assert "inter-improved" not in schemes

    def test_oracle_policy_runs(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "oracle")
        assert run.total_cycles > 0


class TestRunTotals:
    def test_cycles_sum_layers_plus_reorder(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        expected = sum(r.total_cycles for r in run.layers)
        expected += run.input_reorder_words / cfg16.dram_words_per_cycle
        assert run.total_cycles == pytest.approx(expected)

    def test_macs_independent_of_policy(self, alexnet, cfg16):
        """Every policy computes the same convolutions."""
        macs = {
            policy: plan_network(alexnet, cfg16, policy).total_macs
            for policy in ("ideal", "inter", "intra", "partition", "adaptive-2")
        }
        assert len(set(macs.values())) == 1

    def test_access_totals_sum_layers(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        totals = run.access_totals()
        for buf in ("input", "output", "weight", "bias"):
            assert totals[buf].total == sum(
                r.accesses[buf].total for r in run.layers
            )

    def test_layer_lookup(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        assert run.layer("conv1").scheme == "partition"
        with pytest.raises(KeyError):
            run.layer("conv99")

    def test_energy_breakdown_consistency(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")
        bd = run.energy()
        assert bd.total_pj == pytest.approx(bd.pe_pj + bd.buffer_pj + bd.dram_pj)
        assert run.pe_energy_pj() == pytest.approx(bd.pe_pj)

    def test_utilization_in_bounds(self, all_networks, cfg16):
        for net in all_networks:
            run = plan_network(net, cfg16, "adaptive-2")
            assert 0.0 < run.utilization <= 1.0


class TestLayoutHandoff:
    def test_input_reorder_charged_for_inter_first_layer(self, alexnet, cfg16):
        """The raw image arrives planar; an inter first layer needs it
        depth-interleaved."""
        run = plan_network(alexnet, cfg16, "inter")
        assert run.input_reorder_words == alexnet.conv1().in_shape.elements

    def test_no_reorder_for_intra_first_layer(self, alexnet, cfg16):
        run = plan_network(alexnet, cfg16, "adaptive-2")  # conv1 -> partition
        assert run.input_reorder_words == 0

    def test_adjacent_layouts_compatible_under_adaptive(self, all_networks, cfg16):
        """Algorithm 2 lines 4-5: each layer stores its output in the layout
        the next conv layer streams, so no mid-network conversions exist.

        Our planner realizes this by assigning the producer's output layout;
        the check here is that the assignment is well-defined per layer."""
        for net in all_networks:
            run = plan_network(net, cfg16, "adaptive-2")
            for r in run.layers:
                assert r.input_layout in (Layout.INTER, Layout.INTRA)
                assert r.output_layout in (Layout.INTER, Layout.INTRA)

    def test_choices_for_network_covers_all_convs(self, googlenet, cfg16):
        choices = choices_for_network(googlenet, cfg16)
        assert len(choices) == 57
        assert all(c.scheme for c in choices)
