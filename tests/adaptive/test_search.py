"""Oracle search tests: Algorithm 2 vs exhaustive per-layer optimum."""

import pytest

from repro.adaptive import best_scheme_for_layer, plan_network, search_network
from repro.adaptive.selector import select_scheme
from repro.arch.config import CONFIG_16_16

from tests.conftest import make_ctx


class TestBestSchemeForLayer:
    def test_conv1_oracle_picks_partition(self, alexnet_conv1_ctx, cfg16):
        outcome = best_scheme_for_layer(alexnet_conv1_ctx, cfg16)
        assert outcome.scheme == "partition"

    def test_alternatives_include_all_legal(self, alexnet_conv1_ctx, cfg16):
        outcome = best_scheme_for_layer(alexnet_conv1_ctx, cfg16)
        names = {r.scheme for r in outcome.alternatives}
        assert names == {"inter", "inter-improved", "intra", "partition"}

    def test_winner_has_fewest_cycles(self, cfg16):
        ctx = make_ctx(in_maps=32, out_maps=32, kernel=3, pad=1, hw=16)
        outcome = best_scheme_for_layer(ctx, cfg16)
        assert outcome.cycles == min(
            r.total_cycles for r in outcome.alternatives
        )

    def test_1x1_layer_excludes_partition(self, cfg16):
        ctx = make_ctx(in_maps=64, out_maps=64, kernel=1, hw=16)
        outcome = best_scheme_for_layer(ctx, cfg16)
        names = {r.scheme for r in outcome.alternatives}
        assert "partition" not in names

    def test_restricted_candidates(self, alexnet_conv1_ctx, cfg16):
        outcome = best_scheme_for_layer(
            alexnet_conv1_ctx, cfg16, candidates=("inter", "intra")
        )
        assert outcome.scheme == "intra"


class TestAlgorithm2VsOracle:
    def test_rule_close_to_oracle_on_benchmarks(self, all_networks, cfg16):
        """The paper claims Algorithm 2 'ensures the optimal performance';
        we verify it lands within 10% of the exhaustive per-layer optimum
        on every benchmark network."""
        for net in all_networks:
            oracle_cycles = sum(
                o.result.total_cycles for o in search_network(net, cfg16)
            )
            rule = plan_network(net, cfg16, "adaptive-2")
            rule_cycles = sum(r.total_cycles for r in rule.layers)
            assert rule_cycles <= 1.10 * oracle_cycles, net.name

    def test_rule_matches_oracle_per_layer_mostly(self, alexnet, cfg16):
        """On AlexNet 16-16 the rule and the oracle agree layer by layer."""
        for ctx in alexnet.conv_contexts():
            rule = select_scheme(ctx, cfg16).scheme
            oracle = best_scheme_for_layer(ctx, cfg16).scheme
            # the oracle may exploit Din-chunk quantization effects the rule
            # ignores; when they differ the cycle gap must be small
            if rule != oracle:
                rule_cycles = [
                    r.total_cycles
                    for r in best_scheme_for_layer(ctx, cfg16).alternatives
                    if r.scheme == rule
                ][0]
                oracle_cycles = best_scheme_for_layer(ctx, cfg16).cycles
                assert rule_cycles <= 1.25 * oracle_cycles

    def test_oracle_never_worse_than_any_fixed_policy(self, alexnet, cfg16):
        oracle = plan_network(alexnet, cfg16, "oracle")
        for policy in ("inter", "intra", "partition"):
            fixed = plan_network(alexnet, cfg16, policy)
            layer_sum_oracle = sum(r.total_cycles for r in oracle.layers)
            layer_sum_fixed = sum(r.total_cycles for r in fixed.layers)
            assert layer_sum_oracle <= layer_sum_fixed * 1.0001, policy


class TestObjectives:
    def test_unknown_objective(self, alexnet_conv1_ctx, cfg16):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            best_scheme_for_layer(alexnet_conv1_ctx, cfg16, objective="area")

    def test_energy_objective_runs(self, alexnet, cfg16):
        outcomes = search_network(alexnet, cfg16, objective="energy")
        assert len(outcomes) == 5
        assert outcomes[0].scheme == "partition"

    def test_performance_and_energy_agree_on_benchmarks(self, alexnet, cfg16):
        """The paper's claim that the adaptive scheme optimizes performance
        and energy 'simultaneously': per-layer, the cycle-optimal and
        energy-optimal schemes coincide on AlexNet at 16-16."""
        cycles = [o.scheme for o in search_network(alexnet, cfg16)]
        energy = [o.scheme for o in search_network(alexnet, cfg16, objective="energy")]
        assert cycles == energy

    def test_edp_never_worse_than_both_extremes(self, alexnet, cfg16):
        from repro.adaptive.search import layer_energy_pj
        from repro.arch.energy import EnergyModel

        model = EnergyModel(cfg16)
        for ctx in alexnet.conv_contexts():
            edp_pick = best_scheme_for_layer(ctx, cfg16, objective="edp").result
            cyc_pick = best_scheme_for_layer(ctx, cfg16, objective="cycles").result
            edp = layer_energy_pj(edp_pick, model) * edp_pick.total_cycles
            ref = layer_energy_pj(cyc_pick, model) * cyc_pick.total_cycles
            assert edp <= ref * 1.0001
