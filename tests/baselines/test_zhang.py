"""Zhang FPGA'15 baseline tests (Fig. 9 comparator)."""

import pytest

from repro.baselines.zhang import ZHANG_7_64, ZhangFpgaModel
from repro.errors import ConfigError


class TestPublishedNumbers:
    def test_multiplier_budget(self):
        """The 7-64 design uses 448 multipliers."""
        assert ZHANG_7_64.multipliers == 448

    def test_conv1_matches_paper_plot(self, alexnet):
        """Fig. 9 plots zhang conv1 ~= 7.4 ms at 100 MHz."""
        ms = ZHANG_7_64.layer_ms(alexnet.conv1())
        assert ms == pytest.approx(7.4, rel=0.05)

    def test_whole_network_matches_paper_plot(self, alexnet):
        """Fig. 9 plots zhang whole-NN ~= 21.6 ms; our conv-only model
        lands within 10%."""
        ms = ZHANG_7_64.network_ms(alexnet)
        assert ms == pytest.approx(21.6, rel=0.10)

    def test_name(self):
        assert ZHANG_7_64.name == "zhang-7,64"


class TestModelStructure:
    def test_layer_cycles_formula(self, alexnet):
        ctx = alexnet.conv1()
        # 55*55 * 121 * ceil(3/7)=1 * ceil(96/64)=2
        assert ZHANG_7_64.layer_cycles(ctx) == 3025 * 121 * 1 * 2

    def test_grouped_layers(self, alexnet):
        conv2 = [c for c in alexnet.conv_contexts() if c.name == "conv2"][0]
        # per group: 27*27 * 25 * ceil(48/7)=7 * ceil(128/64)=2, two groups
        assert ZHANG_7_64.layer_cycles(conv2) == 2 * 729 * 25 * 7 * 2

    def test_breakdown_sums_to_network(self, alexnet):
        assert sum(ZHANG_7_64.layer_breakdown(alexnet)) == pytest.approx(
            ZHANG_7_64.network_ms(alexnet)
        )

    def test_custom_unroll(self, alexnet):
        small = ZhangFpgaModel(tn=4, tm=32)
        assert small.network_cycles(alexnet) > ZHANG_7_64.network_cycles(alexnet)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            ZhangFpgaModel(tn=0)
        with pytest.raises(ConfigError):
            ZhangFpgaModel(frequency_hz=-1)


class TestAdaptiveBeatsZhang:
    """The Fig. 9 headline assertions."""

    def test_adpa_16_28_conv1_speedup(self, alexnet):
        """Paper: 2.22x on conv1 at equal multiplier budget."""
        from repro.adaptive import plan_network
        from repro.arch.config import CONFIG_16_16

        cfg = CONFIG_16_16.with_pe(16, 28).with_frequency(100e6)
        run = plan_network(alexnet, cfg, "adaptive-2")
        conv1_ms = cfg.cycles_to_ms(run.layers[0].total_cycles)
        speedup = ZHANG_7_64.layer_ms(alexnet.conv1()) / conv1_ms
        assert 1.8 < speedup < 2.7

    def test_adpa_16_28_whole_net_speedup(self, alexnet):
        """Paper: 1.20x on the whole network."""
        from repro.adaptive import plan_network
        from repro.arch.config import CONFIG_16_16

        cfg = CONFIG_16_16.with_pe(16, 28).with_frequency(100e6)
        run = plan_network(alexnet, cfg, "adaptive-2")
        speedup = ZHANG_7_64.network_ms(alexnet) / run.milliseconds()
        assert 1.05 < speedup < 1.45
