"""CPU baseline tests (Table 4 comparator)."""

import pytest

from repro.baselines.cpu import DEFAULT_CPU, CpuModel
from repro.errors import ConfigError


class TestGemmEfficiency:
    def test_saturates(self):
        assert DEFAULT_CPU.gemm_efficiency(10_000) == DEFAULT_CPU.peak_efficiency

    def test_small_reductions_slower(self):
        assert DEFAULT_CPU.gemm_efficiency(8) < DEFAULT_CPU.gemm_efficiency(256)

    def test_floor(self):
        assert DEFAULT_CPU.gemm_efficiency(1) >= DEFAULT_CPU.min_efficiency

    def test_invalid_depth(self):
        with pytest.raises(ConfigError):
            DEFAULT_CPU.gemm_efficiency(0)

    def test_invalid_model(self):
        with pytest.raises(ConfigError):
            CpuModel(min_efficiency=0.5, peak_efficiency=0.2)
        with pytest.raises(ConfigError):
            CpuModel(frequency_hz=0)


class TestNetworkTimes:
    """Calibration against the paper's published Table 4 CPU column."""

    PAPER_MS = {
        "alexnet": 376.50,
        "googlenet": 1418.8,
        "vgg": 10071.71,
        "nin": 553.43,
    }

    def test_vgg_within_15_percent(self, vgg):
        ours = DEFAULT_CPU.network_ms(vgg)
        assert abs(ours - self.PAPER_MS["vgg"]) / self.PAPER_MS["vgg"] < 0.15

    def test_alexnet_within_15_percent(self, alexnet):
        ours = DEFAULT_CPU.network_ms(alexnet)
        assert abs(ours - self.PAPER_MS["alexnet"]) / self.PAPER_MS["alexnet"] < 0.15

    def test_nin_within_15_percent(self, nin):
        ours = DEFAULT_CPU.network_ms(nin)
        assert abs(ours - self.PAPER_MS["nin"]) / self.PAPER_MS["nin"] < 0.15

    def test_googlenet_same_order(self, googlenet):
        """GoogLeNet's published time includes per-layer overheads our GEMM
        model does not capture; require same order of magnitude only."""
        ours = DEFAULT_CPU.network_ms(googlenet)
        assert self.PAPER_MS["googlenet"] / 2.5 < ours < self.PAPER_MS["googlenet"] * 2.5

    def test_ordering_matches_paper(self, all_networks):
        """VGG slowest, AlexNet fastest of the heavy trio."""
        times = {n.name: DEFAULT_CPU.network_ms(n) for n in all_networks}
        assert times["vgg"] > times["googlenet"] > times["alexnet"]

    def test_conv_only_vs_full(self, alexnet):
        conv_only = DEFAULT_CPU.network_time(alexnet, conv_only=True)
        full = DEFAULT_CPU.network_time(alexnet, conv_only=False)
        assert full > conv_only  # FC layers add time


class TestLayerBreakdown:
    def test_covers_conv_and_fc(self, alexnet):
        rows = DEFAULT_CPU.layer_breakdown(alexnet)
        names = [r.layer_name for r in rows]
        assert "conv1" in names and "fc6" in names

    def test_flops_positive(self, alexnet):
        for row in DEFAULT_CPU.layer_breakdown(alexnet):
            assert row.flops > 0
            assert row.seconds > 0
            assert 0 < row.efficiency <= 1
