"""Per-layer network statistics tests."""

import pytest

from repro.nn.stats import network_stats, render_network_stats
from repro.nn.zoo import build


class TestNetworkStats:
    def test_conv_and_fc_covered(self, alexnet):
        rows = network_stats(alexnet)
        kinds = {r.layer: r.kind for r in rows}
        assert kinds["conv1"] == "conv"
        assert kinds["fc6"] == "fc"
        assert len(rows) == 8  # 5 conv + 3 fc

    def test_macs_match_contexts(self, alexnet):
        rows = {r.layer: r for r in network_stats(alexnet)}
        for ctx in alexnet.conv_contexts():
            assert rows[ctx.name].macs == ctx.macs

    def test_conv_dominates_macs_fc_dominates_weights(self, alexnet):
        """The classic CNN asymmetry, straight from the stats."""
        rows = network_stats(alexnet)
        conv_macs = sum(r.macs for r in rows if r.kind == "conv")
        fc_macs = sum(r.macs for r in rows if r.kind == "fc")
        conv_weights = sum(r.weights for r in rows if r.kind == "conv")
        fc_weights = sum(r.weights for r in rows if r.kind == "fc")
        assert conv_macs > 10 * fc_macs
        assert fc_weights > 5 * conv_weights

    def test_arithmetic_intensity_ordering(self, alexnet):
        """Conv layers are compute-rich; FC layers sit near 1 MAC/word."""
        rows = {r.layer: r for r in network_stats(alexnet)}
        assert rows["conv3"].arithmetic_intensity > 50
        assert rows["fc6"].arithmetic_intensity < 2

    def test_render_full_and_top(self, googlenet):
        full = render_network_stats(googlenet)
        assert "conv2/3x3" in full
        top = render_network_stats(googlenet, top=3)
        data_lines = [l for l in top.splitlines()[3:] if l.strip()]
        assert len(data_lines) == 3

    def test_share_sums_to_100(self, nin):
        rows = network_stats(nin)
        total = sum(r.macs for r in rows)
        assert sum(100 * r.macs / total for r in rows) == pytest.approx(100.0)
