"""Unit tests for layer descriptors and shape inference."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.layers import (
    ConcatLayer,
    ConvLayer,
    FCLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    TensorShape,
    conv_output_hw,
)


class TestTensorShape:
    def test_elements(self):
        assert TensorShape(3, 4, 5).elements == 60

    def test_bytes_16bit(self):
        assert TensorShape(3, 4, 5).bytes() == 120

    def test_bytes_custom_word(self):
        assert TensorShape(2, 2, 2).bytes(word_bytes=4) == 32

    def test_as_tuple(self):
        assert TensorShape(1, 2, 3).as_tuple() == (1, 2, 3)

    @pytest.mark.parametrize("bad", [(0, 1, 1), (1, -1, 1), (1, 1, 0)])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ShapeError):
            TensorShape(*bad)


class TestConvOutputHw:
    def test_alexnet_conv1(self):
        assert conv_output_hw(227, 11, 4, 0) == 55

    def test_vgg_same_padding(self):
        assert conv_output_hw(224, 3, 1, 1) == 224

    def test_googlenet_conv1(self):
        assert conv_output_hw(224, 7, 2, 3) == 112

    def test_kernel_too_big(self):
        with pytest.raises(ShapeError):
            conv_output_hw(4, 5, 1, 0)

    def test_pad_rescues_kernel(self):
        assert conv_output_hw(4, 5, 1, 1) == 2

    def test_zero_stride_rejected(self):
        with pytest.raises(ShapeError):
            conv_output_hw(8, 3, 0, 0)

    @given(
        hw=st.integers(4, 64),
        k=st.integers(1, 7),
        s=st.integers(1, 4),
        pad=st.integers(0, 3),
    )
    def test_output_fits_input(self, hw, k, s, pad):
        if k > hw + 2 * pad:
            return
        out = conv_output_hw(hw, k, s, pad)
        assert out >= 1
        # the last window must stay inside the padded input
        assert (out - 1) * s + k <= hw + 2 * pad


class TestConvLayer:
    def test_output_shape_alexnet_conv1(self):
        layer = ConvLayer("c1", in_maps=3, out_maps=96, kernel=11, stride=4)
        out = layer.output_shape(TensorShape(3, 227, 227))
        assert out.as_tuple() == (96, 55, 55)

    def test_macs(self):
        layer = ConvLayer("c", in_maps=2, out_maps=4, kernel=3)
        # out 6x6, 3*3*2 per output element, 4 maps
        assert layer.macs(TensorShape(2, 8, 8)) == 36 * 9 * 2 * 4

    def test_macs_grouped_halves(self):
        plain = ConvLayer("p", in_maps=4, out_maps=4, kernel=3)
        grouped = ConvLayer("g", in_maps=4, out_maps=4, kernel=3, groups=2)
        shape = TensorShape(4, 8, 8)
        assert grouped.macs(shape) == plain.macs(shape) // 2

    def test_weight_count_with_bias(self):
        layer = ConvLayer("c", in_maps=2, out_maps=4, kernel=3)
        assert layer.weight_count(TensorShape(2, 8, 8)) == 9 * 2 * 4 + 4

    def test_weight_count_without_bias(self):
        layer = ConvLayer("c", in_maps=2, out_maps=4, kernel=3, bias=False)
        assert layer.weight_count(TensorShape(2, 8, 8)) == 9 * 2 * 4

    def test_depth_mismatch_rejected(self):
        layer = ConvLayer("c", in_maps=2, out_maps=4, kernel=3)
        with pytest.raises(ShapeError):
            layer.output_shape(TensorShape(3, 8, 8))

    def test_groups_must_divide(self):
        with pytest.raises(ShapeError):
            ConvLayer("c", in_maps=3, out_maps=4, kernel=3, groups=2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(in_maps=0, out_maps=4, kernel=3),
            dict(in_maps=2, out_maps=4, kernel=0),
            dict(in_maps=2, out_maps=4, kernel=3, stride=0),
            dict(in_maps=2, out_maps=4, kernel=3, pad=-1),
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ShapeError):
            ConvLayer("c", **kwargs)


class TestPoolLayer:
    def test_alexnet_pool(self):
        layer = PoolLayer("p", kernel=3, stride=2)
        assert layer.output_shape(TensorShape(96, 55, 55)).as_tuple() == (96, 27, 27)

    def test_ceil_mode_rounds_up(self):
        floor_pool = PoolLayer("p", kernel=3, stride=2)
        ceil_pool = PoolLayer("p", kernel=3, stride=2, ceil_mode=True)
        shape = TensorShape(64, 112, 112)
        assert floor_pool.output_shape(shape).height == 55
        assert ceil_pool.output_shape(shape).height == 56

    def test_zero_macs_and_weights(self):
        layer = PoolLayer("p", kernel=2, stride=2)
        shape = TensorShape(4, 8, 8)
        assert layer.macs(shape) == 0
        assert layer.weight_count(shape) == 0

    def test_bad_mode_rejected(self):
        with pytest.raises(ShapeError):
            PoolLayer("p", kernel=2, stride=2, mode="median")


class TestFCLayer:
    def test_flattens(self):
        layer = FCLayer("fc", out_features=10)
        assert layer.output_shape(TensorShape(4, 3, 3)).as_tuple() == (10, 1, 1)

    def test_macs(self):
        layer = FCLayer("fc", out_features=10)
        assert layer.macs(TensorShape(4, 3, 3)) == 36 * 10

    def test_weight_count(self):
        layer = FCLayer("fc", out_features=10)
        assert layer.weight_count(TensorShape(4, 3, 3)) == 360 + 10


class TestPassThroughLayers:
    @pytest.mark.parametrize(
        "layer", [ReLULayer("r"), LRNLayer("n", local_size=5)]
    )
    def test_shape_preserved(self, layer):
        shape = TensorShape(7, 5, 5)
        assert layer.output_shape(shape) == shape
        assert layer.macs(shape) == 0
        assert layer.weight_count(shape) == 0


class TestConcatLayer:
    def test_output_depth(self):
        layer = ConcatLayer("cat", branch_depths=(64, 128, 32, 32))
        assert layer.output_depth() == 256

    def test_output_shape_uses_spatial_of_input(self):
        layer = ConcatLayer("cat", branch_depths=(2, 3))
        out = layer.output_shape(TensorShape(2, 9, 9))
        assert out.as_tuple() == (5, 9, 9)

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            ConcatLayer("cat", branch_depths=())
