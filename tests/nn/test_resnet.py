"""Residual-network extension tests (EltwiseAdd + zoo builder)."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn.layers import ConvLayer, EltwiseAddLayer, TensorShape
from repro.nn.network import Network
from repro.nn.zoo.resnet import build_resnet_small
from repro.sim.forward import forward, init_weights


class TestEltwiseAddLayer:
    def test_shape_preserved(self):
        layer = EltwiseAddLayer("add")
        shape = TensorShape(4, 8, 8)
        assert layer.output_shape(shape) == shape
        assert layer.macs(shape) == 0
        assert layer.weight_count(shape) == 0

    def test_needs_two_branches(self):
        with pytest.raises(ShapeError):
            EltwiseAddLayer("add", branch_count=1)

    def test_network_checks_branch_count(self):
        net = Network("n", TensorShape(2, 4, 4))
        net.add(ConvLayer("c", in_maps=2, out_maps=2, kernel=1))
        with pytest.raises(ShapeError):
            net.add(EltwiseAddLayer("add"), inputs=["c"])  # only one input

    def test_network_checks_shape_agreement(self):
        net = Network("n", TensorShape(2, 4, 4))
        net.add(ConvLayer("c1", in_maps=2, out_maps=2, kernel=1))
        net.add(ConvLayer("c2", in_maps=2, out_maps=4, kernel=1), inputs=["__input__"])
        with pytest.raises(ShapeError):
            net.add(EltwiseAddLayer("add"), inputs=["c1", "c2"])

    def test_forward_adds(self):
        net = Network("n", TensorShape(2, 4, 4))
        net.add(ConvLayer("c", in_maps=2, out_maps=2, kernel=1, bias=False))
        net.add(EltwiseAddLayer("add"), inputs=["c", "__input__"])
        image = np.random.default_rng(0).standard_normal((2, 4, 4))
        acts = forward(net, image)
        assert np.allclose(acts["add"], acts["c"] + image)


class TestResnetBuilder:
    def test_depth_naming(self):
        assert build_resnet_small(2).name == "resnet-14"
        assert build_resnet_small(3).name == "resnet-20"

    def test_shapes(self):
        net = build_resnet_small(2)
        assert net.shape_of("s1b1/relu2").as_tuple() == (16, 32, 32)
        assert net.shape_of("s2b0/relu2").as_tuple() == (32, 16, 16)
        assert net.shape_of("s3b1/relu2").as_tuple() == (64, 8, 8)
        assert net.shape_of("classifier").depth == 10

    def test_projection_shortcuts_only_at_stage_entries(self):
        net = build_resnet_small(2)
        projections = [l.name for l in net if l.name.endswith("/proj")]
        assert projections == ["s2b0/proj", "s3b0/proj"]
        for name in projections:
            layer = net.layer(name)
            assert layer.kernel == 1 and layer.stride == 2

    def test_invalid_blocks(self):
        with pytest.raises(ConfigError):
            build_resnet_small(0)

    def test_forward_runs(self):
        net = build_resnet_small(1, input_hw=16)
        image = np.random.default_rng(1).standard_normal((3, 16, 16)) * 0.5
        acts = forward(net, image, params=init_weights(net, seed=2))
        assert acts["classifier"].shape == (10, 1, 1)

    def test_partition_forward_matches_reference(self):
        """The residual topology under the partitioned executors — the
        Fig. 5(d) equivalence survives shortcuts and strided projections."""
        net = build_resnet_small(1, input_hw=16)
        image = np.random.default_rng(3).standard_normal((3, 16, 16)) * 0.5
        params = init_weights(net, seed=4)
        ref = forward(net, image, params=params)
        part = forward(net, image, params=params, conv_scheme="partition")
        for layer in net:
            assert np.allclose(
                part[layer.name], ref[layer.name], atol=1e-9
            ), layer.name


class TestResnetScheduling:
    def test_adaptive_plan_covers_all_convs(self, cfg16):
        from repro.adaptive import plan_network

        net = build_resnet_small(2)
        run = plan_network(net, cfg16, "adaptive-2")
        assert len(run.layers) == len(net.conv_contexts())

    def test_projection_layers_get_inter(self, cfg16):
        """The strided 1x1 shortcuts: k == s == 1 is not 'k = s, k != 1',
        so Algorithm 2 routes them to inter — the documented corner."""
        from repro.adaptive import choices_for_network

        net = build_resnet_small(2)
        choices = {c.layer_name: c.scheme for c in choices_for_network(net, cfg16)}
        assert choices["s2b0/proj"] == "inter-improved"

    def test_full_plan_with_residual_adds(self, cfg16):
        from repro.adaptive import plan_network

        net = build_resnet_small(2)
        run = plan_network(net, cfg16, "adaptive-2", include_non_conv=True)
        schemes = {r.scheme for r in run.layers}
        assert "aux-add" in schemes

    def test_machine_parity(self, cfg16):
        from repro.adaptive import plan_network
        from repro.isa.compiler import compile_run
        from repro.sim.machine import Machine

        net = build_resnet_small(2)
        run = plan_network(net, cfg16, "adaptive-2", include_non_conv=True)
        result = Machine(cfg16).execute(compile_run(run, cfg16))
        assert result.buffer_accesses == run.buffer_accesses
        assert result.total_cycles == pytest.approx(run.total_cycles, abs=2.0)
