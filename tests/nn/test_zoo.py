"""Zoo tests: the four benchmark networks must match the paper's Table 2."""

import pytest

from repro.errors import ConfigError
from repro.nn.layers import ConvLayer
from repro.nn.zoo import benchmark_networks, build


class TestTable2:
    """Table 2 of the paper: network characteristics."""

    @pytest.mark.parametrize(
        "name, conv1_params, n_convs, kernels",
        [
            ("alexnet", (3, 11, 4, 96), 5, (11, 5, 3)),
            ("googlenet", (3, 7, 2, 64), 57, (7, 5, 3, 1)),
            ("vgg", (3, 3, 1, 64), 16, (3,)),
            ("nin", (3, 11, 4, 96), 12, (11, 5, 3, 1)),
        ],
    )
    def test_row(self, name, conv1_params, n_convs, kernels):
        summary = build(name).summary()
        c1 = summary.conv1
        assert (c1.in_maps, c1.kernel, c1.stride, c1.out_maps) == conv1_params
        assert summary.conv_layers == n_convs
        assert summary.kernel_sizes == kernels


class TestAlexnet:
    def test_conv_shapes(self, alexnet):
        expected = {
            "conv1": (96, 55, 55),
            "conv2": (256, 27, 27),
            "conv3": (384, 13, 13),
            "conv4": (384, 13, 13),
            "conv5": (256, 13, 13),
        }
        for ctx in alexnet.conv_contexts():
            assert ctx.out_shape.as_tuple() == expected[ctx.name]

    def test_grouped_conv2_sees_48_maps(self, alexnet):
        """The paper quotes Din=48 for c2: the per-group depth."""
        conv2 = alexnet.layer("conv2")
        assert conv2.groups == 2
        assert conv2.in_maps // conv2.groups == 48

    def test_total_macs_in_known_band(self, alexnet):
        # AlexNet conv MACs ~= 0.67G, + FC ~= 0.06G
        total = alexnet.summary().total_macs
        assert 6.5e8 < total < 8.0e8

    def test_fc_classifier(self, alexnet):
        assert alexnet.shape_of("fc8").depth == 1000


class TestGoogLeNet:
    def test_inception_3a_output(self, googlenet):
        assert googlenet.shape_of("inception_3a/output").as_tuple() == (256, 28, 28)

    def test_inception_4e_output(self, googlenet):
        assert googlenet.shape_of("inception_4e/output").depth == 832

    def test_inception_5b_output(self, googlenet):
        assert googlenet.shape_of("inception_5b/output").as_tuple() == (1024, 7, 7)

    def test_final_pool_is_1x1(self, googlenet):
        assert googlenet.shape_of("pool5/7x7_s1").as_tuple() == (1024, 1, 1)

    def test_branch_fanout(self, googlenet):
        srcs = googlenet.input_names("inception_3a/1x1")
        assert srcs == ("pool2/3x3_s2",)
        assert googlenet.input_names("inception_3a/output") == (
            "inception_3a/1x1",
            "inception_3a/3x3",
            "inception_3a/5x5",
            "inception_3a/pool_proj",
        )


class TestVgg:
    def test_all_convs_are_3x3_stride1(self, vgg):
        for ctx in vgg.conv_contexts():
            assert ctx.layer.kernel == 3
            assert ctx.layer.stride == 1

    def test_spatial_preserved_within_blocks(self, vgg):
        assert vgg.shape_of("conv1_2").as_tuple() == (64, 224, 224)
        assert vgg.shape_of("conv5_4").as_tuple() == (512, 14, 14)

    def test_macs_around_19_6g(self, vgg):
        conv_macs = sum(c.macs for c in vgg.conv_contexts())
        assert 1.9e10 < conv_macs < 2.0e10

    def test_biggest_layer_exceeds_paper_8mb(self, vgg):
        """The paper: 'the biggest layer need 8M buffer'."""
        biggest = max(
            c.in_shape.bytes() + c.out_shape.bytes() for c in vgg.conv_contexts()
        )
        assert biggest > 8 * 1024 * 1024


class TestNin:
    def test_mlpconv_structure(self, nin):
        names = [c.name for c in nin.conv_contexts()]
        assert names[0:3] == ["conv1", "cccp1", "cccp2"]
        # cccp layers are 1x1
        for ctx in nin.conv_contexts():
            if ctx.name.startswith("cccp"):
                assert ctx.layer.kernel == 1

    def test_classifier_depth(self, nin):
        assert nin.shape_of("cccp8-1024").depth == 1000


class TestRegistry:
    def test_benchmark_networks_order(self):
        names = [n.name for n in benchmark_networks()]
        assert names == ["alexnet", "googlenet", "vgg", "nin"]

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            build("lenet")

    def test_every_conv_declares_consistent_depth(self, all_networks):
        for net in all_networks:
            for ctx in net.conv_contexts():
                assert isinstance(ctx.layer, ConvLayer)
                assert ctx.in_shape.depth == ctx.layer.in_maps


class TestVggVariants:
    def test_vgg16_preset(self):
        from repro.nn.zoo.vgg import VGG16_BLOCKS, build_vgg

        net = build_vgg(VGG16_BLOCKS)
        assert net.summary().conv_layers == 13
        assert net.shape_of("conv5_3").as_tuple() == (512, 14, 14)

    def test_custom_blocks(self):
        from repro.nn.zoo.vgg import build_vgg

        net = build_vgg([(8, 1), (16, 2)], include_fc=False)
        assert net.summary().conv_layers == 3
        assert net.shape_of("pool2").as_tuple() == (16, 56, 56)
