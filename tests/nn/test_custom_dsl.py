"""sequential_cnn DSL tests."""

import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn.layers import ConvLayer, FCLayer, LRNLayer, PoolLayer, ReLULayer
from repro.nn.zoo import sequential_cnn


class TestParsing:
    def test_conv_full_form(self):
        net = sequential_cnn("n", (3, 16, 16), "C8k3s2p1g1")
        conv = net.layer("conv1")
        assert isinstance(conv, ConvLayer)
        assert (conv.out_maps, conv.kernel, conv.stride, conv.pad, conv.groups) == (
            8, 3, 2, 1, 1,
        )

    def test_conv_defaults(self):
        conv = sequential_cnn("n", (3, 16, 16), "C8k3").layer("conv1")
        assert (conv.stride, conv.pad, conv.groups) == (1, 0, 1)

    def test_pool_default_stride_equals_kernel(self):
        pool = sequential_cnn("n", (3, 16, 16), "P2").layer("pool1")
        assert isinstance(pool, PoolLayer)
        assert (pool.kernel, pool.stride, pool.mode) == (2, 2, "max")

    def test_avg_pool(self):
        pool = sequential_cnn("n", (3, 16, 16), "P3s2a").layer("pool1")
        assert pool.mode == "avg"

    def test_fc_relu_lrn(self):
        net = sequential_cnn("n", (3, 8, 8), "C4k1 R N F10")
        assert isinstance(net.layer("relu1"), ReLULayer)
        assert isinstance(net.layer("norm1"), LRNLayer)
        assert isinstance(net.layer("fc1"), FCLayer)
        assert net.shape_of("fc1").depth == 10

    def test_depth_threads_through(self):
        net = sequential_cnn("n", (3, 32, 32), "C16k3p1 C32k3p1")
        assert net.layer("conv2").in_maps == 16

    def test_tuple_input_shape(self):
        net = sequential_cnn("n", (1, 8, 8), "C2k1")
        assert net.input_shape.as_tuple() == (1, 8, 8)

    def test_alexnet_like_spec_schedulable(self, cfg16):
        from repro.adaptive import plan_network

        net = sequential_cnn(
            "mini-alex",
            (3, 64, 64),
            "C24k7s2 R P3s2 C48k5s1p2 R P3s2 C64k3s1p1 R F100",
        )
        run = plan_network(net, cfg16, "adaptive-2")
        assert run.layers[0].scheme == "partition"
        assert run.total_cycles > 0


class TestErrors:
    @pytest.mark.parametrize("bad", ["X3", "C8", "Ck3", "P", "F", "C8k3x1"])
    def test_bad_tokens(self, bad):
        with pytest.raises(ConfigError):
            sequential_cnn("n", (3, 16, 16), bad)

    def test_empty_spec(self):
        with pytest.raises(ConfigError):
            sequential_cnn("n", (3, 16, 16), "   ")

    def test_shape_errors_propagate(self):
        with pytest.raises(ShapeError):
            sequential_cnn("n", (3, 4, 4), "C8k9")
