"""Unit tests for the Network DAG container."""

import pytest

from repro.errors import ShapeError
from repro.nn.layers import (
    ConcatLayer,
    ConvLayer,
    PoolLayer,
    ReLULayer,
    TensorShape,
)
from repro.nn.network import Network


def small_net() -> Network:
    net = Network("small", TensorShape(3, 16, 16))
    net.add(ConvLayer("c1", in_maps=3, out_maps=8, kernel=3, pad=1))
    net.add(ReLULayer("r1"))
    net.add(PoolLayer("p1", kernel=2, stride=2))
    net.add(ConvLayer("c2", in_maps=8, out_maps=16, kernel=3, pad=1))
    return net


class TestConstruction:
    def test_sequential_default_wiring(self):
        net = small_net()
        assert net.input_names("r1") == ("c1",)
        assert net.input_names("c1") == ("__input__",)

    def test_shapes_propagate(self):
        net = small_net()
        assert net.shape_of("c1").as_tuple() == (8, 16, 16)
        assert net.shape_of("p1").as_tuple() == (8, 8, 8)
        assert net.shape_of("c2").as_tuple() == (16, 8, 8)

    def test_duplicate_name_rejected(self):
        net = small_net()
        with pytest.raises(ShapeError):
            net.add(ConvLayer("c1", in_maps=16, out_maps=8, kernel=1))

    def test_unknown_input_rejected(self):
        net = small_net()
        with pytest.raises(ShapeError):
            net.add(
                ConvLayer("cx", in_maps=16, out_maps=8, kernel=1),
                inputs=["nope"],
            )

    def test_depth_mismatch_rejected_at_add(self):
        net = small_net()
        with pytest.raises(ShapeError):
            net.add(ConvLayer("cx", in_maps=99, out_maps=8, kernel=1))

    def test_len_and_iter(self):
        net = small_net()
        assert len(net) == 4
        assert [l.name for l in net] == ["c1", "r1", "p1", "c2"]


class TestBranching:
    def build_branched(self) -> Network:
        net = Network("branchy", TensorShape(4, 8, 8))
        net.add(ConvLayer("a", in_maps=4, out_maps=6, kernel=1), inputs=["__input__"])
        net.add(ConvLayer("b", in_maps=4, out_maps=10, kernel=3, pad=1), inputs=["__input__"])
        net.add(
            ConcatLayer("cat", branch_depths=(6, 10)),
            inputs=["a", "b"],
        )
        return net

    def test_concat_depth(self):
        net = self.build_branched()
        assert net.shape_of("cat").as_tuple() == (16, 8, 8)

    def test_concat_checks_declared_depths(self):
        net = self.build_branched()
        with pytest.raises(ShapeError):
            net.add(ConcatLayer("cat2", branch_depths=(6, 99)), inputs=["a", "b"])

    def test_concat_checks_spatial_agreement(self):
        net = self.build_branched()
        net.add(PoolLayer("shrink", kernel=2, stride=2), inputs=["a"])
        with pytest.raises(ShapeError):
            net.add(
                ConcatLayer("cat3", branch_depths=(6, 10)),
                inputs=["shrink", "b"],
            )

    def test_non_concat_multi_input_rejected(self):
        net = self.build_branched()
        with pytest.raises(ShapeError):
            net.add(ReLULayer("r"), inputs=["a", "b"])


class TestQueries:
    def test_conv_contexts(self):
        net = small_net()
        contexts = net.conv_contexts()
        assert [c.name for c in contexts] == ["c1", "c2"]
        assert contexts[1].in_shape.as_tuple() == (8, 8, 8)

    def test_conv1(self):
        assert small_net().conv1().name == "c1"

    def test_conv1_missing(self):
        net = Network("noconv", TensorShape(1, 4, 4))
        net.add(ReLULayer("r"))
        with pytest.raises(ShapeError):
            net.conv1()

    def test_layer_lookup(self):
        net = small_net()
        assert net.layer("p1").kernel == 2
        with pytest.raises(KeyError):
            net.layer("zzz")

    def test_context_macs_match_layer(self):
        net = small_net()
        ctx = net.conv_contexts()[0]
        assert ctx.macs == ctx.layer.macs(ctx.in_shape)

    def test_summary(self):
        s = small_net().summary()
        assert s.conv_layers == 2
        assert s.kernel_sizes == (3,)
        assert s.total_macs > 0
        assert s.conv1.name == "c1"
