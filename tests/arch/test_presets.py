"""Architecture preset tests."""

import pytest

from repro.arch.presets import PRESETS, preset, preset_names
from repro.errors import ConfigError


class TestRegistry:
    def test_names(self):
        assert set(preset_names()) == {
            "cbrain-16-16",
            "cbrain-32-32",
            "diannao",
            "zhang-fpga",
            "shidiannao",
            "embedded",
        }

    def test_cbrain_is_table3(self, cfg16, cfg32):
        assert preset("cbrain-16-16") == cfg16
        assert preset("cbrain-32-32") == cfg32

    def test_unknown(self):
        with pytest.raises(ConfigError):
            preset("tpu")

    def test_all_presets_valid_and_plannable(self, alexnet):
        from repro.adaptive import plan_network

        for name in preset_names():
            run = plan_network(alexnet, preset(name), "adaptive-2")
            assert run.total_cycles > 0, name


class TestPresetCharacter:
    def test_zhang_budget_matches_baseline_model(self, alexnet):
        """The zhang-fpga preset reproduces the Fig. 9 baseline when run
        under the plain inter policy (same dataflow, same unroll)."""
        from repro.adaptive import plan_network
        from repro.baselines.zhang import ZHANG_7_64

        cfg = preset("zhang-fpga")
        run = plan_network(alexnet, cfg, "inter")
        # compute cycles equal the published-model cycles exactly
        assert run.compute_cycles == ZHANG_7_64.network_cycles(alexnet)

    def test_diannao_small_buffers_cost_traffic(self, alexnet):
        """DianNao's 48 KB of SRAM forces re-streaming C-Brain's 5 MB of
        buffers avoid."""
        from repro.adaptive import plan_network

        big = plan_network(alexnet, preset("cbrain-16-16"), "adaptive-2")
        small = plan_network(alexnet, preset("diannao"), "adaptive-2")
        assert small.dram_words > 1.5 * big.dram_words

    def test_embedded_is_memory_starved(self, alexnet):
        from repro.adaptive import plan_network

        run = plan_network(alexnet, preset("embedded"), "adaptive-2")
        stream_bound = sum(
            1 for r in run.layers if r.stream_cycles > r.operations
        )
        assert stream_bound >= 2  # several layers pinned on the 1 w/cyc DMA
