"""Energy model tests."""

import pytest

from repro.arch.buffers import AccessCounter
from repro.arch.config import CONFIG_16_16, CONFIG_32_32
from repro.arch.energy import EnergyBreakdown, EnergyModel, EnergyTable
from repro.errors import ConfigError


class TestEnergyTable:
    def test_sram_energy_grows_with_capacity(self):
        t = EnergyTable()
        small = t.sram_access_pj(4 * 1024)
        big = t.sram_access_pj(2 * 1024 * 1024)
        assert big > small

    def test_sram_sqrt_scaling(self):
        t = EnergyTable()
        e1 = t.sram_access_pj(64 * 1024)
        e4 = t.sram_access_pj(4 * 64 * 1024)
        assert e4 == pytest.approx(2 * e1)

    def test_dram_much_more_expensive_than_sram(self):
        t = EnergyTable()
        assert t.dram_access_pj > 10 * t.sram_access_pj(2 * 1024 * 1024)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            EnergyTable().sram_access_pj(0)

    def test_invalid_constants(self):
        with pytest.raises(ConfigError):
            EnergyTable(mult_pj=0)


class TestEnergyModel:
    def test_pe_energy_proportional_to_operations(self):
        m = EnergyModel(CONFIG_16_16)
        assert m.pe_energy_pj(200) == pytest.approx(2 * m.pe_energy_pj(100))

    def test_pe_energy_scales_with_array_size(self):
        """A 32-32 array burns ~4x the power of a 16-16 per cycle."""
        e16 = EnergyModel(CONFIG_16_16).pe_energy_pj(100)
        e32 = EnergyModel(CONFIG_32_32).pe_energy_pj(100)
        assert 3.5 < e32 / e16 < 4.5

    def test_extra_adds_charged(self):
        m = EnergyModel(CONFIG_16_16)
        base = m.pe_energy_pj(100)
        with_adds = m.pe_energy_pj(100, extra_adds=1000)
        assert with_adds == pytest.approx(base + 1000 * m.table.add_pj)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            EnergyModel(CONFIG_16_16).pe_energy_pj(-1)

    def test_buffer_energy_uses_per_buffer_costs(self):
        m = EnergyModel(CONFIG_16_16)
        accesses = {
            "input": AccessCounter(loads=100),
            "bias": AccessCounter(loads=100),
        }
        per = m.buffer_energy_pj(accesses)
        # the 2 MB input macro costs more per access than the 4 KB bias one
        assert per["input"] > per["bias"]

    def test_unknown_buffer_rejected(self):
        m = EnergyModel(CONFIG_16_16)
        with pytest.raises(ConfigError):
            m.buffer_access_pj("cache")

    def test_breakdown_totals(self):
        m = EnergyModel(CONFIG_16_16)
        accesses = {
            "input": AccessCounter(loads=10),
            "output": AccessCounter(stores=10),
            "weight": AccessCounter(loads=10),
            "bias": AccessCounter(),
        }
        bd = m.breakdown(operations=100, accesses=accesses, dram_words=5)
        assert bd.total_pj == pytest.approx(
            bd.pe_pj + bd.buffer_pj + bd.dram_pj
        )
        assert bd.dram_pj == pytest.approx(5 * m.table.dram_access_pj)

    def test_breakdown_add(self):
        a = EnergyBreakdown(pe_pj=1.0, input_buffer_pj=2.0)
        a.add(EnergyBreakdown(pe_pj=3.0, dram_pj=4.0))
        assert a.pe_pj == 4.0
        assert a.dram_pj == 4.0
        assert a.total_pj == pytest.approx(10.0)
