"""Accelerator configuration tests (the paper's Table 3)."""

import pytest

from repro.arch.config import (
    CONFIG_16_16,
    CONFIG_32_32,
    AcceleratorConfig,
    named_config,
)
from repro.errors import ConfigError


class TestTable3Defaults:
    def test_pe_widths(self):
        assert CONFIG_16_16.tin == 16 and CONFIG_16_16.tout == 16
        assert CONFIG_32_32.tin == 32 and CONFIG_32_32.tout == 32

    def test_multiplier_counts(self):
        """'16-16 ... thus the number of multipliers is 256'."""
        assert CONFIG_16_16.multipliers == 256
        assert CONFIG_32_32.multipliers == 1024

    def test_buffer_sizes(self):
        assert CONFIG_16_16.input_buffer_bytes == 2 * 1024 * 1024
        assert CONFIG_16_16.output_buffer_bytes == 2 * 1024 * 1024
        assert CONFIG_16_16.weight_buffer_bytes == 1 * 1024 * 1024
        assert CONFIG_16_16.bias_buffer_bytes == 4 * 1024

    def test_16bit_datapath(self):
        assert CONFIG_16_16.word_bytes == 2

    def test_buffer_words(self):
        assert CONFIG_16_16.input_buffer_words == 1024 * 1024
        assert CONFIG_16_16.weight_buffer_words == 512 * 1024

    def test_default_clock_1ghz(self):
        assert CONFIG_16_16.frequency_hz == 1e9


class TestDerivedHelpers:
    def test_name(self):
        assert CONFIG_16_16.name == "16-16"
        assert AcceleratorConfig(tin=16, tout=28).name == "16-28"

    def test_cycles_to_ms(self):
        assert CONFIG_16_16.cycles_to_ms(1e6) == pytest.approx(1.0)

    def test_with_pe_copies(self):
        cfg = CONFIG_16_16.with_pe(16, 24)
        assert cfg.tout == 24
        assert cfg.input_buffer_bytes == CONFIG_16_16.input_buffer_bytes
        assert CONFIG_16_16.tout == 16  # original untouched

    def test_with_frequency(self):
        cfg = CONFIG_16_16.with_frequency(100e6)
        assert cfg.cycles_to_ms(1e6) == pytest.approx(10.0)


class TestNamedConfig:
    def test_parse(self):
        cfg = named_config("16-28")
        assert (cfg.tin, cfg.tout) == (16, 28)

    @pytest.mark.parametrize("bad", ["16", "16-28-1", "a-b", ""])
    def test_bad_names(self, bad):
        with pytest.raises(ConfigError):
            named_config(bad)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(tin=0),
            dict(tout=-1),
            dict(input_buffer_bytes=0),
            dict(word_bytes=0),
            dict(frequency_hz=0),
            dict(dram_words_per_cycle=0),
        ],
    )
    def test_rejects_nonpositive(self, kwargs):
        with pytest.raises(ConfigError):
            AcceleratorConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            (dict(tin=0), "tin must be positive, got 0"),
            (dict(tin=-4), "tin must be positive, got -4"),
            (dict(tout=-1), "tout must be positive, got -1"),
            (dict(frequency_hz=0), "frequency_hz must be positive, got 0"),
            (
                dict(frequency_hz=-1e9),
                "frequency_hz must be positive, got -1000000000.0",
            ),
            (
                dict(weight_buffer_bytes=-2),
                "weight_buffer_bytes must be positive, got -2",
            ),
        ],
    )
    def test_message_names_the_bad_value(self, kwargs, fragment):
        """A rejected knob must say which knob and which value."""
        with pytest.raises(ConfigError) as excinfo:
            AcceleratorConfig(**kwargs)
        assert fragment in str(excinfo.value)


class TestSerialization:
    def test_roundtrip(self):
        data = CONFIG_16_16.to_dict()
        assert AcceleratorConfig.from_dict(data) == CONFIG_16_16

    def test_dict_is_json_friendly(self):
        import json

        json.dumps(CONFIG_16_16.to_dict())

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig.from_dict({"tin": 16, "cache_kb": 64})

    def test_unknown_key_named_in_error(self):
        """A typoed knob must be called out, never silently defaulted."""
        with pytest.raises(ConfigError, match="'cache_kb'"):
            AcceleratorConfig.from_dict({"tin": 16, "cache_kb": 64})

    def test_multiple_unknown_keys_all_named(self):
        with pytest.raises(ConfigError) as excinfo:
            AcceleratorConfig.from_dict({"bogus": 1, "also_bogus": 2})
        message = str(excinfo.value)
        assert "'also_bogus'" in message and "'bogus'" in message
        assert "valid keys" in message

    def test_from_dict_bad_value_names_it(self):
        with pytest.raises(ConfigError, match="tin must be positive, got -8"):
            AcceleratorConfig.from_dict({"tin": -8})
        with pytest.raises(
            ConfigError, match="frequency_hz must be positive, got 0"
        ):
            AcceleratorConfig.from_dict({"frequency_hz": 0})

    def test_partial_dict_uses_defaults(self):
        cfg = AcceleratorConfig.from_dict({"tin": 8, "tout": 8})
        assert cfg.multipliers == 64
        assert cfg.input_buffer_bytes == CONFIG_16_16.input_buffer_bytes
