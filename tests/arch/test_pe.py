"""PE-array model tests: operation counting and utilization."""

import pytest

from repro.arch.config import CONFIG_16_16
from repro.arch.pe import PEArray
from repro.errors import ConfigError


class TestIssue:
    def test_peak_macs_per_operation(self):
        pe = PEArray(CONFIG_16_16)
        assert pe.macs_per_operation == 256

    def test_full_utilization(self):
        pe = PEArray(CONFIG_16_16)
        pe.issue(operations=10, useful_macs=2560)
        assert pe.utilization == pytest.approx(1.0)

    def test_conv1_style_underutilization(self):
        """Din=3 on a 16-wide array: 3/16 of the multipliers do real work."""
        pe = PEArray(CONFIG_16_16)
        pe.issue(operations=100, useful_macs=100 * 3 * 16)
        assert pe.utilization == pytest.approx(3 / 16)

    def test_overcommit_rejected(self):
        pe = PEArray(CONFIG_16_16)
        with pytest.raises(ConfigError):
            pe.issue(operations=1, useful_macs=257)

    def test_negative_rejected(self):
        pe = PEArray(CONFIG_16_16)
        with pytest.raises(ConfigError):
            pe.issue(operations=-1, useful_macs=0)

    def test_adder_tree_counting(self):
        pe = PEArray(CONFIG_16_16)
        pe.issue(operations=2, useful_macs=512)
        # 16 trees x 15 adds per op
        assert pe.tally.adds == 2 * 16 * 15

    def test_accumulation_across_issues(self):
        pe = PEArray(CONFIG_16_16)
        pe.issue(5, 100)
        pe.issue(5, 200)
        assert pe.tally.operations == 10
        assert pe.tally.useful_macs == 300

    def test_idle_utilization_zero(self):
        assert PEArray(CONFIG_16_16).utilization == 0.0

    def test_reset(self):
        pe = PEArray(CONFIG_16_16)
        pe.issue(5, 100)
        pe.reset()
        assert pe.tally.operations == 0
