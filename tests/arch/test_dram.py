"""Burst-level DRAM model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.dram import DEFAULT_DRAM, DramModel
from repro.errors import ConfigError


class TestConstruction:
    def test_defaults_calibrated_near_4_words_per_cycle(self):
        assert 3.5 < DEFAULT_DRAM.peak_words_per_cycle < 4.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(burst_words=0),
            dict(cycles_per_burst=0),
            dict(row_miss_penalty=-1),
            dict(row_words=100, burst_words=32),  # not a multiple
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            DramModel(**kwargs)


class TestStreams:
    def test_zero_words(self):
        assert DEFAULT_DRAM.bursts_for_stream(0) == 0
        assert DEFAULT_DRAM.cycles_for_stream(0) == 0.0

    def test_unit_stride_packs_bursts(self):
        d = DramModel(burst_words=32)
        assert d.bursts_for_stream(64, 1) == 2
        assert d.bursts_for_stream(65, 1) == 3

    def test_strided_wastes_bursts(self):
        d = DramModel(burst_words=32)
        # stride 8: only 4 useful words per burst
        assert d.bursts_for_stream(64, 8) == 16

    def test_stride_beyond_burst_saturates(self):
        d = DramModel(burst_words=32)
        assert d.bursts_for_stream(10, 32) == 10
        assert d.bursts_for_stream(10, 1000) == 10

    def test_alignment_penalty_tracks_stride(self):
        assert DEFAULT_DRAM.alignment_penalty(100_000, 4) == pytest.approx(
            4.0, rel=0.05
        )

    def test_invalid_stream(self):
        with pytest.raises(ConfigError):
            DEFAULT_DRAM.cycles_for_stream(-1)
        with pytest.raises(ConfigError):
            DEFAULT_DRAM.cycles_for_stream(10, 0)

    @given(
        words=st.integers(1, 10**6),
        stride=st.integers(1, 128),
    )
    def test_monotonicity_properties(self, words, stride):
        """More stride never costs fewer cycles; bandwidth <= peak."""
        d = DEFAULT_DRAM
        base = d.cycles_for_stream(words, 1)
        strided = d.cycles_for_stream(words, stride)
        assert strided >= base
        assert d.effective_words_per_cycle(words, stride) <= (
            d.burst_words / d.cycles_per_burst
        ) + 1e-9


class TestAlignmentArgument:
    def test_depth_interleaved_fetch_from_planar_store_is_slow(self):
        """The layout story quantified: an inter-kernel stream (depth-major
        words) read from an intra-order (planar) tensor has stride = X*Y —
        far past the burst length, so every word wastes a burst."""
        map_pixels = 27 * 27
        penalty = DEFAULT_DRAM.alignment_penalty(10_000, map_pixels)
        assert penalty > 20.0

    def test_matched_layout_is_free(self):
        assert DEFAULT_DRAM.alignment_penalty(10_000, 1) == 1.0
