"""16-bit fixed-point datapath tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.fixedpoint import (
    Q7_8,
    FixedPointFormat,
    SaturationStats,
    dequantize,
    quantize,
)
from repro.errors import ConfigError


class TestFormat:
    def test_q78_ranges(self):
        assert Q7_8.total_bits == 16
        assert Q7_8.scale == 256
        assert Q7_8.max_value == pytest.approx(127.99609375)
        assert Q7_8.min_value == -128.0
        assert Q7_8.resolution == pytest.approx(1 / 256)

    def test_invalid_formats(self):
        with pytest.raises(ConfigError):
            FixedPointFormat(total_bits=1)
        with pytest.raises(ConfigError):
            FixedPointFormat(total_bits=16, frac_bits=16)
        with pytest.raises(ConfigError):
            FixedPointFormat(total_bits=16, frac_bits=-1)


class TestQuantize:
    def test_roundtrip_exact_values(self):
        vals = np.array([0.0, 1.0, -1.0, 0.5, -2.25])
        assert np.allclose(dequantize(quantize(vals)), vals)

    def test_saturation(self):
        codes = quantize(np.array([1e6, -1e6]))
        assert codes[0] == Q7_8.max_int
        assert codes[1] == Q7_8.min_int

    def test_quantization_error_bounded(self):
        rng = np.random.default_rng(7)
        vals = rng.uniform(-100, 100, size=1000)
        err = np.abs(dequantize(quantize(vals)) - vals)
        assert err.max() <= Q7_8.resolution / 2 + 1e-12

    @given(st.floats(min_value=-120, max_value=120, allow_nan=False))
    def test_roundtrip_within_half_lsb(self, x):
        back = dequantize(quantize(np.array([x])))[0]
        assert abs(back - x) <= Q7_8.resolution / 2 + 1e-12

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_input_rejected(self, bad):
        with pytest.raises(ConfigError, match="non-finite"):
            quantize(np.array([0.0, bad, 1.0]))

    def test_fixed_point_conv_matches_float_within_tolerance(self):
        """16-bit is 'good enough' (Table 3, with reference to DianNao)."""
        from repro.sim.functional import reference_conv

        rng = np.random.default_rng(3)
        data = rng.uniform(-1, 1, (3, 8, 8))
        weights = rng.uniform(-1, 1, (4, 3, 3, 3))
        ref = reference_conv(data, weights, None, 1, 0)
        qd = dequantize(quantize(data))
        qw = dequantize(quantize(weights))
        quant = reference_conv(qd, qw, None, 1, 0)
        # error grows with the 27-term reduction but stays small
        assert np.abs(quant - ref).max() < 27 * Q7_8.resolution


class TestSaturationStats:
    def test_counts_clipped_values_by_direction(self):
        stats = SaturationStats()
        quantize(np.array([0.0, 500.0, -500.0, 1.0]), stats=stats)
        assert stats.total == 4
        assert stats.saturated_high == 1
        assert stats.saturated_low == 1
        assert stats.saturated == 2
        assert stats.saturation_rate == 0.5

    def test_accumulates_across_calls(self):
        stats = SaturationStats()
        quantize(np.array([500.0]), stats=stats)
        quantize(np.array([1.0, 2.0]), stats=stats)
        assert stats.total == 3
        assert stats.saturated == 1
        assert len(stats.by_call) == 2

    def test_clean_input_counts_nothing(self):
        stats = SaturationStats()
        quantize(np.linspace(-100, 100, 50), stats=stats)
        assert stats.saturated == 0
        assert stats.saturation_rate == 0.0

    def test_to_dict(self):
        stats = SaturationStats()
        quantize(np.array([500.0, 0.0]), stats=stats)
        assert stats.to_dict() == {
            "total": 2,
            "saturated_high": 1,
            "saturated_low": 0,
            "saturation_rate": 0.5,
        }

    def test_codes_unchanged_by_stats(self):
        vals = np.array([0.25, 500.0, -3.5])
        assert np.array_equal(quantize(vals), quantize(vals, stats=SaturationStats()))
