"""Buffer model tests: capacities and access accounting."""

import pytest

from repro.arch.buffers import AccessCounter, Buffer, BufferSet
from repro.arch.config import CONFIG_16_16
from repro.errors import CapacityError, ConfigError


class TestAccessCounter:
    def test_total(self):
        c = AccessCounter(loads=3, stores=2)
        assert c.total == 5

    def test_add(self):
        a = AccessCounter(1, 2)
        a.add(AccessCounter(10, 20))
        assert (a.loads, a.stores) == (11, 22)

    def test_scaled(self):
        assert AccessCounter(2, 3).scaled(4) == AccessCounter(8, 12)


class TestBuffer:
    def test_fits(self):
        b = Buffer("b", capacity_words=100)
        assert b.fits(100)
        assert not b.fits(101)

    def test_require_raises(self):
        b = Buffer("b", capacity_words=10)
        b.require(10)
        with pytest.raises(CapacityError):
            b.require(11)

    def test_load_store_counting(self):
        b = Buffer("b", capacity_words=10)
        b.load(5)
        b.store(3)
        b.load(2)
        assert b.counter.loads == 7
        assert b.counter.stores == 3

    def test_negative_rejected(self):
        b = Buffer("b", capacity_words=10)
        with pytest.raises(ConfigError):
            b.load(-1)
        with pytest.raises(ConfigError):
            b.store(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            Buffer("b", capacity_words=0)


class TestBufferSet:
    def test_from_config(self):
        bs = BufferSet.from_config(CONFIG_16_16)
        assert bs.input.capacity_words == 1024 * 1024
        assert bs.output.capacity_words == 1024 * 1024
        assert bs.weight.capacity_words == 512 * 1024
        assert bs.bias.capacity_words == 2 * 1024

    def test_totals_keys(self):
        bs = BufferSet.from_config(CONFIG_16_16)
        assert set(bs.totals()) == {"input", "output", "weight", "bias"}

    def test_total_accesses(self):
        bs = BufferSet.from_config(CONFIG_16_16)
        bs.input.load(10)
        bs.output.store(5)
        bs.weight.load(1)
        assert bs.total_accesses == 16

    def test_reset(self):
        bs = BufferSet.from_config(CONFIG_16_16)
        bs.input.load(10)
        bs.reset()
        assert bs.total_accesses == 0
        assert bs.input.capacity_words == 1024 * 1024
