"""Compiler tests: schedule -> program lowering preserves all totals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CompileError
from repro.isa.compiler import compile_layer, compile_network, split_evenly
from repro.isa.instructions import Opcode
from repro.schemes import make_scheme

from tests.conftest import make_ctx


class TestSplitEvenly:
    def test_exact_division(self):
        assert split_evenly(12, 4) == [3, 3, 3, 3]

    def test_remainder_front_loaded(self):
        assert split_evenly(10, 4) == [3, 3, 2, 2]

    def test_zero_total(self):
        assert split_evenly(0, 3) == [0, 0, 0]

    def test_invalid(self):
        with pytest.raises(CompileError):
            split_evenly(5, 0)
        with pytest.raises(CompileError):
            split_evenly(-1, 2)

    @given(total=st.integers(0, 10**9), parts=st.integers(1, 100))
    def test_sums_exactly(self, total, parts):
        pieces = split_evenly(total, parts)
        assert sum(pieces) == total
        assert len(pieces) == parts
        assert max(pieces) - min(pieces) <= 1


class TestCompileLayer:
    def schedule(self, cfg, scheme="inter"):
        ctx = make_ctx(in_maps=16, out_maps=32, kernel=3, pad=1, hw=14)
        return make_scheme(scheme).schedule(ctx, cfg)

    def test_totals_preserved(self, cfg16):
        result = self.schedule(cfg16)
        prog = compile_layer(result, cfg16)
        assert prog.total_words(Opcode.BUF_READ_INPUT) == result.accesses["input"].loads
        assert prog.total_words(Opcode.BUF_READ_WEIGHT) == result.accesses["weight"].loads
        assert (
            prog.total_words(Opcode.BUF_WRITE_OUTPUT)
            == result.accesses["output"].stores
        )
        ops = sum(i.operations for i in prog if i.opcode is Opcode.COMPUTE)
        macs = sum(i.macs for i in prog if i.opcode is Opcode.COMPUTE)
        assert ops == result.operations
        assert macs == result.useful_macs

    def test_dma_totals_match_dram_words(self, cfg16):
        for scheme in ("inter", "intra", "partition", "inter-improved"):
            result = self.schedule(cfg16, scheme)
            prog = compile_layer(result, cfg16)
            dma = sum(i.words for i in prog if i.is_dma)
            assert dma == result.dram_words, scheme

    def test_ends_with_sync(self, cfg16):
        prog = compile_layer(self.schedule(cfg16), cfg16)
        assert prog.instructions[-1].opcode is Opcode.SYNC

    def test_explicit_pass_count(self, cfg16):
        result = self.schedule(cfg16)
        prog = compile_layer(result, cfg16, passes=7)
        assert prog.count(Opcode.COMPUTE) == 7

    def test_per_pass_macs_respect_peak(self, cfg16):
        result = self.schedule(cfg16)
        prog = compile_layer(result, cfg16, passes=13)
        for inst in prog:
            if inst.opcode is Opcode.COMPUTE:
                assert inst.macs <= inst.operations * cfg16.multipliers

    def test_meta(self, cfg16):
        prog = compile_layer(self.schedule(cfg16), cfg16)
        assert prog.meta["scheme"] == "inter"
        assert prog.meta["config"] == "16-16"

    def test_invalid_passes(self, cfg16):
        with pytest.raises(CompileError):
            compile_layer(self.schedule(cfg16), cfg16, passes=0)


class TestCompileNetwork:
    def test_one_sync_per_layer(self, alexnet, cfg16):
        prog = compile_network(alexnet, cfg16, "adaptive-2")
        # 5 conv layers (no reorder barrier for the adaptive plan)
        assert prog.count(Opcode.SYNC) == 5

    def test_reorder_barrier_for_inter_policy(self, alexnet, cfg16):
        prog = compile_network(alexnet, cfg16, "inter")
        assert prog.count(Opcode.SYNC) == 6
        assert prog.instructions[0].opcode is Opcode.HOST_RESHAPE

    def test_meta(self, alexnet, cfg16):
        prog = compile_network(alexnet, cfg16, "adaptive-2")
        assert prog.meta["network"] == "alexnet"
        assert prog.meta["policy"] == "adaptive-2"


class TestCompileRun:
    def test_batched_run_parity(self, alexnet, cfg16):
        from repro.adaptive import plan_batch
        from repro.isa.compiler import compile_run
        from repro.sim.machine import Machine

        batch = plan_batch(alexnet, cfg16, batch_size=4)
        result = Machine(cfg16).execute(compile_run(batch.run, cfg16))
        assert result.buffer_accesses == batch.run.buffer_accesses
        assert result.dram_words == batch.run.dram_words
        assert result.total_cycles == pytest.approx(
            batch.run.total_cycles, abs=2.0
        )

    def test_full_network_run_parity(self, alexnet, cfg16):
        from repro.adaptive import plan_network
        from repro.isa.compiler import compile_run
        from repro.sim.machine import Machine

        run = plan_network(alexnet, cfg16, "adaptive-2", include_non_conv=True)
        result = Machine(cfg16).execute(compile_run(run, cfg16))
        assert result.buffer_accesses == run.buffer_accesses
        assert result.total_cycles == pytest.approx(run.total_cycles, abs=2.0)

    def test_oracle_run_parity(self, nin, cfg16):
        from repro.adaptive import plan_network
        from repro.isa.compiler import compile_run
        from repro.sim.machine import Machine

        run = plan_network(nin, cfg16, "oracle")
        result = Machine(cfg16).execute(compile_run(run, cfg16))
        assert result.buffer_accesses == run.buffer_accesses
