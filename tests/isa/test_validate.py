"""Program linter tests."""

import pytest

from repro.arch.config import CONFIG_16_16
from repro.isa.instructions import Instruction, Opcode, Program
from repro.isa.validate import assert_valid, lint_program


def prog(*instructions) -> Program:
    p = Program("lint-test")
    for inst in instructions:
        p.emit(inst)
    return p


class TestLint:
    def test_clean_program(self):
        p = prog(
            Instruction(Opcode.DMA_LOAD_INPUT, words=100),
            Instruction(Opcode.COMPUTE, operations=10, macs=2000),
            Instruction(Opcode.BUF_WRITE_OUTPUT, words=50),
            Instruction(Opcode.DMA_STORE_OUTPUT, words=50),
            Instruction(Opcode.SYNC),
        )
        assert lint_program(p, CONFIG_16_16) == []
        assert_valid(p, CONFIG_16_16)

    def test_missing_sync_is_warning(self):
        p = prog(Instruction(Opcode.COMPUTE, operations=1, macs=0))
        issues = lint_program(p, CONFIG_16_16)
        assert any("SYNC" in i.message and i.severity == "warning" for i in issues)
        assert_valid(p, CONFIG_16_16)  # warnings don't fail

    def test_overdrained_output_is_error(self):
        p = prog(
            Instruction(Opcode.BUF_WRITE_OUTPUT, words=10),
            Instruction(Opcode.DMA_STORE_OUTPUT, words=20),
            Instruction(Opcode.SYNC),
        )
        issues = lint_program(p, CONFIG_16_16)
        assert any(i.severity == "error" for i in issues)
        with pytest.raises(AssertionError):
            assert_valid(p, CONFIG_16_16)

    def test_oversized_fill_is_warning(self):
        huge = CONFIG_16_16.input_buffer_words + 1
        p = prog(
            Instruction(Opcode.DMA_LOAD_INPUT, words=huge),
            Instruction(Opcode.SYNC),
        )
        issues = lint_program(p, CONFIG_16_16)
        assert any("exceeds its capacity" in i.message for i in issues)

    def test_empty_program_clean(self):
        assert lint_program(prog(), CONFIG_16_16) == []


class TestCompilerOutputIsClean:
    """Everything the compiler emits must lint error-free."""

    @pytest.mark.parametrize(
        "policy", ["ideal", "inter", "intra", "partition", "adaptive-2"]
    )
    def test_alexnet_programs(self, alexnet, cfg16, policy):
        from repro.isa.compiler import compile_network

        program = compile_network(alexnet, cfg16, policy)
        errors = [
            i for i in lint_program(program, cfg16) if i.severity == "error"
        ]
        assert errors == [], policy

    def test_batched_program(self, alexnet, cfg16):
        from repro.adaptive import plan_batch
        from repro.isa.compiler import compile_run

        batch = plan_batch(alexnet, cfg16, batch_size=8)
        program = compile_run(batch.run, cfg16)
        assert_valid(program, cfg16)
