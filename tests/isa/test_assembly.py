"""Assembly dump/load tests."""

import pytest

from repro.errors import CompileError
from repro.isa.assembly import assemble, disassemble
from repro.isa.instructions import Instruction, Opcode, Program


def sample_program() -> Program:
    p = Program("sample", meta={"network": "alexnet", "policy": "adaptive-2"})
    p.emit(Instruction(Opcode.DMA_LOAD_INPUT, words=100, comment="fill"))
    p.emit(Instruction(Opcode.COMPUTE, operations=10, macs=2000))
    p.emit(Instruction(Opcode.BUF_WRITE_OUTPUT, words=50))
    p.emit(Instruction(Opcode.SYNC))
    return p


class TestRoundTrip:
    def test_instructions_preserved(self):
        p = sample_program()
        back = assemble(disassemble(p))
        assert len(back) == len(p)
        for a, b in zip(p, back):
            assert a.opcode is b.opcode
            assert (a.words, a.operations, a.macs) == (b.words, b.operations, b.macs)

    def test_meta_preserved(self):
        back = assemble(disassemble(sample_program()))
        assert back.meta == {"network": "alexnet", "policy": "adaptive-2"}

    def test_comments_preserved(self):
        back = assemble(disassemble(sample_program()))
        assert back.instructions[0].comment == "fill"

    def test_compiled_network_roundtrip_executes_identically(self, alexnet, cfg16):
        from repro.isa.compiler import compile_network
        from repro.sim.machine import Machine

        prog = compile_network(alexnet, cfg16, "adaptive-2")
        back = assemble(disassemble(prog))
        a = Machine(cfg16).execute(prog)
        b = Machine(cfg16).execute(back)
        assert a.total_cycles == b.total_cycles
        assert a.buffer_accesses == b.buffer_accesses
        assert a.dram_words == b.dram_words


class TestParsing:
    def test_blank_lines_and_comments_ignored(self):
        p = assemble("\n; hello\n\nsync\n")
        assert len(p) == 1

    def test_unknown_opcode(self):
        with pytest.raises(CompileError):
            assemble("teleport words=5")

    def test_unknown_operand(self):
        with pytest.raises(CompileError):
            assemble("compute volts=5")

    def test_non_integer_operand(self):
        with pytest.raises(CompileError):
            assemble("compute ops=many")

    def test_malformed_meta(self):
        with pytest.raises(CompileError):
            assemble(".meta onlykey")

    def test_inline_comment(self):
        p = assemble("sync ; end of layer")
        assert p.instructions[0].comment == "end of layer"


class TestPipelinedBound:
    def test_bound_is_at_most_total(self, all_networks, cfg16):
        from repro.adaptive import plan_network

        for net in all_networks:
            for policy in ("inter", "intra", "adaptive-2"):
                run = plan_network(net, cfg16, policy)
                assert run.pipelined_cycles <= run.total_cycles + 1e-6

    def test_bound_at_least_compute(self, alexnet, cfg16):
        from repro.adaptive import plan_network

        run = plan_network(alexnet, cfg16, "adaptive-2")
        assert run.pipelined_cycles >= run.compute_cycles
