"""Macro ISA tests."""

import pytest

from repro.errors import CompileError
from repro.isa.instructions import Instruction, Opcode, Program


class TestInstruction:
    def test_buffer_targets(self):
        assert Instruction(Opcode.BUF_READ_INPUT, words=4).buffer_target == "input"
        assert Instruction(Opcode.BUF_READ_INPUT, words=4).buffer_kind == "loads"
        assert Instruction(Opcode.BUF_WRITE_OUTPUT, words=4).buffer_kind == "stores"
        assert Instruction(Opcode.COMPUTE, operations=1).buffer_target is None

    def test_dma_fill_targets(self):
        assert Instruction(Opcode.DMA_LOAD_INPUT, words=4).dma_fill_target == "input"
        assert Instruction(Opcode.DMA_LOAD_WEIGHT, words=4).dma_fill_target == "weight"
        assert Instruction(Opcode.DMA_STORE_OUTPUT, words=4).dma_fill_target is None

    def test_is_dma(self):
        assert Instruction(Opcode.DMA_STORE_OUTPUT, words=1).is_dma
        assert not Instruction(Opcode.HOST_RESHAPE, words=1).is_dma

    def test_negative_operand_rejected(self):
        with pytest.raises(CompileError):
            Instruction(Opcode.COMPUTE, operations=-1)

    def test_macs_without_operations_rejected(self):
        with pytest.raises(CompileError):
            Instruction(Opcode.COMPUTE, operations=0, macs=5)


class TestProgram:
    def build(self) -> Program:
        p = Program("demo")
        p.emit(Instruction(Opcode.DMA_LOAD_INPUT, words=100))
        p.emit(Instruction(Opcode.COMPUTE, operations=10, macs=2000))
        p.emit(Instruction(Opcode.SYNC))
        return p

    def test_len_iter(self):
        p = self.build()
        assert len(p) == 3
        assert [i.opcode for i in p] == [
            Opcode.DMA_LOAD_INPUT,
            Opcode.COMPUTE,
            Opcode.SYNC,
        ]

    def test_count_and_total_words(self):
        p = self.build()
        p.emit(Instruction(Opcode.DMA_LOAD_INPUT, words=50))
        assert p.count(Opcode.DMA_LOAD_INPUT) == 2
        assert p.total_words(Opcode.DMA_LOAD_INPUT) == 150

    def test_extend(self):
        a, b = self.build(), self.build()
        a.extend(b)
        assert len(a) == 6

    def test_listing_truncates(self):
        p = Program("long")
        for _ in range(100):
            p.emit(Instruction(Opcode.SYNC))
        text = p.listing(limit=10)
        assert "90 more" in text

    def test_listing_shows_operands(self):
        text = self.build().listing()
        assert "words=100" in text
        assert "ops=10" in text
        assert "macs=2000" in text
