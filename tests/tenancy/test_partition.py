"""Partition validation: tiling, budgets, fractions, degenerate identity."""

from __future__ import annotations

import pytest

from repro.arch.config import CONFIG_16_16, CONFIG_32_32
from repro.errors import ConfigError
from repro.tenancy import (
    PartitionSpec,
    even_partitions,
    full_chip_spec,
    partition_chip,
)


class TestSpecValidation:
    def test_empty_name(self):
        with pytest.raises(ConfigError, match="name"):
            PartitionSpec(name="", tin=8, tout=8)

    @pytest.mark.parametrize("bad", [0, -4, True, 2.5])
    def test_bad_dims(self, bad):
        with pytest.raises(ConfigError, match="'a'"):
            PartitionSpec(name="a", tin=bad, tout=8)

    @pytest.mark.parametrize("frac", [0.0, -0.5, 1.5])
    def test_bad_fractions(self, frac):
        with pytest.raises(ConfigError, match="buffer_fraction"):
            PartitionSpec(name="a", tin=8, tout=8, buffer_fraction=frac)


class TestPartitionChip:
    def test_even_split_tiles(self):
        subs = partition_chip(CONFIG_32_32, even_partitions(CONFIG_32_32, 2))
        assert [s.config.name for s in subs] == ["16-32", "16-32"]
        assert [s.share for s in subs] == [0.5, 0.5]

    def test_buffer_shares_scale_with_area(self):
        subs = partition_chip(CONFIG_32_32, even_partitions(CONFIG_32_32, 2))
        for sub in subs:
            assert (
                sub.config.input_buffer_bytes
                == CONFIG_32_32.input_buffer_bytes // 2
            )
            assert (
                sub.config.dram_words_per_cycle
                == CONFIG_32_32.dram_words_per_cycle / 2
            )

    def test_empty_specs(self):
        with pytest.raises(ConfigError, match="at least one"):
            partition_chip(CONFIG_32_32, [])

    def test_duplicate_names(self):
        specs = [
            PartitionSpec(name="a", tin=16, tout=32),
            PartitionSpec(name="a", tin=16, tout=32),
        ]
        with pytest.raises(ConfigError, match="duplicate partition name 'a'"):
            partition_chip(CONFIG_32_32, specs)

    def test_dims_exceed_parent_names_partition(self):
        specs = [PartitionSpec(name="wide", tin=64, tout=32)]
        with pytest.raises(
            ConfigError, match=r"partition 'wide' wants tin 64"
        ):
            partition_chip(CONFIG_32_32, specs)

    def test_over_subscription_names_remaining_budget(self):
        specs = [
            PartitionSpec(name="a", tin=24, tout=32),
            PartitionSpec(name="b", tin=16, tout=32),
        ]
        with pytest.raises(ConfigError) as err:
            partition_chip(CONFIG_32_32, specs)
        message = str(err.value)
        assert "'b'" in message
        assert "512 multipliers" in message
        assert "256" in message and "1024" in message

    def test_leftover_budget_is_an_error(self):
        specs = [PartitionSpec(name="half", tin=16, tout=32)]
        with pytest.raises(
            ConfigError, match=r"leave 512 of 1024 multipliers unallocated"
        ):
            partition_chip(CONFIG_32_32, specs)

    def test_explicit_fractions_must_sum_to_one(self):
        specs = [
            PartitionSpec(name="a", tin=16, tout=32, buffer_fraction=0.5),
            PartitionSpec(name="b", tin=16, tout=32, buffer_fraction=0.6),
        ]
        with pytest.raises(ConfigError, match="buffer_fraction"):
            partition_chip(CONFIG_32_32, specs)

    def test_uneven_split_not_divisible(self):
        with pytest.raises(ConfigError, match="divisible"):
            even_partitions(CONFIG_32_32, 3)

    def test_asymmetric_fractions_allowed(self):
        specs = [
            PartitionSpec(name="big", tin=24, tout=32, buffer_fraction=0.8),
            PartitionSpec(name="small", tin=8, tout=32, buffer_fraction=0.2),
        ]
        subs = partition_chip(CONFIG_32_32, specs)
        # buffers are floored to whole words
        scaled = int(CONFIG_32_32.input_buffer_bytes * 0.8)
        word = CONFIG_32_32.word_bytes
        assert subs[0].config.input_buffer_bytes == scaled // word * word


class TestDegenerate:
    def test_full_chip_partition_equals_parent(self):
        (sub,) = partition_chip(CONFIG_16_16, [full_chip_spec(CONFIG_16_16)])
        assert sub.config == CONFIG_16_16
        assert sub.share == 1.0

    def test_full_chip_partition_equals_parent_32(self):
        (sub,) = partition_chip(CONFIG_32_32, [full_chip_spec(CONFIG_32_32)])
        assert sub.config == CONFIG_32_32
