"""Schedule-cache keys include effective geometry (the tenancy guarantee).

A partitioned or masked chip must never share cache entries with the
full chip — ``config_key`` carries tin/tout, the four buffer sizes, and
the DMA rate, so every distinct effective geometry gets distinct keys —
while the *degenerate* whole-chip partition derives a config equal to
the parent and therefore hits exactly the parent's entries (bit-identical
plans, by construction rather than by luck).
"""

from __future__ import annotations

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

from repro.adaptive import plan_network
from repro.arch.config import CONFIG_32_32
from repro.perf.cache import config_key
from repro.resilience import PEMask, degraded_config
from repro.tenancy import even_partitions, full_chip_spec, partition_chip


class TestKeyDistinctness:
    def test_partition_key_differs_from_parent(self):
        subs = partition_chip(CONFIG_32_32, even_partitions(CONFIG_32_32, 2))
        for sub in subs:
            assert config_key(sub.config) != config_key(CONFIG_32_32)

    def test_mask_and_partition_same_pe_still_distinct(self):
        # a PE mask shrinks the array but keeps the whole SRAM; a
        # partition shrinks both — same tin/tout, different keys
        masked = degraded_config(CONFIG_32_32, PEMask(masked_cols=16))
        sub = partition_chip(CONFIG_32_32, even_partitions(CONFIG_32_32, 2))[0]
        assert masked.tin == sub.config.tin
        assert masked.tout == sub.config.tout
        assert config_key(masked) != config_key(sub.config)

    def test_degenerate_partition_hits_parent_entries(self):
        (sub,) = partition_chip(CONFIG_32_32, [full_chip_spec(CONFIG_32_32)])
        assert config_key(sub.config) == config_key(CONFIG_32_32)

    def test_sibling_partitions_of_equal_shape_share_keys(self):
        # two 16x32 strips are the *same* geometry — they should share
        # cache entries with each other (that's the win), just not with
        # the parent
        a, b = partition_chip(CONFIG_32_32, even_partitions(CONFIG_32_32, 2))
        assert config_key(a.config) == config_key(b.config)


class TestDegenerateBitIdentity:
    def test_whole_chip_partition_plans_bit_identical(self, alexnet):
        (sub,) = partition_chip(CONFIG_32_32, [full_chip_spec(CONFIG_32_32)])
        base = plan_network(alexnet, CONFIG_32_32, "adaptive-2")
        derived = plan_network(alexnet, sub.config, "adaptive-2")
        assert derived.total_cycles == base.total_cycles
        assert derived.buffer_accesses == base.buffer_accesses
        assert derived.dram_words == base.dram_words


if HAVE_HYPOTHESIS:

    @settings(max_examples=30, deadline=None)
    @given(
        split=st.sampled_from([2, 4, 8]),
        frac=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_partition_keys_never_collide_with_parent(split, frac):
        specs = even_partitions(CONFIG_32_32, split)
        specs = [
            type(s)(
                name=s.name,
                tin=s.tin,
                tout=s.tout,
                buffer_fraction=frac if i == 0 else (1 - frac) / (split - 1),
            )
            for i, s in enumerate(specs)
        ]
        subs = partition_chip(CONFIG_32_32, specs)
        parent_key = config_key(CONFIG_32_32)
        for sub in subs:
            assert config_key(sub.config) != parent_key
else:  # pragma: no cover

    @pytest.mark.skip(reason="hypothesis not installed")
    def test_partition_keys_never_collide_with_parent():
        pass
