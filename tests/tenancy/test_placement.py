"""Fleet flattening and deterministic tenant placement."""

from __future__ import annotations

import pytest

from repro.arch.config import CONFIG_16_16, CONFIG_32_32
from repro.errors import ConfigError
from repro.serve.workload import TenantSpec, parse_tenant_mix
from repro.tenancy import (
    ChipSpec,
    FleetSpec,
    TenantDemand,
    demand_from_tenants,
    even_partitions,
    parse_fleet,
    place_tenants,
)


class TestFleetSlots:
    def test_slots_deterministic_order(self):
        fleet = parse_fleet("big:32-32:1,small:16-16:2", name="het")
        slots = fleet.slots()
        assert [s.slot_id for s in slots] == [0, 1, 2]
        assert [s.chip_id for s in slots] == ["big0", "small0", "small1"]
        assert [s.config.name for s in slots] == ["32-32", "16-16", "16-16"]
        assert all(s.share == 1.0 for s in slots)

    def test_partitioned_chip_shares_chip_id(self):
        chip = ChipSpec(
            name="split",
            config=CONFIG_32_32,
            partitions=tuple(even_partitions(CONFIG_32_32, 2)),
        )
        slots = FleetSpec(name="f", chips=(chip,)).slots()
        assert len(slots) == 2
        assert {s.chip_id for s in slots} == {"split0"}
        assert [s.partition for s in slots] == ["p0", "p1"]
        assert [s.share for s in slots] == [0.5, 0.5]

    def test_total_weight_counts_chips_once(self):
        chip = ChipSpec(
            name="split",
            config=CONFIG_32_32,
            partitions=tuple(even_partitions(CONFIG_32_32, 2)),
        )
        fleet = FleetSpec(name="f", chips=(chip,))
        # one 32-32 chip = 4 reference chips, regardless of partitioning
        assert fleet.total_weight() == 4.0

    def test_equal_weight_fleets(self):
        het = parse_fleet("big:32-32:1,small:16-16:4", name="het")
        homog = parse_fleet("small:16-16:8", name="homog")
        assert het.total_weight() == homog.total_weight() == 8.0

    def test_duplicate_chip_class(self):
        with pytest.raises(ConfigError, match="duplicate chip class"):
            parse_fleet("a:16-16:1,a:32-32:1")

    def test_parse_fleet_bad_entry(self):
        with pytest.raises(ConfigError, match="expected"):
            parse_fleet("big:32-32:1:extra")

    def test_parse_fleet_bad_count(self):
        with pytest.raises(ConfigError, match="bad chip count"):
            parse_fleet("big:32-32:two")


class TestDemands:
    def test_weight_proportional_split(self):
        tenants = [
            TenantSpec(name="a", network="alexnet", weight=3.0),
            TenantSpec(name="b", network="nin", weight=1.0),
        ]
        demands = demand_from_tenants(tenants, rate_rps=400.0)
        assert demands[0].rate_rps == pytest.approx(300.0)
        assert demands[1].rate_rps == pytest.approx(100.0)
        assert demands[0].mix == (("alexnet", 1.0),)

    def test_mixed_tenant_mix_carries_over(self):
        tenants = parse_tenant_mix("acme=alexnet:3/nin:1")
        demands = demand_from_tenants(tenants, rate_rps=100.0)
        assert demands[0].mix == (("alexnet", 3.0), ("nin", 1.0))

    def test_bad_rate(self):
        with pytest.raises(ConfigError, match="rate_rps"):
            demand_from_tenants(
                [TenantSpec(name="a", network="alexnet")], rate_rps=0.0
            )

    def test_demand_validation(self):
        with pytest.raises(ConfigError, match="rate_rps"):
            TenantDemand(name="a", rate_rps=-1.0, mix=(("alexnet", 1.0),))
        with pytest.raises(ConfigError, match="mix"):
            TenantDemand(name="a", rate_rps=1.0, mix=())


class TestPlacement:
    def _demands(self, rate=200.0):
        tenants = parse_tenant_mix(
            "ml=vgg@1,app1=alexnet@4,app2=nin@4", slo_ms=250.0
        )
        return demand_from_tenants(tenants, rate_rps=rate)

    def test_placement_deterministic(self):
        fleet = parse_fleet("big:32-32:1,small:16-16:4", name="het")
        a = place_tenants(fleet, self._demands())
        b = place_tenants(fleet, self._demands())
        assert a.slot_of == b.slot_of
        assert a.to_dict() == b.to_dict()

    def test_vgg_lands_on_the_big_chip(self):
        # vgg is compute-bound: the planner's own costs should send it to
        # the 32-32 slot, no affinity table involved
        fleet = parse_fleet("big:32-32:1,small:16-16:4", name="het")
        placement = place_tenants(fleet, self._demands())
        slots = fleet.slots()
        assert slots[placement.slot_of["ml"]].config.name == "32-32"

    def test_duplicate_demand(self):
        fleet = parse_fleet("small:16-16:2", name="f")
        d = self._demands()[0]
        with pytest.raises(ConfigError, match="duplicate tenant demand"):
            place_tenants(fleet, [d, d])

    def test_empty_demands(self):
        fleet = parse_fleet("small:16-16:2", name="f")
        with pytest.raises(ConfigError, match="at least one"):
            place_tenants(fleet, [])

    def test_objective_not_worse_than_greedy_only(self):
        # local search only ever improves (max util, latency proxy)
        fleet = parse_fleet("big:32-32:1,small:16-16:4", name="het")
        placement = place_tenants(fleet, self._demands(rate=400.0))
        assert placement.passes >= 1
        assert placement.max_utilization() >= 0.0
        util = placement.to_dict()["slot_utilization"]
        assert set(util) == {str(s.slot_id) for s in fleet.slots()}
