"""`python -m repro tenancy` CLI tests."""

import json

import pytest

from repro.__main__ import main
from repro.errors import ConfigError

_FAST = ["--rate", "40", "--duration", "2", "--seed", "1"]


class TestPartitionMode:
    def test_table_output(self, capsys):
        assert main(["tenancy", "partition"] + _FAST) == 0
        out = capsys.readouterr().out
        assert "carved into" in out
        assert "worst-tenant p95 ms" in out
        assert "partitioned" in out and "timemux" in out
        assert "partitioned co-residency" in out

    def test_json_stdout_is_machine_readable(self, capsys):
        assert main(["tenancy", "partition", "--json", "-"] + _FAST) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["chip"] == "32-32"
        assert "partitioned" in payload and "timemux" in payload
        assert "worst_tenant_p95_ms" in payload["headline"]

    def test_explicit_partitions(self, capsys):
        assert (
            main(
                ["tenancy", "partition", "--partitions", "a:16x32,b:16x32",
                 "--json", "-"] + _FAST
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        names = [p["name"] for p in payload["scenario"]["partitions"]]
        assert names == ["a", "b"]

    def test_bad_partition_entry(self):
        with pytest.raises(ConfigError, match="bad partition entry"):
            main(["tenancy", "partition", "--partitions", "a:16"] + _FAST)

    def test_json_to_file(self, capsys, tmp_path):
        target = tmp_path / "tenancy.json"
        assert (
            main(["tenancy", "partition", "--json", str(target)] + _FAST) == 0
        )
        payload = json.loads(target.read_text())
        assert "headline" in payload


class TestFleetMode:
    _FLEETS = [
        "--fleet", "het=big:32-32:1,small:16-16:4",
        "--fleet", "homog=small:16-16:8",
    ]

    def test_ranked_table(self, capsys):
        assert (
            main(
                ["tenancy", "fleet", "--tenants", "a=alexnet,b=nin"]
                + self._FLEETS + _FAST
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "het" in out and "homog" in out
        assert "winner:" in out

    def test_json_stdout(self, capsys):
        assert (
            main(
                ["tenancy", "fleet", "--tenants", "a=alexnet,b=nin",
                 "--json", "-"] + self._FLEETS + _FAST
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["fleets"]) == {"het", "homog"}
        assert payload["headline"]["winner"] in {"het", "homog"}

    def test_fleet_mode_requires_fleet(self):
        with pytest.raises(ConfigError, match="--fleet"):
            main(["tenancy", "fleet"] + _FAST)

    def test_bad_fleet_entry(self):
        with pytest.raises(ConfigError, match="bad --fleet"):
            main(["tenancy", "fleet", "--fleet", "nospec"] + _FAST)

    def test_unknown_tenant_network(self):
        with pytest.raises(ConfigError, match="unknown network"):
            main(["tenancy", "partition", "--tenants", "a=resnet"] + _FAST)
