"""Fleet serving: conservation, shared-chip accounting, degenerate identity."""

from __future__ import annotations

import pytest

from repro.arch.config import CONFIG_16_16, CONFIG_32_32
from repro.errors import ConfigError
from repro.serve.engine import ServingEngine
from repro.serve.workload import mixed_arrivals, parse_tenant_mix
from repro.tenancy import (
    ChipSpec,
    FleetSpec,
    demand_from_tenants,
    even_partitions,
    full_chip_spec,
    place_tenants,
    rollup_to_json,
    serve_placement,
    worst_tenant_p95,
)

_TENANTS = parse_tenant_mix("acme=alexnet,beta=nin", slo_ms=250.0)


def _partitioned_fleet(config=CONFIG_32_32, splits=2):
    chip = ChipSpec(
        name="chip",
        config=config,
        partitions=tuple(even_partitions(config, splits)),
    )
    return FleetSpec(name="f", chips=(chip,))


def _serve(fleet, tenants=_TENANTS, rate=80.0, duration=4.0, seed=3):
    requests = mixed_arrivals(rate, duration, tenants, seed=seed)
    placement = place_tenants(fleet, demand_from_tenants(tenants, rate))
    return (
        serve_placement(fleet, placement, requests, duration),
        requests,
    )


class TestServePlacement:
    def test_conservation(self):
        summary, requests = _serve(_partitioned_fleet())
        assert summary["offered"] == len(requests)
        assert summary["completed"] + summary["shed"] == summary["offered"]
        per_slot = summary["per_slot"]
        assert sum(d["offered"] for d in per_slot.values()) == len(requests)

    def test_chip_counted_once_for_co_resident_partitions(self):
        summary, _ = _serve(_partitioned_fleet())
        per_chip = summary["per_chip"]
        # two partitions, ONE physical chip
        assert list(per_chip) == ["chip0"]
        entry = per_chip["chip0"]
        assert len(entry["replicas"]) == 2
        # chip-seconds are the makespan, not 2x (the shared-chip guarantee)
        assert entry["chip_seconds"] == summary["makespan_s"]
        assert 0.0 <= entry["utilization"] <= 1.0 + 1e-9

    def test_idle_chips_still_billed(self):
        fleet = FleetSpec(
            name="f",
            chips=(
                ChipSpec(name="big", config=CONFIG_32_32),
                ChipSpec(name="small", config=CONFIG_16_16, count=2),
            ),
        )
        tenants = parse_tenant_mix("acme=alexnet", slo_ms=250.0)
        summary, _ = _serve(fleet, tenants=tenants, rate=20.0)
        # one tenant uses one slot; the other chips appear at zero busy
        assert set(summary["per_chip"]) == {"big0", "small0", "small1"}
        idle = [
            c
            for c, e in summary["per_chip"].items()
            if e["busy_ms"] == 0.0
        ]
        assert len(idle) == 2
        for chip in idle:
            assert (
                summary["per_chip"][chip]["chip_seconds"]
                == summary["makespan_s"]
            )

    def test_fleet_section(self):
        summary, _ = _serve(_partitioned_fleet())
        fleet = summary["fleet"]
        assert fleet["total_weight"] == 4.0
        assert fleet["weighted_chip_seconds"] == pytest.approx(
            4.0 * summary["makespan_s"], rel=1e-6
        )
        assert fleet["slots"] == 2

    def test_unplaced_tenant_is_an_error(self):
        fleet = _partitioned_fleet()
        tenants = parse_tenant_mix("acme=alexnet,beta=nin", slo_ms=250.0)
        requests = mixed_arrivals(40.0, 2.0, tenants, seed=1)
        only_acme = demand_from_tenants(tenants[:1], 20.0)
        placement = place_tenants(fleet, only_acme)
        with pytest.raises(ConfigError, match=r"unplaced tenants \['beta'\]"):
            serve_placement(fleet, placement, requests, 2.0)

    def test_rollup_byte_stable(self):
        a, _ = _serve(_partitioned_fleet())
        b, _ = _serve(_partitioned_fleet())
        assert rollup_to_json(a) == rollup_to_json(b)

    def test_worst_tenant_p95(self):
        summary, _ = _serve(_partitioned_fleet())
        worst = worst_tenant_p95(summary)
        per_tenant = summary["per_tenant"]
        assert worst == max(
            g["latency_ms"]["p95"] for g in per_tenant.values()
        )
        assert worst_tenant_p95({}) == 0.0


class TestDegenerateIdentity:
    """A whole-chip 'partition' must serve exactly like the plain engine."""

    def test_core_metrics_identical_to_plain_engine(self):
        tenants = parse_tenant_mix("acme=alexnet", slo_ms=250.0)
        requests = mixed_arrivals(60.0, 4.0, tenants, seed=5)

        chip = ChipSpec(
            name="chip",
            config=CONFIG_32_32,
            partitions=(full_chip_spec(CONFIG_32_32),),
        )
        fleet = FleetSpec(name="whole", chips=(chip,))
        placement = place_tenants(fleet, demand_from_tenants(tenants, 60.0))
        rollup = serve_placement(fleet, placement, requests, 4.0)

        plain = ServingEngine(CONFIG_32_32, replicas=1).run(requests, 4.0)
        base = plain.summary

        for key in (
            "offered",
            "completed",
            "shed",
            "goodput_rps",
            "mean_batch_size",
            "utilization",
            "makespan_s",
        ):
            assert rollup[key] == base[key], key
        assert rollup["latency_ms"] == base["latency_ms"]
        assert rollup["per_tenant"] == base["per_tenant"]

    def test_untagged_plain_engine_has_no_per_chip(self):
        tenants = parse_tenant_mix("acme=alexnet", slo_ms=250.0)
        requests = mixed_arrivals(30.0, 2.0, tenants, seed=5)
        summary = ServingEngine(CONFIG_16_16, replicas=1).run(
            requests, 2.0
        ).summary
        assert "per_chip" not in summary
