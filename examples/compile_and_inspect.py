#!/usr/bin/env python
"""The compiler's-eye view: lower a plan to the macro ISA and inspect it.

The paper's toolchain includes "a compiler ... that automatically
translates network specification ... into a code segment".  This example
walks that path end to end for a network described in the one-line DSL:

1. build the network and let the adaptive planner schedule it;
2. compile the plan to the macro instruction stream;
3. lint it statically, disassemble it to text, re-assemble it;
4. execute both on the machine model and confirm identical behaviour;
5. show the per-region timing the machine reports.

Run:  python examples/compile_and_inspect.py
"""

from repro import CONFIG_16_16, Machine
from repro.isa import assemble, compile_network, disassemble, lint_program
from repro.nn.zoo import sequential_cnn


def main() -> None:
    net = sequential_cnn(
        "edge-classifier",
        (3, 56, 56),
        "C32k5s2 R C64k3s1p1 R P2 C64k3s1p1 R P2 C10k1",
    )
    config = CONFIG_16_16

    program = compile_network(net, config, "adaptive-2")
    print(
        f"compiled {net.name}: {len(program)} macro instructions "
        f"(policy {program.meta['policy']})"
    )

    issues = lint_program(program, config)
    errors = [i for i in issues if i.severity == "error"]
    print(f"lint: {len(errors)} errors, {len(issues) - len(errors)} warnings")
    for issue in issues[:5]:
        print(f"  [{issue.severity}] {issue.message}")

    text = disassemble(program)
    print("\nfirst 14 lines of the assembly:")
    print("\n".join(text.splitlines()[:14]))

    reloaded = assemble(text, name=program.name)
    machine = Machine(config)
    original = machine.execute(program)
    replayed = machine.execute(reloaded)
    assert original.total_cycles == replayed.total_cycles
    assert original.buffer_accesses == replayed.buffer_accesses
    print(
        f"\nassembly round trip: {len(reloaded)} instructions, execution "
        "identical to the in-memory program"
    )

    print(
        f"\nmachine result: {original.total_cycles:,.0f} cycles over "
        f"{len(original.regions)} layer regions, utilization "
        f"{original.utilization:.0%}, {original.dram_words:,} DRAM words"
    )
    for idx, region in enumerate(original.regions):
        wall = region.wall_clock(config)
        bound = "compute" if region.compute_cycles >= wall - 1e-9 else "memory"
        print(
            f"  region {idx}: {wall:10,.0f} cycles "
            f"(compute {region.compute_cycles:,}, "
            f"dma {region.dma_words / config.dram_words_per_cycle:,.0f}, "
            f"{bound}-bound)"
        )


if __name__ == "__main__":
    main()
