#!/usr/bin/env python
"""Deployment sizing: batch size vs throughput and latency.

The paper's single-image evaluation stops at the conv layers; a deployed
accelerator also runs the FC layers, which at batch 1 are pure weight
streaming and dominate wall-clock.  This example sweeps the batch size for
a chosen network and prints the throughput/latency trade-off a deployment
engineer actually navigates, plus where the saturation point sits.

Run:  python examples/batched_deployment.py [alexnet|googlenet|vgg|nin]
"""

import sys

from repro import CONFIG_16_16, build
from repro.adaptive import plan_batch, plan_network
from repro.analysis.plots import hbar_chart
from repro.analysis.report import format_table

BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "alexnet"
    net = build(name)
    config = CONFIG_16_16

    rows = []
    throughput = {}
    for b in BATCHES:
        batch = plan_batch(net, config, batch_size=b)
        ips = batch.images_per_second()
        throughput[f"B={b}"] = ips
        rows.append(
            [
                str(b),
                f"{ips:.1f}",
                f"{batch.latency_ms():.2f}",
                f"{batch.cycles_per_image:,.0f}",
            ]
        )

    print(f"Batch sweep for {name} on {config.name} (full network incl. FC)\n")
    print(
        format_table(
            ["batch", "images/s", "batch latency (ms)", "cycles/image"], rows
        )
    )

    print()
    print(hbar_chart(throughput, title="throughput (img/s)", unit=" img/s"))

    conv_only = plan_network(net, config, "adaptive-2")
    conv_bound = 1.0 / config.cycles_to_seconds(conv_only.total_cycles)
    best = max(throughput.values())
    print(
        f"\nconv-only compute bound: {conv_bound:.1f} img/s; batching "
        f"recovers {best / conv_bound:.0%} of it "
        "(the remainder is pooling/LRN and residual FC traffic)."
    )


if __name__ == "__main__":
    main()
