#!/usr/bin/env python
"""Layer-by-layer scheme analysis across the four benchmark networks.

For every conv layer of a chosen network this prints what each scheme
would cost (cycles, utilization, buffer traffic), which one Algorithm 2
picks, and what the exhaustive oracle would have picked — the Fig. 7/
Table 1 story at full-network granularity.

Run:  python examples/layer_analysis.py [alexnet|googlenet|vgg|nin]
"""

import sys

from repro import CONFIG_16_16, build, make_scheme
from repro.adaptive import best_scheme_for_layer, select_scheme
from repro.analysis.report import format_table
from repro.errors import ScheduleError

SCHEMES = ("inter", "inter-improved", "intra", "partition")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "alexnet"
    net = build(name)
    config = CONFIG_16_16

    headers = ["layer", "Din", "k", "s"]
    headers += [f"{s} (cyc)" for s in SCHEMES]
    headers += ["rule picks", "oracle picks", "util"]

    rows = []
    for ctx in net.conv_contexts():
        layer = ctx.layer
        row = [
            ctx.name,
            str(layer.in_maps // layer.groups),
            str(layer.kernel),
            str(layer.stride),
        ]
        for scheme_name in SCHEMES:
            try:
                r = make_scheme(scheme_name).schedule(ctx, config)
                row.append(f"{r.total_cycles:,.0f}")
            except ScheduleError:
                row.append("-")
        rule = select_scheme(ctx, config)
        oracle = best_scheme_for_layer(ctx, config)
        row.append(rule.scheme)
        row.append(oracle.scheme + ("" if oracle.scheme == rule.scheme else " *"))
        row.append(f"{oracle.result.utilization:.0%}")
        rows.append(row)

    print(f"Per-layer scheme costs for {name} on a {config.name} array")
    print("(* = the oracle disagrees with Algorithm 2 — usually a Din-chunk")
    print(" quantization corner; the cycle gap is small, see DESIGN.md)\n")
    print(format_table(headers, rows))

    # closing summary: how much does adaptivity buy on this network?
    from repro.adaptive import plan_network

    inter = plan_network(net, config, "inter")
    adaptive = plan_network(net, config, "adaptive-2")
    print(
        f"\nwhole network: inter {inter.total_cycles:,.0f} cycles vs "
        f"adaptive {adaptive.total_cycles:,.0f} cycles "
        f"({inter.total_cycles / adaptive.total_cycles:.2f}x)"
    )


if __name__ == "__main__":
    main()
