#!/usr/bin/env python
"""Replay the evaluation on neighbouring architectures.

The paper compares C-Brain against DianNao-style and FPGA designs at fixed
points; with the preset catalog the same comparison runs as a sweep: every
preset plans the same network under its own budget, and the table shows
how much of each design's gap is dataflow (fixed inter vs adaptive) versus
raw resources (multipliers, SRAM, DMA).

Run:  python examples/architecture_comparison.py [network]
"""

import sys

from repro import build, plan_network
from repro.analysis.report import format_table
from repro.arch.presets import preset, preset_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "alexnet"
    net = build(name)

    rows = []
    for preset_name in preset_names():
        config = preset(preset_name)
        inter = plan_network(net, config, "inter")
        adaptive = plan_network(net, config, "adaptive-2")
        rows.append(
            [
                preset_name,
                config.name,
                f"{config.multipliers}",
                f"{config.frequency_hz / 1e6:.0f} MHz",
                f"{inter.milliseconds():.2f}",
                f"{adaptive.milliseconds():.2f}",
                f"{inter.total_cycles / adaptive.total_cycles:.2f}x",
                f"{adaptive.utilization:.0%}",
            ]
        )

    print(f"Architecture comparison on {name} (fixed inter vs adaptive)\n")
    print(
        format_table(
            [
                "preset",
                "PE",
                "mults",
                "clock",
                "inter (ms)",
                "adaptive (ms)",
                "dataflow gain",
                "util",
            ],
            rows,
        )
    )
    print(
        "\nThe 'dataflow gain' column isolates what adaptive parallelization"
        "\nbuys on each silicon budget — it is largest where the PE shape"
        "\nfits the bottom layers worst, independent of raw resources."
    )


if __name__ == "__main__":
    main()
