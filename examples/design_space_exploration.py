#!/usr/bin/env python
"""Design-space exploration: sweep the PE array shape under a budget.

The Fig. 9 experiment fixed Tin = 16 and swept Tout; this example sweeps
the full (Tin, Tout) grid at a roughly constant multiplier budget and
shows how the adaptive scheme keeps performance stable where the fixed
inter-kernel scheme falls off a cliff — the paper's scalability argument
turned into a design tool.

Run:  python examples/design_space_exploration.py [network] [budget]
"""

import sys

from repro import CONFIG_16_16, build
from repro.analysis.report import format_table
from repro.analysis.sweeps import sweep_pe_shapes


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "alexnet"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 256
    net = build(name)

    inter_points = sweep_pe_shapes(net, CONFIG_16_16, budget, policy="inter")
    adaptive_points = sweep_pe_shapes(net, CONFIG_16_16, budget, policy="adaptive-2")

    rows = []
    best = None
    for shape, adaptive in adaptive_points.items():
        inter = inter_points[shape]
        tin, tout = adaptive.value
        rows.append(
            [
                shape,
                str(tin * tout),
                f"{inter.total_cycles:,.0f}",
                f"{inter.utilization:.0%}",
                f"{adaptive.total_cycles:,.0f}",
                f"{adaptive.utilization:.0%}",
                f"{inter.total_cycles / adaptive.total_cycles:.2f}x",
            ]
        )
        if best is None or adaptive.total_cycles < best[1]:
            best = (shape, adaptive.total_cycles)

    print(
        f"PE-shape sweep for {name} at a ~{budget}-multiplier budget\n"
    )
    print(
        format_table(
            [
                "shape",
                "mults",
                "inter (cyc)",
                "util",
                "adaptive (cyc)",
                "util",
                "gain",
            ],
            rows,
        )
    )
    print(
        f"\nbest adaptive shape: {best[0]} at {best[1]:,.0f} cycles — "
        "narrow-Tin shapes suit shallow inputs, the adaptive mapper keeps"
        " wide shapes usable."
    )


if __name__ == "__main__":
    main()
