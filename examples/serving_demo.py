#!/usr/bin/env python
"""Driving the serving simulator programmatically.

Serves the same two-tenant Poisson workload three ways — batch-1, dynamic
batching on one replica, dynamic batching on two replicas — and prints the
latency/goodput trade-off each policy buys.  The point to notice: at a load
past batch-1's capacity, batching is not a throughput tweak, it is the
difference between meeting SLOs and shedding most of the traffic.

Run:  PYTHONPATH=src python examples/serving_demo.py [rate] [duration]
"""

import sys

from repro.arch.config import CONFIG_16_16
from repro.analysis.report import format_table
from repro.serve import (
    BatchCoster,
    BatchPolicy,
    QueuePolicy,
    ServingEngine,
    parse_mix,
    poisson_arrivals,
)


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 100.0
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 5.0

    tenants = parse_mix("alexnet:3,nin:1", slo_ms=250)
    requests = poisson_arrivals(rate, duration, tenants, seed=0)
    coster = BatchCoster(CONFIG_16_16)  # shared: plans derive once

    setups = [
        ("batch-1", BatchPolicy(max_batch=1), 1),
        ("dynamic x1", BatchPolicy(max_batch=16, max_wait_ms=10), 1),
        ("dynamic x2", BatchPolicy(max_batch=16, max_wait_ms=10), 2),
    ]

    rows = []
    for label, policy, replicas in setups:
        report = ServingEngine(
            CONFIG_16_16,
            batch_policy=policy,
            queue_policy=QueuePolicy(max_depth=256),
            replicas=replicas,
            routing="least-loaded",
            coster=coster,
        ).run(requests, duration)
        s = report.summary
        rows.append(
            [
                label,
                f"{s['goodput_rps']:.1f}",
                f"{s['latency_ms']['p50']:.1f}",
                f"{s['latency_ms']['p95']:.1f}",
                f"{s['shed_rate']:.1%}",
                f"{s['mean_batch_size']:.2f}",
                f"{s['utilization']:.1%}",
            ]
        )

    print(
        f"{len(requests)} requests at {rate:g} req/s over {duration:g} s "
        f"(alexnet:3, nin:1 mix, 250 ms SLO)\n"
    )
    print(
        format_table(
            ["setup", "goodput/s", "p50 ms", "p95 ms", "shed", "batch", "util"],
            rows,
        )
    )
    cap1 = coster.capacity_rps("alexnet", 1)
    cap16 = coster.capacity_rps("alexnet", 16)
    print(
        f"\nalexnet per-replica capacity: {cap1:.0f} req/s at batch 1, "
        f"{cap16:.0f} req/s at batch 16 — batching amortizes the FC weight "
        "streams the paper showed dominate single-image wall-clock."
    )


if __name__ == "__main__":
    main()
