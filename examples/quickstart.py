#!/usr/bin/env python
"""Quickstart: schedule AlexNet on the C-Brain accelerator.

Builds the network, lets Algorithm 2 pick a parallelization scheme per
layer, and reports cycles, utilization, energy, and the speedup over the
fixed inter-kernel baseline — the 30-second tour of the library.

Run:  python examples/quickstart.py
"""

from repro import CONFIG_16_16, build, plan_network
from repro.adaptive import choices_for_network
from repro.analysis.metrics import speedup


def main() -> None:
    net = build("alexnet")
    config = CONFIG_16_16

    print(f"Network: {net.name} ({net.summary().conv_layers} conv layers)")
    print(f"Accelerator: {config.name} ({config.multipliers} multipliers, "
          f"{config.frequency_hz / 1e9:.0f} GHz)\n")

    # Algorithm 2: which scheme does each layer get, and why?
    print("Per-layer scheme selection (Algorithm 2):")
    for choice in choices_for_network(net, config):
        print(f"  {choice.layer_name:<8s} -> {choice.scheme:<15s} {choice.reason}")

    # whole-network runs: the adaptive plan vs the fixed baseline
    adaptive = plan_network(net, config, "adaptive-2")
    baseline = plan_network(net, config, "inter")

    print("\nWhole-network forward propagation (conv layers):")
    print(f"  inter (DianNao-style): {baseline.total_cycles:12,.0f} cycles"
          f"  = {baseline.milliseconds():6.2f} ms")
    print(f"  adaptive (C-Brain):    {adaptive.total_cycles:12,.0f} cycles"
          f"  = {adaptive.milliseconds():6.2f} ms")
    print(f"  speedup: {speedup(baseline.total_cycles, adaptive.total_cycles):.2f}x")
    print(f"  PE utilization: {baseline.utilization:.1%} -> {adaptive.utilization:.1%}")

    e_base, e_adap = baseline.energy(), adaptive.energy()
    print("\nEnergy (PE array + on-chip buffers + DRAM):")
    print(f"  inter:    {e_base.total_pj / 1e6:8.2f} uJ "
          f"(buffers {e_base.buffer_pj / 1e6:.2f} uJ)")
    print(f"  adaptive: {e_adap.total_pj / 1e6:8.2f} uJ "
          f"(buffers {e_adap.buffer_pj / 1e6:.2f} uJ)")
    print(f"  buffer-traffic reduction: "
          f"{1 - adaptive.buffer_accesses / baseline.buffer_accesses:.1%}")


if __name__ == "__main__":
    main()
