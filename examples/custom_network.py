#!/usr/bin/env python
"""Bring your own network: define a CNN, schedule it, and *verify* it.

Shows the complete path a downstream user takes:

1. describe a custom network with the layer API;
2. let the adaptive planner map it onto a chosen accelerator;
3. compile it to the macro ISA and execute on the machine model;
4. numerically verify that the kernel-partitioned execution of every conv
   layer matches a reference convolution (the Fig. 5(d) equivalence) —
   including at 16-bit fixed-point datapath precision.

Run:  python examples/custom_network.py
"""

import numpy as np

from repro import CONFIG_16_16, Machine, Network, TensorShape, plan_network
from repro.arch.fixedpoint import Q7_8, dequantize, quantize
from repro.isa import compile_network
from repro.nn.layers import ConvLayer, PoolLayer, ReLULayer
from repro.sim.forward import forward, init_weights


def build_custom() -> Network:
    """A small VGG-flavoured detector head with a C-Brain-unfriendly mix:
    a big-kernel stem (partition territory), k == s reduction (sliding
    window territory), and deep 3x3 layers (improved-inter territory)."""
    net = Network("custom-detector", TensorShape(3, 64, 64))
    net.add(ConvLayer("stem", in_maps=3, out_maps=24, kernel=7, stride=2))
    net.add(ReLULayer("stem_relu"))
    net.add(ConvLayer("reduce", in_maps=24, out_maps=32, kernel=2, stride=2))
    net.add(ReLULayer("reduce_relu"))
    net.add(ConvLayer("body1", in_maps=32, out_maps=48, kernel=3, pad=1))
    net.add(ReLULayer("body1_relu"))
    net.add(ConvLayer("body2", in_maps=48, out_maps=48, kernel=3, pad=1))
    net.add(ReLULayer("body2_relu"))
    net.add(PoolLayer("pool", kernel=2, stride=2))
    net.add(ConvLayer("head", in_maps=48, out_maps=8, kernel=1))
    return net


def main() -> None:
    net = build_custom()
    config = CONFIG_16_16

    # 1-2: plan
    run = plan_network(net, config, "adaptive-2")
    print(f"Adaptive plan for {net.name} on {config.name}:")
    for r in run.layers:
        print(
            f"  {r.layer_name:<8s} {r.scheme:<15s} "
            f"{r.total_cycles:10,.0f} cycles  util {r.utilization:.0%}"
        )
    print(f"  total: {run.total_cycles:,.0f} cycles = {run.milliseconds():.3f} ms")

    # 3: compile + execute on the machine model, cross-check the plan
    program = compile_network(net, config, "adaptive-2")
    result = Machine(config).execute(program)
    assert result.buffer_accesses == run.buffer_accesses
    print(
        f"\nMachine execution: {len(program)} macro instructions, "
        f"{result.total_cycles:,.0f} cycles (matches the plan: "
        f"{abs(result.total_cycles - run.total_cycles) < 2})"
    )
    print("\nFirst instructions of the stream:")
    print(program.listing(limit=12))

    # 4: numerical verification, float and fixed-point
    image = np.random.default_rng(0).standard_normal((3, 64, 64)) * 0.5
    params = init_weights(net, seed=42)
    ref = forward(net, image, params=params, conv_scheme="reference")
    part = forward(net, image, params=params, conv_scheme="partition")
    worst = max(
        float(np.abs(part[l.name] - ref[l.name]).max()) for l in net
    )
    print(f"\nkernel-partitioned forward == reference: max |err| = {worst:.2e}")
    assert worst < 1e-9

    qimage = dequantize(quantize(image, Q7_8), Q7_8)
    qparams = {
        name: {
            "weights": dequantize(quantize(p["weights"], Q7_8), Q7_8),
            "bias": None
            if p["bias"] is None
            else dequantize(quantize(p["bias"], Q7_8), Q7_8),
        }
        for name, p in params.items()
    }
    q_ref = forward(net, qimage, params=qparams, conv_scheme="reference")
    q_part = forward(net, qimage, params=qparams, conv_scheme="partition")
    q_worst = max(
        float(np.abs(q_part[l.name] - q_ref[l.name]).max()) for l in net
    )
    print(
        f"same check at 16-bit fixed-point inputs: max |err| = {q_worst:.2e} "
        "(the partitioned order is exact at any precision)"
    )
    assert q_worst < 1e-9


if __name__ == "__main__":
    main()
