"""Baseline comparators: CPU (Table 4) and the Zhang FPGA'15 design (Fig. 9)."""

from repro.baselines.cpu import DEFAULT_CPU, CpuLayerTime, CpuModel
from repro.baselines.zhang import ZHANG_7_64, ZhangFpgaModel

__all__ = [
    "DEFAULT_CPU",
    "CpuLayerTime",
    "CpuModel",
    "ZHANG_7_64",
    "ZhangFpgaModel",
]
