"""CPU baseline — the Table 4 comparator.

The paper measures Caffe-style C++ forward propagation on an Intel Xeon at
2.20 GHz.  We model that software stack analytically: conv layers run as
im2col + GEMM, and the sustained throughput is the core's peak FLOP rate
times a GEMM efficiency that degrades when the reduction dimension
(``k*k*Din``) is small — exactly why GoogLeNet, full of 1x1 and small
reductions, sustains fewer GFLOPs than VGG's fat 3x3x512 GEMMs.

Calibration: a 2.2 GHz core with 128-bit SSE FMA issue (8 single-precision
FLOPs/cycle -> 17.6 GFLOP/s peak) at ~0.22 large-GEMM efficiency sustains
~3.9 GFLOP/s.  Back-solving the paper's Table 4 rows gives 2.2-4.0 sustained
GFLOP/s across the four networks (e.g. VGG: 2 * 19.6 GMACs / 10.07 s =
3.9 GFLOP/s), so this model reproduces the published times within ~15%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.nn.layers import ConvLayer, FCLayer
from repro.nn.network import LayerContext, Network

__all__ = ["CpuModel", "CpuLayerTime", "DEFAULT_CPU"]


@dataclass(frozen=True)
class CpuLayerTime:
    """One layer's modelled software execution."""

    layer_name: str
    flops: int
    efficiency: float
    seconds: float


@dataclass(frozen=True)
class CpuModel:
    """Analytical Caffe-on-Xeon time model."""

    frequency_hz: float = 2.2e9
    flops_per_cycle: float = 8.0
    #: efficiency of a large, cache-friendly GEMM on this stack
    peak_efficiency: float = 0.22
    #: reduction depth at which GEMM efficiency saturates
    saturation_depth: int = 256
    #: floor for tiny reductions (1x1 conv on few maps, bandwidth-bound)
    min_efficiency: float = 0.10

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0 or self.flops_per_cycle <= 0:
            raise ConfigError("CPU peak parameters must be positive")
        if not 0 < self.min_efficiency <= self.peak_efficiency <= 1:
            raise ConfigError("need 0 < min_efficiency <= peak_efficiency <= 1")
        if self.saturation_depth <= 0:
            raise ConfigError("saturation_depth must be positive")

    @property
    def peak_flops(self) -> float:
        return self.frequency_hz * self.flops_per_cycle

    def gemm_efficiency(self, reduction_depth: int) -> float:
        """Sustained/peak ratio for a GEMM with the given K dimension."""
        if reduction_depth <= 0:
            raise ConfigError("reduction depth must be positive")
        frac = min(1.0, reduction_depth / self.saturation_depth)
        return self.min_efficiency + (self.peak_efficiency - self.min_efficiency) * frac

    def layer_time(self, ctx: LayerContext) -> CpuLayerTime:
        """Modelled time of one conv/FC layer (0 for cheap layers)."""
        layer = ctx.layer
        flops = 2 * ctx.macs
        if isinstance(layer, ConvLayer):
            depth = layer.kernel * layer.kernel * (layer.in_maps // layer.groups)
        elif isinstance(layer, FCLayer):
            depth = ctx.in_shape.elements
        else:
            return CpuLayerTime(ctx.name, 0, 1.0, 0.0)
        eff = self.gemm_efficiency(depth)
        seconds = flops / (self.peak_flops * eff) if flops else 0.0
        return CpuLayerTime(ctx.name, flops, eff, seconds)

    def network_time(self, net: Network, conv_only: bool = True) -> float:
        """Forward-propagation seconds for the whole network."""
        total = 0.0
        for ctx in net.contexts():
            if conv_only and not isinstance(ctx.layer, ConvLayer):
                continue
            total += self.layer_time(ctx).seconds
        return total

    def network_ms(self, net: Network, conv_only: bool = True) -> float:
        return self.network_time(net, conv_only=conv_only) * 1e3

    def layer_breakdown(self, net: Network) -> List[CpuLayerTime]:
        """Per-layer times for every conv/FC layer."""
        return [
            self.layer_time(ctx)
            for ctx in net.contexts()
            if isinstance(ctx.layer, (ConvLayer, FCLayer))
        ]


#: the calibrated Xeon 2.20 GHz instance used by the Table 4 bench
DEFAULT_CPU = CpuModel()
