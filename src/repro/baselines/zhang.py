"""Zhang et al. FPGA'15 baseline [14] — the Fig. 9 comparator.

"Optimizing FPGA-based Accelerator Design for Deep Convolutional Neural
Networks" uses a roofline-optimized *unified* loop tiling with unroll
factors ``<Tm, Tn> = <64, 7>`` (64 output maps, 7 input maps in parallel)
at 100 MHz, fixed across all layers — a single inter-kernel-style dataflow.
Its cycle count per conv layer is therefore

    cycles = ox * oy * k * k * ceil(Din/Tn) * ceil(Dout/Tm)

which is exactly our inter-kernel formula at a 7-64 PE width.  The model
reproduces the paper's published comparison to within a few percent:
conv1 = 7.32 ms (paper plots 7.4), whole-net AlexNet = 20.1 ms (paper 21.6).

The design is customized for AlexNet ("they just give a solution for
Alexnet"); running it on the other networks uses the same fixed tiling,
which is the point of the comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.nn.network import LayerContext, Network
from repro.schemes.base import group_geometry

__all__ = ["ZhangFpgaModel", "ZHANG_7_64"]


@dataclass(frozen=True)
class ZhangFpgaModel:
    """Fixed unified-tiling FPGA accelerator of [14]."""

    tn: int = 7  # input-map unroll (Tin analogue)
    tm: int = 64  # output-map unroll (Tout analogue)
    frequency_hz: float = 100e6

    def __post_init__(self) -> None:
        if self.tn <= 0 or self.tm <= 0:
            raise ConfigError("unroll factors must be positive")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")

    @property
    def multipliers(self) -> int:
        """DSP multiplier count (448 for the published 7-64 design)."""
        return self.tn * self.tm

    @property
    def name(self) -> str:
        return f"zhang-{self.tn},{self.tm}"

    def layer_cycles(self, ctx: LayerContext) -> int:
        """Cycles of one conv layer under the fixed unified tiling."""
        geom = group_geometry(ctx)
        return (
            geom.groups
            * geom.out_pixels
            * geom.k
            * geom.k
            * math.ceil(geom.d / self.tn)
            * math.ceil(geom.dout_g / self.tm)
        )

    def layer_ms(self, ctx: LayerContext) -> float:
        return self.layer_cycles(ctx) / self.frequency_hz * 1e3

    def network_cycles(self, net: Network) -> int:
        return sum(self.layer_cycles(c) for c in net.conv_contexts())

    def network_ms(self, net: Network) -> float:
        return self.network_cycles(net) / self.frequency_hz * 1e3

    def layer_breakdown(self, net: Network) -> List[float]:
        """Per-conv-layer milliseconds."""
        return [self.layer_ms(c) for c in net.conv_contexts()]


#: the published optimal configuration of [14]
ZHANG_7_64 = ZhangFpgaModel()
