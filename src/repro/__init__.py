"""C-Brain reproduction: adaptive data-level parallelization for CNN accelerators.

Python reproduction of Song et al., "C-Brain: A Deep Learning Accelerator
that Tames the Diversity of CNNs through Adaptive Data-level
Parallelization" (DAC 2016).

Quick tour of the public API::

    from repro import build, CONFIG_16_16, plan_network, select_scheme

    net = build("alexnet")
    run = plan_network(net, CONFIG_16_16, "adaptive-2")
    print(run.total_cycles, run.milliseconds())

Sub-packages:

- :mod:`repro.nn` — layer/network model and the benchmark zoo
- :mod:`repro.arch` — accelerator configuration, buffers, PE array, energy
- :mod:`repro.tiling` — unrolling (Eq. 1), kernel partitioning (Eq. 2),
  layouts, buffer-fit analysis
- :mod:`repro.schemes` — inter / improved-inter / intra / partition / ideal
- :mod:`repro.adaptive` — Algorithm 2 selection, whole-network planning,
  oracle search
- :mod:`repro.isa` / :mod:`repro.sim` — macro ISA, compiler, machine,
  functional (numerical) execution
- :mod:`repro.baselines` — CPU (Table 4) and Zhang FPGA'15 (Fig. 9) models
- :mod:`repro.analysis` — one driver per table/figure of the paper
- :mod:`repro.perf` — schedule cache, parallel design-space executor,
  perf instrumentation (``docs/performance.md``)
- :mod:`repro.serve` — multi-tenant serving simulator: seeded workloads,
  admission queue, dynamic batching, replicas, SLO metrics
  (``docs/serving.md``)
- :mod:`repro.cluster` — multi-accelerator sharding: inter-chip link
  model, layer-pipeline partitioning (optimal DP balancer), batch-sharded
  data parallelism, serving adapter (``docs/sharding.md``)
- :mod:`repro.resilience` — seeded fault schedules, degraded-geometry
  replanning, chip-loss repair, chaos scenarios (``docs/resilience.md``)
- :mod:`repro.integrity` — ABFT-checksummed convolution, silent-data-
  corruption injection, verified inference (``docs/integrity.md``)
"""

from repro.adaptive import plan_network, select_scheme
from repro.arch import (
    CONFIG_16_16,
    CONFIG_32_32,
    AcceleratorConfig,
    EnergyModel,
    named_config,
)
from repro.errors import (
    CapacityError,
    CompileError,
    ConfigError,
    ReproError,
    ScheduleError,
    ShapeError,
    SimulationError,
)
from repro.nn import ConvLayer, Network, TensorShape
from repro.nn.zoo import benchmark_networks, build
from repro.schemes import make_scheme
from repro.sim import Machine, NetworkRun

__version__ = "1.0.0"

__all__ = [
    "plan_network",
    "select_scheme",
    "CONFIG_16_16",
    "CONFIG_32_32",
    "AcceleratorConfig",
    "EnergyModel",
    "named_config",
    "CapacityError",
    "CompileError",
    "ConfigError",
    "ReproError",
    "ScheduleError",
    "ShapeError",
    "SimulationError",
    "ConvLayer",
    "Network",
    "TensorShape",
    "benchmark_networks",
    "build",
    "make_scheme",
    "Machine",
    "NetworkRun",
    "__version__",
]
