"""2D-PE (systolic-mesh) intra-kernel realization — Sec 4.1.2, approach 3.

The paper analyzes a third way to exploit intra-kernel parallelism: "a 2D
mesh PE similar to systolic array [11, 15]" (ShiDianNao-style).  A ``Px x
Py`` mesh maps one output pixel per PE; input pixels enter at the array
edge and *propagate between neighbouring PEs*, so each input word is read
from the buffer roughly once per output-map pass — "very high data
reusability ... very effective when dealing with specific network topology
in vision processing".

And its weakness, which this model reproduces and the ablation benchmark
quantifies: "this highly-effective 2D-PE design will encounter performance
degradation or underutilization issue when it encounters networks with
varied size of kernels and stride":

* **stride** — neighbour propagation supplies one new pixel row per step
  only at ``s = 1``; at stride ``s`` the window jumps ``s`` pixels, the
  inter-PE reuse chain breaks, and the edge must inject ``s`` rows per
  step.  Data supply becomes the bottleneck: the array stalls by a factor
  ``s`` on the streaming side.
* **spatial quantization** — output maps are processed in ``Px x Py``
  tiles; maps that do not divide the mesh leave PEs idle (e.g. 13x13
  AlexNet top layers on a 16x16 mesh use 66% of the PEs).
* **depth serialization** — the mesh parallelizes space, not depth, so
  ``Din``/``Dout`` are walked serially; deep 1x1 layers leave the
  propagation network useless.

The mesh is sized ``Px = Tin``, ``Py = Tout`` so every comparison uses the
same multiplier budget as the paper's linear array.

This scheme is an *extension* (the paper analyzes but does not evaluate
it); it is registered as ``"pe2d"`` but excluded from the paper-parity
experiment drivers.
"""

from __future__ import annotations

import math

from repro.arch.config import AcceleratorConfig
from repro.nn.network import LayerContext
from repro.schemes.base import (
    ScheduleResult,
    Scheme,
    group_geometry,
    merge_accesses,
)
from repro.tiling.layout import Layout

__all__ = ["Pe2dScheme"]


class Pe2dScheme(Scheme):
    """ShiDianNao-style output-stationary 2D mesh."""

    name = "pe2d"

    def schedule(
        self, ctx: LayerContext, config: AcceleratorConfig
    ) -> ScheduleResult:
        geom = group_geometry(ctx)
        px, py = config.tin, config.tout

        tiles = math.ceil(geom.ox / px) * math.ceil(geom.oy / py)
        # each PE serially accumulates its k*k*d receptive field, one MAC
        # per cycle, for each output map of the group
        compute_per_tile = geom.k * geom.k * geom.d * geom.dout_g
        operations = geom.groups * tiles * compute_per_tile

        # stride > 1 breaks neighbour propagation: the edge injectors must
        # supply s rows per window step and the array stalls on data supply
        supply_cycles = operations * max(1, geom.s)

        # traffic: inputs stream once per output-map pass (the mesh's big
        # win); weights are broadcast once per (kernel element, map) pass
        input_loads = ctx.in_shape.elements * geom.dout_g
        weight_loads = geom.groups * geom.k * geom.k * geom.d * geom.dout_g
        output_stores = ctx.out_shape.elements

        fit = self._fit(ctx, config)
        dram_words = fit.total_traffic_words
        weight_words = fit.working_set.weight_words
        input_fills = dram_words - weight_words - ctx.out_shape.elements
        accesses = merge_accesses(
            {
                "input_loads": input_loads,
                "input_stores": max(0, input_fills),
                "weight_loads": weight_loads,
                "weight_stores": weight_words,
                "output_stores": output_stores,
                "output_loads": ctx.out_shape.elements,
                "bias_loads": ctx.out_shape.depth,
            }
        )

        # utilization: edge tiles idle the mesh fringe; report the true
        # useful-MAC fraction of the clocked array including supply stalls
        stalled_operations = int(supply_cycles)
        return ScheduleResult(
            scheme=self.name,
            layer_name=ctx.name,
            config=config,
            operations=stalled_operations,
            useful_macs=geom.macs,
            extra_adds=0,
            accesses=accesses,
            dram_words=dram_words,
            dma_cycles=fit.dma_cycles,
            input_layout=Layout.INTRA,
            output_layout=Layout.INTRA,
            fit=fit,
            notes={
                "tiles": tiles,
                "mesh": f"{px}x{py}",
                "stride_stall_factor": max(1, geom.s),
            },
        )
