"""Schedules for the non-convolutional layers (pooling, FC, LRN, ReLU).

The paper evaluates convolution only ("convolution ... typically makes 90%
of the computational workload"), and all paper-parity experiments in this
repository do the same.  A downstream user planning a real deployment still
wants the other 10% accounted for, so this module schedules the remaining
layer types on the same hardware:

* **pooling** — windows are reduced on the adder trees (max via compare
  trees of the same depth): ``Tin`` window elements per lane-cycle,
  ``Tout`` channels in parallel;
* **fully connected** — a degenerate inter-kernel convolution (one output
  "pixel"): weights stream once, ``Tin``-wide dot products into ``Tout``
  accumulators.  FC layers are entirely weight-bound, so they are almost
  always DMA-limited — which is the classical reason accelerators batch
  them;
* **LRN** — runs on the activation-function unit at one element per cycle;
* **ReLU** — fused into the store path, zero cycles.

``plan_network(..., include_non_conv=True)`` appends these records to the
run.
"""

from __future__ import annotations

import math

from repro.arch.config import AcceleratorConfig
from repro.errors import ScheduleError
from repro.nn.layers import (
    ConcatLayer,
    EltwiseAddLayer,
    FCLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
)
from repro.nn.network import LayerContext
from repro.schemes.base import ScheduleResult, merge_accesses
from repro.tiling.layout import Layout

__all__ = ["schedule_auxiliary", "supports_auxiliary"]


def supports_auxiliary(ctx: LayerContext) -> bool:
    """Whether :func:`schedule_auxiliary` can cost this layer."""
    return isinstance(
        ctx.layer,
        (PoolLayer, FCLayer, LRNLayer, ReLULayer, ConcatLayer, EltwiseAddLayer),
    )


def _result(ctx, config, name, operations, macs, accesses, dram_words,
            extra_adds=0) -> ScheduleResult:
    return ScheduleResult(
        scheme=name,
        layer_name=ctx.name,
        config=config,
        operations=operations,
        useful_macs=macs,
        extra_adds=extra_adds,
        accesses=accesses,
        dram_words=dram_words,
        dma_cycles=dram_words / config.dram_words_per_cycle,
        input_layout=Layout.INTRA,
        output_layout=Layout.INTRA,
        fit=None,
    )


def _schedule_pool(ctx: LayerContext, config: AcceleratorConfig) -> ScheduleResult:
    layer: PoolLayer = ctx.layer
    window = layer.kernel * layer.kernel
    out_pixels = ctx.out_shape.height * ctx.out_shape.width
    operations = (
        out_pixels
        * math.ceil(window / config.tin)
        * math.ceil(ctx.out_shape.depth / config.tout)
    )
    input_loads = out_pixels * window * ctx.out_shape.depth
    accesses = merge_accesses(
        {
            "input_loads": input_loads,
            "input_stores": ctx.in_shape.elements,
            "output_stores": ctx.out_shape.elements,
            "output_loads": ctx.out_shape.elements,
        }
    )
    dram = ctx.in_shape.elements + ctx.out_shape.elements
    # pooling performs reductions, not MACs
    return _result(ctx, config, "aux-pool", operations, 0, accesses, dram)


def _schedule_fc(ctx: LayerContext, config: AcceleratorConfig) -> ScheduleResult:
    layer: FCLayer = ctx.layer
    in_words = ctx.in_shape.elements
    out_words = layer.out_features
    operations = math.ceil(in_words / config.tin) * math.ceil(
        out_words / config.tout
    )
    macs = in_words * out_words
    weight_words = macs + (out_words if layer.bias else 0)
    accesses = merge_accesses(
        {
            "input_loads": in_words * math.ceil(out_words / config.tout),
            "input_stores": in_words,
            "weight_loads": macs,
            "weight_stores": weight_words,
            "output_stores": out_words,
            "output_loads": out_words,
            "bias_loads": out_words if layer.bias else 0,
        }
    )
    dram = in_words + weight_words + out_words
    return _result(ctx, config, "aux-fc", operations, macs, accesses, dram)


def _schedule_elementwise(
    ctx: LayerContext, config: AcceleratorConfig, name: str, per_element: int
) -> ScheduleResult:
    elements = ctx.out_shape.elements
    operations = elements * per_element
    accesses = merge_accesses(
        {
            "input_loads": ctx.in_shape.elements if per_element else 0,
            "output_stores": elements if per_element else 0,
        }
    )
    return _result(ctx, config, name, operations, 0, accesses, 0)


def schedule_auxiliary(
    ctx: LayerContext, config: AcceleratorConfig
) -> ScheduleResult:
    """Cost a non-conv layer; raises :class:`ScheduleError` for conv layers."""
    layer = ctx.layer
    if isinstance(layer, PoolLayer):
        return _schedule_pool(ctx, config)
    if isinstance(layer, FCLayer):
        return _schedule_fc(ctx, config)
    if isinstance(layer, LRNLayer):
        # one element per cycle through the activation-function unit
        return _schedule_elementwise(ctx, config, "aux-lrn", 1)
    if isinstance(layer, ReLULayer):
        # fused into the preceding layer's store path
        return _schedule_elementwise(ctx, config, "aux-relu", 0)
    if isinstance(layer, ConcatLayer):
        # pure wiring: the planner's layout handoff makes it free
        return _schedule_elementwise(ctx, config, "aux-concat", 0)
    if isinstance(layer, EltwiseAddLayer):
        # one add per element on the accumulate adder group
        return _schedule_elementwise(ctx, config, "aux-add", 1)
    raise ScheduleError(
        f"{ctx.name}: auxiliary scheduler does not handle "
        f"{type(layer).__name__} (conv layers use the parallelization schemes)"
    )
