"""Ideal upper-bound schedule (the "ideal" series in Fig. 7).

Assumes every multiplier is 100% utilized and data alignment is perfect, so
the layer takes ``ceil(MACs / (Tin*Tout))`` cycles, each tensor crosses each
interface exactly once, and no buffer space or bandwidth is wasted.
"""

from __future__ import annotations

import math

from repro.arch.config import AcceleratorConfig
from repro.nn.network import LayerContext
from repro.schemes.base import (
    ScheduleResult,
    Scheme,
    group_geometry,
    merge_accesses,
)
from repro.tiling.layout import Layout

__all__ = ["IdealScheme"]


class IdealScheme(Scheme):
    """100%-utilization bound used to normalize the other schemes."""

    name = "ideal"

    def schedule(
        self, ctx: LayerContext, config: AcceleratorConfig
    ) -> ScheduleResult:
        geom = group_geometry(ctx)
        macs = geom.macs
        operations = math.ceil(macs / config.multipliers)

        weights = geom.groups * geom.k * geom.k * geom.d * geom.dout_g
        accesses = merge_accesses(
            {
                # each word crosses its buffer exactly once, fill + use
                "input_loads": ctx.in_shape.elements,
                "input_stores": ctx.in_shape.elements,
                "weight_loads": weights,
                "weight_stores": weights,
                "output_stores": ctx.out_shape.elements,
                "output_loads": ctx.out_shape.elements,
            }
        )
        fit = self._fit(ctx, config)
        dram_words = fit.compulsory_words
        return ScheduleResult(
            scheme=self.name,
            layer_name=ctx.name,
            config=config,
            operations=operations,
            useful_macs=macs,
            extra_adds=0,
            accesses=accesses,
            dram_words=dram_words,
            dma_cycles=dram_words / config.dram_words_per_cycle,
            input_layout=Layout.INTRA,
            output_layout=Layout.INTRA,
            fit=fit,
        )
