"""Cycle/access cost of the ABFT guard, charged through the scheme models.

The checksum passes of :mod:`repro.integrity.abft` are not free: the
input is column- and row-reduced (adds), every reduced vector is dotted
with every kernel (MACs on the same array that runs the convolution),
and the computed output is read back once to take its sums.  This module
prices that work against a base :class:`~repro.schemes.base.
ScheduleResult`, so planners and the serving tier can quote a
*verified* latency instead of hand-waving a percentage:

* reduction adds:  ``2 * groups * d * H * W`` (one row pass, one column
  pass over the padded input);
* checksum MACs:   ``groups * dout_g * d * k^2 * (oy + ox)`` (one
  ``d*k^2`` dot product per predicted row/column sum);
* comparison ops:  ``dout * (oy + ox + 1)`` readback sums and equality
  checks, plus ``dout * oy * ox`` output-buffer reload words.

All of it retires on the same one-op-per-cycle array as the base
schedule (Table 3), so the verified cycle count is simply the base plus
the checksum work divided across the multipliers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.arch.config import AcceleratorConfig
from repro.nn.network import LayerContext
from repro.schemes.base import ScheduleResult, group_geometry

__all__ = ["AbftOverhead", "abft_overhead"]


@dataclass(frozen=True)
class AbftOverhead:
    """The priced ABFT guard for one layer on one base schedule."""

    layer_name: str
    base_scheme: str
    #: adds spent reducing the input to row/column vectors
    reduce_adds: int
    #: dot-product MACs spent predicting the checksums
    checksum_macs: int
    #: readback sums + equality comparisons on the computed output
    compare_ops: int
    #: extra buffer words moved (input re-read, weight re-read, output readback)
    extra_words: int
    #: array cycles the guard work costs
    checksum_cycles: float
    #: base wall-clock cycles (unverified)
    base_cycles: float
    #: wall-clock cycles with the guard folded in
    verified_cycles: float
    #: the base schedule's useful MACs (denominator of :attr:`mac_overhead`)
    base_macs: int = 0

    @property
    def latency_ratio(self) -> float:
        """Verified / unverified wall-clock — the figure serving quotes."""
        if self.base_cycles == 0:
            return 1.0
        return self.verified_cycles / self.base_cycles

    @property
    def mac_overhead(self) -> float:
        """Guard MACs as a fraction of the layer's useful MACs."""
        return self.checksum_macs / max(1, self.base_macs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "layer": self.layer_name,
            "base_scheme": self.base_scheme,
            "reduce_adds": self.reduce_adds,
            "checksum_macs": self.checksum_macs,
            "compare_ops": self.compare_ops,
            "extra_words": self.extra_words,
            "checksum_cycles": round(self.checksum_cycles, 6),
            "base_cycles": round(self.base_cycles, 6),
            "verified_cycles": round(self.verified_cycles, 6),
            "latency_ratio": round(self.latency_ratio, 6),
        }


def abft_overhead(
    ctx: LayerContext, config: AcceleratorConfig, base: ScheduleResult
) -> AbftOverhead:
    """Price the ABFT guard for ``ctx`` on top of the ``base`` schedule."""
    geom = group_geometry(ctx)
    h = ctx.in_shape.height + 2 * ctx.layer.pad
    w = ctx.in_shape.width + 2 * ctx.layer.pad
    dout = geom.groups * geom.dout_g
    # one row pass + one column pass over the (padded) input, all groups
    reduce_adds = 2 * geom.groups * geom.d * h * w
    # one d*k*k dot product per predicted row sum and per column sum
    checksum_macs = geom.groups * geom.dout_g * geom.d * geom.k * geom.k * (
        geom.oy + geom.ox
    )
    # readback sums over the computed output plus the equality comparisons
    compare_ops = dout * (geom.oy + geom.ox + 1) + dout * geom.out_pixels
    # words moved beyond the base schedule: the input is re-read for the
    # reductions, the weights re-read for the checksum dots, and the
    # output read back once for the comparison sums
    extra_words = (
        geom.groups * geom.d * h * w
        + dout * geom.d * geom.k * geom.k
        + dout * geom.out_pixels
    )
    work = reduce_adds + checksum_macs + compare_ops
    checksum_cycles = float(math.ceil(work / config.multipliers))
    base_cycles = float(base.total_cycles)
    return AbftOverhead(
        layer_name=ctx.name,
        base_scheme=base.scheme,
        reduce_adds=reduce_adds,
        checksum_macs=checksum_macs,
        compare_ops=compare_ops,
        extra_words=extra_words,
        checksum_cycles=checksum_cycles,
        base_cycles=base_cycles,
        verified_cycles=base_cycles + checksum_cycles,
        base_macs=base.useful_macs,
    )
