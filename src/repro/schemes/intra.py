"""Intra-kernel parallelization (Sec 4.1.2).

Concurrent PE inputs come from the *same* input map, so one weight (set) is
shared across them — the scheme's energy advantage: "each operation just
needs to reload either data or weight, not both".

Realizations, following the paper's analysis:

* **sliding window** — only efficient when ``k == s`` (no overlap between
  adjacent windows, data for one window contiguous in the buffer).  Used
  automatically in that case.
* **data unrolling** — the general case (``k != s``); the input is expanded
  by Eq. 1's duplication factor T so every receptive field is contiguous.
  This is what the paper's ``intra`` series implements ("we implemented the
  unrolling scheme in this paper").  Costs, as the paper describes them:

  - off-chip footprint and DMA traffic inflate by T;
  - the raw->unrolled reshape is done by the host processor "at
    considerable overhead" — charged as a serial reshape stream at
    ``reshape_words_per_cycle`` (default 2: a 32-bit host interface
    feeding 16-bit words);
  - the unrolled stream has no spatial structure left, so it cannot be
    strip-tiled: when the unrolled tensor overflows the input buffer, the
    non-resident fraction is re-fetched from DRAM on every output-chunk
    pass — the "many redundant data due to the data alignment problem"
    that makes whole-net intra lose to adap-2 in Fig. 10 and go *negative*
    on VGG in Table 5.

Loop structure (Fig. 4b): one ``Tin``-slice of the receptive field — i.e.
``Tin`` weights shared by the whole map — stays *resident* while the array
sweeps all output pixels, accumulating 1/``field_chunks`` partial sums into
the output buffer (add-and-store), exactly the reuse pattern the improved
inter-kernel scheme borrows for the top layers.
"""

from __future__ import annotations

import math

from repro.arch.config import AcceleratorConfig
from repro.nn.network import LayerContext
from repro.schemes.base import (
    ScheduleResult,
    Scheme,
    group_geometry,
    merge_accesses,
)
from repro.tiling.layout import Layout
from repro.tiling.unroll import unroll_stats

__all__ = ["IntraKernelScheme"]

#: host reshape feed rate for the unrolling realization: a 32-bit host
#: interface moves two 16-bit words per accelerator cycle
DEFAULT_RESHAPE_WORDS_PER_CYCLE = 2.0


class IntraKernelScheme(Scheme):
    """Intra-kernel scheme: sliding window when ``k == s``, else unrolling."""

    name = "intra"

    def __init__(
        self, reshape_words_per_cycle: float = DEFAULT_RESHAPE_WORDS_PER_CYCLE
    ) -> None:
        if reshape_words_per_cycle <= 0:
            raise ValueError("reshape rate must be positive")
        self.reshape_words_per_cycle = reshape_words_per_cycle

    def schedule(
        self, ctx: LayerContext, config: AcceleratorConfig
    ) -> ScheduleResult:
        geom = group_geometry(ctx)
        field_len = geom.k * geom.k * geom.d  # one receptive field
        field_chunks = math.ceil(field_len / config.tin)
        dout_chunks = math.ceil(geom.dout_g / config.tout)

        ops_per_group = geom.out_pixels * field_chunks * dout_chunks
        operations = geom.groups * ops_per_group

        # data: each receptive field streamed once per Dout chunk
        input_loads = geom.groups * geom.out_pixels * field_len * dout_chunks
        # weights: resident per (field chunk, Dout chunk) pass — once each
        weight_loads = geom.groups * field_len * geom.dout_g
        # add-and-store: one partial sum per (pixel, field chunk) pass
        passes = field_chunks
        output_stores = ctx.out_shape.elements * passes
        output_loads = ctx.out_shape.elements * (passes - 1)
        extra_adds = output_loads

        sliding = geom.k == geom.s and ctx.layer.pad == 0
        fit = self._fit(ctx, config)
        if sliding:
            # no duplication, spatial strip tiling works: use the fit model
            stream_words = ctx.in_shape.elements
            reshape_cycles = 0.0
            dram_words = fit.total_traffic_words
            mode = "sliding"
        else:
            stats = unroll_stats(ctx.layer, ctx.in_shape)
            stream_words = stats.unrolled_elements
            # the host reshapes the raw input once, into DRAM
            reshape_cycles = stream_words / self.reshape_words_per_cycle
            # compulsory: unrolled input replaces the raw input
            dram_words = (
                fit.compulsory_words
                - fit.working_set.input_words
                + stream_words
            )
            # no strip tiling: whatever doesn't stay resident in the input
            # buffer is re-fetched on every subsequent output-chunk pass
            excess = max(0, stream_words - config.input_buffer_words)
            dram_words += (dout_chunks - 1) * excess
            # weight-buffer overflow still re-streams like everyone else
            dram_words += fit.spill_words
            mode = "unrolling"
        dma_cycles = dram_words / config.dram_words_per_cycle

        # DMA-side buffer accesses: fills into input/weight, output drain
        weight_words = geom.groups * field_len * geom.dout_g
        input_fills = dram_words - weight_words - ctx.out_shape.elements
        accesses = merge_accesses(
            {
                "input_loads": input_loads,
                "input_stores": max(0, input_fills),
                "weight_loads": weight_loads,
                "weight_stores": weight_words,
                "output_stores": output_stores,
                "output_loads": output_loads + ctx.out_shape.elements,
                "bias_loads": ctx.out_shape.depth,
            }
        )
        return ScheduleResult(
            scheme=self.name,
            layer_name=ctx.name,
            config=config,
            operations=operations,
            useful_macs=geom.macs,
            extra_adds=extra_adds,
            accesses=accesses,
            dram_words=dram_words,
            dma_cycles=dma_cycles,
            reshape_cycles=reshape_cycles,
            input_layout=Layout.INTRA,
            output_layout=Layout.INTRA,
            fit=fit,
            notes={"mode": mode, "stream_words": stream_words},
        )
