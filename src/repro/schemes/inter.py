"""Inter-kernel parallelization (Sec 4.1.1) — the DianNao-style baseline [8].

Each operation transfers ``Tin`` pixels along the depth (``Din``) direction —
same kernel position, consecutive input maps — and broadcasts them to
``Tout`` lanes computing ``Tout`` different output maps.  The accumulation
over the ``k*k`` window and the ``Din`` chunks happens in the PE accumulator,
so one output pixel is stored once.

Weaknesses modelled exactly as the paper describes:

* parallelism is capped by ``Din``/``Dout`` — with ``Din = 3`` and
  ``Tin = 16``, 13 of 16 multiplier columns idle (conv1 disaster);
* no kernel sharing: the concurrent words belong to *different* maps, so
  every operation reloads both its data words and its ``Tin*Tout`` weights
  from the buffers — heavy traffic, high power.
"""

from __future__ import annotations

import math

from repro.arch.config import AcceleratorConfig
from repro.nn.network import LayerContext
from repro.schemes.base import (
    ScheduleResult,
    Scheme,
    group_geometry,
    merge_accesses,
)
from repro.tiling.layout import Layout

__all__ = ["InterKernelScheme"]


class InterKernelScheme(Scheme):
    """Original inter-kernel scheme (the ``inter`` series of Figs. 7-10)."""

    name = "inter"

    def schedule(
        self, ctx: LayerContext, config: AcceleratorConfig
    ) -> ScheduleResult:
        geom = group_geometry(ctx)
        din_chunks = math.ceil(geom.d / config.tin)
        dout_chunks = math.ceil(geom.dout_g / config.tout)

        # one op per (output pixel, kernel element, Din chunk, Dout chunk)
        ops_per_group = geom.out_pixels * geom.k * geom.k * din_chunks * dout_chunks
        operations = geom.groups * ops_per_group

        # data: the d useful words of each Din chunk are fetched per output
        # pixel and kernel element, and re-fetched for every Dout chunk
        input_loads = (
            geom.groups
            * geom.out_pixels
            * geom.k
            * geom.k
            * geom.d
            * dout_chunks
        )
        # weights: no reuse — every lane's d useful weights are fetched on
        # every operation (per output pixel), the scheme's energy sin
        weight_loads = (
            geom.groups
            * geom.out_pixels
            * geom.k
            * geom.k
            * geom.d
            * geom.dout_g
        )
        # accumulation completes inside the PE: one store per output pixel
        output_stores = ctx.out_shape.elements

        fit = self._fit(ctx, config)
        dram_words = fit.total_traffic_words
        # DMA-side: weight/input buffer fills and the output drain
        weight_words = fit.working_set.weight_words
        input_fills = dram_words - weight_words - ctx.out_shape.elements
        accesses = merge_accesses(
            {
                "input_loads": input_loads,
                "input_stores": max(0, input_fills),
                "weight_loads": weight_loads,
                "weight_stores": weight_words,
                "output_stores": output_stores,
                "output_loads": ctx.out_shape.elements,
                "bias_loads": ctx.out_shape.depth,
            }
        )
        return ScheduleResult(
            scheme=self.name,
            layer_name=ctx.name,
            config=config,
            operations=operations,
            useful_macs=geom.macs,
            extra_adds=0,
            accesses=accesses,
            dram_words=dram_words,
            dma_cycles=fit.dma_cycles,
            input_layout=Layout.INTER,
            output_layout=Layout.INTER,
            fit=fit,
        )
