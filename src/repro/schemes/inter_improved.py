"""Improved inter-kernel parallelization (Sec 4.2.2) — adap-2's top-layer scheme.

Loop interchange over the original inter-kernel order: instead of finishing a
whole ``k*k*Din`` accumulation before moving on (which reloads both data and
weights on every multiply), fix one kernel element and one ``Din`` chunk,
keep those ``Tin*Tout`` weights *resident* in the array, and sweep across all
output pixels computing ``1/(k*k)`` partial sums.

Cost/benefit exactly as Fig. 6's discussion:

* stores grow by one partial-sum write per (output pixel, kernel element,
  Din chunk) — plus the partial-sum read-back for accumulation;
* weight loads collapse from once-per-output-pixel to exactly once, saving
  ``~X*Y*Dout*k*k*Din/Tin`` load operations — since ``Din >> Tin`` in top
  layers, buffer bandwidth occupancy drops dramatically;
* stores are off the critical path, so cycles equal the original inter-kernel
  scheme ("adpa-1 and adpa-2 are the same on performance").
"""

from __future__ import annotations

import math

from repro.arch.config import AcceleratorConfig
from repro.nn.network import LayerContext
from repro.schemes.base import (
    ScheduleResult,
    Scheme,
    group_geometry,
    merge_accesses,
)
from repro.tiling.layout import Layout

__all__ = ["ImprovedInterKernelScheme"]


class ImprovedInterKernelScheme(Scheme):
    """Inter-kernel with weight-resident partial-sum accumulation."""

    name = "inter-improved"

    def schedule(
        self, ctx: LayerContext, config: AcceleratorConfig
    ) -> ScheduleResult:
        geom = group_geometry(ctx)
        din_chunks = math.ceil(geom.d / config.tin)
        dout_chunks = math.ceil(geom.dout_g / config.tout)

        # identical compute cycles to the original inter-kernel scheme
        ops_per_group = geom.out_pixels * geom.k * geom.k * din_chunks * dout_chunks
        operations = geom.groups * ops_per_group

        # data loads: unchanged — each Din chunk's d words per output pixel
        # and kernel element, re-streamed per Dout chunk
        input_loads = (
            geom.groups
            * geom.out_pixels
            * geom.k
            * geom.k
            * geom.d
            * dout_chunks
        )
        # weights: resident per (kernel element, Din chunk, Dout chunk) pass —
        # every weight is loaded exactly once
        weight_loads = geom.groups * geom.k * geom.k * geom.d * geom.dout_g

        # partial sums: one add-and-store per op result; every pass beyond the
        # first also reloads the running sum
        passes = geom.k * geom.k * din_chunks
        output_stores = ctx.out_shape.elements * passes
        output_loads = ctx.out_shape.elements * (passes - 1)
        extra_adds = output_loads  # the added accumulator group's work

        fit = self._fit(ctx, config)
        dram_words = fit.total_traffic_words
        # DMA-side: weight/input buffer fills and the output drain
        weight_words = fit.working_set.weight_words
        input_fills = dram_words - weight_words - ctx.out_shape.elements
        accesses = merge_accesses(
            {
                "input_loads": input_loads,
                "input_stores": max(0, input_fills),
                "weight_loads": weight_loads,
                "weight_stores": weight_words,
                "output_stores": output_stores,
                "output_loads": output_loads + ctx.out_shape.elements,
                "bias_loads": ctx.out_shape.depth,
            }
        )
        return ScheduleResult(
            scheme=self.name,
            layer_name=ctx.name,
            config=config,
            operations=operations,
            useful_macs=geom.macs,
            extra_adds=extra_adds,
            accesses=accesses,
            dram_words=dram_words,
            dma_cycles=fit.dma_cycles,
            input_layout=Layout.INTER,
            output_layout=Layout.INTER,
            fit=fit,
            notes={"passes": passes},
        )
