"""Kernel-partitioning scheme (Sec 4.2.1, Fig. 5, Algorithm 1) — the hybrid.

The k x k kernel is split into ``G = g*g`` sub-kernels of ``ks = s`` per side
(Eq. 2, :mod:`repro.tiling.partition`).  Each sub-kernel scans the padded
input with stride = window size, so adjacent windows never overlap: window
data is contiguous in the buffer, giving intra-kernel's reuse without its
alignment problem.

Mapping (Sec 4.2.1 last paragraph): the basic unit is one ``ks x ks``
window.  When ``Tin >= ks*ks`` multiple windows are mapped per operation
(``wpo = Tin // (ks*ks)`` windows, i.e. ``wpo`` output pixels advance at
once); when the sub-window exceeds ``Tin`` it takes ``ceil(ks*ks / Tin)``
operations.  ``Tout`` lanes compute ``Tout`` output maps sharing the window
data.

Accumulation follows Algorithm 1: sub-kernel ``i``'s partial map is
add-and-stored onto sub-kernel ``i-1``'s running sum in the output buffer
(lines 7-8), and the input-map loop rides the same mechanism — so the
output buffer sees ``G * d`` accumulation passes.  Cheap for bottom layers
(``d`` small), expensive for top layers (the paper: "partition ... is not
suitable for the top layers"), which is exactly why the adaptive scheme
exists.

The zero-padding overhead ``(g*ks)^2 / k^2`` appears in the cycle count
(padded weights are multiplied like real ones) but those pad multiplies are
*not* useful MACs, so reported utilization reflects it.
"""

from __future__ import annotations

import math

from repro.arch.config import AcceleratorConfig
from repro.errors import ScheduleError
from repro.nn.network import LayerContext
from repro.schemes.base import (
    ScheduleResult,
    Scheme,
    group_geometry,
    merge_accesses,
)
from repro.tiling.layout import Layout
from repro.tiling.partition import padded_input_extent, partition_geometry

__all__ = ["KernelPartitionScheme"]


class KernelPartitionScheme(Scheme):
    """The paper's kernel-partitioning hybrid (``partition`` series)."""

    name = "partition"

    def schedule(
        self, ctx: LayerContext, config: AcceleratorConfig
    ) -> ScheduleResult:
        geom = group_geometry(ctx)
        if geom.s >= geom.k:
            raise ScheduleError(
                f"{ctx.name}: partitioning needs stride < kernel "
                f"(k={geom.k}, s={geom.s}); use intra-kernel instead"
            )
        pgeom = partition_geometry(geom.k, geom.s)
        window = pgeom.sub_window_elements  # ks * ks
        pieces = pgeom.pieces  # G = g * g

        if window <= config.tin:
            windows_per_op = config.tin // window
            ops_per_scan = math.ceil(geom.out_pixels / windows_per_op)
        else:
            windows_per_op = 1
            ops_per_scan = geom.out_pixels * math.ceil(window / config.tin)

        dout_chunks = math.ceil(geom.dout_g / config.tout)
        # one scan of the output map per (piece, input map, Dout chunk)
        scans = pieces * geom.d * dout_chunks
        operations = geom.groups * scans * ops_per_scan

        # data: every window's ks*ks words per scan (contiguous, unit stride)
        input_loads = geom.groups * scans * geom.out_pixels * window
        # weights: one sub-kernel resident per scan — each (padded) weight
        # loaded once per Dout lane
        weight_loads = geom.groups * pieces * window * geom.d * geom.dout_g
        # Algorithm 1 lines 7-8: add-and-store per output pixel per pass;
        # passes = pieces * d (piece loop outer, map loop riding the same
        # accumulate-in-buffer mechanism)
        passes = pieces * geom.d
        output_stores = ctx.out_shape.elements * passes
        output_loads = ctx.out_shape.elements * (passes - 1)
        extra_adds = output_loads

        fit = self._fit(ctx, config)
        # off-chip input grows only by the partition zero-padding margin
        _, ph = padded_input_extent(
            ctx.in_shape.height, geom.k, geom.s, ctx.layer.pad
        )
        _, pw = padded_input_extent(
            ctx.in_shape.width, geom.k, geom.s, ctx.layer.pad
        )
        padded_input_words = ctx.in_shape.depth * ph * pw
        padded_weight_words = (
            geom.groups * pieces * window * geom.d * geom.dout_g
        )
        dram_words = (
            fit.total_traffic_words
            - fit.working_set.input_words
            + padded_input_words
            - fit.working_set.weight_words
            + padded_weight_words
        )
        dma_cycles = dram_words / config.dram_words_per_cycle

        # DMA-side: weight/input buffer fills and the output drain
        input_fills = dram_words - padded_weight_words - ctx.out_shape.elements
        accesses = merge_accesses(
            {
                "input_loads": input_loads,
                "input_stores": max(0, input_fills),
                "weight_loads": weight_loads,
                "weight_stores": padded_weight_words,
                "output_stores": output_stores,
                "output_loads": output_loads + ctx.out_shape.elements,
                "bias_loads": ctx.out_shape.depth,
            }
        )

        # useful MACs exclude multiplies against partition zero padding
        useful = geom.macs
        return ScheduleResult(
            scheme=self.name,
            layer_name=ctx.name,
            config=config,
            operations=operations,
            useful_macs=useful,
            extra_adds=extra_adds,
            accesses=accesses,
            dram_words=dram_words,
            dma_cycles=dma_cycles,
            input_layout=Layout.INTRA,
            output_layout=Layout.INTRA,
            fit=fit,
            notes={
                "pieces": pieces,
                "sub_kernel": pgeom.sub_kernel,
                "windows_per_op": windows_per_op,
                "pad_overhead": pgeom.pad_overhead,
            },
        )
