"""Scheme interface and the schedule-result record.

A *scheme* maps one convolutional layer onto the PE array and produces a
:class:`ScheduleResult`: array compute cycles, buffer word accesses, off-chip
traffic, and the layouts it consumes/produces.  Everything downstream
(planners, energy model, benchmarks) works from these records.

Timing model
------------
The array retires one operation per cycle (Table 3), so ``compute_cycles ==
operations``.  DMA and (for the unrolling realization) the host-side reshape
stream run concurrently with compute under double buffering, and the reshape
pipelines with the DMA strip-by-strip, so a layer's wall-clock is
``max(compute, dma, reshape)`` — a layer only slows down when it becomes
memory-bound, which is exactly the paper's VGG story.  Output *stores* are
"off the critical path" (Sec 4.2.2) and are charged to energy, not time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict

from repro.arch.buffers import AccessCounter
from repro.arch.config import AcceleratorConfig
from repro.errors import ScheduleError
from repro.nn.layers import ConvLayer
from repro.nn.network import LayerContext
from repro.tiling.fit import FitReport, analyze_fit
from repro.tiling.layout import Layout

__all__ = [
    "ScheduleResult",
    "Scheme",
    "GroupGeometry",
    "group_geometry",
    "merge_accesses",
]


@dataclass(frozen=True)
class GroupGeometry:
    """Per-group convolution geometry shared by every scheme.

    ``d`` is the effective input depth seen by one kernel (``in_maps /
    groups`` — 48 for AlexNet's grouped conv2, which is the figure the paper
    quotes), ``dout_g`` the output maps per group.
    """

    groups: int
    d: int
    dout_g: int
    ox: int
    oy: int
    k: int
    s: int

    @property
    def out_pixels(self) -> int:
        return self.ox * self.oy

    @property
    def macs(self) -> int:
        """Useful MACs across all groups."""
        return self.groups * self.out_pixels * self.k * self.k * self.d * self.dout_g


def group_geometry(ctx: LayerContext) -> GroupGeometry:
    """Extract the per-group geometry of a conv layer context."""
    layer = ctx.layer
    if not isinstance(layer, ConvLayer):
        raise ScheduleError(f"{ctx.name}: schemes schedule conv layers only")
    return GroupGeometry(
        groups=layer.groups,
        d=layer.in_maps // layer.groups,
        dout_g=layer.out_maps // layer.groups,
        ox=ctx.out_shape.width,
        oy=ctx.out_shape.height,
        k=layer.kernel,
        s=layer.stride,
    )


@dataclass
class ScheduleResult:
    """Activity record of one scheme on one layer.

    All counts are totals over the whole layer (all groups).
    """

    scheme: str
    layer_name: str
    config: AcceleratorConfig
    #: PE-array compute cycles (one operation per cycle)
    operations: int
    #: multiplies that produced a real output (<= operations * Tin * Tout)
    useful_macs: int
    #: extra adder ops for add-and-store accumulation (improved inter, partition)
    extra_adds: int
    #: per-buffer word access counters ("input"/"output"/"weight"/"bias")
    accesses: Dict[str, AccessCounter]
    #: off-chip words moved (compulsory + spill, including unroll inflation)
    dram_words: int
    #: cycles the DMA engines need for dram_words
    dma_cycles: float
    #: host-side data-reshape stream cycles (unrolling realization only)
    reshape_cycles: float = 0.0
    input_layout: Layout = Layout.INTRA
    output_layout: Layout = Layout.INTRA
    fit: FitReport = None  # type: ignore[assignment]
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def compute_cycles(self) -> int:
        return self.operations

    @property
    def stream_cycles(self) -> float:
        """Cycles of the memory side: DMA and host reshape pipeline strip-wise."""
        return max(self.dma_cycles, self.reshape_cycles)

    @property
    def total_cycles(self) -> float:
        """Wall-clock cycles.

        With double buffering (the default) compute and the memory streams
        overlap; with ``config.overlap_streams = False`` they serialize —
        the hardware the paper's tiling is designed to avoid."""
        if self.config.overlap_streams:
            return max(float(self.operations), self.stream_cycles)
        return float(self.operations) + self.stream_cycles

    @property
    def utilization(self) -> float:
        """Fraction of multiplier-cycles doing useful MACs."""
        peak = self.operations * self.config.multipliers
        if peak == 0:
            return 0.0
        return self.useful_macs / peak

    @property
    def buffer_accesses(self) -> int:
        """Total on-chip buffer word accesses (the Fig. 10 metric, in words)."""
        return sum(c.total for c in self.accesses.values())

    @property
    def buffer_access_bits(self) -> int:
        """Fig. 10's y-axis: access times weighted to bits (16-bit words)."""
        return self.buffer_accesses * self.config.word_bytes * 8

    def milliseconds(self) -> float:
        """Wall-clock at this configuration's frequency."""
        return self.config.cycles_to_ms(self.total_cycles)


def merge_accesses(*counts: Dict[str, int]) -> Dict[str, AccessCounter]:
    """Build an access dict from ``{"input_loads": n, "output_stores": m, ...}``.

    Helper used by the scheme implementations; keys are
    ``<buffer>_loads`` / ``<buffer>_stores``.
    """
    result: Dict[str, AccessCounter] = {
        name: AccessCounter() for name in ("input", "output", "weight", "bias")
    }
    for mapping in counts:
        for key, value in mapping.items():
            buffer_name, _, kind = key.rpartition("_")
            if buffer_name not in result or kind not in ("loads", "stores"):
                raise ScheduleError(f"bad access key {key!r}")
            if value < 0:
                raise ScheduleError(f"negative access count for {key!r}")
            if kind == "loads":
                result[buffer_name].loads += value
            else:
                result[buffer_name].stores += value
    return result


class Scheme(abc.ABC):
    """A data-level parallelization scheme (Sec. 4)."""

    #: short identifier used in reports ("inter", "intra", "partition", ...)
    name: str = "base"

    @abc.abstractmethod
    def schedule(
        self, ctx: LayerContext, config: AcceleratorConfig
    ) -> ScheduleResult:
        """Map ``ctx`` onto the array; raise :class:`ScheduleError` if illegal."""

    def supports(self, ctx: LayerContext, config: AcceleratorConfig) -> bool:
        """Whether this scheme can legally schedule the layer."""
        try:
            self.schedule(ctx, config)
            return True
        except ScheduleError:
            return False

    def _fit(self, ctx: LayerContext, config: AcceleratorConfig) -> FitReport:
        return analyze_fit(ctx, config)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<scheme {self.name}>"
