"""Parallelization schemes: inter, improved inter, intra, partition, ideal."""

from typing import Dict, List

from repro.errors import ConfigError
from repro.schemes.abft import AbftOverhead, abft_overhead
from repro.schemes.base import (
    GroupGeometry,
    ScheduleResult,
    Scheme,
    group_geometry,
    merge_accesses,
)
from repro.schemes.ideal import IdealScheme
from repro.schemes.inter import InterKernelScheme
from repro.schemes.inter_improved import ImprovedInterKernelScheme
from repro.schemes.intra import IntraKernelScheme
from repro.schemes.partition import KernelPartitionScheme
from repro.schemes.pe2d import Pe2dScheme

__all__ = [
    "AbftOverhead",
    "abft_overhead",
    "GroupGeometry",
    "ScheduleResult",
    "Scheme",
    "group_geometry",
    "merge_accesses",
    "IdealScheme",
    "InterKernelScheme",
    "ImprovedInterKernelScheme",
    "IntraKernelScheme",
    "KernelPartitionScheme",
    "Pe2dScheme",
    "make_scheme",
    "all_scheme_names",
]

_SCHEMES = {
    "ideal": IdealScheme,
    "inter": InterKernelScheme,
    "inter-improved": ImprovedInterKernelScheme,
    "intra": IntraKernelScheme,
    "partition": KernelPartitionScheme,
    # extension: analyzed in Sec 4.1.2 but not part of the paper's
    # evaluated policy set (see schemes/pe2d.py)
    "pe2d": Pe2dScheme,
}


def make_scheme(name: str) -> Scheme:
    """Instantiate a scheme by its report name."""
    try:
        return _SCHEMES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown scheme {name!r}; choose from {sorted(_SCHEMES)}"
        ) from None


def all_scheme_names() -> List[str]:
    """Names of every registered scheme."""
    return sorted(_SCHEMES)


def scheme_registry() -> Dict[str, type]:
    """The name -> class mapping (read-only copy)."""
    return dict(_SCHEMES)
