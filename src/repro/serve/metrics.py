"""SLO accounting: latency percentiles, goodput, shed rate, utilization.

The collector records one :class:`RequestRecord` per completed request and
one shed counter per dropped request, then reduces them into a plain-dict
summary that is stable enough to diff byte-for-byte: every float is rounded
to microsecond-ish precision and every mapping is emitted with sorted keys,
so two runs with the same seed produce identical JSON.

Glossary (all times in milliseconds unless suffixed otherwise):

* **latency** — arrival to completion (queue wait + service);
* **queue_wait** — arrival to batch dispatch;
* **service** — dispatch to completion (the batch's accelerator occupancy);
* **goodput_rps** — completed-within-deadline requests per second of
  simulated duration (shed and late answers do not count);
* **shed_rate** — shed requests over offered requests;
* **utilization** — accelerator busy time over ``replicas * makespan``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = ["RequestRecord", "percentile", "MetricsCollector", "to_json"]


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one completed request."""

    rid: int
    tenant: str
    network: str
    arrival_s: float
    start_s: float
    finish_s: float
    deadline_s: float
    batch_size: int
    replica: int

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.start_s

    @property
    def met_deadline(self) -> bool:
        return self.finish_s <= self.deadline_s


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def _round(x: float) -> float:
    return round(x, 6)


def _distribution_ms(values_s: Sequence[float]) -> Dict[str, float]:
    ms = [v * 1e3 for v in values_s]
    return {
        "mean": _round(sum(ms) / len(ms)) if ms else 0.0,
        "p50": _round(percentile(ms, 50)),
        "p95": _round(percentile(ms, 95)),
        "p99": _round(percentile(ms, 99)),
        "max": _round(max(ms)) if ms else 0.0,
    }


class MetricsCollector:
    """Accumulates completions and sheds; reduces to a summary dict."""

    def __init__(self) -> None:
        self.completed: List[RequestRecord] = []
        self.shed_counts: Dict[str, int] = {}
        self._shed_by_tenant: Dict[str, int] = {}
        self.failed_counts: Dict[str, int] = {}
        self._failed_by_tenant: Dict[str, int] = {}
        self.batch_sizes: List[int] = []

    # -- recording --------------------------------------------------------

    def record_completion(self, record: RequestRecord) -> None:
        self.completed.append(record)

    def record_batch(self, size: int) -> None:
        self.batch_sizes.append(size)

    def record_shed(self, tenant: str, reason: str) -> None:
        self.shed_counts[reason] = self.shed_counts.get(reason, 0) + 1
        self._shed_by_tenant[tenant] = self._shed_by_tenant.get(tenant, 0) + 1

    def record_failure(self, tenant: str, reason: str) -> None:
        """A request the tier gave up on (crash retries exhausted, no
        replicas left) — a *terminal* outcome distinct from shedding, so
        the offered == completed + shed + failed invariant always holds."""
        self.failed_counts[reason] = self.failed_counts.get(reason, 0) + 1
        self._failed_by_tenant[tenant] = self._failed_by_tenant.get(tenant, 0) + 1

    def merge(self, other: "MetricsCollector") -> None:
        """Fold another collector's records into this one.

        The tenancy layer serves co-resident partitions as independent
        lanes, one collector each, then merges them into one fleet-level
        summary.  Completions are re-sorted by request id afterwards (rids
        are globally unique per workload), so the merged summary is
        independent of lane order.
        """
        self.completed.extend(other.completed)
        self.completed.sort(key=lambda r: r.rid)
        self.batch_sizes.extend(other.batch_sizes)
        for reason, count in other.shed_counts.items():
            self.shed_counts[reason] = self.shed_counts.get(reason, 0) + count
        for tenant, count in other._shed_by_tenant.items():
            self._shed_by_tenant[tenant] = (
                self._shed_by_tenant.get(tenant, 0) + count
            )
        for reason, count in other.failed_counts.items():
            self.failed_counts[reason] = (
                self.failed_counts.get(reason, 0) + count
            )
        for tenant, count in other._failed_by_tenant.items():
            self._failed_by_tenant[tenant] = (
                self._failed_by_tenant.get(tenant, 0) + count
            )

    # -- reduction --------------------------------------------------------

    @property
    def shed_total(self) -> int:
        return sum(self.shed_counts.values())

    @property
    def failed_total(self) -> int:
        return sum(self.failed_counts.values())

    def _group_summary(
        self,
        records: Sequence[RequestRecord],
        shed: int,
        duration_s: float,
        failed: int = 0,
    ) -> Dict[str, object]:
        offered = len(records) + shed + failed
        within = sum(1 for r in records if r.met_deadline)
        return {
            "offered": offered,
            "completed": len(records),
            "shed": shed,
            "shed_rate": _round(shed / offered) if offered else 0.0,
            "failed": failed,
            "deadline_met": within,
            "deadline_hit_rate": _round(within / offered) if offered else 0.0,
            "goodput_rps": _round(within / duration_s) if duration_s else 0.0,
            "throughput_rps": _round(len(records) / duration_s) if duration_s else 0.0,
            "latency_ms": _distribution_ms([r.latency_s for r in records]),
            "queue_wait_ms": _distribution_ms([r.queue_wait_s for r in records]),
            "service_ms": _distribution_ms([r.service_s for r in records]),
        }

    def summary(
        self,
        duration_s: float,
        replicas: int,
        busy_s: float,
        makespan_s: Optional[float] = None,
    ) -> Dict[str, object]:
        """Reduce everything recorded into one deterministic dict."""
        if makespan_s is None:
            makespan_s = max(
                [duration_s] + [r.finish_s for r in self.completed]
            )
        total_wait = sum(r.queue_wait_s for r in self.completed)
        total_busy_req = sum(r.service_s for r in self.completed)
        denom = total_wait + total_busy_req
        tenants = sorted(
            {r.tenant for r in self.completed}
            | set(self._shed_by_tenant)
            | set(self._failed_by_tenant)
        )
        networks = sorted({r.network for r in self.completed})
        out: Dict[str, object] = self._group_summary(
            self.completed, self.shed_total, duration_s, self.failed_total
        )
        out.update(
            {
                "duration_s": _round(duration_s),
                "makespan_s": _round(makespan_s),
                "replicas": replicas,
                "utilization": _round(busy_s / (replicas * makespan_s))
                if makespan_s
                else 0.0,
                "queue_wait_fraction": _round(total_wait / denom) if denom else 0.0,
                "shed_by_reason": dict(sorted(self.shed_counts.items())),
                "failed_by_reason": dict(sorted(self.failed_counts.items())),
                "batches": len(self.batch_sizes),
                "mean_batch_size": _round(
                    sum(self.batch_sizes) / len(self.batch_sizes)
                )
                if self.batch_sizes
                else 0.0,
                "per_tenant": {
                    t: self._group_summary(
                        [r for r in self.completed if r.tenant == t],
                        self._shed_by_tenant.get(t, 0),
                        duration_s,
                        self._failed_by_tenant.get(t, 0),
                    )
                    for t in tenants
                },
                "per_network": {
                    n: self._group_summary(
                        [r for r in self.completed if r.network == n],
                        0,
                        duration_s,
                    )
                    for n in networks
                },
            }
        )
        return out


def to_json(summary: Dict[str, object]) -> str:
    """Canonical JSON rendering: sorted keys, stable layout, newline-terminated."""
    return json.dumps(summary, indent=2, sort_keys=True) + "\n"


def render_summary(summary: Dict[str, object]) -> str:
    """Human-readable digest of a serving summary (the CLI's default view)."""
    from repro.analysis.report import format_table

    eng = summary.get("engine", {})
    lines = [
        f"served {summary['completed']}/{summary['offered']} requests "
        f"({summary['shed']} shed) over {summary['duration_s']:g} s "
        f"on {eng.get('config', '?')} x{summary['replicas']} "
        f"[{eng.get('batching', '?')}, {eng.get('routing', '?')}]",
        f"goodput {summary['goodput_rps']:.1f} req/s "
        f"(deadline hit rate {summary['deadline_hit_rate']:.1%}), "
        f"utilization {summary['utilization']:.1%}, "
        f"mean batch {summary['mean_batch_size']:g} "
        f"over {summary['batches']} batches, "
        f"queue-wait fraction {summary['queue_wait_fraction']:.1%}",
        "",
    ]
    rows = []
    for tenant, group in sorted(summary["per_tenant"].items()):
        lat = group["latency_ms"]
        wait = group["queue_wait_ms"]
        rows.append(
            [
                tenant,
                str(group["offered"]),
                str(group["shed"]),
                f"{group['goodput_rps']:.1f}",
                f"{lat['p50']:.1f}",
                f"{lat['p95']:.1f}",
                f"{lat['p99']:.1f}",
                f"{wait['p95']:.1f}",
            ]
        )
    lines.append(
        format_table(
            [
                "tenant",
                "offered",
                "shed",
                "goodput/s",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "wait p95 ms",
            ],
            rows,
        )
    )
    return "\n".join(lines)
