"""Failover serving: health checking, fault-aware routing, retries, hedging.

The plain :class:`~repro.serve.engine.ServingEngine` assumes every replica
is immortal.  This module replays the same discrete-event semantics under
*injected replica faults*:

* **fail-stop** — a replica crashes at a scheduled instant and never
  returns.  Work in flight on it (and anything naively dispatched to it
  before the failure is noticed) is lost, detected, and retried on the
  survivors;
* **fail-slow** — a replica's service times multiply by ``factor`` for a
  window, the gray-failure mode that silently destroys tail latency.

A :class:`HealthChecker` models the detection loop: it probes on a fixed
interval, marks a crashed replica ``down`` at the first probe tick after
the crash, and marks a replica ``slow`` when its observed service time
exceeds the expected time by a threshold.  The fault-aware router excludes
``down`` replicas and (on ``least-loaded``) deprioritizes ``slow`` ones;
round-robin simply cycles over the replicas still believed alive.

Recovery semantics:

* requests lost to a crash re-enter the queue with **capped exponential
  backoff** (``min(cap, base * 2^(attempt-1))``) and a bounded retry
  budget; exhausting it fails the request *with a reason* — nothing is
  ever silently dropped (asserted by the accounting invariant
  ``offered == completed + shed + failed``);
* with :attr:`FailoverPolicy.hedge` enabled, a batch dispatched to a
  replica currently marked slow is duplicated onto an idle healthy
  replica; the first finisher wins and the loser's occupancy is charged
  as ``hedge_wasted``.

The *silent* fault the health checker cannot see — a replica corrupting
results while completing on time — is modeled on top of the same loop:
:class:`~repro.serve.verified.SDCFault` windows corrupt dispatched
batches, a :class:`~repro.serve.verified.VerificationPolicy` runs the
ABFT check of :mod:`repro.integrity` on every batch (paying its modeled
latency overhead), detections recompute in place (the batch completes
late but correct), and a replica that trips the drain threshold is
marked ``slow`` *sticky* — quarantined, so completions can't flip it
back — which drains it through routing exactly like a fail-slow one.

All of it is driven by simulated time only, so a run is a deterministic
function of (workload, faults, policies) — the chaos scenarios in
:mod:`repro.resilience.scenarios` rely on that to emit byte-stable JSON.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.perf.instrument import phase
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.engine import ServingReport, ROUTING_KINDS
from repro.serve.metrics import MetricsCollector, RequestRecord
from repro.serve.queue import AdmissionQueue, QueuePolicy
from repro.serve.verified import SDCFault, VerificationPolicy, VerifiedReplica
from repro.serve.workload import Request

__all__ = [
    "ReplicaFault",
    "FaultyReplica",
    "FailoverPolicy",
    "HealthChecker",
    "FailoverEngine",
    "FAULT_KINDS",
    "REPLICA_STATUSES",
    "FAILED_RETRIES",
    "FAILED_NO_REPLICAS",
]

FAULT_KINDS = ("crash", "slow")
REPLICA_STATUSES = ("up", "slow", "down")

#: failure reasons, the keys of the ``failed_by_reason`` breakdown
FAILED_RETRIES = "retries_exhausted"
FAILED_NO_REPLICAS = "no_replicas"


@dataclass(frozen=True)
class ReplicaFault:
    """One scheduled replica fault.

    ``crash`` is fail-stop: permanent from ``time_s`` on (``factor`` and
    ``duration_s`` are ignored).  ``slow`` multiplies the replica's service
    times by ``factor`` for ``duration_s`` seconds starting at ``time_s``.
    """

    kind: str
    replica: int
    time_s: float
    factor: float = 1.0
    duration_s: float = math.inf

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if isinstance(self.replica, bool) or not isinstance(self.replica, int):
            raise ConfigError(
                f"fault replica must be an int, got {self.replica!r}"
            )
        if self.replica < 0:
            raise ConfigError(
                f"fault replica must be >= 0, got {self.replica!r}"
            )
        if math.isnan(self.time_s) or self.time_s < 0:
            raise ConfigError(f"fault time must be >= 0, got {self.time_s!r}")
        if self.kind == "slow":
            if math.isnan(self.factor) or self.factor < 1:
                raise ConfigError(
                    f"slow factor must be >= 1, got {self.factor!r}"
                )
            if math.isnan(self.duration_s) or self.duration_s <= 0:
                raise ConfigError(
                    f"slow duration must be positive, got {self.duration_s!r}"
                )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "replica": self.replica,
            "time_ms": round(self.time_s * 1e3, 6),
        }
        if self.kind == "slow":
            out["factor"] = round(self.factor, 6)
            out["duration_ms"] = (
                "inf"
                if math.isinf(self.duration_s)
                else round(self.duration_s * 1e3, 6)
            )
        return out


@dataclass(frozen=True)
class FailoverPolicy:
    """Detection, retry, and hedging knobs of the failover tier."""

    #: health probe period; a crash is noticed at the first probe tick
    #: strictly after it happens
    detect_interval_s: float = 0.05
    #: retry budget per request beyond the first attempt
    max_retries: int = 2
    #: capped exponential backoff before a retry re-enters the queue
    backoff_base_ms: float = 5.0
    backoff_cap_ms: float = 80.0
    #: duplicate batches dispatched to slow-marked replicas onto a healthy
    #: idle one (first finisher wins)
    hedge: bool = False
    #: observed/expected service ratio at which a replica is marked slow
    slow_threshold: float = 1.5

    def __post_init__(self) -> None:
        if not self.detect_interval_s > 0 or math.isinf(self.detect_interval_s):
            raise ConfigError(
                f"detect_interval_s must be positive and finite, "
                f"got {self.detect_interval_s!r}"
            )
        if isinstance(self.max_retries, bool) or not isinstance(
            self.max_retries, int
        ):
            raise ConfigError(
                f"max_retries must be an int, got {self.max_retries!r}"
            )
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries!r}"
            )
        if not self.backoff_base_ms >= 0:
            raise ConfigError(
                f"backoff_base_ms must be >= 0, got {self.backoff_base_ms!r}"
            )
        if not self.backoff_cap_ms >= self.backoff_base_ms:
            raise ConfigError(
                f"backoff_cap_ms must be >= backoff_base_ms, "
                f"got {self.backoff_cap_ms!r} < {self.backoff_base_ms!r}"
            )
        if not self.slow_threshold > 1:
            raise ConfigError(
                f"slow_threshold must be > 1, got {self.slow_threshold!r}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) re-queues."""
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt!r}")
        return min(self.backoff_cap_ms, self.backoff_base_ms * 2 ** (attempt - 1)) / 1e3

    def describe(self) -> str:
        return (
            f"failover(detect={self.detect_interval_s * 1e3:g}ms, "
            f"retries={self.max_retries}, "
            f"backoff={self.backoff_base_ms:g}..{self.backoff_cap_ms:g}ms"
            + (", hedged" if self.hedge else "")
            + ")"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "detect_interval_ms": round(self.detect_interval_s * 1e3, 6),
            "max_retries": self.max_retries,
            "backoff_base_ms": round(self.backoff_base_ms, 6),
            "backoff_cap_ms": round(self.backoff_cap_ms, 6),
            "hedge": self.hedge,
            "slow_threshold": round(self.slow_threshold, 6),
        }


class HealthChecker:
    """Tracks each replica's believed status and the transition timeline.

    The checker sees only what a real one could: completion latencies
    (compared against the planner's expected service time) and probe
    timeouts.  A crash at ``t`` is *believed* only at the first probe tick
    strictly after ``t`` — the window in between is exactly where doomed
    dispatches happen.
    """

    def __init__(self, n_replicas: int, policy: FailoverPolicy) -> None:
        self.policy = policy
        self._status: Dict[int, str] = {rid: "up" for rid in range(n_replicas)}
        #: replicas slow-marked sticky (SDC drain): completions can't revive
        self._quarantined: Set[int] = set()
        #: (time_s, rid, new status) transitions, in occurrence order
        self.timeline: List[Tuple[float, int, str]] = []

    def status(self, rid: int) -> str:
        return self._status[rid]

    def is_down(self, rid: int) -> bool:
        return self._status[rid] == "down"

    def is_slow(self, rid: int) -> bool:
        return self._status[rid] == "slow"

    def alive_rids(self) -> List[int]:
        """Replicas not believed down, in rid order."""
        return sorted(r for r, s in self._status.items() if s != "down")

    def detection_time(self, crash_s: float) -> float:
        """First probe tick strictly after the crash instant."""
        k = math.floor(crash_s / self.policy.detect_interval_s) + 1
        return k * self.policy.detect_interval_s

    def _transition(self, t: float, rid: int, status: str) -> None:
        if self._status[rid] != status:
            self._status[rid] = status
            self.timeline.append((t, rid, status))

    def mark_down(self, t: float, rid: int) -> None:
        self._transition(t, rid, "down")

    def mark_slow(self, t: float, rid: int, sticky: bool = False) -> None:
        """Force a slow mark; ``sticky`` quarantines the replica.

        A quarantined replica stays ``slow`` no matter how fast its later
        completions look — the drain path for repeated SDC detections,
        where the replica's *timing* is fine but its silicon is not to be
        trusted.
        """
        if self._status[rid] == "down":
            return
        if sticky:
            self._quarantined.add(rid)
        self._transition(t, rid, "slow")

    def observe_completion(
        self, t: float, rid: int, observed_s: float, expected_s: float
    ) -> None:
        """Classify a replica from one completed batch's service time."""
        if self._status[rid] == "down" or rid in self._quarantined:
            return
        if expected_s > 0 and observed_s >= self.policy.slow_threshold * expected_s:
            self._transition(t, rid, "slow")
        else:
            self._transition(t, rid, "up")

    def timeline_dicts(self) -> List[Dict[str, object]]:
        return [
            {"time_ms": round(t * 1e3, 6), "replica": rid, "status": status}
            for t, rid, status in self.timeline
        ]


@dataclass
class FaultyReplica:
    """One replica's occupancy plus its fault bookkeeping."""

    rid: int
    free_at: float = 0.0
    busy_s: float = 0.0
    batches: int = 0
    completed: int = 0
    crashed_at: Optional[float] = None
    detected: bool = False
    slow_from: float = math.inf
    slow_until: float = -math.inf
    slow_factor: float = 1.0
    inflight: Optional["_BatchJob"] = None

    def crashed_by(self, t: float) -> bool:
        return self.crashed_at is not None and self.crashed_at <= t

    def service_multiplier(self, t: float) -> float:
        """The fail-slow multiplier in force at dispatch time ``t``."""
        if self.slow_from <= t < self.slow_until:
            return self.slow_factor
        return 1.0

    def detail(self, makespan_s: float, status: str) -> Dict[str, object]:
        return {
            "rid": self.rid,
            "busy_ms": round(self.busy_s * 1e3, 6),
            "batches": self.batches,
            "completed": self.completed,
            "utilization": round(self.busy_s / makespan_s, 6)
            if makespan_s
            else 0.0,
            "status": status,
            "crashed_ms": round(self.crashed_at * 1e3, 6)
            if self.crashed_at is not None
            else None,
        }


@dataclass
class _BatchJob:
    """One dispatched batch, possibly running on two replicas (hedge)."""

    requests: List[Request]
    network: str
    dispatched_at: float
    expected_s: float
    done: bool = field(default=False)
    #: silently corrupted by the SDC window of replica ``sdc_rid``; the
    #: corruption only materializes if that replica's run wins
    corrupted: bool = False
    #: the ABFT check will flag the corruption on completion
    sdc_detected: bool = False
    sdc_rid: int = -1


class FailoverEngine:
    """Discrete-event serving simulator with replica fault injection.

    The interface mirrors :class:`~repro.serve.engine.ServingEngine`; the
    extra inputs are ``faults`` (the replica fault schedule) and
    ``failover_policy``.  ``service_windows`` applies a global service-time
    multiplier over ``[start, end)`` windows — the hook the chaos runner
    uses to model a degraded/flapping shared interconnect under a sharded
    deployment.
    """

    def __init__(
        self,
        config: AcceleratorConfig,
        batch_policy: BatchPolicy = BatchPolicy(),
        queue_policy: QueuePolicy = QueuePolicy(),
        replicas: int = 1,
        routing: str = "round-robin",
        plan_policy: str = "adaptive-2",
        coster: Optional[BatchCoster] = None,
        faults: Sequence[ReplicaFault] = (),
        failover_policy: FailoverPolicy = FailoverPolicy(),
        service_windows: Sequence[Tuple[float, float, float]] = (),
        sdc_faults: Sequence[SDCFault] = (),
        verification: Optional[VerificationPolicy] = None,
    ) -> None:
        if isinstance(replicas, bool) or not isinstance(replicas, int):
            raise ConfigError(
                f"replicas must be an int, got {replicas!r} "
                f"({type(replicas).__name__})"
            )
        if replicas <= 0:
            raise ConfigError(f"replicas must be positive, got {replicas!r}")
        if routing not in ROUTING_KINDS:
            raise ConfigError(
                f"unknown routing {routing!r}; choose from {ROUTING_KINDS}"
            )
        for fault in faults:
            if fault.replica >= replicas:
                raise ConfigError(
                    f"fault targets replica {fault.replica} but the tier "
                    f"has only {replicas} replicas"
                )
        for sdc in sdc_faults:
            if sdc.replica >= replicas:
                raise ConfigError(
                    f"SDC fault targets replica {sdc.replica} but the tier "
                    f"has only {replicas} replicas"
                )
        for start, end, mult in service_windows:
            if not end > start:
                raise ConfigError(
                    f"service window must have end > start, got "
                    f"[{start!r}, {end!r})"
                )
            if not mult >= 1:
                raise ConfigError(
                    f"service multiplier must be >= 1, got {mult!r}"
                )
        self.config = config
        self.batch_policy = batch_policy
        self.queue_policy = queue_policy
        self.n_replicas = replicas
        self.routing = routing
        self.plan_policy = plan_policy
        self.coster = coster or BatchCoster(config, policy=plan_policy)
        self.faults = tuple(sorted(faults, key=lambda f: (f.time_s, f.replica)))
        self.failover_policy = failover_policy
        self.service_windows = tuple(
            sorted((float(s), float(e), float(m)) for s, e, m in service_windows)
        )
        self.sdc_faults = tuple(
            sorted(sdc_faults, key=lambda f: (f.time_s, f.replica))
        )
        self.verification = verification

    # -- helpers -----------------------------------------------------------

    def _window_multiplier(self, t: float) -> float:
        mult = 1.0
        for start, end, m in self.service_windows:
            if start <= t < end:
                mult = max(mult, m)
        return mult

    def _ready_candidates(
        self, queue: AdmissionQueue
    ) -> List[Tuple[float, float, str]]:
        out = []
        for net in queue.networks():
            oldest = queue.oldest_arrival(net)
            ready = self.batch_policy.ready_time(oldest, queue.depth(net))
            out.append((ready, oldest, net))
        out.sort()
        return out

    def _pick_replica(
        self, states: List[FaultyReplica], health: HealthChecker, rr_last: int
    ) -> Optional[FaultyReplica]:
        """The replica the next dispatch would use, or ``None`` if all down.

        Round-robin cycles over the replicas not believed down, resuming
        after the last dispatched rid.  Least-loaded picks the earliest
        free believed-alive replica, deprioritizing slow-marked ones and
        breaking ties on rid — deterministic by construction.
        """
        alive = [states[r] for r in health.alive_rids()]
        if not alive:
            return None
        if self.routing == "round-robin":
            for s in alive:
                if s.rid > rr_last:
                    return s
            return alive[0]
        return min(alive, key=lambda s: (s.free_at, health.is_slow(s.rid), s.rid))

    # -- the event loop ----------------------------------------------------

    def run(
        self,
        requests: Sequence[Request],
        duration_s: float,
        extra_meta: Optional[Dict[str, object]] = None,
    ) -> ServingReport:
        """Simulate serving ``requests`` under the injected fault schedule.

        Every offered request terminates exactly once: completed, shed
        (queue policy), or failed with a reason (retry budget exhausted,
        or no replicas left alive).
        """
        if duration_s <= 0:
            raise ConfigError(f"duration must be positive, got {duration_s!r}")
        with phase("serve_failover_run"):
            return self._run(list(requests), duration_s, extra_meta)

    def _run(
        self,
        requests: List[Request],
        duration_s: float,
        extra_meta: Optional[Dict[str, object]],
    ) -> ServingReport:
        policy = self.failover_policy
        requests.sort(key=lambda r: (r.arrival_s, r.rid))
        queue = AdmissionQueue(self.queue_policy)
        metrics = MetricsCollector()
        health = HealthChecker(self.n_replicas, policy)
        states = [FaultyReplica(rid) for rid in range(self.n_replicas)]
        attempts: Dict[int, int] = {}
        #: (available_at, request) retries waiting out their backoff
        retry_pool: List[Tuple[float, Request]] = []
        retries_scheduled = 0
        hedges = 0
        hedge_wasted_s = 0.0
        rr_last = -1
        ver = self.verification
        checking = ver is not None and ver.enabled
        vreps = [VerifiedReplica(rid) for rid in range(self.n_replicas)]
        # one seeded stream per SDC window, consumed in dispatch order —
        # corruption and detection rolls are deterministic by construction
        sdc_rngs = [
            random.Random(fault.seed + 7919 * idx)
            for idx, fault in enumerate(self.sdc_faults)
        ]

        def fail(request: Request, reason: str) -> None:
            metrics.record_failure(request.tenant, reason)

        def lose_job(job: _BatchJob, t: float) -> None:
            """Drain a lost batch to retries / failures (crash recovery)."""
            nonlocal retries_scheduled
            if job.done:
                return
            job.done = True
            for request in job.requests:
                attempt = attempts.get(request.rid, 0) + 1
                attempts[request.rid] = attempt
                if attempt > policy.max_retries:
                    fail(request, FAILED_RETRIES)
                else:
                    retries_scheduled += 1
                    retry_pool.append((t + policy.backoff_s(attempt), request))
            retry_pool.sort(key=lambda e: (e[0], e[1].rid))

        fault_idx = 0
        i = 0
        n = len(requests)
        t = 0.0
        while True:
            # -- next event time ----------------------------------------
            next_times: List[float] = []
            if i < n:
                next_times.append(requests[i].arrival_s)
            if fault_idx < len(self.faults):
                next_times.append(self.faults[fault_idx].time_s)
            if retry_pool:
                next_times.append(retry_pool[0][0])
            for s in states:
                if s.inflight is not None and not s.crashed_by(s.free_at):
                    next_times.append(s.free_at)  # a live completion
                if s.crashed_at is not None and not s.detected:
                    next_times.append(health.detection_time(s.crashed_at))
            if len(queue):
                pick = self._pick_replica(states, health, rr_last)
                if pick is not None:
                    ready = self._ready_candidates(queue)[0][0]
                    dispatch_at = max(ready, pick.free_at)
                    if not math.isinf(dispatch_at):
                        next_times.append(dispatch_at)
            next_times = [x for x in next_times if not math.isinf(x)]
            if not next_times:
                break
            t = max(t, min(next_times))

            # -- 1. faults scheduled at or before t ---------------------
            while fault_idx < len(self.faults) and self.faults[fault_idx].time_s <= t:
                fault = self.faults[fault_idx]
                fault_idx += 1
                s = states[fault.replica]
                if fault.kind == "crash":
                    if s.crashed_at is None:
                        s.crashed_at = fault.time_s
                        if s.inflight is not None:
                            # it will never report the completion: appears
                            # busy until the probe loop notices the crash
                            s.free_at = math.inf
                else:
                    s.slow_from = fault.time_s
                    s.slow_until = fault.time_s + fault.duration_s
                    s.slow_factor = fault.factor

            # -- 2. completions on live replicas ------------------------
            for s in states:
                if s.inflight is None or s.free_at > t:
                    continue
                if s.crashed_by(s.free_at):
                    continue  # died mid-batch; recovered at detection
                job = s.inflight
                s.inflight = None
                service = s.free_at - job.dispatched_at
                if job.done:
                    # the hedge twin finished first; this run was wasted
                    hedge_wasted_s += service
                    continue
                job.done = True
                s.completed += len(job.requests)
                health.observe_completion(s.free_at, s.rid, service, job.expected_s)
                vrep = vreps[s.rid]
                if checking:
                    vrep.checked_batches += 1
                if job.corrupted and job.sdc_rid == s.rid:
                    # the corrupting replica's run won; the check (if any)
                    # already shaped this batch's service time at dispatch
                    vrep.corrupted_batches += 1
                    if job.sdc_detected:
                        vrep.detected += 1
                        vrep.corrected += 1
                        if (
                            ver is not None
                            and vrep.detected >= ver.drain_threshold
                            and not vrep.drained
                        ):
                            vrep.drained_at = s.free_at
                            health.mark_slow(s.free_at, s.rid, sticky=True)
                    else:
                        vrep.escaped_batches += 1
                        vrep.escaped_requests += len(job.requests)
                metrics.record_batch(len(job.requests))
                for request in job.requests:
                    metrics.record_completion(
                        RequestRecord(
                            rid=request.rid,
                            tenant=request.tenant,
                            network=request.network,
                            arrival_s=request.arrival_s,
                            start_s=job.dispatched_at,
                            finish_s=s.free_at,
                            deadline_s=request.deadline_s,
                            batch_size=len(job.requests),
                            replica=s.rid,
                        )
                    )

            # -- 3. crash detections ------------------------------------
            for s in states:
                if (
                    s.crashed_at is not None
                    and not s.detected
                    and health.detection_time(s.crashed_at) <= t
                ):
                    s.detected = True
                    detect_t = health.detection_time(s.crashed_at)
                    health.mark_down(detect_t, s.rid)
                    if s.inflight is not None:
                        lose_job(s.inflight, detect_t)
                        s.inflight = None
                    s.free_at = math.inf

            # -- 4. arrivals at or before t -----------------------------
            while i < n and requests[i].arrival_s <= t:
                request = requests[i]
                shed = queue.offer(request, request.arrival_s)
                if shed is not None:
                    metrics.record_shed(request.tenant, shed.reason)
                i += 1

            # -- 5. retries whose backoff expired -----------------------
            while retry_pool and retry_pool[0][0] <= t:
                _, request = retry_pool.pop(0)
                shed = queue.offer(request, t)
                if shed is not None:
                    metrics.record_shed(request.tenant, shed.reason)

            # -- 6. dispatch everything dispatchable at t ---------------
            while len(queue):
                replica = self._pick_replica(states, health, rr_last)
                if replica is None or replica.free_at > t:
                    break
                ready, _, network = self._ready_candidates(queue)[0]
                if ready > t:
                    break
                batch, shed_events = queue.pop_batch(
                    network, self.batch_policy.max_batch, t
                )
                for event in shed_events:
                    metrics.record_shed(event.request.tenant, event.reason)
                if not batch:
                    continue
                expected = self.coster.batch_seconds(network, len(batch))
                expected *= self._window_multiplier(t)
                if checking:
                    # every batch pays the ABFT checksum passes
                    expected *= ver.latency_overhead
                job = _BatchJob(
                    requests=batch,
                    network=network,
                    dispatched_at=t,
                    expected_s=expected,
                )
                # SDC windows corrupt at dispatch; detection is decided
                # here too so hedging/crash races can't skew the streams
                for idx, sdc in enumerate(self.sdc_faults):
                    if sdc.replica != replica.rid or not sdc.active_at(t):
                        continue
                    if sdc_rngs[idx].random() < sdc.per_batch:
                        job.corrupted = True
                        job.sdc_rid = replica.rid
                        if checking:
                            job.sdc_detected = (
                                ver.detection_rate >= 1.0
                                or sdc_rngs[idx].random() < ver.detection_rate
                            )
                rr_last = replica.rid
                if replica.crashed_by(t):
                    # a doomed dispatch into the detection window: the
                    # batch is lost; recovery happens at the probe tick
                    replica.inflight = job
                    replica.free_at = math.inf
                    continue
                service = expected * replica.service_multiplier(t)
                if job.corrupted and job.sdc_detected:
                    # detect-and-recompute: only the flagged partial maps
                    # re-execute, so the surcharge is a fraction, not 2x
                    service *= 1.0 + ver.recompute_overhead
                replica.inflight = job
                replica.free_at = t + service
                replica.busy_s += service
                replica.batches += 1
                if (
                    policy.hedge
                    and health.is_slow(replica.rid)
                    and len(health.alive_rids()) > 1
                ):
                    twin = self._hedge_target(states, health, replica.rid, t)
                    if twin is not None:
                        hedges += 1
                        twin_service = expected * twin.service_multiplier(t)
                        twin.inflight = job
                        twin.free_at = t + twin_service
                        twin.busy_s += twin_service
                        twin.batches += 1

        # -- drain: everything still queued has nowhere to run ----------
        leftovers: List[Request] = [r for _, r in retry_pool]
        while len(queue):
            for network in queue.networks():
                batch, shed_events = queue.pop_batch(network, len(queue), t)
                for event in shed_events:
                    metrics.record_shed(event.request.tenant, event.reason)
                leftovers.extend(batch)
        for request in sorted(leftovers, key=lambda r: r.rid):
            fail(request, FAILED_NO_REPLICAS)

        busy_s = sum(s.busy_s for s in states)
        summary = metrics.summary(duration_s, self.n_replicas, busy_s)
        summary["per_replica"] = [
            s.detail(summary["makespan_s"], health.status(s.rid)) for s in states
        ]
        summary["terminated"] = (
            summary["completed"] + summary["shed"] + summary["failed"]
        )
        summary["failover"] = {
            "policy": policy.to_dict(),
            "faults": [f.to_dict() for f in self.faults],
            "retries": retries_scheduled,
            "hedges": hedges,
            "hedge_wasted_ms": round(hedge_wasted_s * 1e3, 6),
            "health_timeline": health.timeline_dicts(),
            "service_windows": [
                {
                    "start_ms": round(s * 1e3, 6),
                    "end_ms": round(e * 1e3, 6),
                    "multiplier": round(m, 6),
                }
                for s, e, m in self.service_windows
            ],
        }
        if ver is not None or self.sdc_faults:
            corrupted = sum(v.corrupted_batches for v in vreps)
            detected = sum(v.detected for v in vreps)
            summary["integrity"] = {
                "policy": ver.to_dict() if ver is not None else None,
                "sdc_faults": [f.to_dict() for f in self.sdc_faults],
                "checked_batches": sum(v.checked_batches for v in vreps),
                "corrupted_batches": corrupted,
                "detected": detected,
                "corrected": sum(v.corrected for v in vreps),
                "escaped_batches": sum(v.escaped_batches for v in vreps),
                "escaped_requests": sum(v.escaped_requests for v in vreps),
                "detection_rate": round(detected / corrupted, 6)
                if corrupted
                else None,
                "drained_replicas": [v.rid for v in vreps if v.drained],
                "per_replica": [v.detail() for v in vreps],
            }
        summary["engine"] = {
            "config": self.config.name,
            "plan_policy": self.plan_policy,
            "batching": self.batch_policy.describe(),
            "max_batch": self.batch_policy.max_batch,
            "max_wait_ms": self.batch_policy.max_wait_ms,
            "queue_depth": self.queue_policy.max_depth,
            "queue_order": self.queue_policy.order,
            "routing": self.routing,
            "failover": policy.describe(),
        }
        if extra_meta:
            summary["workload"] = dict(sorted(extra_meta.items()))
        return ServingReport(summary=summary, metrics=metrics, replicas=list(states))

    def _hedge_target(
        self,
        states: List[FaultyReplica],
        health: HealthChecker,
        primary: int,
        t: float,
    ) -> Optional[FaultyReplica]:
        """An idle, believed-healthy replica to duplicate a batch onto."""
        for rid in health.alive_rids():
            if rid == primary or health.is_slow(rid):
                continue
            s = states[rid]
            if s.inflight is None and s.free_at <= t and not s.crashed_by(t):
                return s
        return None
