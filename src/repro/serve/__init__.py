"""Multi-tenant inference serving simulator (``repro serve``).

The paper evaluates single forward passes; a deployed accelerator instead
sees an open-loop stream of requests from many tenants, and its scheduling
decisions are stressed by queueing, batching and overload — exactly the
regime where batch-1 FC layers being DMA-bound (Sec. 5) turns into tail
latency.  This package layers a discrete-event serving tier on top of the
existing planning machinery:

- :mod:`repro.serve.workload` — seeded Poisson/bursty/trace request
  generators over a mix of zoo networks;
- :mod:`repro.serve.queue` — bounded admission queue with FIFO/EDF
  ordering and age/deadline load shedding;
- :mod:`repro.serve.batcher` — max-batch + max-wait dynamic batch
  formation, costed through :func:`repro.adaptive.batch.plan_batch` (and
  therefore through the schedule cache);
- :mod:`repro.serve.engine` — the event loop over one or more accelerator
  replicas with round-robin or least-loaded routing;
- :mod:`repro.serve.metrics` — per-tenant/per-network latency percentiles,
  queue-wait vs. compute breakdown, goodput, shed rate and utilization,
  exportable as byte-stable JSON;
- :mod:`repro.serve.failover` — the fault-aware tier: replica fail-stop /
  fail-slow injection, health checking, retry with capped exponential
  backoff, hedging, and drain-to-survivors (driven by
  :mod:`repro.resilience`);
- :mod:`repro.serve.verified` — verified inference: per-batch ABFT checks
  (:class:`~repro.serve.verified.VerificationPolicy`), silent-data-
  corruption windows (:class:`~repro.serve.verified.SDCFault`), and
  per-replica detected/corrected/escaped bookkeeping
  (:class:`~repro.serve.verified.VerifiedReplica`);
- :mod:`repro.serve.candidates` — the shared candidate-evaluation path
  (build replica groups → serve the common workload → rank) behind
  ``cluster.compare_deployments``/``compare_compositions``,
  ``tenancy.compare_fleets`` and the ``repro.capacity`` planner.

See ``docs/serving.md`` for the queueing model and the metrics glossary.
"""

from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.candidates import (
    build_replica_set,
    evaluate_candidate,
    rank_candidates,
)
from repro.serve.engine import (
    AdaptiveReplica,
    AdaptiveServingEngine,
    ReplicaState,
    ServingEngine,
    ServingReport,
    ROUTING_KINDS,
)
from repro.serve.failover import (
    FAULT_KINDS,
    FailoverEngine,
    FailoverPolicy,
    FaultyReplica,
    HealthChecker,
    ReplicaFault,
)
from repro.serve.metrics import (
    MetricsCollector,
    RequestRecord,
    percentile,
    render_summary,
    to_json,
)
from repro.serve.queue import AdmissionQueue, QueuePolicy, ShedEvent, QUEUE_ORDERS
from repro.serve.verified import SDCFault, VerificationPolicy, VerifiedReplica
from repro.serve.workload import (
    ARRIVAL_KINDS,
    Request,
    TenantSpec,
    bursty_arrivals,
    diurnal_arrivals,
    diurnal_rate,
    parse_mix,
    poisson_arrivals,
    trace_arrivals,
)

__all__ = [
    "ARRIVAL_KINDS",
    "AdaptiveReplica",
    "AdaptiveServingEngine",
    "AdmissionQueue",
    "BatchCoster",
    "BatchPolicy",
    "FAULT_KINDS",
    "FailoverEngine",
    "FailoverPolicy",
    "FaultyReplica",
    "HealthChecker",
    "ReplicaFault",
    "MetricsCollector",
    "QUEUE_ORDERS",
    "QueuePolicy",
    "ROUTING_KINDS",
    "ReplicaState",
    "Request",
    "RequestRecord",
    "SDCFault",
    "ServingEngine",
    "ServingReport",
    "ShedEvent",
    "TenantSpec",
    "VerificationPolicy",
    "VerifiedReplica",
    "build_replica_set",
    "bursty_arrivals",
    "diurnal_arrivals",
    "evaluate_candidate",
    "diurnal_rate",
    "parse_mix",
    "percentile",
    "poisson_arrivals",
    "rank_candidates",
    "render_summary",
    "to_json",
    "trace_arrivals",
]
