"""The serving event loop: arrivals → queue → batches → replicas → metrics.

A :class:`ServingEngine` advances *simulated accelerator time* (seconds)
through exactly two kinds of events — a request arriving, and a batch
becoming dispatchable on an available replica — so a run is a deterministic
function of (workload, policies, config).  Batch service time comes from
the planned :class:`~repro.adaptive.batch.BatchRun` for that (network,
batch size) pair via :class:`~repro.serve.batcher.BatchCoster`; no wall
clock is ever consulted.

Replicas model independent accelerator instances sharing the admission
queue.  Two routing disciplines:

* ``round-robin`` — strict turn order: the next batch waits for the next
  replica in the cycle, even if another is already idle (simple, fair,
  and the baseline a smarter router must beat);
* ``least-loaded`` — the batch goes to the replica that frees up
  earliest (ties broken by replica id, for determinism).

The loop drains the queue after the last arrival, so every admitted
request is either completed or shed by the time :meth:`ServingEngine.run`
returns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.perf.instrument import phase
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.metrics import MetricsCollector, RequestRecord, to_json
from repro.serve.queue import AdmissionQueue, QueuePolicy
from repro.serve.workload import Request

__all__ = [
    "AdaptiveReplica",
    "AdaptiveServingEngine",
    "ReplicaState",
    "ServingEngine",
    "ServingReport",
    "per_chip_rollup",
    "ROUTING_KINDS",
]

ROUTING_KINDS = ("round-robin", "least-loaded")


@dataclass
class ReplicaState:
    """One accelerator instance's occupancy bookkeeping.

    A replica may be tagged with the physical ``chip`` hosting it — two
    replicas sharing a chip model co-resident partitions
    (:mod:`repro.tenancy`), and ``chip_share`` is the fraction of that
    chip's compute the replica owns (1.0 for a whole chip).  Untagged
    replicas behave exactly as before; the tag only adds accounting.
    """

    rid: int
    free_at: float = 0.0
    busy_s: float = 0.0
    batches: int = 0
    completed: int = 0
    chip: Optional[str] = None
    chip_share: float = 1.0

    def detail(self, makespan_s: float) -> Dict[str, object]:
        """JSON-friendly per-replica stats (the health checker's input)."""
        out = {
            "rid": self.rid,
            "busy_ms": round(self.busy_s * 1e3, 6),
            "batches": self.batches,
            "completed": self.completed,
            "utilization": round(self.busy_s / makespan_s, 6)
            if makespan_s
            else 0.0,
        }
        if self.chip is not None:
            out["chip"] = self.chip
            out["chip_share"] = round(self.chip_share, 6)
        return out


def _apply_chip_tags(
    replicas: Sequence[ReplicaState],
    chip_map: Optional[Dict[int, str]],
    chip_shares: Optional[Dict[int, float]],
) -> None:
    """Annotate replicas with their hosting chip (validated)."""
    if chip_shares and not chip_map:
        raise ConfigError("chip_shares requires chip_map")
    if not chip_map:
        return
    rids = {r.rid for r in replicas}
    for rid in sorted(chip_map):
        if rid not in rids:
            raise ConfigError(
                f"chip_map names unknown replica rid {rid!r}; "
                f"valid rids: {sorted(rids)}"
            )
    for rid, share in sorted((chip_shares or {}).items()):
        if rid not in chip_map:
            raise ConfigError(
                f"chip_shares names rid {rid!r} that has no chip_map entry"
            )
        if not 0 < share <= 1:
            raise ConfigError(
                f"chip share for rid {rid!r} must be in (0, 1], got {share!r}"
            )
    for replica in replicas:
        chip = chip_map.get(replica.rid)
        if chip is not None:
            replica.chip = chip
            replica.chip_share = (chip_shares or {}).get(replica.rid, 1.0)


def per_chip_rollup(
    replicas: Sequence[ReplicaState],
    chip_spans: Dict[str, float],
) -> Dict[str, Dict[str, object]]:
    """Aggregate chip-tagged replicas by physical chip, counted once.

    ``chip_spans`` maps each chip to the seconds it was provisioned
    (makespan for a static fleet, the co-resident lifetime envelope for an
    adaptive one).  Co-resident partitions contribute their busy time
    weighted by their ``chip_share``, so a chip whose two half-partitions
    are both saturated reports utilization 1.0 — and its chip-seconds are
    charged once, not once per partition.
    """
    chips: Dict[str, Dict[str, object]] = {}
    for replica in sorted(replicas, key=lambda r: r.rid):
        if replica.chip is None:
            continue
        entry = chips.setdefault(
            replica.chip,
            {"replicas": [], "busy_ms": 0.0, "weighted_busy_s": 0.0},
        )
        entry["replicas"].append(replica.rid)
        entry["busy_ms"] += replica.busy_s * 1e3
        entry["weighted_busy_s"] += replica.busy_s * replica.chip_share
    out: Dict[str, Dict[str, object]] = {}
    for chip in sorted(chips):
        entry = chips[chip]
        span = chip_spans.get(chip, 0.0)
        out[chip] = {
            "replicas": entry["replicas"],
            "busy_ms": round(entry["busy_ms"], 6),
            "chip_seconds": round(span, 6),
            "utilization": round(entry["weighted_busy_s"] / span, 6)
            if span
            else 0.0,
        }
    return out


class _Router:
    """Picks the replica the next batch will run on."""

    def __init__(self, replicas: List[ReplicaState], kind: str) -> None:
        if kind not in ROUTING_KINDS:
            raise ConfigError(
                f"unknown routing {kind!r}; choose from {ROUTING_KINDS}"
            )
        # normalize to rid order so routing never depends on how the
        # caller happened to build the list
        self.replicas = sorted(replicas, key=lambda r: r.rid)
        self.kind = kind
        self._next = 0

    def peek(self) -> ReplicaState:
        """The replica the next dispatch would use (no state change).

        Least-loaded ties (equal ``free_at``) always resolve to the lowest
        replica index — two equally-loaded replicas must route the same
        way on every run.
        """
        if self.kind == "round-robin":
            return self.replicas[self._next]
        return min(self.replicas, key=lambda r: (r.free_at, r.rid))

    def commit(self) -> None:
        """Advance the turn after a dispatch actually happened."""
        if self.kind == "round-robin":
            self._next = (self._next + 1) % len(self.replicas)


@dataclass
class ServingReport:
    """Everything one simulated run produced."""

    summary: Dict[str, object]
    metrics: MetricsCollector
    replicas: List[ReplicaState] = field(default_factory=list)

    def to_json(self) -> str:
        """Canonical JSON of the summary (byte-stable across reruns)."""
        return to_json(self.summary)


class ServingEngine:
    """Discrete-event simulator of a multi-tenant serving tier."""

    def __init__(
        self,
        config: AcceleratorConfig,
        batch_policy: BatchPolicy = BatchPolicy(),
        queue_policy: QueuePolicy = QueuePolicy(),
        replicas: int = 1,
        routing: str = "round-robin",
        plan_policy: str = "adaptive-2",
        coster: Optional[BatchCoster] = None,
        replica_costers: Optional[Sequence[BatchCoster]] = None,
        chip_map: Optional[Dict[int, str]] = None,
        chip_shares: Optional[Dict[int, float]] = None,
    ) -> None:
        if isinstance(replicas, bool) or not isinstance(replicas, int):
            raise ConfigError(
                f"replicas must be an int, got {replicas!r} "
                f"({type(replicas).__name__})"
            )
        if replicas <= 0:
            raise ConfigError(f"replicas must be positive, got {replicas!r}")
        if routing not in ROUTING_KINDS:
            raise ConfigError(
                f"unknown routing {routing!r}; choose from {ROUTING_KINDS}"
            )
        if replica_costers is not None and len(replica_costers) != replicas:
            raise ConfigError(
                f"replica_costers has {len(replica_costers)} entries for "
                f"{replicas} replicas; one coster per replica (rid order)"
            )
        self.config = config
        self.batch_policy = batch_policy
        self.queue_policy = queue_policy
        self.n_replicas = replicas
        self.routing = routing
        self.plan_policy = plan_policy
        self.coster = coster or BatchCoster(config, policy=plan_policy)
        #: heterogeneous fleets: per-rid coster overrides (mixed chip
        #: classes, partitions); rid order, None entries fall back
        self.replica_costers = (
            list(replica_costers) if replica_costers is not None else None
        )
        self.chip_map = dict(chip_map) if chip_map else None
        self.chip_shares = dict(chip_shares) if chip_shares else None

    # -- the event loop ---------------------------------------------------

    def run(
        self,
        requests: Sequence[Request],
        duration_s: float,
        extra_meta: Optional[Dict[str, object]] = None,
    ) -> ServingReport:
        """Simulate serving ``requests`` and reduce the result to a report.

        ``duration_s`` is the offered-load window (rate denominators);
        the loop itself runs past it until the queue fully drains.
        """
        if duration_s <= 0:
            raise ConfigError(f"duration must be positive, got {duration_s!r}")
        with phase("serve_run"):
            return self._run(list(requests), duration_s, extra_meta)

    def _ready_candidates(
        self, queue: AdmissionQueue
    ) -> List[Tuple[float, float, str]]:
        """(ready_time, oldest_arrival, network) per non-empty group, sorted."""
        out = []
        for net in queue.networks():
            oldest = queue.oldest_arrival(net)
            ready = self.batch_policy.ready_time(oldest, queue.depth(net))
            out.append((ready, oldest, net))
        out.sort()
        return out

    def _run(
        self,
        requests: List[Request],
        duration_s: float,
        extra_meta: Optional[Dict[str, object]],
    ) -> ServingReport:
        requests.sort(key=lambda r: (r.arrival_s, r.rid))
        queue = AdmissionQueue(self.queue_policy)
        metrics = MetricsCollector()
        replicas = [ReplicaState(rid) for rid in range(self.n_replicas)]
        _apply_chip_tags(replicas, self.chip_map, self.chip_shares)
        router = _Router(replicas, self.routing)

        t = 0.0
        i = 0
        n = len(requests)
        while i < n or len(queue):
            # -- advance to the next event ------------------------------
            next_times: List[float] = []
            if i < n:
                next_times.append(requests[i].arrival_s)
            if len(queue):
                ready = self._ready_candidates(queue)[0][0]
                next_times.append(max(ready, router.peek().free_at))
            t = max(t, min(next_times))

            # -- ingest every arrival at or before t --------------------
            while i < n and requests[i].arrival_s <= t:
                request = requests[i]
                shed = queue.offer(request, request.arrival_s)
                if shed is not None:
                    metrics.record_shed(request.tenant, shed.reason)
                i += 1

            # -- dispatch everything dispatchable at t ------------------
            while len(queue):
                replica = router.peek()
                if replica.free_at > t:
                    break
                ready, _, network = self._ready_candidates(queue)[0]
                if ready > t:
                    break
                batch, shed_events = queue.pop_batch(
                    network, self.batch_policy.max_batch, t
                )
                for event in shed_events:
                    metrics.record_shed(event.request.tenant, event.reason)
                if not batch:
                    continue
                coster = self.coster
                if self.replica_costers is not None:
                    override = self.replica_costers[replica.rid]
                    if override is not None:
                        coster = override
                service = coster.batch_seconds(network, len(batch))
                finish = t + service
                replica.free_at = finish
                replica.busy_s += service
                replica.batches += 1
                replica.completed += len(batch)
                router.commit()
                metrics.record_batch(len(batch))
                for request in batch:
                    metrics.record_completion(
                        RequestRecord(
                            rid=request.rid,
                            tenant=request.tenant,
                            network=request.network,
                            arrival_s=request.arrival_s,
                            start_s=t,
                            finish_s=finish,
                            deadline_s=request.deadline_s,
                            batch_size=len(batch),
                            replica=replica.rid,
                        )
                    )

        busy_s = sum(r.busy_s for r in replicas)
        summary = metrics.summary(duration_s, self.n_replicas, busy_s)
        summary["per_replica"] = [
            r.detail(summary["makespan_s"]) for r in replicas
        ]
        if any(r.chip is not None for r in replicas):
            makespan = summary["makespan_s"]
            spans = {
                r.chip: makespan for r in replicas if r.chip is not None
            }
            summary["per_chip"] = per_chip_rollup(replicas, spans)
        summary["engine"] = {
            "config": self.config.name,
            "plan_policy": self.plan_policy,
            "batching": self.batch_policy.describe(),
            "max_batch": self.batch_policy.max_batch,
            "max_wait_ms": self.batch_policy.max_wait_ms,
            "queue_depth": self.queue_policy.max_depth,
            "queue_order": self.queue_policy.order,
            "routing": self.routing,
        }
        if extra_meta:
            summary["workload"] = dict(sorted(extra_meta.items()))
        return ServingReport(summary=summary, metrics=metrics, replicas=replicas)


@dataclass
class AdaptiveReplica(ReplicaState):
    """A replica whose membership in the fleet can change mid-run."""

    #: simulated instant the replica joined the fleet
    added_s: float = 0.0
    #: set when the replica leaves (drain/scale-down); the chip is held
    #: until in-flight work finishes, so this is ``max(drain time, free_at)``
    retired_s: Optional[float] = None
    #: gray-failure injection: ``(from_s, until_s, factor)`` windows; a
    #: dispatch at ``t`` pays the worst factor of every window containing it
    slow_windows: List[Tuple[float, float, float]] = field(default_factory=list)
    #: set when the replica fail-stopped (vs an orderly drain)
    crashed: bool = False
    #: hardware self-report of a partial PE failure: ``{"masked_cols",
    #: "masked_rows", "from_s"}`` plus ``"replanned"`` once healed — the
    #: health probe's input, opaque to the engine itself
    degraded: Optional[Dict[str, object]] = None

    @property
    def active(self) -> bool:
        """Eligible for new dispatches (not retired, not draining)."""
        return self.retired_s is None

    def service_multiplier(self, t: float) -> float:
        worst = 1.0
        for from_s, until_s, factor in self.slow_windows:
            if from_s <= t < until_s:
                worst = max(worst, factor)
        return worst

    def lifetime_s(self, end_s: float) -> float:
        """Chip-seconds this replica was provisioned for."""
        end = self.retired_s if self.retired_s is not None else end_s
        return max(0.0, end - self.added_s)

    def detail(self, makespan_s: float) -> Dict[str, object]:
        out = super().detail(makespan_s)
        out["added_ms"] = round(self.added_s * 1e3, 6)
        out["retired_ms"] = (
            round(self.retired_s * 1e3, 6) if self.retired_s is not None else None
        )
        life = self.lifetime_s(makespan_s)
        out["utilization"] = round(self.busy_s / life, 6) if life else 0.0
        if self.crashed:
            out["crashed"] = True
        return out


class AdaptiveServingEngine:
    """A :class:`ServingEngine` whose fleet and batcher change mid-run.

    This is the actuation surface of the :mod:`repro.control` autoscaler.
    The one-shot ``run()`` loop is split into a resident event loop that a
    controller steps at *epoch boundaries*:

    * :meth:`ingest` feeds (time-sorted) requests into the arrival stream;
    * :meth:`advance_to` runs arrivals/dispatches/completions up to a
      simulated instant and stops — the epoch boundary;
    * :meth:`add_replica` / :meth:`drain_replica` / :meth:`set_batch_policy`
      mutate the fleet and the batcher between epochs.  A drained replica
      takes no new work and releases its chip once in-flight work finishes;
      new replicas join with a fresh, never-reused rid;
    * :meth:`finish` drains everything left and reduces to a
      :class:`ServingReport` whose ``fleet`` section carries chip-seconds,
      the resize timeline, and per-replica lifetimes.

    Routing follows the failover engine's dynamic-membership semantics:
    round-robin cycles over the *active* rids (resuming after the last
    dispatched one), least-loaded picks the earliest-free active replica
    with ties to the lowest rid.  With a fixed fleet both degenerate to the
    static engine's behavior.  Everything remains a deterministic function
    of (workload, actions, config): no wall clock, no unordered state.
    """

    def __init__(
        self,
        config: AcceleratorConfig,
        batch_policy: BatchPolicy = BatchPolicy(),
        queue_policy: QueuePolicy = QueuePolicy(),
        replicas: int = 1,
        routing: str = "round-robin",
        plan_policy: str = "adaptive-2",
        coster: Optional[BatchCoster] = None,
        replica_costers: Optional[Sequence[BatchCoster]] = None,
        chip_map: Optional[Dict[int, str]] = None,
        chip_shares: Optional[Dict[int, float]] = None,
    ) -> None:
        if isinstance(replicas, bool) or not isinstance(replicas, int):
            raise ConfigError(
                f"replicas must be an int, got {replicas!r} "
                f"({type(replicas).__name__})"
            )
        if replicas <= 0:
            raise ConfigError(f"replicas must be positive, got {replicas!r}")
        if routing not in ROUTING_KINDS:
            raise ConfigError(
                f"unknown routing {routing!r}; choose from {ROUTING_KINDS}"
            )
        if replica_costers is not None and len(replica_costers) != replicas:
            raise ConfigError(
                f"replica_costers has {len(replica_costers)} entries for "
                f"{replicas} replicas; one coster per replica (rid order)"
            )
        self.config = config
        self.batch_policy = batch_policy
        self.queue_policy = queue_policy
        self.routing = routing
        self.plan_policy = plan_policy
        self.coster = coster or BatchCoster(config, policy=plan_policy)
        self.replicas: List[AdaptiveReplica] = [
            AdaptiveReplica(rid) for rid in range(replicas)
        ]
        _apply_chip_tags(self.replicas, chip_map, chip_shares)
        #: per-rid coster overrides (mixed fleets); missing rids fall back
        self._replica_costers: Dict[int, BatchCoster] = {}
        if replica_costers is not None:
            for rid, override in enumerate(replica_costers):
                if override is not None:
                    self._replica_costers[rid] = override
        self._next_rid = replicas
        self._queue = AdmissionQueue(queue_policy)
        self.metrics = MetricsCollector()
        self._pending: List[Request] = []
        self._pi = 0
        self._now = 0.0
        self._rr_last = -1
        #: (rid, dispatch_s, finish_s) of every batch, for windowed
        #: utilization accounting in the detector
        self.busy_intervals: List[Tuple[int, float, float]] = []
        #: (time_s, event, rid-or-None, detail) fleet/batcher change log
        self.fleet_events: List[Tuple[float, str, Optional[int], str]] = []
        #: armed fail-stops, (at_s, rid, reason) sorted by time
        self._crashes: List[Tuple[float, int, str]] = []
        #: fleet-wide (from_s, until_s, factor) service windows (link faults)
        self._service_windows: List[Tuple[float, float, float]] = []

    # -- fleet state -------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def offered(self) -> int:
        """Requests whose arrival the loop has processed so far."""
        return self._pi

    def queue_depth(self) -> int:
        return len(self._queue)

    def active_replicas(self) -> List[AdaptiveReplica]:
        return [r for r in self.replicas if r.active]

    def n_active(self) -> int:
        return sum(1 for r in self.replicas if r.active)

    def chip_seconds(self, end_s: float) -> float:
        return sum(r.lifetime_s(end_s) for r in self.replicas)

    # -- actuation ---------------------------------------------------------

    def ingest(self, requests: Sequence[Request]) -> None:
        """Append arrivals to the stream (must not predate current time)."""
        fresh = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
        if fresh and fresh[0].arrival_s < self._now:
            raise ConfigError(
                f"cannot ingest an arrival at {fresh[0].arrival_s!r}s: the "
                f"loop has already advanced to {self._now!r}s"
            )
        if self._pending[self._pi :] and fresh:
            tail = self._pending[-1].arrival_s
            if fresh[0].arrival_s < tail:
                raise ConfigError(
                    f"ingested arrivals start at {fresh[0].arrival_s!r}s, "
                    f"before the pending stream's tail at {tail!r}s"
                )
        self._pending.extend(fresh)

    def add_replica(
        self,
        chip: Optional[str] = None,
        chip_share: float = 1.0,
        coster: Optional[BatchCoster] = None,
    ) -> int:
        """Provision one replica now; returns its (never-reused) rid.

        ``chip``/``chip_share`` tag the replica with its hosting chip for
        shared-chip accounting (a partition joining an already-provisioned
        chip), and ``coster`` overrides the fleet coster so mixed chip
        classes can scale side by side.
        """
        if not 0 < chip_share <= 1:
            raise ConfigError(
                f"chip_share must be in (0, 1], got {chip_share!r}"
            )
        rid = self._next_rid
        self._next_rid += 1
        state = AdaptiveReplica(rid, free_at=self._now, added_s=self._now)
        if chip is not None:
            state.chip = chip
            state.chip_share = chip_share
        self.replicas.append(state)
        if coster is not None:
            self._replica_costers[rid] = coster
        self.fleet_events.append(
            (self._now, "add", rid, chip if chip is not None else "")
        )
        return rid

    def drain_replica(self, rid: int, reason: str = "scale-down") -> float:
        """Stop scheduling onto ``rid``; the chip is released when idle.

        Returns the retirement instant (``max(now, free_at)``).  Draining
        the last active replica is refused — queued work would be stranded.
        """
        state = next((r for r in self.replicas if r.rid == rid), None)
        if state is None:
            raise ConfigError(f"unknown replica rid {rid!r}")
        if not state.active:
            raise ConfigError(f"replica {rid} is already retired")
        if self.n_active() <= 1:
            raise ConfigError(
                "cannot drain the last active replica; queued work would "
                "be stranded"
            )
        state.retired_s = max(self._now, state.free_at)
        self.fleet_events.append((self._now, "drain", rid, reason))
        return state.retired_s

    def set_batch_policy(self, policy: BatchPolicy, reason: str = "retune") -> None:
        """Swap the live batching knobs; applies to every later dispatch."""
        if not isinstance(policy, BatchPolicy):
            raise ConfigError(
                f"expected a BatchPolicy, got {type(policy).__name__}"
            )
        if policy != self.batch_policy:
            self.fleet_events.append(
                (self._now, "retune", None, policy.describe())
            )
        self.batch_policy = policy

    def set_slow(self, rid: int, factor: float, from_s: float, until_s: float) -> None:
        """Inject a fail-slow window (the control plane's health stimulus).

        Windows accumulate: a replica can degrade more than once, and a
        dispatch inside overlapping windows pays the worst factor.
        """
        if factor < 1:
            raise ConfigError(f"slow factor must be >= 1, got {factor!r}")
        if not until_s > from_s:
            raise ConfigError(
                f"slow window must have until > from, got [{from_s!r}, {until_s!r})"
            )
        state = next((r for r in self.replicas if r.rid == rid), None)
        if state is None:
            raise ConfigError(f"unknown replica rid {rid!r}")
        state.slow_windows.append((from_s, until_s, factor))

    def schedule_crash(self, rid: int, at_s: float, reason: str = "crash") -> None:
        """Arm a fail-stop at ``at_s``: no new work after that instant.

        Fail-stop is batch-boundary: the in-flight batch (if any) completes
        and its completions stand, but nothing dispatches onto the replica
        at or after the crash instant.  Unlike :meth:`drain_replica` a crash
        may take out the last active replica — requests still queued when
        the fleet hits zero are accounted as failed at :meth:`finish`.
        """
        if math.isnan(at_s) or math.isinf(at_s) or at_s < 0:
            raise ConfigError(
                f"crash time must be finite and >= 0, got {at_s!r}"
            )
        state = next((r for r in self.replicas if r.rid == rid), None)
        if state is None:
            raise ConfigError(f"unknown replica rid {rid!r}")
        if any(c_rid == rid for _, c_rid, _ in self._crashes):
            raise ConfigError(f"replica {rid} already has a crash scheduled")
        self._crashes.append((at_s, rid, reason))
        self._crashes.sort(key=lambda c: (c[0], c[1]))

    def add_service_window(
        self, from_s: float, until_s: float, factor: float
    ) -> None:
        """A fleet-wide service-time window (a degraded interconnect).

        Every dispatch inside ``[from_s, until_s)`` pays ``factor`` on top
        of any per-replica slowdown — link faults hit all replicas at once,
        replica faults hit one.
        """
        if factor < 1:
            raise ConfigError(f"service factor must be >= 1, got {factor!r}")
        if not until_s > from_s:
            raise ConfigError(
                f"service window must have until > from, "
                f"got [{from_s!r}, {until_s!r})"
            )
        self._service_windows.append((from_s, until_s, factor))

    def _fleet_multiplier(self, t: float) -> float:
        worst = 1.0
        for from_s, until_s, factor in self._service_windows:
            if from_s <= t < until_s:
                worst = max(worst, factor)
        return worst

    def mark_degraded(
        self,
        rid: int,
        masked_cols: int,
        masked_rows: int,
        factor: float,
        from_s: float,
    ) -> None:
        """A partial PE failure self-reported by the hardware at ``from_s``.

        Until someone replans, the replica serves its *healthy* schedule on
        fewer lanes — a naive proportional slowdown of ``factor`` — and the
        mask geometry is visible to health probes via ``replica.degraded``.
        :meth:`heal_degraded` ends the naive window and swaps in a coster
        planned for the degraded geometry (Algorithm 2's answer).
        """
        if factor < 1:
            raise ConfigError(f"degrade factor must be >= 1, got {factor!r}")
        if math.isnan(from_s) or math.isinf(from_s) or from_s < 0:
            raise ConfigError(
                f"degrade time must be finite and >= 0, got {from_s!r}"
            )
        state = next((r for r in self.replicas if r.rid == rid), None)
        if state is None:
            raise ConfigError(f"unknown replica rid {rid!r}")
        if state.degraded is not None:
            raise ConfigError(f"replica {rid} is already degraded")
        state.degraded = {
            "masked_cols": masked_cols,
            "masked_rows": masked_rows,
            "from_s": from_s,
            "replanned": False,
        }
        state.slow_windows.append((from_s, math.inf, factor))
        self.fleet_events.append(
            (
                from_s,
                "degrade",
                rid,
                f"pe-mask cols={masked_cols} rows={masked_rows} "
                f"naive x{factor:g}",
            )
        )

    def heal_degraded(self, rid: int, coster: BatchCoster, note: str = "") -> None:
        """Replace a degraded replica's naive slowdown with a replanned coster.

        The open degrade window is truncated at the current instant and
        later dispatches are costed by ``coster`` (the degraded-geometry
        schedule), so healing takes effect exactly at the epoch boundary
        the controller applied it.
        """
        state = next((r for r in self.replicas if r.rid == rid), None)
        if state is None:
            raise ConfigError(f"unknown replica rid {rid!r}")
        if state.degraded is None:
            raise ConfigError(f"replica {rid} is not degraded")
        if state.degraded.get("replanned"):
            raise ConfigError(f"replica {rid} is already replanned")
        from_s = float(state.degraded["from_s"])
        for i, (a, b, factor) in enumerate(state.slow_windows):
            if a == from_s and math.isinf(b):
                state.slow_windows[i] = (a, max(a, self._now), factor)
                break
        state.degraded["replanned"] = True
        self._replica_costers[rid] = coster
        self.fleet_events.append(
            (self._now, "replan", rid, note or coster.config.name)
        )

    def set_replica_coster(
        self, rid: int, coster: BatchCoster, note: str = ""
    ) -> None:
        """Override one replica's batch-cost model from now on."""
        state = next((r for r in self.replicas if r.rid == rid), None)
        if state is None:
            raise ConfigError(f"unknown replica rid {rid!r}")
        self._replica_costers[rid] = coster
        self.fleet_events.append(
            (self._now, "recoster", rid, note or coster.config.name)
        )

    def coster_for(self, rid: int) -> BatchCoster:
        """The cost model pricing ``rid``'s batches (override or fleet)."""
        return self._replica_costers.get(rid, self.coster)

    # -- the resident event loop -------------------------------------------

    def _apply_crashes(self, up_to: float) -> None:
        """Fail-stop every armed crash at or before ``up_to``."""
        while self._crashes and self._crashes[0][0] <= up_to:
            at_s, rid, reason = self._crashes.pop(0)
            state = next((r for r in self.replicas if r.rid == rid), None)
            if state is None or not state.active:
                continue  # already drained/retired; the crash is moot
            state.crashed = True
            state.retired_s = max(at_s, state.free_at)
            self.fleet_events.append((at_s, "crash", rid, reason))

    def _pick(self) -> Optional[AdaptiveReplica]:
        """The active replica the next dispatch would use (deterministic)."""
        active = self.active_replicas()
        if not active:
            return None
        if self.routing == "round-robin":
            for state in active:
                if state.rid > self._rr_last:
                    return state
            return active[0]
        return min(active, key=lambda r: (r.free_at, r.rid))

    def _ready_candidates(self) -> List[Tuple[float, float, str]]:
        out = []
        for net in self._queue.networks():
            oldest = self._queue.oldest_arrival(net)
            ready = self.batch_policy.ready_time(oldest, self._queue.depth(net))
            out.append((ready, oldest, net))
        out.sort()
        return out

    def advance_to(self, t_end: float) -> None:
        """Run the event loop up to simulated time ``t_end`` and stop.

        Every arrival at or before ``t_end`` is ingested (admitted or
        shed), and every dispatch whose instant is at or before ``t_end``
        happens; nothing later does.  Idempotent for the same ``t_end``.
        """
        if t_end < self._now:
            raise ConfigError(
                f"cannot advance to {t_end!r}s: already at {self._now!r}s"
            )
        n = len(self._pending)
        self._apply_crashes(self._now)
        while True:
            next_times: List[float] = []
            if self._pi < n:
                next_times.append(self._pending[self._pi].arrival_s)
            if len(self._queue):
                pick = self._pick()
                if pick is not None:
                    ready = self._ready_candidates()[0][0]
                    next_times.append(max(ready, pick.free_at))
            if not next_times:
                break
            t = max(self._now, min(next_times))
            # an armed crash before the next event changes who is eligible
            # to dispatch — fail-stop first, then recompute the event
            if self._crashes and self._crashes[0][0] <= min(t, t_end):
                self._now = max(self._now, self._crashes[0][0])
                self._apply_crashes(self._now)
                continue
            if t > t_end:
                break
            self._now = t

            while self._pi < n and self._pending[self._pi].arrival_s <= t:
                request = self._pending[self._pi]
                shed = self._queue.offer(request, request.arrival_s)
                if shed is not None:
                    self.metrics.record_shed(request.tenant, shed.reason)
                self._pi += 1

            while len(self._queue):
                replica = self._pick()
                if replica is None or replica.free_at > t:
                    break
                ready, _, network = self._ready_candidates()[0]
                if ready > t:
                    break
                batch, shed_events = self._queue.pop_batch(
                    network, self.batch_policy.max_batch, t
                )
                for event in shed_events:
                    self.metrics.record_shed(event.request.tenant, event.reason)
                if not batch:
                    continue
                coster = self._replica_costers.get(replica.rid, self.coster)
                service = coster.batch_seconds(network, len(batch))
                service *= replica.service_multiplier(t)
                service *= self._fleet_multiplier(t)
                finish = t + service
                replica.free_at = finish
                replica.busy_s += service
                replica.batches += 1
                replica.completed += len(batch)
                self._rr_last = replica.rid
                self.busy_intervals.append((replica.rid, t, finish))
                self.metrics.record_batch(len(batch))
                for request in batch:
                    self.metrics.record_completion(
                        RequestRecord(
                            rid=request.rid,
                            tenant=request.tenant,
                            network=request.network,
                            arrival_s=request.arrival_s,
                            start_s=t,
                            finish_s=finish,
                            deadline_s=request.deadline_s,
                            batch_size=len(batch),
                            replica=replica.rid,
                        )
                    )
        self._apply_crashes(t_end)
        if t_end > self._now and not math.isinf(t_end):
            self._now = t_end

    def busy_overlap(self, start_s: float, end_s: float) -> Dict[int, float]:
        """Per-replica busy seconds clipped to ``[start_s, end_s)``."""
        out: Dict[int, float] = {}
        for rid, s, e in self.busy_intervals:
            lo = max(s, start_s)
            hi = min(e, end_s)
            if hi > lo:
                out[rid] = out.get(rid, 0.0) + (hi - lo)
        return out

    def provisioned_overlap(self, start_s: float, end_s: float) -> float:
        """Fleet chip-seconds provisioned within ``[start_s, end_s)``."""
        total = 0.0
        for r in self.replicas:
            lo = max(r.added_s, start_s)
            hi = min(r.retired_s if r.retired_s is not None else end_s, end_s)
            if hi > lo:
                total += hi - lo
        return total

    def finish(
        self,
        duration_s: float,
        extra_meta: Optional[Dict[str, object]] = None,
    ) -> ServingReport:
        """Drain everything outstanding and reduce to a report."""
        if duration_s <= 0:
            raise ConfigError(f"duration must be positive, got {duration_s!r}")
        with phase("serve_adaptive_finish"):
            self.advance_to(math.inf)
        if len(self._queue) and not self.active_replicas():
            # every replica crashed: queued work cannot terminate normally,
            # but it must still terminate — offered == completed+shed+failed
            # is the zero-silent-drop invariant the chaos runner enforces
            for net in list(self._queue.networks()):
                while self._queue.depth(net):
                    batch, shed_events = self._queue.pop_batch(
                        net, max(1, self._queue.depth(net)), self._now
                    )
                    for event in shed_events:
                        self.metrics.record_shed(
                            event.request.tenant, event.reason
                        )
                    for request in batch:
                        self.metrics.record_failure(
                            request.tenant, "no_active_replica"
                        )
        makespan_s = max(
            [duration_s] + [r.finish_s for r in self.metrics.completed]
        )
        busy_s = sum(r.busy_s for r in self.replicas)
        peak = _peak_fleet_size(self.replicas)
        summary = self.metrics.summary(
            duration_s, peak, busy_s, makespan_s=makespan_s
        )
        chip_s = self.chip_seconds(makespan_s)
        summary["utilization"] = round(busy_s / chip_s, 6) if chip_s else 0.0
        summary["per_replica"] = [
            r.detail(makespan_s) for r in self.replicas
        ]
        if any(r.chip is not None for r in self.replicas):
            # a chip is held from its first co-resident partition's arrival
            # to its last one's retirement — charged once, not per replica
            windows: Dict[str, Tuple[float, float]] = {}
            for r in self.replicas:
                if r.chip is None:
                    continue
                end = r.retired_s if r.retired_s is not None else makespan_s
                lo, hi = windows.get(r.chip, (math.inf, 0.0))
                windows[r.chip] = (min(lo, r.added_s), max(hi, end))
            chip_spans = {
                chip: max(0.0, hi - lo) for chip, (lo, hi) in windows.items()
            }
            summary["per_chip"] = per_chip_rollup(self.replicas, chip_spans)
        summary["fleet"] = {
            "chip_seconds": round(chip_s, 6),
            "peak_replicas": peak,
            "final_replicas": self.n_active(),
            "events": [
                {
                    "time_ms": round(t * 1e3, 6),
                    "event": event,
                    "replica": rid,
                    "detail": detail,
                }
                for t, event, rid, detail in self.fleet_events
            ],
        }
        summary["engine"] = {
            "config": self.config.name,
            "plan_policy": self.plan_policy,
            "batching": self.batch_policy.describe(),
            "max_batch": self.batch_policy.max_batch,
            "max_wait_ms": self.batch_policy.max_wait_ms,
            "queue_depth": self.queue_policy.max_depth,
            "queue_order": self.queue_policy.order,
            "routing": self.routing,
            "adaptive": True,
        }
        if extra_meta:
            summary["workload"] = dict(sorted(extra_meta.items()))
        return ServingReport(
            summary=summary, metrics=self.metrics, replicas=list(self.replicas)
        )

    def run(
        self,
        requests: Sequence[Request],
        duration_s: float,
        extra_meta: Optional[Dict[str, object]] = None,
    ) -> ServingReport:
        """One-shot convenience: ingest, drain, report (no mid-run actions)."""
        self.ingest(requests)
        return self.finish(duration_s, extra_meta)


def _peak_fleet_size(replicas: Sequence[AdaptiveReplica]) -> int:
    """Max simultaneously-provisioned replicas over the run."""
    events: List[Tuple[float, int]] = []
    for r in replicas:
        events.append((r.added_s, 1))
        if r.retired_s is not None:
            events.append((r.retired_s, -1))
    # retirements before additions at the same instant: a drain+add swap
    # at one epoch boundary holds peak-1 chips, not peak+1
    events.sort(key=lambda e: (e[0], e[1]))
    peak = count = 0
    for _, delta in events:
        count += delta
        peak = max(peak, count)
    return peak
