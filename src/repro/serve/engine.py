"""The serving event loop: arrivals → queue → batches → replicas → metrics.

A :class:`ServingEngine` advances *simulated accelerator time* (seconds)
through exactly two kinds of events — a request arriving, and a batch
becoming dispatchable on an available replica — so a run is a deterministic
function of (workload, policies, config).  Batch service time comes from
the planned :class:`~repro.adaptive.batch.BatchRun` for that (network,
batch size) pair via :class:`~repro.serve.batcher.BatchCoster`; no wall
clock is ever consulted.

Replicas model independent accelerator instances sharing the admission
queue.  Two routing disciplines:

* ``round-robin`` — strict turn order: the next batch waits for the next
  replica in the cycle, even if another is already idle (simple, fair,
  and the baseline a smarter router must beat);
* ``least-loaded`` — the batch goes to the replica that frees up
  earliest (ties broken by replica id, for determinism).

The loop drains the queue after the last arrival, so every admitted
request is either completed or shed by the time :meth:`ServingEngine.run`
returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.perf.instrument import phase
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.metrics import MetricsCollector, RequestRecord, to_json
from repro.serve.queue import AdmissionQueue, QueuePolicy
from repro.serve.workload import Request

__all__ = ["ReplicaState", "ServingEngine", "ServingReport", "ROUTING_KINDS"]

ROUTING_KINDS = ("round-robin", "least-loaded")


@dataclass
class ReplicaState:
    """One accelerator instance's occupancy bookkeeping."""

    rid: int
    free_at: float = 0.0
    busy_s: float = 0.0
    batches: int = 0
    completed: int = 0

    def detail(self, makespan_s: float) -> Dict[str, object]:
        """JSON-friendly per-replica stats (the health checker's input)."""
        return {
            "rid": self.rid,
            "busy_ms": round(self.busy_s * 1e3, 6),
            "batches": self.batches,
            "completed": self.completed,
            "utilization": round(self.busy_s / makespan_s, 6)
            if makespan_s
            else 0.0,
        }


class _Router:
    """Picks the replica the next batch will run on."""

    def __init__(self, replicas: List[ReplicaState], kind: str) -> None:
        if kind not in ROUTING_KINDS:
            raise ConfigError(
                f"unknown routing {kind!r}; choose from {ROUTING_KINDS}"
            )
        # normalize to rid order so routing never depends on how the
        # caller happened to build the list
        self.replicas = sorted(replicas, key=lambda r: r.rid)
        self.kind = kind
        self._next = 0

    def peek(self) -> ReplicaState:
        """The replica the next dispatch would use (no state change).

        Least-loaded ties (equal ``free_at``) always resolve to the lowest
        replica index — two equally-loaded replicas must route the same
        way on every run.
        """
        if self.kind == "round-robin":
            return self.replicas[self._next]
        return min(self.replicas, key=lambda r: (r.free_at, r.rid))

    def commit(self) -> None:
        """Advance the turn after a dispatch actually happened."""
        if self.kind == "round-robin":
            self._next = (self._next + 1) % len(self.replicas)


@dataclass
class ServingReport:
    """Everything one simulated run produced."""

    summary: Dict[str, object]
    metrics: MetricsCollector
    replicas: List[ReplicaState] = field(default_factory=list)

    def to_json(self) -> str:
        """Canonical JSON of the summary (byte-stable across reruns)."""
        return to_json(self.summary)


class ServingEngine:
    """Discrete-event simulator of a multi-tenant serving tier."""

    def __init__(
        self,
        config: AcceleratorConfig,
        batch_policy: BatchPolicy = BatchPolicy(),
        queue_policy: QueuePolicy = QueuePolicy(),
        replicas: int = 1,
        routing: str = "round-robin",
        plan_policy: str = "adaptive-2",
        coster: Optional[BatchCoster] = None,
    ) -> None:
        if isinstance(replicas, bool) or not isinstance(replicas, int):
            raise ConfigError(
                f"replicas must be an int, got {replicas!r} "
                f"({type(replicas).__name__})"
            )
        if replicas <= 0:
            raise ConfigError(f"replicas must be positive, got {replicas!r}")
        if routing not in ROUTING_KINDS:
            raise ConfigError(
                f"unknown routing {routing!r}; choose from {ROUTING_KINDS}"
            )
        self.config = config
        self.batch_policy = batch_policy
        self.queue_policy = queue_policy
        self.n_replicas = replicas
        self.routing = routing
        self.plan_policy = plan_policy
        self.coster = coster or BatchCoster(config, policy=plan_policy)

    # -- the event loop ---------------------------------------------------

    def run(
        self,
        requests: Sequence[Request],
        duration_s: float,
        extra_meta: Optional[Dict[str, object]] = None,
    ) -> ServingReport:
        """Simulate serving ``requests`` and reduce the result to a report.

        ``duration_s`` is the offered-load window (rate denominators);
        the loop itself runs past it until the queue fully drains.
        """
        if duration_s <= 0:
            raise ConfigError(f"duration must be positive, got {duration_s!r}")
        with phase("serve_run"):
            return self._run(list(requests), duration_s, extra_meta)

    def _ready_candidates(
        self, queue: AdmissionQueue
    ) -> List[Tuple[float, float, str]]:
        """(ready_time, oldest_arrival, network) per non-empty group, sorted."""
        out = []
        for net in queue.networks():
            oldest = queue.oldest_arrival(net)
            ready = self.batch_policy.ready_time(oldest, queue.depth(net))
            out.append((ready, oldest, net))
        out.sort()
        return out

    def _run(
        self,
        requests: List[Request],
        duration_s: float,
        extra_meta: Optional[Dict[str, object]],
    ) -> ServingReport:
        requests.sort(key=lambda r: (r.arrival_s, r.rid))
        queue = AdmissionQueue(self.queue_policy)
        metrics = MetricsCollector()
        replicas = [ReplicaState(rid) for rid in range(self.n_replicas)]
        router = _Router(replicas, self.routing)

        t = 0.0
        i = 0
        n = len(requests)
        while i < n or len(queue):
            # -- advance to the next event ------------------------------
            next_times: List[float] = []
            if i < n:
                next_times.append(requests[i].arrival_s)
            if len(queue):
                ready = self._ready_candidates(queue)[0][0]
                next_times.append(max(ready, router.peek().free_at))
            t = max(t, min(next_times))

            # -- ingest every arrival at or before t --------------------
            while i < n and requests[i].arrival_s <= t:
                request = requests[i]
                shed = queue.offer(request, request.arrival_s)
                if shed is not None:
                    metrics.record_shed(request.tenant, shed.reason)
                i += 1

            # -- dispatch everything dispatchable at t ------------------
            while len(queue):
                replica = router.peek()
                if replica.free_at > t:
                    break
                ready, _, network = self._ready_candidates(queue)[0]
                if ready > t:
                    break
                batch, shed_events = queue.pop_batch(
                    network, self.batch_policy.max_batch, t
                )
                for event in shed_events:
                    metrics.record_shed(event.request.tenant, event.reason)
                if not batch:
                    continue
                service = self.coster.batch_seconds(network, len(batch))
                finish = t + service
                replica.free_at = finish
                replica.busy_s += service
                replica.batches += 1
                replica.completed += len(batch)
                router.commit()
                metrics.record_batch(len(batch))
                for request in batch:
                    metrics.record_completion(
                        RequestRecord(
                            rid=request.rid,
                            tenant=request.tenant,
                            network=request.network,
                            arrival_s=request.arrival_s,
                            start_s=t,
                            finish_s=finish,
                            deadline_s=request.deadline_s,
                            batch_size=len(batch),
                            replica=replica.rid,
                        )
                    )

        busy_s = sum(r.busy_s for r in replicas)
        summary = metrics.summary(duration_s, self.n_replicas, busy_s)
        summary["per_replica"] = [
            r.detail(summary["makespan_s"]) for r in replicas
        ]
        summary["engine"] = {
            "config": self.config.name,
            "plan_policy": self.plan_policy,
            "batching": self.batch_policy.describe(),
            "max_batch": self.batch_policy.max_batch,
            "max_wait_ms": self.batch_policy.max_wait_ms,
            "queue_depth": self.queue_policy.max_depth,
            "queue_order": self.queue_policy.order,
            "routing": self.routing,
        }
        if extra_meta:
            summary["workload"] = dict(sorted(extra_meta.items()))
        return ServingReport(summary=summary, metrics=metrics, replicas=replicas)
