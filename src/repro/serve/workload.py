"""Request generators for the serving simulator.

A *workload* is a time-ordered list of :class:`Request` records: who wants
an inference (tenant), on which zoo network, when it arrives, and by when
the answer is due (the tenant's SLO).  Three arrival processes cover the
traffic shapes a deployed accelerator sees:

* :func:`poisson_arrivals` — memoryless open-loop traffic at a fixed mean
  rate, the classic serving benchmark;
* :func:`bursty_arrivals` — an on/off modulated Poisson process (same mean
  rate, traffic squeezed into periodic bursts) that stresses the queue and
  the load-shedding policy;
* :func:`diurnal_arrivals` — a multi-day sinusoidal day/night cycle with
  scheduled flash-crowd spikes and slow tenant churn, the input the
  autoscaling control plane (:mod:`repro.control`) is judged on;
* :func:`trace_arrivals` — replay recorded arrival times from a file, for
  apples-to-apples comparisons against production traces.

Every generator is driven by :class:`random.Random` seeded explicitly, so
the same seed always produces the identical request sequence — the whole
simulation downstream is deterministic because its input is.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "TenantSpec",
    "MixedTenantSpec",
    "Request",
    "parse_mix",
    "parse_tenant_mix",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "diurnal_rate",
    "mixed_arrivals",
    "mixed_diurnal_arrivals",
    "trace_arrivals",
    "ARRIVAL_KINDS",
]

ARRIVAL_KINDS = ("poisson", "bursty", "diurnal", "trace")

#: default per-request latency SLO when a mix spec does not name one
DEFAULT_SLO_MS = 250.0


@dataclass(frozen=True)
class TenantSpec:
    """One traffic source: a named tenant pinned to one zoo network."""

    name: str
    network: str
    weight: float = 1.0
    slo_ms: float = DEFAULT_SLO_MS

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: weight must be positive, got {self.weight!r}"
            )
        if self.slo_ms <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: slo_ms must be positive, got {self.slo_ms!r}"
            )


@dataclass(frozen=True)
class Request:
    """One inference request in simulated time (seconds)."""

    rid: int
    tenant: str
    network: str
    arrival_s: float
    deadline_s: float

    def slo_s(self) -> float:
        return self.deadline_s - self.arrival_s


@dataclass(frozen=True)
class MixedTenantSpec:
    """One traffic source whose requests draw from a *mix* of networks.

    A production tenant rarely pins a single model: an app ships a big
    and a small variant, or A/B-tests architectures inside one request
    stream.  ``mix`` is a tuple of ``(network, weight)`` pairs — relative
    shares of this tenant's traffic — and ``weight`` is the tenant's
    share of the overall stream, exactly like :class:`TenantSpec`.
    """

    name: str
    mix: Tuple[Tuple[str, float], ...]
    weight: float = 1.0
    slo_ms: float = DEFAULT_SLO_MS

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("mixed tenant needs a non-empty name")
        if not self.mix:
            raise ConfigError(
                f"tenant {self.name!r}: network mix must name at least one network"
            )
        seen = set()
        for network, share in self.mix:
            if network in seen:
                raise ConfigError(
                    f"tenant {self.name!r}: duplicate network {network!r} in mix"
                )
            seen.add(network)
            if share <= 0:
                raise ConfigError(
                    f"tenant {self.name!r}: network {network!r} share must be "
                    f"positive, got {share!r}"
                )
        if self.weight <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: weight must be positive, got {self.weight!r}"
            )
        if self.slo_ms <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: slo_ms must be positive, got {self.slo_ms!r}"
            )

    @property
    def networks(self) -> Tuple[str, ...]:
        return tuple(network for network, _ in self.mix)


def _validate_mixed_tenants(tenants: Sequence[MixedTenantSpec]) -> None:
    from repro.nn.zoo import NETWORK_BUILDERS

    if not tenants:
        raise ConfigError("workload needs at least one tenant")
    seen = set()
    for t in tenants:
        if t.name in seen:
            raise ConfigError(f"duplicate tenant name {t.name!r}")
        seen.add(t.name)
        for network in t.networks:
            if network not in NETWORK_BUILDERS:
                raise ConfigError(
                    f"tenant {t.name!r}: unknown network {network!r}; "
                    f"choose from {sorted(NETWORK_BUILDERS)}"
                )


def parse_tenant_mix(
    spec: str, slo_ms: float = DEFAULT_SLO_MS
) -> List[MixedTenantSpec]:
    """Parse a per-tenant network-mix spec.

    Grammar (entries comma-separated)::

        name=network[:share][/network[:share]...][@tenant_weight]

    e.g. ``"acme=alexnet:3/vgg:1@2,beta=nin"`` — tenant ``acme`` carries
    twice ``beta``'s traffic and splits it 3:1 between AlexNet and VGG.
    """
    tenants: List[MixedTenantSpec] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, sep, rest = entry.partition("=")
        if not sep or not name or not rest:
            raise ConfigError(
                f"bad tenant-mix entry {entry!r}; expected "
                "'name=network[:share]/...[@weight]'"
            )
        rest, _, weight_s = rest.partition("@")
        try:
            weight = float(weight_s) if weight_s else 1.0
        except ValueError:
            raise ConfigError(
                f"bad tenant weight {weight_s!r} in entry {entry!r}"
            ) from None
        mix: List[Tuple[str, float]] = []
        for part in rest.split("/"):
            network, _, share_s = part.partition(":")
            try:
                share = float(share_s) if share_s else 1.0
            except ValueError:
                raise ConfigError(
                    f"bad network share {share_s!r} in entry {entry!r}"
                ) from None
            mix.append((network.strip(), share))
        tenants.append(
            MixedTenantSpec(
                name=name.strip(), mix=tuple(mix), weight=weight, slo_ms=slo_ms
            )
        )
    _validate_mixed_tenants(tenants)
    return tenants


def mixed_arrivals(
    rate: float,
    duration_s: float,
    tenants: Sequence[MixedTenantSpec],
    seed: int = 0,
) -> List[Request]:
    """Poisson traffic where each tenant spreads over a network mix.

    One arrival stream at mean ``rate``: each request draws its tenant by
    tenant weight, then its network by that tenant's mix shares — two RNG
    draws per arrival from one seeded generator, so the same seed always
    produces the identical request list.  This is the multi-tenant input
    the tenancy and control benchmarks are judged on: a partition or chip
    pinned to a tenant must absorb *that tenant's whole mix*, not one
    network.
    """
    if rate <= 0:
        raise ConfigError(f"arrival rate must be positive, got {rate!r}")
    if duration_s <= 0:
        raise ConfigError(f"duration must be positive, got {duration_s!r}")
    _validate_mixed_tenants(tenants)
    rng = random.Random(seed)
    requests: List[Request] = []
    t = rng.expovariate(rate)
    while t < duration_s:
        picked, network = _pick_mixed(rng, tenants)
        requests.append(
            Request(
                rid=len(requests),
                tenant=picked.name,
                network=network,
                arrival_s=t,
                deadline_s=t + picked.slo_ms / 1e3,
            )
        )
        t += rng.expovariate(rate)
    return requests


def _pick_mixed(
    rng: random.Random, tenants: Sequence[MixedTenantSpec]
) -> Tuple[MixedTenantSpec, str]:
    """Two weighted draws: tenant by weight, then network by mix share."""
    total = sum(tenant.weight for tenant in tenants)
    x = rng.random() * total
    picked = tenants[-1]
    for tenant in tenants:
        x -= tenant.weight
        if x < 0:
            picked = tenant
            break
    share_total = sum(share for _, share in picked.mix)
    y = rng.random() * share_total
    network = picked.mix[-1][0]
    for net, share in picked.mix:
        y -= share
        if y < 0:
            network = net
            break
    return picked, network


def mixed_diurnal_arrivals(
    base_rate: float,
    peak_rate: float,
    days: float,
    tenants: Sequence[MixedTenantSpec],
    seed: int = 0,
    day_s: float = 86400.0,
    flash_crowds: Sequence[Tuple[float, float, float]] = (),
) -> List[Request]:
    """Diurnal traffic over *mixed-tenant* sources: the planner's input.

    The rate envelope is the :func:`diurnal_rate` sinusoid (``base_rate``
    in the trough, ``peak_rate`` at the crest, explicit flash-crowd
    windows), sampled by exact thinning like :func:`diurnal_arrivals`;
    each accepted arrival then draws its tenant by weight and its network
    by that tenant's mix shares, like :func:`mixed_arrivals`.  One seeded
    RNG drives everything, so the same seed always yields the identical
    request list — the capacity planner's whole search is deterministic
    because its traffic forecast is.
    """
    if base_rate <= 0:
        raise ConfigError(f"base_rate must be positive, got {base_rate!r}")
    if peak_rate < base_rate:
        raise ConfigError(
            f"peak_rate must be >= base_rate, got {peak_rate!r} < {base_rate!r}"
        )
    if days <= 0:
        raise ConfigError(f"days must be positive, got {days!r}")
    if day_s <= 0:
        raise ConfigError(f"day_s must be positive, got {day_s!r}")
    for window in flash_crowds:
        start, duration, factor = window
        if start < 0 or duration <= 0 or factor < 1:
            raise ConfigError(
                f"flash crowd {window!r} must be (start>=0, duration>0, factor>=1)"
            )
    _validate_mixed_tenants(tenants)

    duration_s = days * day_s
    windows = [tuple(map(float, w)) for w in sorted(flash_crowds)]
    max_factor = max([1.0] + [f for _, _, f in windows])
    envelope = peak_rate * max_factor
    rng = random.Random(seed)
    requests: List[Request] = []
    t = 0.0
    while True:
        t += rng.expovariate(envelope)
        if t >= duration_s:
            break
        current = diurnal_rate(t, base_rate, peak_rate, day_s, windows)
        if rng.random() * envelope >= current:
            continue
        tenant, network = _pick_mixed(rng, tenants)
        requests.append(
            Request(
                rid=len(requests),
                tenant=tenant.name,
                network=network,
                arrival_s=t,
                deadline_s=t + tenant.slo_ms / 1e3,
            )
        )
    return requests


def _validate_tenants(tenants: Sequence[TenantSpec]) -> None:
    from repro.nn.zoo import NETWORK_BUILDERS

    if not tenants:
        raise ConfigError("workload needs at least one tenant")
    seen = set()
    for t in tenants:
        if t.name in seen:
            raise ConfigError(f"duplicate tenant name {t.name!r}")
        seen.add(t.name)
        if t.network not in NETWORK_BUILDERS:
            raise ConfigError(
                f"tenant {t.name!r}: unknown network {t.network!r}; "
                f"choose from {sorted(NETWORK_BUILDERS)}"
            )


def parse_mix(spec: str, slo_ms: float = DEFAULT_SLO_MS) -> List[TenantSpec]:
    """Parse a CLI mix spec like ``"alexnet:2,googlenet:1"``.

    Each entry is ``network[:weight]``; the tenant is named after its
    network.  Weights are relative traffic shares.
    """
    tenants: List[TenantSpec] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, weight_s = entry.partition(":")
        try:
            weight = float(weight_s) if weight_s else 1.0
        except ValueError:
            raise ConfigError(f"bad weight {weight_s!r} in mix entry {entry!r}") from None
        tenants.append(TenantSpec(name=name, network=name, weight=weight, slo_ms=slo_ms))
    _validate_tenants(tenants)
    return tenants


def _pick_tenant(rng: random.Random, tenants: Sequence[TenantSpec]) -> TenantSpec:
    total = sum(t.weight for t in tenants)
    x = rng.random() * total
    for t in tenants:
        x -= t.weight
        if x < 0:
            return t
    return tenants[-1]


def _make_request(
    rid: int, tenant: TenantSpec, arrival_s: float
) -> Request:
    return Request(
        rid=rid,
        tenant=tenant.name,
        network=tenant.network,
        arrival_s=arrival_s,
        deadline_s=arrival_s + tenant.slo_ms / 1e3,
    )


def poisson_arrivals(
    rate: float,
    duration_s: float,
    tenants: Sequence[TenantSpec],
    seed: int = 0,
) -> List[Request]:
    """Open-loop Poisson traffic: ``rate`` requests/second for ``duration_s``."""
    if rate <= 0:
        raise ConfigError(f"arrival rate must be positive, got {rate!r}")
    if duration_s <= 0:
        raise ConfigError(f"duration must be positive, got {duration_s!r}")
    _validate_tenants(tenants)
    rng = random.Random(seed)
    requests: List[Request] = []
    t = rng.expovariate(rate)
    while t < duration_s:
        tenant = _pick_tenant(rng, tenants)
        requests.append(_make_request(len(requests), tenant, t))
        t += rng.expovariate(rate)
    return requests


def bursty_arrivals(
    rate: float,
    duration_s: float,
    tenants: Sequence[TenantSpec],
    seed: int = 0,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.2,
    period_s: float = 1.0,
) -> List[Request]:
    """On/off modulated Poisson traffic with the same *mean* rate.

    Each ``period_s`` window starts with a burst lasting
    ``burst_fraction`` of the period at ``burst_factor`` times the mean
    rate; the remainder of the period runs at a reduced rate chosen so the
    long-run average stays ``rate``.  ``burst_factor * burst_fraction``
    must not exceed 1 (the off-phase rate cannot go negative).
    """
    if rate <= 0:
        raise ConfigError(f"arrival rate must be positive, got {rate!r}")
    if duration_s <= 0:
        raise ConfigError(f"duration must be positive, got {duration_s!r}")
    if burst_factor < 1:
        raise ConfigError(f"burst_factor must be >= 1, got {burst_factor!r}")
    if not 0 < burst_fraction < 1:
        raise ConfigError(f"burst_fraction must be in (0, 1), got {burst_fraction!r}")
    if period_s <= 0:
        raise ConfigError(f"period_s must be positive, got {period_s!r}")
    if burst_factor * burst_fraction > 1:
        raise ConfigError(
            "burst_factor * burst_fraction must be <= 1 so the off-phase "
            f"rate stays non-negative, got {burst_factor * burst_fraction!r}"
        )
    _validate_tenants(tenants)
    on_rate = rate * burst_factor
    off_rate = rate * (1 - burst_factor * burst_fraction) / (1 - burst_fraction)
    rng = random.Random(seed)
    requests: List[Request] = []
    # thinning: draw candidates at the envelope (burst) rate, accept each
    # with probability rate(t)/on_rate — an exact non-homogeneous Poisson
    # sampler, so the long-run mean stays `rate` with no phase-edge bias
    t = 0.0
    while True:
        t += rng.expovariate(on_rate)
        if t >= duration_s:
            break
        phase = (t % period_s) / period_s
        current = on_rate if phase < burst_fraction else off_rate
        if rng.random() * on_rate >= current:
            continue
        tenant = _pick_tenant(rng, tenants)
        requests.append(_make_request(len(requests), tenant, t))
    return requests


def diurnal_rate(
    t: float,
    base_rate: float,
    peak_rate: float,
    day_s: float,
    flash_windows: Sequence[Tuple[float, float, float]] = (),
) -> float:
    """Instantaneous arrival rate of the diurnal process at time ``t``.

    The daily cycle is sinusoidal — ``base_rate`` at midnight, ``peak_rate``
    at mid-day — and any flash-crowd window ``(start, duration, factor)``
    covering ``t`` multiplies the rate (overlapping windows take the max
    factor, mirroring the service-window semantics in the failover engine).
    """
    rate = base_rate + (peak_rate - base_rate) * 0.5 * (
        1.0 - math.cos(2.0 * math.pi * t / day_s)
    )
    factor = 1.0
    for start, duration, f in flash_windows:
        if start <= t < start + duration:
            factor = max(factor, f)
    return rate * factor


def diurnal_arrivals(
    base_rate: float,
    peak_rate: float,
    days: float,
    tenants: Sequence[TenantSpec],
    seed: int = 0,
    day_s: float = 86400.0,
    flash_crowds: Sequence[Tuple[float, float, float]] = (),
    flash_per_day: float = 0.0,
    flash_factor: float = 3.0,
    flash_duration_s: Optional[float] = None,
    churn: float = 0.0,
) -> List[Request]:
    """Multi-day diurnal traffic: day/night cycle, flash crowds, churn.

    The mean rate follows a sinusoid per simulated day (``base_rate`` in the
    trough, ``peak_rate`` at the crest; ``day_s`` seconds per day so tests
    and benchmarks can compress a day).  Flash crowds are ``(start_s,
    duration_s, factor)`` rate-multiplier windows — pass them explicitly in
    ``flash_crowds`` and/or let ``flash_per_day`` of them be drawn at seeded
    uniform times with ``flash_factor`` x ``flash_duration_s`` (default 2%%
    of a day) each.  ``churn`` in [0, 1) slowly rotates the tenant mix: each
    tenant's weight is modulated by ``1 + churn * sin(2 pi t/day_s + phase)``
    with a seeded per-tenant phase, so which network dominates drifts over
    the day.  Sampling is exact thinning against the envelope rate, like
    :func:`bursty_arrivals`, and everything is driven by one seeded RNG —
    the same seed always yields the identical request list.
    """
    if base_rate <= 0:
        raise ConfigError(f"base_rate must be positive, got {base_rate!r}")
    if peak_rate < base_rate:
        raise ConfigError(
            f"peak_rate must be >= base_rate, got {peak_rate!r} < {base_rate!r}"
        )
    if days <= 0:
        raise ConfigError(f"days must be positive, got {days!r}")
    if day_s <= 0:
        raise ConfigError(f"day_s must be positive, got {day_s!r}")
    if flash_per_day < 0:
        raise ConfigError(f"flash_per_day must be >= 0, got {flash_per_day!r}")
    if flash_factor < 1:
        raise ConfigError(f"flash_factor must be >= 1, got {flash_factor!r}")
    if not 0 <= churn < 1:
        raise ConfigError(f"churn must be in [0, 1), got {churn!r}")
    for window in flash_crowds:
        start, duration, factor = window
        if start < 0 or duration <= 0 or factor < 1:
            raise ConfigError(
                f"flash crowd {window!r} must be (start>=0, duration>0, factor>=1)"
            )
    _validate_tenants(tenants)

    duration_s = days * day_s
    if flash_duration_s is None:
        flash_duration_s = 0.02 * day_s
    elif flash_duration_s <= 0:
        raise ConfigError(
            f"flash_duration_s must be positive, got {flash_duration_s!r}"
        )
    rng = random.Random(seed)
    windows = [tuple(map(float, w)) for w in flash_crowds]
    n_seeded = int(round(flash_per_day * days))
    seeded_starts = sorted(rng.uniform(0.0, duration_s) for _ in range(n_seeded))
    windows.extend((s, float(flash_duration_s), float(flash_factor)) for s in seeded_starts)
    windows.sort()

    max_factor = max([1.0] + [f for _, _, f in windows])
    envelope = peak_rate * max_factor
    phases = [rng.uniform(0.0, 2.0 * math.pi) for _ in tenants]

    def pick_tenant(t: float) -> TenantSpec:
        if not churn:
            return _pick_tenant(rng, tenants)
        weights = [
            tenant.weight
            * (1.0 + churn * math.sin(2.0 * math.pi * t / day_s + phases[k]))
            for k, tenant in enumerate(tenants)
        ]
        x = rng.random() * sum(weights)
        for tenant, w in zip(tenants, weights):
            x -= w
            if x < 0:
                return tenant
        return tenants[-1]

    requests: List[Request] = []
    t = 0.0
    while True:
        t += rng.expovariate(envelope)
        if t >= duration_s:
            break
        current = diurnal_rate(t, base_rate, peak_rate, day_s, windows)
        if rng.random() * envelope >= current:
            continue
        requests.append(_make_request(len(requests), pick_tenant(t), t))
    return requests


def trace_arrivals(
    path: str,
    tenants: Sequence[TenantSpec],
    seed: int = 0,
    duration_s: Optional[float] = None,
) -> List[Request]:
    """Replay arrival times from a trace file.

    Each non-empty, non-``#`` line is ``<arrival_seconds>[,<tenant>]``.
    Lines without a tenant are assigned one by weighted draw (seeded, so
    replay is deterministic).  Timestamps must be finite, non-negative and
    non-decreasing — a trace that jumps backwards in time is almost always
    a recording bug, so it is rejected with the offending entry named
    rather than silently re-sorted.  ``duration_s`` truncates the trace
    when given.
    """
    _validate_tenants(tenants)
    by_name = {t.name: t for t in tenants}
    rng = random.Random(seed)
    rows = []
    prev: Optional[float] = None
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            time_s, _, tenant_name = line.partition(",")
            try:
                arrival = float(time_s)
            except ValueError:
                raise ConfigError(
                    f"{path}:{lineno}: bad arrival time {time_s!r}"
                ) from None
            if not math.isfinite(arrival):
                raise ConfigError(
                    f"{path}:{lineno}: non-finite arrival time {arrival!r} "
                    f"(entry {len(rows)})"
                )
            if arrival < 0:
                raise ConfigError(f"{path}:{lineno}: negative arrival time {arrival!r}")
            if prev is not None and arrival < prev:
                raise ConfigError(
                    f"{path}:{lineno}: decreasing arrival time {arrival!r} "
                    f"after {prev!r} (entry {len(rows)}); trace timestamps "
                    f"must be non-decreasing"
                )
            prev = arrival
            tenant_name = tenant_name.strip()
            if tenant_name and tenant_name not in by_name:
                raise ConfigError(
                    f"{path}:{lineno}: unknown tenant {tenant_name!r}; "
                    f"trace tenants must be in {sorted(by_name)}"
                )
            rows.append((arrival, tenant_name))
    requests: List[Request] = []
    for arrival, tenant_name in rows:
        if duration_s is not None and arrival >= duration_s:
            break
        tenant = by_name[tenant_name] if tenant_name else _pick_tenant(rng, tenants)
        requests.append(_make_request(len(requests), tenant, arrival))
    return requests
