"""One shared candidate-evaluation path for deployment comparisons.

Every "race N deployments on the identical workload" driver in the repo —
``cluster.compare_deployments`` (1 big chip vs N small),
``cluster.compare_compositions`` (heterogeneous replica sets),
``tenancy.compare_fleets`` (placed fleets) and the ``repro.capacity``
what-if planner — reduces to the same three steps:

1. **build** — turn a list of *replica groups* ``(config, count[, coster])``
   into the per-replica costers, chip labels and lead config a
   :class:`~repro.serve.engine.ServingEngine` wants;
2. **run** — serve the shared request list through one engine per
   candidate, identical batching/queueing/routing knobs on every side;
3. **rank** — order the resulting summaries by a deterministic key with
   the candidate name as the final tiebreaker.

Concentrating those steps here means a costing bug fix or a new metric
lands in every comparison CLI and in the capacity planner at once, instead
of drifting across three near-duplicate drivers.

A *group* is ``(config, count)`` or ``(config, count, coster)`` — the
optional third element substitutes a custom BatchCoster-compatible object
(e.g. a :class:`~repro.cluster.replica.PipelinedReplica`, so one "replica"
can be a whole sharded deployment).  Identical configs share one memoized
coster via ``coster_memo`` so planning work is never repeated across
candidates in a race.

When a fault schedule, SDC windows, service windows or a verification
policy are supplied, the run goes through the
:class:`~repro.serve.failover.FailoverEngine` instead (which models them);
that engine is single-coster, so faulted candidates must be homogeneous —
exactly one group.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.queue import QueuePolicy
from repro.serve.workload import Request

__all__ = [
    "build_replica_set",
    "evaluate_candidate",
    "rank_candidates",
]


def _normalize_groups(
    groups: Sequence[Tuple], candidate: str
) -> List[Tuple[AcceleratorConfig, int, Optional[object]]]:
    """Validate ``(config, count[, coster])`` entries, preserving order."""
    if not groups:
        raise ConfigError(f"candidate {candidate!r} has no chip groups")
    out: List[Tuple[AcceleratorConfig, int, Optional[object]]] = []
    for gi, entry in enumerate(groups):
        if len(entry) == 2:
            config, count = entry
            coster = None
        elif len(entry) == 3:
            config, count, coster = entry
        else:
            raise ConfigError(
                f"candidate {candidate!r} group {gi}: expected "
                f"(config, count[, coster]), got {len(entry)} elements"
            )
        if isinstance(count, bool) or not isinstance(count, int):
            raise ConfigError(
                f"candidate {candidate!r} group {gi}: count must be an "
                f"int, got {count!r}"
            )
        if count <= 0:
            raise ConfigError(
                f"candidate {candidate!r} group {gi}: count must be "
                f"positive, got {count!r}"
            )
        out.append((config, count, coster))
    return out


def build_replica_set(
    groups: Sequence[Tuple],
    plan_policy: str = "adaptive-2",
    coster_memo: Optional[Dict[AcceleratorConfig, BatchCoster]] = None,
    label_chips: bool = True,
    candidate: str = "candidate",
) -> Tuple[AcceleratorConfig, List[object], Optional[Dict[int, str]]]:
    """Flatten replica groups into engine arguments.

    Returns ``(lead_config, replica_costers, chip_map)`` — replicas laid
    out in group order, chips labelled ``"<config> g<group>-<instance>"``
    when ``label_chips`` (pass False to keep summaries free of per-chip
    accounting, e.g. for single-deployment baselines).  ``coster_memo``
    lets several candidates in one race share planned costers per config.
    """
    normalized = _normalize_groups(groups, candidate)
    if coster_memo is None:
        coster_memo = {}
    replica_costers: List[object] = []
    chip_map: Dict[int, str] = {}
    lead_config: Optional[AcceleratorConfig] = None
    for gi, (config, count, coster) in enumerate(normalized):
        if lead_config is None:
            lead_config = config
        if coster is None:
            coster = coster_memo.get(config)
            if coster is None:
                coster = coster_memo[config] = BatchCoster(
                    config, policy=plan_policy
                )
        for instance in range(count):
            rid = len(replica_costers)
            replica_costers.append(coster)
            chip_map[rid] = f"{config.name} g{gi}-{instance}"
    assert lead_config is not None
    return lead_config, replica_costers, (chip_map if label_chips else None)


def evaluate_candidate(
    groups: Sequence[Tuple],
    requests: Sequence[Request],
    duration_s: float,
    batch_policy: BatchPolicy = BatchPolicy(),
    queue_policy: QueuePolicy = QueuePolicy(),
    routing: str = "least-loaded",
    plan_policy: str = "adaptive-2",
    coster_memo: Optional[Dict[AcceleratorConfig, BatchCoster]] = None,
    label_chips: bool = True,
    candidate: str = "candidate",
    extra_meta: Optional[Dict[str, object]] = None,
    faults: Sequence[object] = (),
    failover_policy: Optional[object] = None,
    service_windows: Sequence[Tuple[float, float, float]] = (),
    sdc_faults: Sequence[object] = (),
    verification: Optional[object] = None,
) -> Dict[str, object]:
    """Serve ``requests`` on one candidate deployment; return its summary.

    The healthy path builds a :class:`~repro.serve.engine.ServingEngine`
    from the replica groups.  Supplying any fault input switches to the
    :class:`~repro.serve.failover.FailoverEngine` (homogeneous candidates
    only — exactly one group), so planners can score the same candidate
    healthy and under chaos through one call signature.
    """
    faulted = bool(faults or sdc_faults or service_windows) or (
        verification is not None or failover_policy is not None
    )
    lead_config, replica_costers, chip_map = build_replica_set(
        groups,
        plan_policy=plan_policy,
        coster_memo=coster_memo,
        label_chips=label_chips,
        candidate=candidate,
    )
    if faulted:
        from repro.serve.failover import FailoverEngine, FailoverPolicy

        if len(groups) != 1:
            raise ConfigError(
                f"candidate {candidate!r}: faulted evaluation needs a "
                f"homogeneous deployment (exactly one replica group)"
            )
        engine = FailoverEngine(
            lead_config,
            batch_policy=batch_policy,
            queue_policy=queue_policy,
            replicas=len(replica_costers),
            routing=routing,
            plan_policy=plan_policy,
            coster=replica_costers[0],
            faults=faults,
            failover_policy=failover_policy or FailoverPolicy(),
            service_windows=service_windows,
            sdc_faults=sdc_faults,
            verification=verification,
        )
        return engine.run(requests, duration_s, extra_meta=extra_meta).summary

    from repro.serve.engine import ServingEngine

    engine = ServingEngine(
        lead_config,
        batch_policy=batch_policy,
        queue_policy=queue_policy,
        replicas=len(replica_costers),
        routing=routing,
        plan_policy=plan_policy,
        coster=replica_costers[0],
        replica_costers=replica_costers,
        chip_map=chip_map,
    )
    return engine.run(requests, duration_s, extra_meta=extra_meta).summary


def rank_candidates(
    results: Dict[str, Dict[str, object]],
    key: Callable[[Dict[str, object]], Tuple],
) -> List[str]:
    """Order candidate names by ``key(summary)``, name as final tiebreak.

    Every comparison driver ranks through here so "same key → same order"
    holds across the CLIs and the capacity planner, and rollup JSON stays
    byte-stable.
    """
    return sorted(results, key=lambda name: tuple(key(results[name])) + (name,))
