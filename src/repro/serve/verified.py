"""Verified inference: per-batch ABFT checks on the serving tier.

:mod:`repro.integrity.abft` proves the checksum scheme detects and corrects
single bit flips on the *functional* datapath; this module lifts that
guarantee to the *serving* tier, where corruption manifests as batches of
user-visible wrong answers:

* :class:`SDCFault` — a window during which one replica silently corrupts
  a fraction of its batches (a marginal voltage rail, a flaky HBM stack —
  the gray-failure analogue of fail-slow, but for *correctness*);
* :class:`VerificationPolicy` — whether replicas run the ABFT check on
  every batch, the latency overhead of doing so (from the
  :func:`repro.schemes.abft.abft_overhead` cost model), the measured
  detection rate, the detect-and-recompute surcharge, and how many
  detections drain a replica;
* :class:`VerifiedReplica` — per-replica corruption bookkeeping: batches
  checked, corruptions detected/corrected/escaped, and when the replica
  was drained.

The :class:`~repro.serve.failover.FailoverEngine` consumes all three: a
detected corruption is recomputed on the spot (the batch completes late
but *correct*), repeated detections mark the replica ``slow`` — sticky, so
the health checker does not flip it back to ``up`` — and the router drains
it exactly like a fail-slow replica.  With verification disabled every
corrupted batch escapes, which is the contrast the ``sdc-silent`` chaos
scenario exists to show.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError

__all__ = ["SDCFault", "VerificationPolicy", "VerifiedReplica"]


@dataclass(frozen=True)
class SDCFault:
    """One silent-data-corruption window on one replica.

    During ``[time_s, time_s + duration_s)`` each batch dispatched to
    ``replica`` is corrupted with probability ``per_batch``, drawn from a
    :class:`random.Random` stream derived from ``seed`` — deterministic in
    dispatch order, so runs are byte-reproducible.
    """

    replica: int
    time_s: float
    duration_s: float
    per_batch: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.replica, bool) or not isinstance(self.replica, int):
            raise ConfigError(
                f"SDC fault replica must be an int, got {self.replica!r}"
            )
        if self.replica < 0:
            raise ConfigError(
                f"SDC fault replica must be >= 0, got {self.replica!r}"
            )
        if math.isnan(self.time_s) or self.time_s < 0:
            raise ConfigError(f"SDC fault time must be >= 0, got {self.time_s!r}")
        if (
            math.isnan(self.duration_s)
            or self.duration_s <= 0
            or math.isinf(self.duration_s)
        ):
            raise ConfigError(
                f"SDC fault duration must be positive and finite, "
                f"got {self.duration_s!r}"
            )
        if math.isnan(self.per_batch) or not 0 < self.per_batch <= 1:
            raise ConfigError(
                f"SDC per-batch probability must be in (0, 1], "
                f"got {self.per_batch!r}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ConfigError(f"SDC fault seed must be an int, got {self.seed!r}")

    @property
    def end_s(self) -> float:
        return self.time_s + self.duration_s

    def active_at(self, t: float) -> bool:
        return self.time_s <= t < self.end_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "replica": self.replica,
            "time_ms": round(self.time_s * 1e3, 6),
            "duration_ms": round(self.duration_s * 1e3, 6),
            "per_batch": round(self.per_batch, 6),
            "seed": self.seed,
        }


@dataclass(frozen=True)
class VerificationPolicy:
    """The verified-inference knobs of a serving tier."""

    #: run the ABFT check on every batch (False models an unguarded tier
    #: that still *experiences* SDC windows — everything escapes)
    enabled: bool = True
    #: service-time multiplier of the checksum passes (>= 1, from the
    #: scheme-level overhead model — see ``repro integrity``)
    latency_overhead: float = 1.08
    #: fraction of corruptions the check catches (the benchmark sweep
    #: measures 1.0 for single bit flips; < 1 models multi-bit escapes)
    detection_rate: float = 1.0
    #: extra service fraction when a detection triggers recompute of the
    #: flagged partial maps (cheap: only flagged sub-kernels re-execute)
    recompute_overhead: float = 0.15
    #: detections on one replica before it is drained like a fail-slow one
    drain_threshold: int = 3

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ConfigError(f"enabled must be a bool, got {self.enabled!r}")
        if (
            math.isnan(self.latency_overhead)
            or math.isinf(self.latency_overhead)
            or self.latency_overhead < 1
        ):
            raise ConfigError(
                f"latency_overhead must be finite and >= 1, "
                f"got {self.latency_overhead!r}"
            )
        if math.isnan(self.detection_rate) or not 0 <= self.detection_rate <= 1:
            raise ConfigError(
                f"detection_rate must be in [0, 1], got {self.detection_rate!r}"
            )
        if (
            math.isnan(self.recompute_overhead)
            or math.isinf(self.recompute_overhead)
            or self.recompute_overhead < 0
        ):
            raise ConfigError(
                f"recompute_overhead must be finite and >= 0, "
                f"got {self.recompute_overhead!r}"
            )
        if isinstance(self.drain_threshold, bool) or not isinstance(
            self.drain_threshold, int
        ):
            raise ConfigError(
                f"drain_threshold must be an int, got {self.drain_threshold!r}"
            )
        if self.drain_threshold < 1:
            raise ConfigError(
                f"drain_threshold must be >= 1, got {self.drain_threshold!r}"
            )

    def describe(self) -> str:
        if not self.enabled:
            return "verification(off)"
        return (
            f"verification(overhead={self.latency_overhead:g}x, "
            f"detect={self.detection_rate:g}, "
            f"recompute=+{self.recompute_overhead:g}, "
            f"drain@{self.drain_threshold})"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "latency_overhead": round(self.latency_overhead, 6),
            "detection_rate": round(self.detection_rate, 6),
            "recompute_overhead": round(self.recompute_overhead, 6),
            "drain_threshold": self.drain_threshold,
        }


@dataclass
class VerifiedReplica:
    """One replica's ABFT bookkeeping: checks run, corruptions, drain state."""

    rid: int
    checked_batches: int = 0
    corrupted_batches: int = 0
    detected: int = 0
    corrected: int = 0
    escaped_batches: int = 0
    escaped_requests: int = 0
    drained_at: Optional[float] = None

    @property
    def drained(self) -> bool:
        return self.drained_at is not None

    def detail(self) -> Dict[str, object]:
        return {
            "rid": self.rid,
            "checked_batches": self.checked_batches,
            "corrupted_batches": self.corrupted_batches,
            "detected": self.detected,
            "corrected": self.corrected,
            "escaped_batches": self.escaped_batches,
            "escaped_requests": self.escaped_requests,
            "drained_ms": round(self.drained_at * 1e3, 6)
            if self.drained_at is not None
            else None,
        }
