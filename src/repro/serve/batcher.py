"""Dynamic batch formation and batch cost modelling.

Two pieces:

* :class:`BatchPolicy` — the classic *max-batch + max-wait* rule.  A
  network group is dispatchable the moment it holds ``max_batch`` requests;
  a partial group becomes dispatchable once its oldest request has waited
  ``max_wait_ms`` (so light traffic is not held hostage to batch filling).
  ``max_batch=1`` degenerates to batch-1 serving, the baseline the
  benchmark compares against.

* :class:`BatchCoster` — the latency model.  A formed batch of ``B``
  same-network requests costs exactly what :func:`repro.adaptive.batch.plan_batch`
  says a batch-``B`` forward pass costs on this accelerator config.  The
  underlying per-layer schedules go through the PR 1 schedule cache, and the
  coster memoizes the resulting :class:`~repro.adaptive.batch.BatchRun`
  per ``(network, B)`` — steady-state serving costs no planning work at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.adaptive.batch import BatchRun, plan_batch
from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.nn.network import Network

__all__ = ["BatchPolicy", "BatchCoster"]


@dataclass(frozen=True)
class BatchPolicy:
    """Max-batch + max-wait dynamic batching knobs."""

    max_batch: int = 16
    max_wait_ms: float = 10.0

    def __post_init__(self) -> None:
        if isinstance(self.max_batch, bool) or not isinstance(self.max_batch, int):
            raise ConfigError(
                f"max_batch must be an int, got {self.max_batch!r} "
                f"({type(self.max_batch).__name__})"
            )
        if self.max_batch <= 0:
            raise ConfigError(f"max_batch must be positive, got {self.max_batch!r}")
        if self.max_wait_ms < 0:
            raise ConfigError(f"max_wait_ms must be >= 0, got {self.max_wait_ms!r}")

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1e3

    def ready_time(self, oldest_arrival_s: float, depth: int) -> float:
        """Earliest time a group with this head/depth may dispatch.

        Full groups go immediately; partial groups wait out the timer.
        """
        if depth >= self.max_batch:
            return oldest_arrival_s
        return oldest_arrival_s + self.max_wait_s

    def describe(self) -> str:
        if self.max_batch == 1:
            return "batch-1"
        return f"dynamic(max_batch={self.max_batch}, max_wait={self.max_wait_ms:g}ms)"


class BatchCoster:
    """Memoized batch latency model on top of ``plan_batch``.

    Costs cover the *full* forward pass by default (conv + pooling + FC +
    LRN) — FC amortization is the whole point of batching a serving tier.
    """

    def __init__(
        self,
        config: AcceleratorConfig,
        policy: str = "adaptive-2",
        include_non_conv: bool = True,
    ) -> None:
        self.config = config
        self.policy = policy
        self.include_non_conv = include_non_conv
        self._networks: Dict[str, Network] = {}
        self._runs: Dict[Tuple[str, int], BatchRun] = {}
        self.memo_hits = 0
        self.memo_misses = 0

    def _network(self, name: str) -> Network:
        net = self._networks.get(name)
        if net is None:
            from repro.nn.zoo import build

            net = self._networks[name] = build(name)
        return net

    def batch_run(self, network: str, batch_size: int) -> BatchRun:
        """The planned batch-``batch_size`` run for ``network`` (memoized)."""
        key = (network, batch_size)
        run = self._runs.get(key)
        if run is not None:
            self.memo_hits += 1
            return run
        self.memo_misses += 1
        run = plan_batch(
            self._network(network),
            self.config,
            self.policy,
            batch_size=batch_size,
            include_non_conv=self.include_non_conv,
        )
        self._runs[key] = run
        return run

    def batch_seconds(self, network: str, batch_size: int) -> float:
        """Wall-clock seconds one batch occupies an accelerator replica."""
        run = self.batch_run(network, batch_size)
        return self.config.cycles_to_seconds(run.total_cycles)

    def image_seconds(self, network: str, batch_size: int) -> float:
        """Per-image service time at a given batch size."""
        return self.batch_seconds(network, batch_size) / batch_size

    def capacity_rps(self, network: str, batch_size: int) -> float:
        """Sustainable per-replica throughput at a fixed batch size."""
        return 1.0 / self.image_seconds(network, batch_size)
