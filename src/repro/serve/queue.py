"""Admission queue: bounded depth, deadline-aware ordering, load shedding.

The queue is the pressure-relief valve between open-loop arrivals and the
accelerator's finite service rate.  Three policies interact:

* **bounded depth** — an arrival finding ``max_depth`` requests already
  queued is rejected on the spot (backpressure to the caller);
* **ordering** — within a network group, ``fifo`` serves in arrival order,
  ``edf`` (earliest deadline first) serves the most urgent request first,
  which trades mean latency for goodput when tenants carry mixed SLOs;
* **age shedding** — at dispatch time, requests that have already waited
  past ``max_age_s`` (or past their own deadline, with ``shed_expired``)
  are dropped instead of burning accelerator cycles on an answer nobody
  is waiting for anymore.

Requests are grouped *per network* because a batch must share weights: the
batcher can only fuse requests that run the same model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.serve.workload import Request

__all__ = ["QueuePolicy", "AdmissionQueue", "ShedEvent", "QUEUE_ORDERS"]

QUEUE_ORDERS = ("fifo", "edf")

#: shed reasons, also the keys of the metrics shed breakdown
SHED_QUEUE_FULL = "queue_full"
SHED_MAX_AGE = "max_age"
SHED_EXPIRED = "expired"


@dataclass(frozen=True)
class QueuePolicy:
    """Knobs governing admission, ordering and shedding."""

    max_depth: int = 256
    order: str = "fifo"
    max_age_s: Optional[float] = None
    shed_expired: bool = False

    def __post_init__(self) -> None:
        if self.max_depth <= 0:
            raise ConfigError(f"max_depth must be positive, got {self.max_depth!r}")
        if self.order not in QUEUE_ORDERS:
            raise ConfigError(
                f"unknown queue order {self.order!r}; choose from {QUEUE_ORDERS}"
            )
        if self.max_age_s is not None and self.max_age_s <= 0:
            raise ConfigError(f"max_age_s must be positive, got {self.max_age_s!r}")


@dataclass(frozen=True)
class ShedEvent:
    """One dropped request and why."""

    request: Request
    reason: str
    time_s: float


class AdmissionQueue:
    """Per-network request queues under one :class:`QueuePolicy`."""

    def __init__(self, policy: QueuePolicy = QueuePolicy()) -> None:
        self.policy = policy
        self._groups: Dict[str, List[Request]] = {}
        self._depth = 0

    def __len__(self) -> int:
        return self._depth

    def depth(self, network: Optional[str] = None) -> int:
        if network is None:
            return self._depth
        return len(self._groups.get(network, ()))

    def networks(self) -> List[str]:
        """Networks with queued requests, in deterministic name order."""
        return sorted(name for name, group in self._groups.items() if group)

    def oldest_arrival(self, network: str) -> float:
        """Arrival time of the longest-waiting request for ``network``."""
        group = self._groups[network]
        return min(r.arrival_s for r in group)

    # -- admission --------------------------------------------------------

    def offer(self, request: Request, now: float) -> Optional[ShedEvent]:
        """Admit ``request`` or return the :class:`ShedEvent` rejecting it."""
        if self._depth >= self.policy.max_depth:
            return ShedEvent(request, SHED_QUEUE_FULL, now)
        self._groups.setdefault(request.network, []).append(request)
        self._depth += 1
        return None

    # -- dispatch ---------------------------------------------------------

    def _sort_key(self, request: Request) -> Tuple:
        if self.policy.order == "edf":
            return (request.deadline_s, request.arrival_s, request.rid)
        return (request.arrival_s, request.rid)

    def pop_batch(
        self, network: str, max_batch: int, now: float
    ) -> Tuple[List[Request], List[ShedEvent]]:
        """Take up to ``max_batch`` servable requests for ``network``.

        Requests that aged out (or expired) while queued are shed rather
        than returned; shedding continues past them so a stale head of the
        queue cannot starve fresh requests behind it.
        """
        group = self._groups.get(network, [])
        group.sort(key=self._sort_key)
        batch: List[Request] = []
        shed: List[ShedEvent] = []
        kept: List[Request] = []
        for request in group:
            if len(batch) >= max_batch:
                kept.append(request)
                continue
            age = now - request.arrival_s
            if self.policy.max_age_s is not None and age > self.policy.max_age_s:
                shed.append(ShedEvent(request, SHED_MAX_AGE, now))
            elif self.policy.shed_expired and now > request.deadline_s:
                shed.append(ShedEvent(request, SHED_EXPIRED, now))
            else:
                batch.append(request)
        self._groups[network] = kept
        self._depth -= len(batch) + len(shed)
        return batch, shed
