"""GoogLeNet (Szegedy et al., 2014) — the paper's benchmark "Gnet".

Full inception-v1 topology: 57 convolutional layers (conv1, conv2 reduce,
conv2, and nine inception modules with six convs each), matching the paper's
Table 2 row (#conv layers = 57, kernel types 7/5/3/1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.nn.layers import (
    ConcatLayer,
    ConvLayer,
    FCLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    TensorShape,
)
from repro.nn.network import Network

__all__ = ["build_googlenet", "InceptionSpec", "INCEPTION_SPECS"]


@dataclass(frozen=True)
class InceptionSpec:
    """Channel widths of one inception module (standard GoogLeNet table)."""

    name: str
    out_1x1: int
    reduce_3x3: int
    out_3x3: int
    reduce_5x5: int
    out_5x5: int
    pool_proj: int

    @property
    def output_depth(self) -> int:
        return self.out_1x1 + self.out_3x3 + self.out_5x5 + self.pool_proj


INCEPTION_SPECS: Tuple[InceptionSpec, ...] = (
    InceptionSpec("3a", 64, 96, 128, 16, 32, 32),
    InceptionSpec("3b", 128, 128, 192, 32, 96, 64),
    InceptionSpec("4a", 192, 96, 208, 16, 48, 64),
    InceptionSpec("4b", 160, 112, 224, 24, 64, 64),
    InceptionSpec("4c", 128, 128, 256, 24, 64, 64),
    InceptionSpec("4d", 112, 144, 288, 32, 64, 64),
    InceptionSpec("4e", 256, 160, 320, 32, 128, 128),
    InceptionSpec("5a", 256, 160, 320, 32, 128, 128),
    InceptionSpec("5b", 384, 192, 384, 48, 128, 128),
)


def _add_inception(net: Network, spec: InceptionSpec, input_name: str, in_maps: int) -> str:
    """Wire one inception module; returns the name of its concat output."""
    p = f"inception_{spec.name}"
    # branch 1: 1x1
    net.add(
        ConvLayer(f"{p}/1x1", in_maps=in_maps, out_maps=spec.out_1x1, kernel=1),
        inputs=[input_name],
    )
    # branch 2: 1x1 reduce -> 3x3
    net.add(
        ConvLayer(f"{p}/3x3_reduce", in_maps=in_maps, out_maps=spec.reduce_3x3, kernel=1),
        inputs=[input_name],
    )
    net.add(
        ConvLayer(
            f"{p}/3x3",
            in_maps=spec.reduce_3x3,
            out_maps=spec.out_3x3,
            kernel=3,
            pad=1,
        ),
        inputs=[f"{p}/3x3_reduce"],
    )
    # branch 3: 1x1 reduce -> 5x5
    net.add(
        ConvLayer(f"{p}/5x5_reduce", in_maps=in_maps, out_maps=spec.reduce_5x5, kernel=1),
        inputs=[input_name],
    )
    net.add(
        ConvLayer(
            f"{p}/5x5",
            in_maps=spec.reduce_5x5,
            out_maps=spec.out_5x5,
            kernel=5,
            pad=2,
        ),
        inputs=[f"{p}/5x5_reduce"],
    )
    # branch 4: 3x3 max-pool -> 1x1 projection
    net.add(
        PoolLayer(f"{p}/pool", kernel=3, stride=1, pad=1),
        inputs=[input_name],
    )
    net.add(
        ConvLayer(f"{p}/pool_proj", in_maps=in_maps, out_maps=spec.pool_proj, kernel=1),
        inputs=[f"{p}/pool"],
    )
    concat = ConcatLayer(
        f"{p}/output",
        branch_depths=(spec.out_1x1, spec.out_3x3, spec.out_5x5, spec.pool_proj),
    )
    net.add(
        concat,
        inputs=[f"{p}/1x1", f"{p}/3x3", f"{p}/5x5", f"{p}/pool_proj"],
    )
    return f"{p}/output"


def build_googlenet(include_fc: bool = True) -> Network:
    """Build GoogLeNet with a 3 x 224 x 224 input (57 conv layers)."""
    net = Network("googlenet", TensorShape(3, 224, 224))
    net.add(ConvLayer("conv1/7x7_s2", in_maps=3, out_maps=64, kernel=7, stride=2, pad=3))
    net.add(ReLULayer("conv1/relu"))
    net.add(PoolLayer("pool1/3x3_s2", kernel=3, stride=2, ceil_mode=True))
    net.add(LRNLayer("pool1/norm1"))
    net.add(ConvLayer("conv2/3x3_reduce", in_maps=64, out_maps=64, kernel=1))
    net.add(ReLULayer("conv2/relu_reduce"))
    net.add(ConvLayer("conv2/3x3", in_maps=64, out_maps=192, kernel=3, pad=1))
    net.add(ReLULayer("conv2/relu"))
    net.add(LRNLayer("conv2/norm2"))
    net.add(PoolLayer("pool2/3x3_s2", kernel=3, stride=2, ceil_mode=True))

    current = "pool2/3x3_s2"
    in_maps = 192
    for spec in INCEPTION_SPECS:
        current = _add_inception(net, spec, current, in_maps)
        in_maps = spec.output_depth
        if spec.name in ("3b", "4e"):
            pool_name = f"pool_after_{spec.name}"
            net.add(
                PoolLayer(pool_name, kernel=3, stride=2, ceil_mode=True),
                inputs=[current],
            )
            current = pool_name

    net.add(PoolLayer("pool5/7x7_s1", kernel=7, stride=1, mode="avg"), inputs=[current])
    if include_fc:
        net.add(FCLayer("loss3/classifier", out_features=1000))
    return net
