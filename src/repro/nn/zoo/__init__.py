"""Benchmark networks from the paper's Table 2 (AlexNet, GoogLeNet, VGG, NiN)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigError
from repro.nn.network import Network
from repro.nn.zoo.alexnet import build_alexnet
from repro.nn.zoo.custom import sequential_cnn
from repro.nn.zoo.googlenet import build_googlenet
from repro.nn.zoo.nin import build_nin
from repro.nn.zoo.resnet import add_basic_block, build_resnet_small
from repro.nn.zoo.vgg import build_vgg

__all__ = [
    "build_alexnet",
    "sequential_cnn",
    "build_googlenet",
    "build_nin",
    "add_basic_block",
    "build_resnet_small",
    "build_vgg",
    "build",
    "benchmark_networks",
    "NETWORK_BUILDERS",
]

NETWORK_BUILDERS: Dict[str, Callable[[], Network]] = {
    "alexnet": build_alexnet,
    "googlenet": build_googlenet,
    "vgg": build_vgg,
    "nin": build_nin,
}


def build(name: str) -> Network:
    """Build a benchmark network by name (``alexnet``/``googlenet``/``vgg``/``nin``)."""
    try:
        builder = NETWORK_BUILDERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown network {name!r}; choose from {sorted(NETWORK_BUILDERS)}"
        ) from None
    return builder()


def benchmark_networks() -> List[Network]:
    """All four benchmark networks in the paper's presentation order."""
    return [build(n) for n in ("alexnet", "googlenet", "vgg", "nin")]
