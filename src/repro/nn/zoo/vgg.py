"""VGG (Simonyan & Zisserman, 2014) — the paper's benchmark "VGG".

Table 2 of the paper lists 16 convolutional layers with a single kernel type
(3x3), which matches configuration E (VGG-19: 16 conv + 3 FC).  All convs are
3x3 / stride 1 / pad 1, so every layer preserves its spatial extent and the
only downsampling comes from the 2x2 max-pools.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.nn.layers import (
    ConvLayer,
    FCLayer,
    PoolLayer,
    ReLULayer,
    TensorShape,
)
from repro.nn.network import Network

__all__ = ["build_vgg", "VGG19_BLOCKS", "VGG16_BLOCKS"]

#: (block output depth, number of 3x3 convs in the block), configuration E.
VGG19_BLOCKS: Tuple[Tuple[int, int], ...] = (
    (64, 2),
    (128, 2),
    (256, 4),
    (512, 4),
    (512, 4),
)

#: configuration D (VGG-16: 13 conv layers) for users who want that variant;
#: the paper's Table 2 row (16 conv layers, 3x3 only) matches configuration E.
VGG16_BLOCKS: Tuple[Tuple[int, int], ...] = (
    (64, 2),
    (128, 2),
    (256, 3),
    (512, 3),
    (512, 3),
)


def build_vgg(
    blocks: Sequence[Tuple[int, int]] = VGG19_BLOCKS,
    include_fc: bool = True,
) -> Network:
    """Build a VGG-style network with a 3 x 224 x 224 input.

    ``blocks`` is a sequence of ``(depth, conv_count)`` pairs; each block is
    that many 3x3 convs followed by a 2x2/2 max-pool.
    """
    net = Network("vgg", TensorShape(3, 224, 224))
    in_maps = 3
    for block_idx, (depth, count) in enumerate(blocks, start=1):
        for conv_idx in range(1, count + 1):
            name = f"conv{block_idx}_{conv_idx}"
            net.add(
                ConvLayer(
                    name, in_maps=in_maps, out_maps=depth, kernel=3, stride=1, pad=1
                )
            )
            net.add(ReLULayer(f"relu{block_idx}_{conv_idx}"))
            in_maps = depth
        net.add(PoolLayer(f"pool{block_idx}", kernel=2, stride=2))
    if include_fc:
        net.add(FCLayer("fc6", out_features=4096))
        net.add(ReLULayer("relu6"))
        net.add(FCLayer("fc7", out_features=4096))
        net.add(ReLULayer("relu7"))
        net.add(FCLayer("fc8", out_features=1000))
    return net
