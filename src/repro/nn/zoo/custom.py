"""Compact DSL for building sequential CNNs.

Downstream users mostly want to sketch a topology quickly; this builder
turns a spec string into a :class:`~repro.nn.network.Network`:

    >>> net = sequential_cnn("mini", (3, 32, 32),
    ...                      "C16k3s1p1 R P2 C32k5s1p2 R P2 F10")

Tokens (whitespace-separated):

``C<out>k<k>[s<s>][p<p>][g<g>]``
    convolution with ``out`` maps, kernel ``k``, stride ``s`` (default 1),
    pad ``p`` (default 0), groups ``g`` (default 1)
``P<k>[s<s>][a]``
    max pool of window ``k``, stride ``s`` (default = ``k``); trailing
    ``a`` makes it average pooling
``F<out>``
    fully connected layer with ``out`` features
``R``
    ReLU
``N``
    LRN (AlexNet defaults)

Layer names are auto-generated (``conv1``, ``pool1``, ...).
"""

from __future__ import annotations

import re
from typing import Dict

from repro.errors import ConfigError
from repro.nn.layers import (
    ConvLayer,
    FCLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    TensorShape,
)
from repro.nn.network import Network

__all__ = ["sequential_cnn"]

_CONV = re.compile(r"^C(\d+)k(\d+)(?:s(\d+))?(?:p(\d+))?(?:g(\d+))?$")
_POOL = re.compile(r"^P(\d+)(?:s(\d+))?(a)?$")
_FC = re.compile(r"^F(\d+)$")


def sequential_cnn(name: str, input_shape, spec: str) -> Network:
    """Build a sequential CNN from a spec string (see module docstring)."""
    if isinstance(input_shape, tuple):
        input_shape = TensorShape(*input_shape)
    net = Network(name, input_shape)
    counters: Dict[str, int] = {}
    depth = input_shape.depth

    def next_name(kind: str) -> str:
        counters[kind] = counters.get(kind, 0) + 1
        return f"{kind}{counters[kind]}"

    for token in spec.split():
        conv = _CONV.match(token)
        if conv:
            out, k, s, p, g = (
                int(conv.group(1)),
                int(conv.group(2)),
                int(conv.group(3) or 1),
                int(conv.group(4) or 0),
                int(conv.group(5) or 1),
            )
            net.add(
                ConvLayer(
                    next_name("conv"),
                    in_maps=depth,
                    out_maps=out,
                    kernel=k,
                    stride=s,
                    pad=p,
                    groups=g,
                )
            )
            depth = out
            continue
        pool = _POOL.match(token)
        if pool:
            k = int(pool.group(1))
            s = int(pool.group(2) or k)
            mode = "avg" if pool.group(3) else "max"
            net.add(PoolLayer(next_name("pool"), kernel=k, stride=s, mode=mode))
            continue
        fc = _FC.match(token)
        if fc:
            out = int(fc.group(1))
            net.add(FCLayer(next_name("fc"), out_features=out))
            depth = out
            continue
        if token == "R":
            net.add(ReLULayer(next_name("relu")))
            continue
        if token == "N":
            net.add(LRNLayer(next_name("norm")))
            continue
        raise ConfigError(f"cannot parse layer token {token!r}")
    if len(net) == 0:
        raise ConfigError("empty network spec")
    return net
