"""Network-in-Network (Lin et al., ICLR 2014) — the paper's benchmark "NiN".

The ImageNet NiN: four mlpconv blocks, each a spatial conv followed by two
1x1 "cccp" convs — 12 convolutional layers with kernel types 11/5/3/1,
matching the paper's Table 2 row.
"""

from __future__ import annotations

from repro.nn.layers import ConvLayer, PoolLayer, ReLULayer, TensorShape
from repro.nn.network import Network

__all__ = ["build_nin"]


def build_nin() -> Network:
    """Build NiN with a 3 x 227 x 227 input (conv1: 3,11,4,96 as in Table 2)."""
    net = Network("nin", TensorShape(3, 227, 227))

    # block 1: 11x11/4 conv + two 1x1 mlp layers
    net.add(ConvLayer("conv1", in_maps=3, out_maps=96, kernel=11, stride=4))
    net.add(ReLULayer("relu0"))
    net.add(ConvLayer("cccp1", in_maps=96, out_maps=96, kernel=1))
    net.add(ReLULayer("relu1"))
    net.add(ConvLayer("cccp2", in_maps=96, out_maps=96, kernel=1))
    net.add(ReLULayer("relu2"))
    net.add(PoolLayer("pool1", kernel=3, stride=2))

    # block 2: 5x5 conv + two 1x1
    net.add(ConvLayer("conv2", in_maps=96, out_maps=256, kernel=5, stride=1, pad=2))
    net.add(ReLULayer("relu3"))
    net.add(ConvLayer("cccp3", in_maps=256, out_maps=256, kernel=1))
    net.add(ReLULayer("relu4"))
    net.add(ConvLayer("cccp4", in_maps=256, out_maps=256, kernel=1))
    net.add(ReLULayer("relu5"))
    net.add(PoolLayer("pool2", kernel=3, stride=2))

    # block 3: 3x3 conv + two 1x1
    net.add(ConvLayer("conv3", in_maps=256, out_maps=384, kernel=3, stride=1, pad=1))
    net.add(ReLULayer("relu6"))
    net.add(ConvLayer("cccp5", in_maps=384, out_maps=384, kernel=1))
    net.add(ReLULayer("relu7"))
    net.add(ConvLayer("cccp6", in_maps=384, out_maps=384, kernel=1))
    net.add(ReLULayer("relu8"))
    net.add(PoolLayer("pool3", kernel=3, stride=2))

    # block 4: 3x3 conv + two 1x1 (the last projects to the 1000 classes)
    net.add(ConvLayer("conv4-1024", in_maps=384, out_maps=1024, kernel=3, stride=1, pad=1))
    net.add(ReLULayer("relu9"))
    net.add(ConvLayer("cccp7-1024", in_maps=1024, out_maps=1024, kernel=1))
    net.add(ReLULayer("relu10"))
    net.add(ConvLayer("cccp8-1024", in_maps=1024, out_maps=1000, kernel=1))
    net.add(ReLULayer("relu11"))
    net.add(PoolLayer("pool4", kernel=6, stride=1, mode="avg"))
    return net
