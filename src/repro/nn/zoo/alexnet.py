"""AlexNet (Krizhevsky et al., NIPS 2012) — the paper's benchmark "Anet".

This is the original two-column (grouped) topology, which is what the paper
measures: it quotes ``Din = 3, 48, 256`` for c1/c2/c3, and 48 is exactly the
per-group depth of conv2 in the grouped network.
"""

from __future__ import annotations

from repro.nn.layers import (
    ConvLayer,
    FCLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    TensorShape,
)
from repro.nn.network import Network

__all__ = ["build_alexnet"]


def build_alexnet(include_fc: bool = True) -> Network:
    """Build AlexNet with a 3 x 227 x 227 input.

    Conv shapes (depth x h x w): conv1 96x55x55, conv2 256x27x27,
    conv3 384x13x13, conv4 384x13x13, conv5 256x13x13.
    """
    net = Network("alexnet", TensorShape(3, 227, 227))
    net.add(ConvLayer("conv1", in_maps=3, out_maps=96, kernel=11, stride=4))
    net.add(ReLULayer("relu1"))
    net.add(LRNLayer("norm1"))
    net.add(PoolLayer("pool1", kernel=3, stride=2))
    net.add(
        ConvLayer(
            "conv2", in_maps=96, out_maps=256, kernel=5, stride=1, pad=2, groups=2
        )
    )
    net.add(ReLULayer("relu2"))
    net.add(LRNLayer("norm2"))
    net.add(PoolLayer("pool2", kernel=3, stride=2))
    net.add(ConvLayer("conv3", in_maps=256, out_maps=384, kernel=3, stride=1, pad=1))
    net.add(ReLULayer("relu3"))
    net.add(
        ConvLayer(
            "conv4", in_maps=384, out_maps=384, kernel=3, stride=1, pad=1, groups=2
        )
    )
    net.add(ReLULayer("relu4"))
    net.add(
        ConvLayer(
            "conv5", in_maps=384, out_maps=256, kernel=3, stride=1, pad=1, groups=2
        )
    )
    net.add(ReLULayer("relu5"))
    net.add(PoolLayer("pool5", kernel=3, stride=2))
    if include_fc:
        net.add(FCLayer("fc6", out_features=4096))
        net.add(ReLULayer("relu6"))
        net.add(FCLayer("fc7", out_features=4096))
        net.add(ReLULayer("relu7"))
        net.add(FCLayer("fc8", out_features=1000))
    return net
