"""ResNet-style residual stacks (He et al., contemporaneous with the paper).

Not part of the paper's benchmark set, but the natural stress test for an
adaptive mapper published in 2016: residual networks mix the layer shapes
C-Brain's selector discriminates on — stride-2 3x3 convs at stage
boundaries, deep stride-1 3x3 bodies, and *strided 1x1 projection*
shortcuts, which are exactly the DMA-bound corner the fuzz tests document
(`tests/integration/test_robustness.py`).

``build_resnet_small`` follows the CIFAR-style recipe: a 3x3 stem, then
``blocks_per_stage`` basic blocks at widths 16/32/64, halving the spatial
extent at each stage entry, ending in global average pooling and a
classifier.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.nn.layers import (
    ConvLayer,
    EltwiseAddLayer,
    FCLayer,
    PoolLayer,
    ReLULayer,
    TensorShape,
)
from repro.nn.network import Network

__all__ = ["build_resnet_small", "add_basic_block"]


def add_basic_block(
    net: Network,
    name: str,
    input_name: str,
    in_maps: int,
    out_maps: int,
    stride: int,
) -> str:
    """Append one basic residual block; returns its output layer name.

    ``conv(3x3, stride) -> relu -> conv(3x3) (+ shortcut) -> relu`` with a
    strided 1x1 projection shortcut when the shape changes.
    """
    net.add(
        ConvLayer(
            f"{name}/conv1",
            in_maps=in_maps,
            out_maps=out_maps,
            kernel=3,
            stride=stride,
            pad=1,
        ),
        inputs=[input_name],
    )
    net.add(ReLULayer(f"{name}/relu1"))
    net.add(
        ConvLayer(
            f"{name}/conv2",
            in_maps=out_maps,
            out_maps=out_maps,
            kernel=3,
            pad=1,
        )
    )
    if stride != 1 or in_maps != out_maps:
        net.add(
            ConvLayer(
                f"{name}/proj",
                in_maps=in_maps,
                out_maps=out_maps,
                kernel=1,
                stride=stride,
            ),
            inputs=[input_name],
        )
        shortcut = f"{name}/proj"
    else:
        shortcut = input_name
    net.add(
        EltwiseAddLayer(f"{name}/add"),
        inputs=[f"{name}/conv2", shortcut],
    )
    net.add(ReLULayer(f"{name}/relu2"), inputs=[f"{name}/add"])
    return f"{name}/relu2"


def build_resnet_small(
    blocks_per_stage: int = 2,
    input_hw: int = 32,
    num_classes: int = 10,
) -> Network:
    """CIFAR-style residual network (ResNet-14 at the default depth)."""
    if blocks_per_stage <= 0:
        raise ConfigError("blocks_per_stage must be positive")
    net = Network(
        f"resnet-{6 * blocks_per_stage + 2}", TensorShape(3, input_hw, input_hw)
    )
    net.add(ConvLayer("stem", in_maps=3, out_maps=16, kernel=3, pad=1))
    net.add(ReLULayer("stem/relu"))
    current = "stem/relu"
    in_maps = 16
    for stage, width in enumerate((16, 32, 64), start=1):
        for block in range(blocks_per_stage):
            stride = 2 if (stage > 1 and block == 0) else 1
            current = add_basic_block(
                net,
                f"s{stage}b{block}",
                current,
                in_maps,
                width,
                stride,
            )
            in_maps = width
    final_hw = input_hw // 4
    net.add(
        PoolLayer("gap", kernel=final_hw, stride=1, mode="avg"),
        inputs=[current],
    )
    net.add(FCLayer("classifier", out_features=num_classes))
    return net
