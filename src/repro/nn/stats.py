"""Per-layer network statistics: the workload characterization view.

Table 2 summarizes each benchmark in one row; planning or sizing hardware
needs the layer-resolution view — MACs, parameters, activation footprints,
and arithmetic intensity (MACs per byte moved), which predicts whether a
layer will be compute- or memory-bound on a given DMA budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.nn.layers import ConvLayer, FCLayer
from repro.nn.network import Network

__all__ = ["LayerStats", "network_stats", "render_network_stats"]


@dataclass(frozen=True)
class LayerStats:
    """Workload characterization of one weighted layer."""

    layer: str
    kind: str
    macs: int
    weights: int
    input_elements: int
    output_elements: int

    @property
    def moved_elements(self) -> int:
        """Words moved if each tensor crosses the interface once."""
        return self.input_elements + self.weights + self.output_elements

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per word of compulsory traffic (the roofline x-axis)."""
        return self.macs / self.moved_elements if self.moved_elements else 0.0


def network_stats(net: Network) -> List[LayerStats]:
    """Stats for every conv/FC layer of ``net``, in execution order."""
    rows: List[LayerStats] = []
    for ctx in net.contexts():
        if not isinstance(ctx.layer, (ConvLayer, FCLayer)):
            continue
        rows.append(
            LayerStats(
                layer=ctx.name,
                kind="conv" if isinstance(ctx.layer, ConvLayer) else "fc",
                macs=ctx.macs,
                weights=ctx.weights,
                input_elements=ctx.in_shape.elements,
                output_elements=ctx.out_shape.elements,
            )
        )
    return rows


def render_network_stats(net: Network, top: int = 0) -> str:
    """Text table of the per-layer characterization."""
    from repro.analysis.report import format_table

    rows = network_stats(net)
    if top > 0:
        rows = sorted(rows, key=lambda r: -r.macs)[:top]
    total_macs = sum(r.macs for r in network_stats(net))
    body = [
        [
            r.layer,
            r.kind,
            f"{r.macs:.3e}",
            f"{100 * r.macs / total_macs:.1f}%",
            f"{r.weights:,d}",
            f"{r.input_elements:,d}",
            f"{r.output_elements:,d}",
            f"{r.arithmetic_intensity:.1f}",
        ]
        for r in rows
    ]
    return (
        f"{net.name}: {total_macs:.3e} MACs across "
        f"{len(network_stats(net))} weighted layers\n"
        + format_table(
            [
                "layer",
                "kind",
                "MACs",
                "share",
                "weights",
                "inputs",
                "outputs",
                "MACs/word",
            ],
            body,
        )
    )
