"""Network container: a DAG of layers with shape propagation.

A :class:`Network` is built by appending layers; each layer names its input
layers (defaulting to the previously appended one, which makes plain
sequential networks trivial to express).  GoogLeNet's inception modules use
explicit fan-out (several branches reading the same input) and
:class:`~repro.nn.layers.ConcatLayer` fan-in.

Shapes are inferred eagerly at ``add`` time so wiring mistakes surface at the
point of construction, not at analysis time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ShapeError
from repro.nn.layers import (
    ConcatLayer,
    ConvLayer,
    EltwiseAddLayer,
    FCLayer,
    Layer,
    TensorShape,
)

__all__ = ["Network", "LayerContext", "NetworkStatsSummary"]

_INPUT = "__input__"


@dataclass(frozen=True)
class LayerContext:
    """A layer together with its resolved input/output tensor shapes.

    This is the unit consumed by schemes, planners and baselines: everything
    needed to cost a layer without re-walking the graph.
    """

    layer: Layer
    in_shape: TensorShape
    out_shape: TensorShape

    @property
    def name(self) -> str:
        return self.layer.name

    @property
    def macs(self) -> int:
        return self.layer.macs(self.in_shape)

    @property
    def weights(self) -> int:
        return self.layer.weight_count(self.in_shape)


@dataclass(frozen=True)
class NetworkStatsSummary:
    """Aggregate statistics used by Table 2-style reporting."""

    name: str
    conv_layers: int
    fc_layers: int
    total_layers: int
    kernel_sizes: Tuple[int, ...]
    total_macs: int
    total_weights: int
    conv1: Optional[ConvLayer]


class Network:
    """An inference network: named layers wired into a DAG.

    Parameters
    ----------
    name:
        Human-readable identifier (``"alexnet"``...).
    input_shape:
        Shape of the image tensor fed to the first layer.
    """

    def __init__(self, name: str, input_shape: TensorShape) -> None:
        self.name = name
        self.input_shape = input_shape
        self._layers: List[Layer] = []
        self._inputs: Dict[str, Tuple[str, ...]] = {}
        self._shapes: Dict[str, TensorShape] = {_INPUT: input_shape}
        self._order: List[str] = []

    # -- construction -----------------------------------------------------

    def add(self, layer: Layer, inputs: Optional[Sequence[str]] = None) -> Layer:
        """Append ``layer``, reading from ``inputs`` (default: previous layer).

        Returns the layer for chaining convenience.  Raises
        :class:`ShapeError` on duplicate names, dangling inputs or
        inconsistent shapes.
        """
        if layer.name in self._shapes:
            raise ShapeError(f"duplicate layer name {layer.name!r}")
        if inputs is None:
            inputs = (self._order[-1],) if self._order else (_INPUT,)
        inputs = tuple(inputs)
        for src in inputs:
            if src != _INPUT and src not in self._shapes:
                raise ShapeError(
                    f"layer {layer.name!r} reads unknown input {src!r}"
                )
        self._shapes[layer.name] = self._infer_shape(layer, inputs)
        self._layers.append(layer)
        self._inputs[layer.name] = inputs
        self._order.append(layer.name)
        return layer

    def _infer_shape(self, layer: Layer, inputs: Tuple[str, ...]) -> TensorShape:
        in_shapes = [self._shapes[src] for src in inputs]
        if isinstance(layer, ConcatLayer):
            hw = {(s.height, s.width) for s in in_shapes}
            if len(hw) != 1:
                raise ShapeError(
                    f"{layer.name}: concat branches disagree on spatial size: {hw}"
                )
            depths = tuple(s.depth for s in in_shapes)
            if depths != layer.branch_depths:
                raise ShapeError(
                    f"{layer.name}: declared branch depths {layer.branch_depths} "
                    f"!= wired depths {depths}"
                )
            return layer.output_shape(in_shapes[0])
        if isinstance(layer, EltwiseAddLayer):
            if len(in_shapes) != layer.branch_count:
                raise ShapeError(
                    f"{layer.name}: expected {layer.branch_count} branches, "
                    f"got {len(in_shapes)}"
                )
            if len({s.as_tuple() for s in in_shapes}) != 1:
                raise ShapeError(
                    f"{layer.name}: eltwise branches disagree on shape: "
                    f"{[s.as_tuple() for s in in_shapes]}"
                )
            return layer.output_shape(in_shapes[0])
        if len(in_shapes) != 1:
            raise ShapeError(
                f"{layer.name}: non-concat layer must have exactly one input, "
                f"got {len(in_shapes)}"
            )
        return layer.output_shape(in_shapes[0])

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self._layers)

    def layer(self, name: str) -> Layer:
        """Look up a layer by name."""
        for lyr in self._layers:
            if lyr.name == name:
                return lyr
        raise KeyError(name)

    def input_names(self, name: str) -> Tuple[str, ...]:
        """Names of the layers feeding ``name`` (``"__input__"`` for the image)."""
        return self._inputs[name]

    def shape_of(self, name: str) -> TensorShape:
        """Output shape of a layer (or the network input for ``"__input__"``)."""
        return self._shapes[name]

    def input_shape_of(self, name: str) -> TensorShape:
        """Shape of the (single) tensor entering layer ``name``.

        For concat layers this is the shared spatial shape of the first
        branch; concat layers are weight-free so this is only used for
        bookkeeping.
        """
        srcs = self._inputs[name]
        return self._shapes[srcs[0]]

    def contexts(self) -> List[LayerContext]:
        """All layers with resolved shapes, in construction (topological) order."""
        out = []
        for lyr in self._layers:
            in_shape = self.input_shape_of(lyr.name)
            out.append(LayerContext(lyr, in_shape, self._shapes[lyr.name]))
        return out

    def conv_contexts(self) -> List[LayerContext]:
        """Only the convolutional layers (the paper's unit of evaluation)."""
        return [c for c in self.contexts() if isinstance(c.layer, ConvLayer)]

    def conv1(self) -> LayerContext:
        """The first convolutional layer (Fig. 7's workload)."""
        for ctx in self.contexts():
            if isinstance(ctx.layer, ConvLayer):
                return ctx
        raise ShapeError(f"network {self.name!r} has no convolutional layer")

    # -- statistics ----------------------------------------------------------

    def summary(self) -> NetworkStatsSummary:
        """Aggregate characteristics matching the paper's Table 2 rows."""
        convs = self.conv_contexts()
        fcs = [c for c in self.contexts() if isinstance(c.layer, FCLayer)]
        kernels = tuple(
            sorted({c.layer.kernel for c in convs}, reverse=True)
        )
        total_macs = sum(c.macs for c in self.contexts())
        total_weights = sum(c.weights for c in self.contexts())
        first_conv = convs[0].layer if convs else None
        return NetworkStatsSummary(
            name=self.name,
            conv_layers=len(convs),
            fc_layers=len(fcs),
            total_layers=len(self._layers),
            kernel_sizes=kernels,
            total_macs=total_macs,
            total_weights=total_weights,
            conv1=first_conv,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network({self.name!r}, layers={len(self._layers)}, "
            f"input={self.input_shape.as_tuple()})"
        )
