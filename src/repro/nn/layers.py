"""Layer descriptors and shape inference for CNN inference workloads.

The unit the paper reasons about is a single *layer* with the parameters of
Fig. 1: input maps of size ``X x Y`` and depth ``Din``, convolved by ``Dout``
groups of ``Din x k x k`` kernels at stride ``s`` (with optional zero padding),
optionally subsampled by a ``p x p`` pooling window at stride ``sp``, and
finally flattened through fully-connected layers.

Layers are immutable dataclasses.  Shape inference is purely arithmetic; the
actual numerical execution lives in :mod:`repro.sim.functional`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import ShapeError

__all__ = [
    "TensorShape",
    "Layer",
    "ConvLayer",
    "PoolLayer",
    "FCLayer",
    "ReLULayer",
    "LRNLayer",
    "ConcatLayer",
    "EltwiseAddLayer",
    "conv_output_hw",
]


@dataclass(frozen=True)
class TensorShape:
    """Shape of an activation tensor: ``depth`` feature maps of ``height x width``.

    The paper's symbols map as ``depth = Din``, ``width = X``, ``height = Y``.
    """

    depth: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.depth <= 0 or self.height <= 0 or self.width <= 0:
            raise ShapeError(f"tensor dimensions must be positive, got {self}")

    @property
    def elements(self) -> int:
        """Total number of scalar elements in the tensor."""
        return self.depth * self.height * self.width

    def bytes(self, word_bytes: int = 2) -> int:
        """Footprint in bytes at the given word width (default 16-bit)."""
        return self.elements * word_bytes

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.depth, self.height, self.width)


def conv_output_hw(in_hw: int, kernel: int, stride: int, pad: int) -> int:
    """Output extent of a convolution/pooling along one spatial axis.

    Standard formula ``floor((in + 2*pad - kernel) / stride) + 1``; raises
    :class:`ShapeError` when the kernel does not fit in the padded input.
    """
    padded = in_hw + 2 * pad
    if kernel > padded:
        raise ShapeError(
            f"kernel {kernel} larger than padded input extent {padded}"
        )
    if stride <= 0:
        raise ShapeError(f"stride must be positive, got {stride}")
    return (padded - kernel) // stride + 1


@dataclass(frozen=True)
class Layer:
    """Common base for all layer descriptors.

    ``name`` identifies the layer inside a :class:`~repro.nn.network.Network`
    (e.g. ``"conv1"`` or ``"inception3a/5x5"``).
    """

    name: str

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        """Infer the output tensor shape from the input tensor shape."""
        raise NotImplementedError

    def macs(self, in_shape: TensorShape) -> int:
        """Multiply-accumulate operations performed on one input tensor."""
        raise NotImplementedError

    def weight_count(self, in_shape: TensorShape) -> int:
        """Number of weight parameters (0 for weight-free layers)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConvLayer(Layer):
    """A convolutional layer: ``out_maps`` kernels of ``in_maps x k x k``.

    ``in_maps`` is redundant with the incoming tensor's depth but stored
    explicitly so a layer can be analyzed standalone (as the paper does for
    conv1), and validated against the network graph.
    """

    in_maps: int
    out_maps: int
    kernel: int
    stride: int = 1
    pad: int = 0
    bias: bool = True
    groups: int = 1

    def __post_init__(self) -> None:
        if self.in_maps <= 0 or self.out_maps <= 0:
            raise ShapeError(f"{self.name}: map counts must be positive")
        if self.kernel <= 0:
            raise ShapeError(f"{self.name}: kernel must be positive")
        if self.stride <= 0:
            raise ShapeError(f"{self.name}: stride must be positive")
        if self.pad < 0:
            raise ShapeError(f"{self.name}: pad must be non-negative")
        if self.groups <= 0:
            raise ShapeError(f"{self.name}: groups must be positive")
        if self.in_maps % self.groups or self.out_maps % self.groups:
            raise ShapeError(
                f"{self.name}: groups={self.groups} must divide both "
                f"in_maps={self.in_maps} and out_maps={self.out_maps}"
            )

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        if in_shape.depth != self.in_maps:
            raise ShapeError(
                f"{self.name}: expected {self.in_maps} input maps, "
                f"got {in_shape.depth}"
            )
        oh = conv_output_hw(in_shape.height, self.kernel, self.stride, self.pad)
        ow = conv_output_hw(in_shape.width, self.kernel, self.stride, self.pad)
        return TensorShape(self.out_maps, oh, ow)

    def output_pixels(self, in_shape: TensorShape) -> int:
        """Spatial size of one output map (``ox * oy`` in the paper)."""
        out = self.output_shape(in_shape)
        return out.height * out.width

    def macs(self, in_shape: TensorShape) -> int:
        """MACs = ox*oy * k*k * (Din/groups) * Dout."""
        return (
            self.output_pixels(in_shape)
            * self.kernel
            * self.kernel
            * (self.in_maps // self.groups)
            * self.out_maps
        )

    def weight_count(self, in_shape: TensorShape) -> int:
        per_out = self.kernel * self.kernel * (self.in_maps // self.groups)
        count = per_out * self.out_maps
        if self.bias:
            count += self.out_maps
        return count


@dataclass(frozen=True)
class PoolLayer(Layer):
    """Subsampling by a ``p x p`` window at stride ``sp`` (max or average)."""

    kernel: int
    stride: int
    pad: int = 0
    mode: str = "max"
    #: round spatial extents up (Caffe-style ceil mode), used by GoogLeNet
    ceil_mode: bool = False

    def __post_init__(self) -> None:
        if self.kernel <= 0 or self.stride <= 0:
            raise ShapeError(f"{self.name}: kernel and stride must be positive")
        if self.mode not in ("max", "avg"):
            raise ShapeError(f"{self.name}: unknown pooling mode {self.mode!r}")

    def _out_hw(self, in_hw: int) -> int:
        if self.ceil_mode:
            padded = in_hw + 2 * self.pad
            if self.kernel > padded:
                raise ShapeError(
                    f"{self.name}: kernel {self.kernel} larger than padded "
                    f"input {padded}"
                )
            return math.ceil((padded - self.kernel) / self.stride) + 1
        return conv_output_hw(in_hw, self.kernel, self.stride, self.pad)

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        return TensorShape(
            in_shape.depth,
            self._out_hw(in_shape.height),
            self._out_hw(in_shape.width),
        )

    def macs(self, in_shape: TensorShape) -> int:
        # Pooling performs comparisons/adds, not MACs; the paper attributes
        # ~90% of work to convolution and does not count pooling MACs.
        return 0

    def weight_count(self, in_shape: TensorShape) -> int:
        return 0


@dataclass(frozen=True)
class FCLayer(Layer):
    """Fully-connected layer: flattens the input and projects to ``out_features``."""

    out_features: int
    bias: bool = True

    def __post_init__(self) -> None:
        if self.out_features <= 0:
            raise ShapeError(f"{self.name}: out_features must be positive")

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        return TensorShape(self.out_features, 1, 1)

    def macs(self, in_shape: TensorShape) -> int:
        return in_shape.elements * self.out_features

    def weight_count(self, in_shape: TensorShape) -> int:
        count = in_shape.elements * self.out_features
        if self.bias:
            count += self.out_features
        return count


@dataclass(frozen=True)
class ReLULayer(Layer):
    """Elementwise activation; shape-preserving and weight-free."""

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        return in_shape

    def macs(self, in_shape: TensorShape) -> int:
        return 0

    def weight_count(self, in_shape: TensorShape) -> int:
        return 0


@dataclass(frozen=True)
class LRNLayer(Layer):
    """Local response normalization (AlexNet/GoogLeNet); shape-preserving."""

    local_size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        return in_shape

    def macs(self, in_shape: TensorShape) -> int:
        return 0

    def weight_count(self, in_shape: TensorShape) -> int:
        return 0


@dataclass(frozen=True)
class ConcatLayer(Layer):
    """Depth-wise concatenation joining parallel branches (inception modules).

    ``branch_depths`` records the expected depth of each incoming branch so
    the network validator can check the wiring.
    """

    branch_depths: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.branch_depths:
            raise ShapeError(f"{self.name}: concat needs at least one branch")
        if any(d <= 0 for d in self.branch_depths):
            raise ShapeError(f"{self.name}: branch depths must be positive")

    def output_depth(self) -> int:
        return sum(self.branch_depths)

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        # in_shape carries the spatial extent shared by all branches.
        return TensorShape(self.output_depth(), in_shape.height, in_shape.width)

    def macs(self, in_shape: TensorShape) -> int:
        return 0

    def weight_count(self, in_shape: TensorShape) -> int:
        return 0


@dataclass(frozen=True)
class EltwiseAddLayer(Layer):
    """Elementwise sum of two (or more) branches — residual connections.

    All inputs must share the same shape; the output keeps it.  Introduced
    for ResNet-style topologies (contemporaneous with the paper), which
    stress exactly the corner the fuzzer found: strided 1x1 projection
    convolutions on the shortcut path.
    """

    branch_count: int = 2

    def __post_init__(self) -> None:
        if self.branch_count < 2:
            raise ShapeError(f"{self.name}: eltwise add needs >= 2 branches")

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        return in_shape

    def macs(self, in_shape: TensorShape) -> int:
        # additions, not MACs — consistent with pooling's treatment
        return 0

    def weight_count(self, in_shape: TensorShape) -> int:
        return 0


def with_name(layer: Layer, name: str) -> Layer:
    """Return a copy of ``layer`` renamed to ``name``."""
    return replace(layer, name=name)
