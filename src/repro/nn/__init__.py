"""Neural-network workload model: layers, networks, and the benchmark zoo."""

from repro.nn.layers import (
    ConcatLayer,
    EltwiseAddLayer,
    ConvLayer,
    FCLayer,
    Layer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    TensorShape,
    conv_output_hw,
)
from repro.nn.network import LayerContext, Network, NetworkStatsSummary
from repro.nn.stats import LayerStats, network_stats, render_network_stats

__all__ = [
    "ConcatLayer",
    "EltwiseAddLayer",
    "ConvLayer",
    "FCLayer",
    "Layer",
    "LRNLayer",
    "PoolLayer",
    "ReLULayer",
    "TensorShape",
    "conv_output_hw",
    "LayerContext",
    "Network",
    "NetworkStatsSummary",
    "LayerStats",
    "network_stats",
    "render_network_stats",
]
