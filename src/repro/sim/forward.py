"""Whole-network forward propagation over the layer DAG.

Executes a :class:`~repro.nn.network.Network` numerically, with the conv
layers computed either by the reference convolution or by a chosen scheme's
loop nest (:mod:`repro.sim.functional`) — so integration tests can run a
full AlexNet-shaped forward pass under kernel-partitioning and compare
against the reference end to end.

Weights are synthetic (the paper's cycle/energy results are data-independent;
numerical equivalence is what matters — see DESIGN.md's substitution table).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.nn.layers import (
    ConcatLayer,
    ConvLayer,
    EltwiseAddLayer,
    FCLayer,
    Layer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
)
from repro.nn.network import Network
from repro.sim.functional import (
    conv_via_im2col,
    conv_via_inter_improved,
    conv_via_partition,
    reference_conv,
)
from repro.tiling.unroll import pad_input

__all__ = [
    "init_weights",
    "forward",
    "pool_forward",
    "lrn_forward",
    "CONV_EXECUTORS",
]

ConvExecutor = Callable[..., np.ndarray]

CONV_EXECUTORS: Dict[str, ConvExecutor] = {
    "reference": reference_conv,
    "intra": conv_via_im2col,
    "partition": conv_via_partition,
    "inter-improved": conv_via_inter_improved,
    # the original inter-kernel order accumulates the same products in a
    # different sequence; numerically it coincides with the reference order
    "inter": reference_conv,
}


def init_weights(net: Network, seed: int = 0, scale: float = 0.1) -> Dict[str, dict]:
    """Deterministic synthetic parameters for every weighted layer."""
    rng = np.random.default_rng(seed)
    params: Dict[str, dict] = {}
    for ctx in net.contexts():
        layer = ctx.layer
        if isinstance(layer, ConvLayer):
            w = rng.standard_normal(
                (
                    layer.out_maps,
                    layer.in_maps // layer.groups,
                    layer.kernel,
                    layer.kernel,
                )
            ) * scale
            b = rng.standard_normal(layer.out_maps) * scale if layer.bias else None
            params[layer.name] = {"weights": w, "bias": b}
        elif isinstance(layer, FCLayer):
            w = rng.standard_normal(
                (layer.out_features, ctx.in_shape.elements)
            ) * scale
            b = (
                rng.standard_normal(layer.out_features) * scale
                if layer.bias
                else None
            )
            params[layer.name] = {"weights": w, "bias": b}
    return params


def pool_forward(layer: PoolLayer, data: np.ndarray) -> np.ndarray:
    """Max/avg pooling with optional Caffe-style ceil mode."""
    padded = pad_input(data, layer.pad)
    d, h, w = padded.shape
    if layer.ceil_mode:
        import math

        oh = math.ceil((h - layer.kernel) / layer.stride) + 1
        ow = math.ceil((w - layer.kernel) / layer.stride) + 1
        # ceil mode may start a window that runs past the edge: extend with
        # the neutral element (-inf for max, 0 for avg handled via counts)
        need_h = (oh - 1) * layer.stride + layer.kernel
        need_w = (ow - 1) * layer.stride + layer.kernel
        if need_h > h or need_w > w:
            fill = -np.inf if layer.mode == "max" else 0.0
            ext = np.full((d, max(need_h, h), max(need_w, w)), fill)
            ext[:, :h, :w] = padded
            padded = ext
    else:
        oh = (h - layer.kernel) // layer.stride + 1
        ow = (w - layer.kernel) // layer.stride + 1
    out = np.empty((d, oh, ow), dtype=padded.dtype)
    for oy in range(oh):
        iy = oy * layer.stride
        for ox in range(ow):
            ix = ox * layer.stride
            window = padded[:, iy : iy + layer.kernel, ix : ix + layer.kernel]
            if layer.mode == "max":
                out[:, oy, ox] = window.max(axis=(1, 2))
            else:
                out[:, oy, ox] = window.mean(axis=(1, 2))
    return out


def lrn_forward(layer: LRNLayer, data: np.ndarray) -> np.ndarray:
    """Across-channel local response normalization (AlexNet formula)."""
    d = data.shape[0]
    half = layer.local_size // 2
    sq = data ** 2
    out = np.empty_like(data)
    for c in range(d):
        lo, hi = max(0, c - half), min(d, c + half + 1)
        denom = (1.0 + (layer.alpha / layer.local_size) * sq[lo:hi].sum(axis=0)) ** layer.beta
        out[c] = data[c] / denom
    return out


def _apply_layer(
    layer: Layer,
    inputs,
    params: Dict[str, dict],
    conv_executor: ConvExecutor,
) -> np.ndarray:
    if isinstance(layer, ConvLayer):
        p = params[layer.name]
        return conv_executor(
            inputs[0],
            p["weights"],
            p["bias"],
            layer.stride,
            layer.pad,
            layer.groups,
        )
    if isinstance(layer, PoolLayer):
        return pool_forward(layer, inputs[0])
    if isinstance(layer, ReLULayer):
        return np.maximum(inputs[0], 0.0)
    if isinstance(layer, LRNLayer):
        return lrn_forward(layer, inputs[0])
    if isinstance(layer, ConcatLayer):
        return np.concatenate(inputs, axis=0)
    if isinstance(layer, EltwiseAddLayer):
        total = inputs[0]
        for branch in inputs[1:]:
            total = total + branch
        return total
    if isinstance(layer, FCLayer):
        p = params[layer.name]
        flat = inputs[0].reshape(-1)
        out = p["weights"] @ flat
        if p["bias"] is not None:
            out = out + p["bias"]
        return out.reshape(layer.out_features, 1, 1)
    raise ConfigError(f"no executor for layer type {type(layer).__name__}")


def forward(
    net: Network,
    image: np.ndarray,
    params: Optional[Dict[str, dict]] = None,
    conv_scheme: str = "reference",
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Run inference; returns every layer's activation keyed by layer name.

    ``conv_scheme`` selects the loop nest used for conv layers — running the
    same network under ``"reference"`` and ``"partition"`` and comparing
    activations is the end-to-end version of the Fig. 5(d) equivalence.
    """
    if image.shape != net.input_shape.as_tuple():
        raise ShapeError(
            f"image shape {image.shape} != network input "
            f"{net.input_shape.as_tuple()}"
        )
    try:
        executor = CONV_EXECUTORS[conv_scheme]
    except KeyError:
        raise ConfigError(
            f"unknown conv scheme {conv_scheme!r}; choose from "
            f"{sorted(CONV_EXECUTORS)}"
        ) from None
    if params is None:
        params = init_weights(net, seed=seed)
    activations: Dict[str, np.ndarray] = {"__input__": image}
    for layer in net:
        inputs = [activations[src] for src in net.input_names(layer.name)]
        result = _apply_layer(layer, inputs, params, executor)
        expected = net.shape_of(layer.name).as_tuple()
        if result.shape != expected:
            raise ShapeError(
                f"{layer.name}: executor produced {result.shape}, "
                f"shape inference said {expected}"
            )
        activations[layer.name] = result
    return activations
