"""External-memory layout: where every tensor lives in DRAM.

The compiler so far moves *counts* of words; a real control unit needs
*addresses*.  This module allocates the external memory map for a planned
network run:

* every conv layer's weight (and bias) tensor gets a static region;
* activations get regions in the layout the plan assigned (inter-order or
  intra-order), and — since layer ``i``'s input is dead once layer ``i+1``
  has consumed it — activation regions are double-buffered: layers
  alternate between two arenas sized by the largest producer/consumer pair
  (classic ping-pong allocation), instead of summing every activation.

The allocator checks its own invariants (alignment, no overlap, arena
sufficiency) and the tests re-check them independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigError
from repro.nn.layers import ConvLayer
from repro.nn.network import Network
from repro.sim.trace import NetworkRun
from repro.tiling.layout import Layout

__all__ = ["Region", "MemoryMap", "allocate_memory_map"]


@dataclass(frozen=True)
class Region:
    """One allocated tensor region (word addresses, half-open)."""

    name: str
    kind: str  # "weights" | "activation" | "input"
    base: int
    words: int
    layout: Layout

    @property
    def end(self) -> int:
        return self.base + self.words

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end


@dataclass
class MemoryMap:
    """The allocated external-memory plan."""

    regions: List[Region]
    total_words: int
    arena_words: int

    def region(self, name: str) -> Region:
        for r in self.regions:
            if r.name == name:
                return r
        raise KeyError(name)

    def static_regions(self) -> List[Region]:
        return [r for r in self.regions if r.kind == "weights"]

    def activation_regions(self) -> List[Region]:
        return [r for r in self.regions if r.kind in ("activation", "input")]

    def validate(self) -> None:
        """Assert the map's invariants (no overlap among live pairs)."""
        statics = self.static_regions()
        for i, a in enumerate(statics):
            for b in statics[i + 1 :]:
                if a.overlaps(b):
                    raise ConfigError(f"static regions overlap: {a.name}/{b.name}")
        # activations ping-pong: adjacent producer/consumer pairs must not
        # overlap, and no activation may overlap any static region
        acts = self.activation_regions()
        for a, b in zip(acts, acts[1:]):
            if a.overlaps(b):
                raise ConfigError(
                    f"adjacent activations overlap: {a.name}/{b.name}"
                )
        for act in acts:
            for static in statics:
                if act.overlaps(static):
                    raise ConfigError(
                        f"activation {act.name} overlaps weights {static.name}"
                    )


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def allocate_memory_map(
    net: Network, run: NetworkRun, alignment: int = 64
) -> MemoryMap:
    """Allocate DRAM regions for a planned run.

    ``alignment`` is in words (64 = one DRAM burst of 16-bit words at the
    default burst size), applied to every region base.
    """
    if alignment <= 0:
        raise ConfigError("alignment must be positive")
    layouts = {r.layer_name: (r.input_layout, r.output_layout) for r in run.layers}
    contexts = {c.name: c for c in net.conv_contexts()}

    regions: List[Region] = []
    cursor = 0

    # static weight regions, packed front-to-back
    for result in run.layers:
        ctx = contexts.get(result.layer_name)
        if ctx is None or not isinstance(ctx.layer, ConvLayer):
            continue
        words = ctx.weights
        regions.append(
            Region(
                name=f"{result.layer_name}/weights",
                kind="weights",
                base=cursor,
                words=words,
                layout=Layout.INTRA,
            )
        )
        cursor = _align(cursor + words, alignment)

    # activation ping-pong arenas: size = the largest activation involved
    act_sizes = []
    conv_results = [r for r in run.layers if r.layer_name in contexts]
    for result in conv_results:
        ctx = contexts[result.layer_name]
        act_sizes.append(ctx.in_shape.elements)
        act_sizes.append(ctx.out_shape.elements)
    arena_words = _align(max(act_sizes, default=0), alignment)
    arena_base = [cursor, _align(cursor + arena_words, alignment)]

    # the network input starts in arena 0; each conv's output goes to the
    # other arena, alternating
    side = 0
    if conv_results:
        first = contexts[conv_results[0].layer_name]
        regions.append(
            Region(
                name="__input__",
                kind="input",
                base=arena_base[side],
                words=first.in_shape.elements,
                layout=layouts[conv_results[0].layer_name][0],
            )
        )
    for result in conv_results:
        ctx = contexts[result.layer_name]
        side = 1 - side
        regions.append(
            Region(
                name=f"{result.layer_name}/output",
                kind="activation",
                base=arena_base[side],
                words=ctx.out_shape.elements,
                layout=layouts[result.layer_name][1],
            )
        )

    total = arena_base[1] + arena_words
    memory_map = MemoryMap(
        regions=regions, total_words=total, arena_words=arena_words
    )
    memory_map.validate()
    return memory_map
