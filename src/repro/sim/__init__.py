"""Simulation: run records, functional (numerical) execution, machine model."""

from repro.sim.event import PipelineTimeline, simulate_layer, simulate_run
from repro.sim.machine import Machine, MachineResult, RegionStats
from repro.sim.memorymap import MemoryMap, Region, allocate_memory_map
from repro.sim.trace import NetworkRun

__all__ = [
    "PipelineTimeline",
    "simulate_layer",
    "simulate_run",
    "MemoryMap",
    "Region",
    "allocate_memory_map",
    "Machine",
    "MachineResult",
    "RegionStats",
    "NetworkRun",
]
