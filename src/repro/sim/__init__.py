"""Simulation: run records, functional (numerical) execution, machine model."""

from repro.sim.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.sim.event import PipelineTimeline, simulate_layer, simulate_run
from repro.sim.machine import Machine, MachineResult, RegionStats
from repro.sim.memorymap import MemoryMap, Region, allocate_memory_map
from repro.sim.trace import NetworkRun

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "get_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
    "PipelineTimeline",
    "simulate_layer",
    "simulate_run",
    "MemoryMap",
    "Region",
    "allocate_memory_map",
    "Machine",
    "MachineResult",
    "RegionStats",
    "NetworkRun",
]
