"""Bit-exact integer datapath simulation of the 16-bit PE.

The floating-point equivalence tests in :mod:`repro.sim.functional` show the
schemes compute the same *real* function; this module goes one level lower
and executes convolution on the integer datapath the paper's PE actually
has — 16-bit fixed-point operands, full-width products, a wide accumulator,
and a single saturating round back to 16 bits at the output.

Because integer addition is associative, the kernel-partitioned (Algorithm
1) and improved-inter accumulation orders are **bit-identical** to the
direct order on this datapath — no tolerance needed — which is the hardware
form of the paper's Fig. 5(d) claim.  Tests assert exact equality of the
output codes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.arch.fixedpoint import Q7_8, FixedPointFormat
from repro.errors import ShapeError
from repro.nn.layers import conv_output_hw
from repro.sim.backend import conv_window_view, resolve_backend, window_columns
from repro.tiling.partition import (
    pad_data_for_partition,
    partition_geometry,
    partition_weights,
)
from repro.tiling.unroll import pad_input

__all__ = [
    "saturate",
    "requantize",
    "conv_codes_direct",
    "conv_codes_partitioned",
    "conv_codes_inter_improved",
]


def saturate(codes: np.ndarray, fmt: FixedPointFormat = Q7_8) -> np.ndarray:
    """Clamp integer codes into the format's representable range."""
    return np.clip(codes, fmt.min_int, fmt.max_int)


def requantize(
    accumulator: np.ndarray, fmt: FixedPointFormat = Q7_8
) -> np.ndarray:
    """Round a wide product-sum accumulator back to output codes.

    Products of two Qm.n codes carry ``2n`` fraction bits; the output stage
    shifts right by ``n`` with round-half-away (matching :func:`np.rint` on
    the equivalent real value) and saturates.
    """
    acc = np.asarray(accumulator, dtype=np.int64)
    half = 1 << (fmt.frac_bits - 1) if fmt.frac_bits else 0
    shifted = np.where(
        acc >= 0,
        (acc + half) >> fmt.frac_bits,
        -((-acc + half) >> fmt.frac_bits),
    )
    return saturate(shifted, fmt)


def _check(data_codes: np.ndarray, weight_codes: np.ndarray) -> None:
    if data_codes.ndim != 3 or weight_codes.ndim != 4:
        raise ShapeError("expected (D,H,W) data codes and (O,D,k,k) weight codes")
    if data_codes.shape[0] != weight_codes.shape[1]:
        raise ShapeError("depth mismatch between data and weights")
    if weight_codes.shape[-1] != weight_codes.shape[-2]:
        raise ShapeError("kernel must be square")


def conv_codes_direct(
    data_codes: np.ndarray,
    weight_codes: np.ndarray,
    bias_codes: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    fmt: FixedPointFormat = Q7_8,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Reference integer convolution: direct window order, wide accumulator."""
    _check(data_codes, weight_codes)
    k = weight_codes.shape[-1]
    padded = pad_input(data_codes.astype(np.int64), pad)
    _, h, w = padded.shape
    oh = conv_output_hw(h, k, stride, 0)
    ow = conv_output_hw(w, k, stride, 0)
    dout = weight_codes.shape[0]
    wc = weight_codes.astype(np.int64)
    if resolve_backend(backend) == "vector":
        cols = window_columns(conv_window_view(padded, k, stride, oh, ow))
        acc = (cols @ wc.reshape(dout, -1).T).T.reshape(dout, oh, ow)
    else:
        acc = np.zeros((dout, oh, ow), dtype=np.int64)
        for oy in range(oh):
            iy = oy * stride
            for ox in range(ow):
                ix = ox * stride
                patch = padded[:, iy : iy + k, ix : ix + k]
                acc[:, oy, ox] = np.einsum("dhw,odhw->o", patch, wc)
    if bias_codes is not None:
        # bias is a Qm.n code; align it to the 2n-fraction accumulator
        acc += bias_codes.astype(np.int64)[:, None, None] << fmt.frac_bits
    return requantize(acc, fmt)


def conv_codes_partitioned(
    data_codes: np.ndarray,
    weight_codes: np.ndarray,
    bias_codes: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    fmt: FixedPointFormat = Q7_8,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Integer convolution in Algorithm 1's order (partition, accumulate)."""
    _check(data_codes, weight_codes)
    k = weight_codes.shape[-1]
    if stride >= k:
        return conv_codes_direct(
            data_codes, weight_codes, bias_codes, stride, pad, fmt, backend
        )
    geom = partition_geometry(k, stride)
    ks, g = geom.sub_kernel, geom.groups_per_side
    padded = pad_data_for_partition(data_codes.astype(np.int64), k, stride, pad)
    sub = partition_weights(weight_codes.astype(np.int64), stride)
    oh = conv_output_hw(data_codes.shape[1] + 2 * pad, k, stride, 0)
    ow = conv_output_hw(data_codes.shape[2] + 2 * pad, k, stride, 0)
    dout = weight_codes.shape[0]
    # the "output buffer" running sum of Algorithm 1, kept at accumulator width
    acc = np.zeros((dout, oh, ow), dtype=np.int64)
    if resolve_backend(backend) == "vector":
        din = data_codes.shape[0]
        for piece in range(geom.pieces):
            i, j = divmod(piece, g)
            cols = window_columns(
                conv_window_view(padded, ks, stride, oh, ow, i * ks, j * ks)
            )
            wmat = np.ascontiguousarray(
                sub[:, :, piece].reshape(dout, din * ks * ks)
            )
            acc += (cols @ wmat.T).T.reshape(dout, oh, ow)
    else:
        for piece in range(geom.pieces):
            i, j = divmod(piece, g)
            for oy in range(oh):
                iy = oy * stride + i * ks
                for ox in range(ow):
                    ix = ox * stride + j * ks
                    window = padded[:, iy : iy + ks, ix : ix + ks]
                    acc[:, oy, ox] += np.einsum(
                        "dhw,odhw->o", window, sub[:, :, piece]
                    )
    if bias_codes is not None:
        acc += bias_codes.astype(np.int64)[:, None, None] << fmt.frac_bits
    return requantize(acc, fmt)


def conv_codes_inter_improved(
    data_codes: np.ndarray,
    weight_codes: np.ndarray,
    bias_codes: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    fmt: FixedPointFormat = Q7_8,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Integer convolution in the Sec 4.2.2 partial-sum order.

    Already per-step vectorized (one strided-view ``einsum`` per kernel
    element); on the ``vector`` backend the ``k*k`` steps fuse into one
    im2col/GEMM — bit-identical, integer addition being associative.
    """
    _check(data_codes, weight_codes)
    k = weight_codes.shape[-1]
    padded = pad_input(data_codes.astype(np.int64), pad)
    oh = conv_output_hw(padded.shape[1], k, stride, 0)
    ow = conv_output_hw(padded.shape[2], k, stride, 0)
    dout = weight_codes.shape[0]
    wc = weight_codes.astype(np.int64)
    if resolve_backend(backend) == "vector":
        cols = window_columns(conv_window_view(padded, k, stride, oh, ow))
        acc = (cols @ wc.reshape(dout, -1).T).T.reshape(dout, oh, ow)
    else:
        acc = np.zeros((dout, oh, ow), dtype=np.int64)
        for u in range(k):
            for v in range(k):
                view = padded[
                    :,
                    u : u + (oh - 1) * stride + 1 : stride,
                    v : v + (ow - 1) * stride + 1 : stride,
                ]
                acc += np.einsum("dhw,od->ohw", view, wc[:, :, u, v])
    if bias_codes is not None:
        acc += bias_codes.astype(np.int64)[:, None, None] << fmt.frac_bits
    return requantize(acc, fmt)
