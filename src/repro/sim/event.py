"""Event-driven pipeline simulation of a layer's pass structure.

The analytical timing model says a layer takes ``max(compute, stream)``
cycles — the steady state of a double-buffered pipeline.  This module
checks that assumption from below: it simulates the actual pipeline, pass
by pass, with explicit resource dependencies:

* the DMA engine is serial: pass ``p+1``'s input burst starts only after
  pass ``p``'s burst finished (and after the host reshape produced it);
* the PE array is serial: pass ``p``'s compute starts when its own data is
  on chip *and* the previous pass's compute has retired (double buffering
  depth 2 — one buffer filling while one drains);
* the output drain rides the DMA engine after each pass's compute.

The recurrences:

    fill_done[p]    = max(fill_done[p-1], reshape_done[p]) + fill[p]
    compute_done[p] = max(compute_done[p-1], fill_done[p]) + compute[p]

Wall-clock is the last compute plus any residual drain.  As the pass count
grows, the result converges to ``max(total_compute, total_stream)`` plus a
one-pass startup bubble — the tests assert exactly that sandwich:

    analytical_max <= event_sim <= analytical_max + first_pass_bubble
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.isa.compiler import split_evenly
from repro.schemes.base import ScheduleResult
from repro.sim.trace import NetworkRun

__all__ = ["PassTiming", "PipelineTimeline", "simulate_layer", "simulate_run"]


@dataclass(frozen=True)
class PassTiming:
    """Resolved start/end times of one pass on each engine."""

    index: int
    fill_start: float
    fill_done: float
    compute_start: float
    compute_done: float


@dataclass(frozen=True)
class PipelineTimeline:
    """Full event timeline of one layer."""

    layer_name: str
    passes: List[PassTiming]
    drain_cycles: float
    total_cycles: float

    @property
    def startup_bubble(self) -> float:
        """Cycles before the PE array first fires (the pipeline fill)."""
        return self.passes[0].compute_start if self.passes else 0.0


def simulate_layer(
    result: ScheduleResult, passes: int = 8
) -> PipelineTimeline:
    """Simulate one layer's double-buffered pass pipeline.

    The layer's stream work (input DMA + host reshape) and compute are
    split evenly across ``passes``; the output drain of the final pass is
    charged after its compute (earlier drains hide behind later fills).
    """
    if passes <= 0:
        raise ConfigError("passes must be positive")
    config = result.config
    # stream side per pass: the input share of DMA plus the reshape,
    # pipelined against each other -> per-pass stream latency is their max
    out_drain = max(
        0,
        result.dram_words
        - result.accesses["input"].stores
        - result.accesses["weight"].stores,
    )
    inbound_words = result.dram_words - out_drain
    fill_cycles = [
        w / config.dram_words_per_cycle
        for w in split_evenly(inbound_words, passes)
    ]
    reshape_cycles = [
        c for c in split_evenly(int(round(result.reshape_cycles)), passes)
    ]
    compute_cycles = [float(c) for c in split_evenly(result.operations, passes)]

    timeline: List[PassTiming] = []
    fill_done_prev = 0.0
    compute_done_prev = 0.0
    reshape_done = 0.0
    for p in range(passes):
        # host reshape is itself a serial engine feeding the DMA
        reshape_done = reshape_done + reshape_cycles[p]
        fill_start = max(fill_done_prev, reshape_done - fill_cycles[p])
        fill_start = max(fill_start, fill_done_prev)
        fill_done = max(fill_start + fill_cycles[p], reshape_done)
        compute_start = max(compute_done_prev, fill_done)
        compute_done = compute_start + compute_cycles[p]
        timeline.append(
            PassTiming(
                index=p,
                fill_start=fill_start,
                fill_done=fill_done,
                compute_start=compute_start,
                compute_done=compute_done,
            )
        )
        fill_done_prev = fill_done
        compute_done_prev = compute_done

    drain = (out_drain / config.dram_words_per_cycle) / passes
    total = compute_done_prev + drain
    return PipelineTimeline(
        layer_name=result.layer_name,
        passes=timeline,
        drain_cycles=drain,
        total_cycles=total,
    )


def simulate_run(run: NetworkRun, passes: int = 8) -> float:
    """Event-simulated wall clock of a whole run (layers back to back)."""
    total = run.input_reorder_words / run.config.dram_words_per_cycle
    for result in run.layers:
        total += simulate_layer(result, passes=passes).total_cycles
    return total
