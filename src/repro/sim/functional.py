"""Functional (numerical) execution of every scheme's loop nest.

The paper's central correctness claim is Fig. 5(d): kernel-partitioning's
``g*g`` partial output maps sum to *exactly* the direct convolution.  This
module executes each scheme's data path with numpy and lets the test suite
assert bit-identical results against a reference convolution — for the
partitioned order (Algorithm 1), the improved inter-kernel partial-sum order
(Sec 4.2.2), and the unrolled (im2col) intra-kernel order.

All functions take planar ``(Din, H, W)`` activations and
``(Dout, Din/groups, k, k)`` weights, mirroring
:class:`~repro.nn.layers.ConvLayer`.

Every path executes on one of two backends (see :mod:`repro.sim.backend`):
``loop``, the original Python loop nests kept verbatim as the bit-exactness
oracle, and ``vector``, a batched im2col/GEMM fast path.  On int64
fixed-point codes the backends are bit-identical — integer accumulation is
associative, so reordering the reductions cannot change a single bit — and
the 40-bit-accumulator psum injection semantics below are preserved: the
per-step accumulation structure (group steps for im2col, Algorithm 1 piece
steps for partition) is the same on both backends, so an ``on_psum`` flip
lands on the same live values.  The improved inter-kernel path drops to its
stepwise order whenever an ``inject`` hook is present, because its vector
form fuses the ``k*k`` add-and-store steps into one GEMM.

Every scheme path (but *not* :func:`reference_conv`, which stays golden)
accepts an optional ``inject`` hook object — duck-typed to
:class:`repro.integrity.sdc.SDCInjector` — with four call sites:

* ``on_activation(data)`` / ``on_weight(weights)`` — called once on the
  raw (pre-padding) operands; return a possibly-corrupted copy;
* ``on_psum(acc, step, steps_total)`` — called after each partial-sum
  accumulation step with the live accumulator (corrupted in place);
* ``on_output(out)`` — called on the final output array after bias.

Hooks let the integrity layer flip single bits at the exact buffer the
fault model names without the numerics code knowing anything about faults.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.integrity.sdc import SDCInjector

from repro.errors import ShapeError
from repro.nn.layers import ConvLayer, TensorShape, conv_output_hw
from repro.sim.backend import conv_window_view, resolve_backend, window_columns
from repro.tiling.partition import (
    pad_data_for_partition,
    partition_geometry,
    partition_weights,
)
from repro.tiling.unroll import im2col, pad_input

__all__ = [
    "reference_conv",
    "conv_via_im2col",
    "conv_via_partition",
    "conv_via_inter_improved",
    "partition_partial_maps",
    "random_conv_tensors",
]


def _check_conv_args(
    data: np.ndarray, weights: np.ndarray, stride: int, pad: int, groups: int
) -> None:
    if data.ndim != 3:
        raise ShapeError(f"data must be (Din, H, W), got {data.shape}")
    if weights.ndim != 4:
        raise ShapeError(f"weights must be (Dout, Din/g, k, k), got {weights.shape}")
    dout, din_g, k1, k2 = weights.shape
    if k1 != k2:
        raise ShapeError(f"kernel must be square, got {k1}x{k2}")
    if data.shape[0] % groups or dout % groups:
        raise ShapeError("groups must divide Din and Dout")
    if data.shape[0] // groups != din_g:
        raise ShapeError(
            f"weights expect {din_g} maps per group, data has "
            f"{data.shape[0] // groups}"
        )
    if stride <= 0 or pad < 0:
        raise ShapeError("stride must be positive and pad non-negative")


def _gemm_conv_group(
    padded_group: np.ndarray,
    weights_group: np.ndarray,
    kernel: int,
    stride: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """One group's direct conv as im2col/GEMM: ``(dout_g, oh, ow)``."""
    cols = window_columns(
        conv_window_view(padded_group, kernel, stride, oh, ow)
    )  # (oh*ow, din_g*k*k)
    wmat = weights_group.reshape(weights_group.shape[0], -1)
    return (cols @ wmat.T).T.reshape(weights_group.shape[0], oh, ow)


def reference_conv(
    data: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Direct convolution — the golden reference for every scheme.

    Computed in float64 (or the input dtype if integer) with the canonical
    sliding-window order on the ``loop`` backend, or as a batched
    im2col/GEMM on ``vector`` (bit-identical on integer codes).
    """
    _check_conv_args(data, weights, stride, pad, groups)
    dout = weights.shape[0]
    k = weights.shape[-1]
    padded = pad_input(data, pad)
    din, h, w = padded.shape
    oh = conv_output_hw(h, k, stride, 0)
    ow = conv_output_hw(w, k, stride, 0)
    out = np.zeros((dout, oh, ow), dtype=np.result_type(data, weights))
    din_g = din // groups
    dout_g = dout // groups
    if resolve_backend(backend) == "vector":
        for g in range(groups):
            out[g * dout_g : (g + 1) * dout_g] = _gemm_conv_group(
                padded[g * din_g : (g + 1) * din_g],
                weights[g * dout_g : (g + 1) * dout_g],
                k,
                stride,
                oh,
                ow,
            )
    else:
        for g in range(groups):
            dslice = padded[g * din_g : (g + 1) * din_g]
            for oc in range(g * dout_g, (g + 1) * dout_g):
                kern = weights[oc]
                for oy in range(oh):
                    iy = oy * stride
                    for ox in range(ow):
                        ix = ox * stride
                        patch = dslice[:, iy : iy + k, ix : ix + k]
                        out[oc, oy, ox] = np.sum(patch * kern)
    if bias is not None:
        out += bias[:, None, None]
    return out


def conv_via_im2col(
    data: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
    inject: Optional["SDCInjector"] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Convolution executed as the intra-kernel unrolling scheme: im2col + GEMM.

    The backends differ only in how the unrolled matrix is built (the
    ``vector`` unroller is byte-identical to the loop one), so the GEMM,
    the per-group psum hook sites, and the output are the same on both.
    """
    _check_conv_args(data, weights, stride, pad, groups)
    if inject is not None:
        data = inject.on_activation(data)
        weights = inject.on_weight(weights)
    dout = weights.shape[0]
    k = weights.shape[-1]
    din = data.shape[0]
    din_g = din // groups
    dout_g = dout // groups
    oh = conv_output_hw(data.shape[1] + 2 * pad, k, stride, 0)
    ow = conv_output_hw(data.shape[2] + 2 * pad, k, stride, 0)
    out = np.zeros((dout, oh, ow), dtype=np.result_type(data, weights))
    for g in range(groups):
        dslice = data[g * din_g : (g + 1) * din_g]
        cols = im2col(dslice, k, stride, pad, backend=backend)  # (oh*ow, din_g*k*k)
        wmat = weights[g * dout_g : (g + 1) * dout_g].reshape(dout_g, -1)
        prod = cols @ wmat.T  # (oh*ow, dout_g)
        if inject is not None:
            inject.on_psum(prod, g, groups)
        out[g * dout_g : (g + 1) * dout_g] = prod.T.reshape(dout_g, oh, ow)
    if bias is not None:
        out += bias[:, None, None]
    if inject is not None:
        inject.on_output(out)
    return out


def partition_partial_maps(
    data: np.ndarray,
    weights: np.ndarray,
    stride: int,
    pad: int = 0,
    backend: Optional[str] = None,
) -> np.ndarray:
    """The ``g*g`` partial output maps of Fig. 5(d) (single group).

    Returns an array of shape ``(G, Dout, oh, ow)``; summing over axis 0
    reproduces the direct convolution.  Exposed separately so tests can
    check the *intermediate* structure the paper draws, not just the sum.

    The ``vector`` backend computes each piece as one im2col/GEMM over its
    non-overlapping sub-kernel scan (all pieces batched into a single
    ``matmul``); per-element the products and sums are the same, so the
    partial maps are bit-identical to the loop scan on integer codes.
    """
    k = weights.shape[-1]
    geom = partition_geometry(k, stride)
    ks = geom.sub_kernel
    g = geom.groups_per_side
    padded = pad_data_for_partition(data, k, stride, pad)
    sub = partition_weights(weights, stride)  # (Dout, Din, G, ks, ks)
    dout = weights.shape[0]
    base_h = data.shape[1] + 2 * pad
    base_w = data.shape[2] + 2 * pad
    oh = conv_output_hw(base_h, k, stride, 0)
    ow = conv_output_hw(base_w, k, stride, 0)
    if resolve_backend(backend) == "vector":
        din = data.shape[0]
        stack = np.empty(
            (geom.pieces, oh * ow, din * ks * ks), dtype=padded.dtype
        )
        for piece in range(geom.pieces):
            i, j = divmod(piece, g)
            stack[piece] = window_columns(
                conv_window_view(padded, ks, stride, oh, ow, i * ks, j * ks)
            )
        # (G, Din*ks*ks, Dout): piece G's sub-kernels as one GEMM operand
        wstack = np.ascontiguousarray(
            sub.transpose(2, 1, 3, 4, 0).reshape(geom.pieces, din * ks * ks, dout)
        )
        prod = stack @ wstack  # (G, oh*ow, Dout)
        return prod.transpose(0, 2, 1).reshape(geom.pieces, dout, oh, ow)
    partials = np.zeros(
        (geom.pieces, dout, oh, ow), dtype=np.result_type(data, weights)
    )
    for piece in range(geom.pieces):
        i, j = divmod(piece, g)
        oy0, ox0 = i * ks, j * ks
        # sub-kernel scan: stride == window size, windows never overlap
        for oy in range(oh):
            iy = oy * stride + oy0
            for ox in range(ow):
                ix = ox * stride + ox0
                window = padded[:, iy : iy + ks, ix : ix + ks]
                # one PE operation per (output map chunk): window x sub-kernel
                partials[piece, :, oy, ox] = np.einsum(
                    "dhw,odhw->o", window, sub[:, :, piece]
                )
    return partials


def conv_via_partition(
    data: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
    inject: Optional["SDCInjector"] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Convolution executed by Algorithm 1 (kernel partitioning).

    Follows the paper's accumulation order: piece 1's result is stored, each
    later piece's MAC results are added onto the running sum (lines 7-8).
    Layers with ``stride >= kernel`` cannot be partitioned (windows already
    do not overlap); they execute in the plain sliding-window order, the
    same fallback the planner applies (psum injection hooks do not fire on
    the fallback — there is no multi-piece accumulator to corrupt).

    Without an ``inject`` hook the ``vector`` backend fuses the whole piece
    accumulation into one direct GEMM — bit-identical on integer codes
    (Fig. 5(d) plus associativity).  Whenever a hook is present, both
    backends run the stepwise Algorithm 1 loop with identical per-piece
    psum hook sites (only the per-piece partial maps are vectorized), so
    injected faults land on the same live accumulators.
    """
    _check_conv_args(data, weights, stride, pad, groups)
    if inject is not None:
        data = inject.on_activation(data)
        weights = inject.on_weight(weights)
    if stride >= weights.shape[-1]:
        out = reference_conv(data, weights, bias, stride, pad, groups, backend)
        if inject is not None:
            inject.on_output(out)
        return out
    if inject is None and resolve_backend(backend) == "vector":
        return reference_conv(data, weights, bias, stride, pad, groups, "vector")
    din = data.shape[0]
    dout = weights.shape[0]
    din_g = din // groups
    dout_g = dout // groups
    pieces = partition_geometry(weights.shape[-1], stride).pieces
    pieces_out = []
    for g in range(groups):
        dslice = data[g * din_g : (g + 1) * din_g]
        wslice = weights[g * dout_g : (g + 1) * dout_g]
        partials = partition_partial_maps(dslice, wslice, stride, pad, backend)
        # Algorithm 1: accumulate r_{i/G} onto r_{(i-1)/G} in the output buffer
        acc = partials[0].copy()
        if inject is not None:
            inject.on_psum(acc, g * pieces, groups * pieces)
        for piece in range(1, partials.shape[0]):
            acc += partials[piece]
            if inject is not None:
                inject.on_psum(acc, g * pieces + piece, groups * pieces)
        pieces_out.append(acc)
    out = np.concatenate(pieces_out, axis=0)
    if bias is not None:
        out += bias[:, None, None]
    if inject is not None:
        inject.on_output(out)
    return out


def conv_via_inter_improved(
    data: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
    inject: Optional["SDCInjector"] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Convolution in the improved inter-kernel order (Sec 4.2.2).

    Outer loop over kernel elements ``(u, v)``; for each element the
    1/(k*k) partial sums of *all* output pixels and maps are add-and-stored
    onto the output buffer before the next element is visited.

    The ``vector`` backend fuses all ``k*k`` add-and-store steps into one
    GEMM — bit-identical on integer codes because integer addition is
    associative.  When an ``inject`` hook is present the stepwise order is
    always used (on either backend): the per-``(u, v)`` psum hook needs the
    live accumulator after each step, which the fused GEMM never
    materializes.
    """
    _check_conv_args(data, weights, stride, pad, groups)
    if inject is not None:
        data = inject.on_activation(data)
        weights = inject.on_weight(weights)
    din = data.shape[0]
    dout = weights.shape[0]
    k = weights.shape[-1]
    din_g = din // groups
    dout_g = dout // groups
    padded = pad_input(data, pad)
    oh = conv_output_hw(padded.shape[1], k, stride, 0)
    ow = conv_output_hw(padded.shape[2], k, stride, 0)
    out = np.zeros((dout, oh, ow), dtype=np.result_type(data, weights))
    if inject is None and resolve_backend(backend) == "vector":
        for g in range(groups):
            out[g * dout_g : (g + 1) * dout_g] = _gemm_conv_group(
                padded[g * din_g : (g + 1) * din_g],
                weights[g * dout_g : (g + 1) * dout_g],
                k,
                stride,
                oh,
                ow,
            )
        if bias is not None:
            out += bias[:, None, None]
        return out
    steps_total = k * k * groups
    for u in range(k):
        for v in range(k):
            # strided view of the input pixels this kernel element touches
            view = padded[
                :,
                u : u + (oh - 1) * stride + 1 : stride,
                v : v + (ow - 1) * stride + 1 : stride,
            ]
            for g in range(groups):
                dslice = view[g * din_g : (g + 1) * din_g]
                wvec = weights[g * dout_g : (g + 1) * dout_g, :, u, v]
                # add-and-store: accumulate the partial sums into "the buffer"
                out[g * dout_g : (g + 1) * dout_g] += np.einsum(
                    "dhw,od->ohw", dslice, wvec
                )
                if inject is not None:
                    inject.on_psum(
                        out[g * dout_g : (g + 1) * dout_g],
                        (u * k + v) * groups + g,
                        steps_total,
                    )
    if bias is not None:
        out += bias[:, None, None]
    if inject is not None:
        inject.on_output(out)
    return out


def random_conv_tensors(
    layer: ConvLayer,
    in_shape: TensorShape,
    seed: int = 0,
    scale: float = 1.0,
    rng: Optional[np.random.Generator] = None,
):
    """Deterministic random (data, weights, bias) for a conv layer.

    Dtype guarantee: all three tensors are ``float64`` standard normals
    scaled by ``scale`` (``bias`` is ``None`` when the layer has none).
    Determinism: tensors depend only on ``seed`` (an explicit ``rng``
    overrides it) — global numpy seeding is never consulted, so integrity
    tests can reproduce operands from the seed alone.  Passing a shared
    ``rng`` draws from that generator's stream instead, letting callers
    derive many layers' tensors from one seeded source.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    data = rng.standard_normal(in_shape.as_tuple()) * scale
    weights = rng.standard_normal(
        (layer.out_maps, layer.in_maps // layer.groups, layer.kernel, layer.kernel)
    ) * scale
    bias = rng.standard_normal(layer.out_maps) * scale if layer.bias else None
    return data, weights, bias
