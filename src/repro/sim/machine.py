"""The machine: executes macro instruction programs and tallies activity.

This is the interpreter for :mod:`repro.isa` programs — the Python stand-in
for the paper's VCS simulation of the Verilog accelerator.  It walks the
instruction stream, feeding the :class:`~repro.arch.pe.PEArray` and
:class:`~repro.arch.buffers.BufferSet` models, and reports wall-clock cycles
under the same overlap rule as the analytical schedules: within each SYNC
region, compute and the memory streams (DMA, host reshape) run concurrently
and the region takes the maximum of the two.

The cross-check test (``tests/integration``) asserts that executing a
compiled network program reproduces the planner's analytical totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.arch.buffers import AccessCounter, BufferSet
from repro.arch.config import AcceleratorConfig
from repro.arch.energy import EnergyBreakdown, EnergyModel
from repro.arch.pe import PEArray
from repro.errors import SimulationError
from repro.isa.instructions import Instruction, Opcode, Program

__all__ = ["Machine", "MachineResult", "RegionStats"]


@dataclass
class RegionStats:
    """Activity between two SYNC barriers (one layer, typically)."""

    compute_cycles: int = 0
    dma_words: int = 0
    host_cycles: int = 0

    def wall_clock(self, config: AcceleratorConfig) -> float:
        dma_cycles = self.dma_words / config.dram_words_per_cycle
        stream = max(dma_cycles, float(self.host_cycles))
        if config.overlap_streams:
            return max(float(self.compute_cycles), stream)
        return float(self.compute_cycles) + stream


@dataclass
class MachineResult:
    """Outcome of executing one program."""

    program_name: str
    config: AcceleratorConfig
    total_cycles: float
    compute_cycles: int
    useful_macs: int
    extra_adds: int
    dram_words: int
    accesses: Dict[str, AccessCounter]
    regions: List[RegionStats] = field(default_factory=list)
    instructions_executed: int = 0

    @property
    def buffer_accesses(self) -> int:
        return sum(c.total for c in self.accesses.values())

    @property
    def utilization(self) -> float:
        peak = self.compute_cycles * self.config.multipliers
        return self.useful_macs / peak if peak else 0.0

    def energy(self, model: EnergyModel = None) -> EnergyBreakdown:
        """Energy under the same conventions as NetworkRun.energy()."""
        if model is None:
            model = EnergyModel(self.config)
        return model.breakdown(
            operations=int(round(self.total_cycles)),
            accesses=self.accesses,
            dram_words=self.dram_words,
            extra_adds=self.extra_adds,
        )

    def milliseconds(self) -> float:
        return self.config.cycles_to_ms(self.total_cycles)


class Machine:
    """Interpreter for macro instruction programs."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config
        self.pe = PEArray(config)
        self.buffers = BufferSet.from_config(config)

    def reset(self) -> None:
        self.pe.reset()
        self.buffers.reset()

    def execute(self, program: Program) -> MachineResult:
        """Run ``program`` to completion and return its activity totals."""
        self.reset()
        regions: List[RegionStats] = []
        current = RegionStats()
        total_wall = 0.0
        dram_words = 0
        extra_adds = 0
        executed = 0

        for inst in program:
            executed += 1
            self._dispatch(inst, current)
            if inst.opcode is Opcode.ACCUMULATE:
                extra_adds += inst.operations
            if inst.is_dma:
                dram_words += inst.words
            if inst.opcode is Opcode.SYNC:
                total_wall += current.wall_clock(self.config)
                regions.append(current)
                current = RegionStats()

        # an unterminated trailing region still contributes
        if current.compute_cycles or current.dma_words or current.host_cycles:
            total_wall += current.wall_clock(self.config)
            regions.append(current)

        return MachineResult(
            program_name=program.name,
            config=self.config,
            total_cycles=total_wall,
            compute_cycles=self.pe.tally.operations,
            useful_macs=self.pe.tally.useful_macs,
            extra_adds=extra_adds,
            dram_words=dram_words,
            accesses=self.buffers.totals(),
            regions=regions,
            instructions_executed=executed,
        )

    def _dispatch(self, inst: Instruction, region: RegionStats) -> None:
        op = inst.opcode
        if op is Opcode.COMPUTE:
            self.pe.issue(inst.operations, inst.macs)
            region.compute_cycles += inst.operations
            return
        if op is Opcode.ACCUMULATE:
            # runs on the dedicated adder group, off the critical path
            return
        if op is Opcode.HOST_RESHAPE:
            region.host_cycles += inst.words
            return
        if op is Opcode.SYNC:
            return
        fill = inst.dma_fill_target
        if fill is not None:
            getattr(self.buffers, fill).store(inst.words)
            region.dma_words += inst.words
            return
        if op is Opcode.DMA_STORE_OUTPUT:
            self.buffers.output.load(inst.words)
            region.dma_words += inst.words
            return
        target = inst.buffer_target
        if target is not None:
            buffer = getattr(self.buffers, target)
            if inst.buffer_kind == "loads":
                buffer.load(inst.words)
            else:
                buffer.store(inst.words)
            return
        raise SimulationError(f"machine cannot execute opcode {op!r}")
