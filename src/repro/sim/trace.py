"""Run records: per-layer schedule results aggregated into network totals.

A :class:`NetworkRun` is what every experiment consumes: the ordered list of
per-layer :class:`~repro.schemes.base.ScheduleResult` records for one
(network, policy, configuration) triple, with totals for cycles, buffer
accesses, off-chip traffic, and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.arch.buffers import AccessCounter
from repro.arch.config import AcceleratorConfig
from repro.arch.energy import EnergyBreakdown, EnergyModel
from repro.schemes.base import ScheduleResult

__all__ = ["NetworkRun"]


@dataclass
class NetworkRun:
    """Aggregated result of scheduling a whole network under one policy."""

    network_name: str
    policy: str
    config: AcceleratorConfig
    layers: List[ScheduleResult] = field(default_factory=list)
    #: extra off-chip words for layout conversion of the raw network input
    input_reorder_words: int = 0

    def append(self, result: ScheduleResult) -> None:
        self.layers.append(result)

    # -- totals -------------------------------------------------------------

    @property
    def total_cycles(self) -> float:
        """Wall-clock cycles: layers execute back to back."""
        extra = self.input_reorder_words / self.config.dram_words_per_cycle
        return sum(r.total_cycles for r in self.layers) + extra

    @property
    def pipelined_cycles(self) -> float:
        """Lower bound with perfect *inter-layer* pipelining.

        total_cycles overlaps compute with streaming only within a layer;
        if layer i+1's DMA could also prefetch behind layer i's compute,
        the whole run would be bounded by whichever engine is busier
        overall: ``max(sum compute, sum stream)``.  The gap between this
        and total_cycles is the head/tail bubble a more aggressive control
        unit could recover (typically a few percent on the benchmarks)."""
        extra = self.input_reorder_words / self.config.dram_words_per_cycle
        compute = float(sum(r.operations for r in self.layers))
        stream = sum(r.stream_cycles for r in self.layers) + extra
        return max(compute, stream)

    @property
    def compute_cycles(self) -> int:
        return sum(r.operations for r in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(r.useful_macs for r in self.layers)

    @property
    def total_extra_adds(self) -> int:
        return sum(r.extra_adds for r in self.layers)

    @property
    def buffer_accesses(self) -> int:
        """Total on-chip buffer word accesses (Fig. 10's metric, in words)."""
        return sum(r.buffer_accesses for r in self.layers)

    @property
    def buffer_access_bits(self) -> int:
        return sum(r.buffer_access_bits for r in self.layers)

    @property
    def dram_words(self) -> int:
        """Accelerator DMA traffic.  The input layout reorder is host-side
        memory-to-memory work, charged in time (total_cycles) but not here."""
        return sum(r.dram_words for r in self.layers)

    def access_totals(self) -> Dict[str, AccessCounter]:
        """Access counters summed per buffer across layers."""
        totals: Dict[str, AccessCounter] = {}
        for r in self.layers:
            for name, counter in r.accesses.items():
                totals.setdefault(name, AccessCounter()).add(counter)
        return totals

    @property
    def utilization(self) -> float:
        """Network-level useful-MAC fraction of the multiplier-cycles."""
        peak = self.compute_cycles * self.config.multipliers
        if peak == 0:
            return 0.0
        return self.total_macs / peak

    def milliseconds(self) -> float:
        return self.config.cycles_to_ms(self.total_cycles)

    # -- energy ---------------------------------------------------------------

    def energy(self, model: EnergyModel = None) -> EnergyBreakdown:
        """Energy breakdown of the run.

        PE energy is charged over *wall-clock* cycles, not just compute
        cycles: the synthesized array is clocked (not gated) while the layer
        waits on DMA or host reshape, which is how a memory-bound scheme like
        unrolled-intra on VGG ends up *costing* PE energy relative to
        inter-kernel (the negative entries of Table 5).
        """
        if model is None:
            model = EnergyModel(self.config)
        clocked_cycles = int(round(self.total_cycles))
        return model.breakdown(
            operations=clocked_cycles,
            accesses=self.access_totals(),
            dram_words=self.dram_words,
            extra_adds=self.total_extra_adds,
        )

    def pe_energy_pj(self, model: EnergyModel = None) -> float:
        """PE-array energy alone (the Table 5 metric)."""
        return self.energy(model).pe_pj

    def layer(self, name: str) -> ScheduleResult:
        """Look up one layer's record by name."""
        for r in self.layers:
            if r.layer_name == name:
                return r
        raise KeyError(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkRun({self.network_name!r}, policy={self.policy!r}, "
            f"config={self.config.name}, layers={len(self.layers)}, "
            f"cycles={self.total_cycles:.3g})"
        )
