"""Functional-simulator backend selection: ``loop`` oracle vs ``vector`` fast path.

The numerical conv paths in :mod:`repro.sim.functional` (and the integer
datapath in :mod:`repro.sim.datapath`, the ABFT reductions in
:mod:`repro.integrity.abft`, and the unroller in
:mod:`repro.tiling.unroll`) each exist in two executions:

* ``loop`` — the original Python loop nests, kept verbatim.  They walk
  the paper's orders one output pixel / one accumulation step at a time
  and serve as the golden bit-exactness oracle.
* ``vector`` — batched NumPy im2col/GEMM: strided window views
  (:func:`numpy.lib.stride_tricks.sliding_window_view`) feed
  ``matmul``/``einsum`` so a whole output map is one matrix product.

In the int64 fixed-point code domain the two are **bit-identical**:
integer addition is associative (and wraps mod 2^64 consistently), so no
reordering of the partial-sum reductions can leak into the result.  The
cross-backend identity tests assert byte equality, not closeness.  On
float operands the vector backend is equivalent only up to summation
order (``allclose``), which is why the loop nests — not the float
semantics — are the oracle.

Selection, in priority order:

1. an explicit ``backend=`` argument on any functional-path call;
2. :func:`set_backend` / the :func:`use_backend` context manager
   (the CLI's ``--backend {loop,vector}`` flag calls :func:`set_backend`);
3. the ``REPRO_SIM_BACKEND`` environment variable;
4. the default, ``vector``.

The helpers at the bottom are the shared vectorization primitives: a
strided sliding-window view of a padded activation tensor and the
flattened GEMM operand it induces.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ConfigError

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "BACKEND_ENV_VAR",
    "get_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
    "conv_window_view",
    "window_columns",
]

#: the two functional-simulator executions
BACKENDS = ("loop", "vector")

#: used when neither an argument, set_backend, nor the env var chose one
DEFAULT_BACKEND = "vector"

#: environment override consulted once, on first use
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"

#: process-wide active backend; ``None`` means "not resolved yet"
_active: Optional[str] = None


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ConfigError(
            f"unknown simulator backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def get_backend() -> str:
    """The process-wide active backend (env var or default on first use)."""
    global _active
    if _active is None:
        env = os.environ.get(BACKEND_ENV_VAR)
        _active = _validate(env) if env else DEFAULT_BACKEND
    return _active


def set_backend(name: str) -> str:
    """Set the process-wide backend; returns the previous one."""
    global _active
    previous = get_backend()
    _active = _validate(name)
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily switch the process-wide backend (tests, oracle runs)."""
    previous = set_backend(name)
    try:
        yield _active  # type: ignore[misc]
    finally:
        set_backend(previous)


def resolve_backend(backend: Optional[str]) -> str:
    """An explicit per-call choice, or the process-wide active backend."""
    if backend is None:
        return get_backend()
    return _validate(backend)


# -- shared vectorization primitives --------------------------------------


def conv_window_view(
    padded: np.ndarray,
    kernel: int,
    stride: int,
    oh: int,
    ow: int,
    oy0: int = 0,
    ox0: int = 0,
) -> np.ndarray:
    """Read-only strided view of every conv window of a padded tensor.

    Returns shape ``(D, oh, ow, kernel, kernel)`` where entry
    ``[d, oy, ox]`` is the window at input offset
    ``(oy0 + oy*stride, ox0 + ox*stride)`` — no data is copied.
    """
    win = sliding_window_view(padded, (kernel, kernel), axis=(1, 2))
    return win[
        :,
        oy0 : oy0 + (oh - 1) * stride + 1 : stride,
        ox0 : ox0 + (ow - 1) * stride + 1 : stride,
    ]


def window_columns(windows: np.ndarray) -> np.ndarray:
    """Flatten a ``(D, oh, ow, k, k)`` window view into GEMM columns.

    Returns a contiguous ``(oh*ow, D*k*k)`` matrix whose row ``r`` is the
    receptive field of output pixel ``r`` in row-major output order — the
    exact byte layout of the loop-backend :func:`repro.tiling.unroll.im2col`.
    """
    d, oh, ow, k, _ = windows.shape
    return np.ascontiguousarray(windows.transpose(1, 2, 0, 3, 4)).reshape(
        oh * ow, d * k * k
    )
