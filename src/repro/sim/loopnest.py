"""Loop-nest enumeration: the schedules, one array cycle at a time.

The analytical schemes (:mod:`repro.schemes`) compute operation counts in
closed form; the machine (:mod:`repro.sim.machine`) replays those counts.
This module provides the third, fully independent derivation: generators
that *enumerate* each scheme's loop nest micro-operation by
micro-operation — every yielded :class:`MicroOp` is one clock of the PE
array, carrying exactly which input positions and weight entries it
consumes and how many useful MACs it performs.

Tests assert, for small layers, that

* the number of yielded ops equals the closed-form ``operations``;
* the summed ``useful_macs`` equals the layer's MAC count (for the
  partitioned nest this exercises the zero-pad accounting non-trivially);
* no op exceeds the array's physical limits (``Tin`` data words,
  ``Tin*Tout`` weights, ``Tin*Tout`` MACs);
* the union of touched input positions is exactly the layer's receptive
  coverage.

Enumeration is O(operations) Python, so it is only for test-sized layers —
which is the point: it validates the formulas the fast paths rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Sequence, Tuple

from repro.arch.config import AcceleratorConfig
from repro.errors import ScheduleError
from repro.nn.network import LayerContext
from repro.schemes.base import group_geometry
from repro.tiling.partition import partition_geometry

__all__ = ["MicroOp", "enumerate_inter", "enumerate_intra", "enumerate_partition"]

#: an input position: (map index, row, col) in the padded input frame
Position = Tuple[int, int, int]


@dataclass(frozen=True)
class MicroOp:
    """One PE-array cycle of a schedule."""

    #: input positions consumed this cycle (<= Tin)
    data: FrozenSet[Position]
    #: number of weight entries consumed this cycle (<= Tin * Tout)
    weight_count: int
    #: multiplies contributing to a real output this cycle
    useful_macs: int


def _chunks(total: int, size: int) -> List[range]:
    return [range(lo, min(lo + size, total)) for lo in range(0, total, size)]


def enumerate_inter(
    ctx: LayerContext, config: AcceleratorConfig
) -> Iterator[MicroOp]:
    """The inter-kernel loop nest (depth-parallel, accumulate in PE)."""
    geom = group_geometry(ctx)
    for group in range(geom.groups):
        base_map = group * geom.d
        for oc_chunk in _chunks(geom.dout_g, config.tout):
            for oy in range(geom.oy):
                for ox in range(geom.ox):
                    for u in range(geom.k):
                        for v in range(geom.k):
                            for d_chunk in _chunks(geom.d, config.tin):
                                data = frozenset(
                                    (base_map + c, oy * geom.s + u, ox * geom.s + v)
                                    for c in d_chunk
                                )
                                lanes = len(oc_chunk)
                                yield MicroOp(
                                    data=data,
                                    weight_count=len(d_chunk) * lanes,
                                    useful_macs=len(d_chunk) * lanes,
                                )


def enumerate_intra(
    ctx: LayerContext, config: AcceleratorConfig
) -> Iterator[MicroOp]:
    """The intra-kernel loop nest (receptive-field slices, weight resident)."""
    geom = group_geometry(ctx)
    field = [
        (c, u, v)
        for c in range(geom.d)
        for u in range(geom.k)
        for v in range(geom.k)
    ]
    for group in range(geom.groups):
        base_map = group * geom.d
        for oc_chunk in _chunks(geom.dout_g, config.tout):
            for f_chunk in _chunks(len(field), config.tin):
                for oy in range(geom.oy):
                    for ox in range(geom.ox):
                        data = frozenset(
                            (
                                base_map + field[i][0],
                                oy * geom.s + field[i][1],
                                ox * geom.s + field[i][2],
                            )
                            for i in f_chunk
                        )
                        lanes = len(oc_chunk)
                        yield MicroOp(
                            data=data,
                            weight_count=len(f_chunk) * lanes,
                            useful_macs=len(f_chunk) * lanes,
                        )


def enumerate_partition(
    ctx: LayerContext, config: AcceleratorConfig
) -> Iterator[MicroOp]:
    """Algorithm 1's loop nest: pieces x maps x window scans.

    Multiplies against partition zero padding consume an array slot but are
    not useful MACs — summing ``useful_macs`` over the nest must still give
    exactly the layer's MAC count.
    """
    geom = group_geometry(ctx)
    if geom.s >= geom.k:
        raise ScheduleError("partition needs stride < kernel")
    pgeom = partition_geometry(geom.k, geom.s)
    ks, g = pgeom.sub_kernel, pgeom.groups_per_side
    window = ks * ks
    out_pixels = [(oy, ox) for oy in range(geom.oy) for ox in range(geom.ox)]

    def window_positions(piece: int, oy: int, ox: int):
        """(position, is_real_weight) pairs of one sub-window."""
        pi, pj = divmod(piece, g)
        for wy in range(ks):
            for wx in range(ks):
                ky, kx = pi * ks + wy, pj * ks + wx
                real = ky < geom.k and kx < geom.k
                pos = (oy * geom.s + pi * ks + wy, ox * geom.s + pj * ks + wx)
                yield pos, real

    for group in range(geom.groups):
        base_map = group * geom.d
        for piece in range(pgeom.pieces):
            for m in range(geom.d):
                for oc_chunk in _chunks(geom.dout_g, config.tout):
                    lanes = len(oc_chunk)
                    if window <= config.tin:
                        wpo = config.tin // window
                        for px_chunk in _chunks(len(out_pixels), wpo):
                            data = set()
                            real_weights = 0
                            for i in px_chunk:
                                oy, ox = out_pixels[i]
                                for pos, real in window_positions(piece, oy, ox):
                                    data.add((base_map + m, pos[0], pos[1]))
                                    if real:
                                        real_weights += 1
                            yield MicroOp(
                                data=frozenset(data),
                                weight_count=window * lanes,
                                useful_macs=real_weights * lanes,
                            )
                    else:
                        ops_per_window = math.ceil(window / config.tin)
                        for oy, ox in out_pixels:
                            entries = list(window_positions(piece, oy, ox))
                            for w_chunk in _chunks(len(entries), config.tin):
                                data = frozenset(
                                    (base_map + m,) + entries[i][0]
                                    for i in w_chunk
                                )
                                real = sum(1 for i in w_chunk if entries[i][1])
                                yield MicroOp(
                                    data=data,
                                    weight_count=len(w_chunk) * lanes,
                                    useful_macs=real * lanes,
                                )
                            assert len(_chunks(len(entries), config.tin)) == ops_per_window


def touched_input_positions(ctx: LayerContext) -> FrozenSet[Position]:
    """All padded-frame input positions any window of the layer reads."""
    geom = group_geometry(ctx)
    touched = set()
    for m in range(ctx.layer.in_maps):
        for oy in range(geom.oy):
            for ox in range(geom.ox):
                for u in range(geom.k):
                    for v in range(geom.k):
                        touched.add((m, oy * geom.s + u, ox * geom.s + v))
    return frozenset(touched)
