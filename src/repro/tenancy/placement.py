"""Cost-aware global placement of tenants onto fleet slots.

Given a heterogeneous fleet (:class:`~repro.tenancy.fleet.FleetSpec`) and
a set of tenant demands, the placer pins each tenant to one slot.  Fit is
judged by the planner itself: a tenant's service time on a slot is the
mix-weighted per-image latency from that slot config's
:class:`~repro.serve.batcher.BatchCoster` at the reference batch size, so
"this small chip is fine for AlexNet but not for VGG" falls out of
Algorithm 2 rather than a hand-written affinity table.

The algorithm is deliberately simple and fully deterministic:

1. **Greedy seeding** — tenants in descending heaviness (offered rate x
   best-case service time) each take the slot minimising
   ``(resulting slot utilisation, service time, slot id)``;
2. **Bounded local search** — single-tenant moves and pairwise swaps that
   strictly improve the objective ``(max slot utilisation, total
   SLO-normalised latency proxy)``, repeated until a fixed point or the
   pass budget runs out.

Ties always break toward the lower slot/tenant id, so the same inputs
place the same way on every run — the rollup JSON is byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.serve.batcher import BatchCoster
from repro.serve.workload import DEFAULT_SLO_MS, MixedTenantSpec, TenantSpec
from repro.tenancy.fleet import FleetSpec, Slot

__all__ = [
    "TenantDemand",
    "Placement",
    "place_tenants",
    "demand_from_tenants",
]

#: batch size at which slot fit is judged (the serving default max batch)
REFERENCE_BATCH = 16

#: local-search pass budget; placement must terminate deterministically
MAX_SEARCH_PASSES = 8


@dataclass(frozen=True)
class TenantDemand:
    """One tenant's offered load, as the placer sees it."""

    name: str
    rate_rps: float
    mix: Tuple[Tuple[str, float], ...]
    slo_ms: float = DEFAULT_SLO_MS

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant demand needs a non-empty name")
        if self.rate_rps <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: rate_rps must be positive, "
                f"got {self.rate_rps!r}"
            )
        if not self.mix:
            raise ConfigError(
                f"tenant {self.name!r}: demand needs a non-empty network mix"
            )
        for network, share in self.mix:
            if share <= 0:
                raise ConfigError(
                    f"tenant {self.name!r}: share for network {network!r} "
                    f"must be positive, got {share!r}"
                )
        if self.slo_ms <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: slo_ms must be positive, "
                f"got {self.slo_ms!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "rate_rps": round(self.rate_rps, 6),
            "mix": {n: round(s, 6) for n, s in self.mix},
            "slo_ms": round(self.slo_ms, 6),
        }


def demand_from_tenants(
    tenants: Sequence[object], rate_rps: float
) -> List[TenantDemand]:
    """Demands from :class:`TenantSpec` / :class:`MixedTenantSpec` lists.

    ``rate_rps`` is the total offered rate; each tenant gets its
    weight-proportional share, matching what the arrival generators emit.
    """
    if rate_rps <= 0:
        raise ConfigError(f"rate_rps must be positive, got {rate_rps!r}")
    specs = list(tenants)
    if not specs:
        raise ConfigError("demand_from_tenants needs at least one tenant")
    total = sum(t.weight for t in specs)
    out: List[TenantDemand] = []
    for t in specs:
        if isinstance(t, MixedTenantSpec):
            mix = t.mix
        elif isinstance(t, TenantSpec):
            mix = ((t.network, 1.0),)
        else:
            raise ConfigError(
                f"expected TenantSpec or MixedTenantSpec, got "
                f"{type(t).__name__}"
            )
        out.append(
            TenantDemand(
                name=t.name,
                rate_rps=rate_rps * t.weight / total,
                mix=mix,
                slo_ms=t.slo_ms,
            )
        )
    return out


class _FitModel:
    """Mix-weighted per-image service seconds, memoized per slot config."""

    def __init__(self, plan_policy: str = "adaptive-2") -> None:
        self.plan_policy = plan_policy
        self._costers: Dict[AcceleratorConfig, BatchCoster] = {}

    def coster(self, config: AcceleratorConfig) -> BatchCoster:
        coster = self._costers.get(config)
        if coster is None:
            coster = self._costers[config] = BatchCoster(
                config, policy=self.plan_policy
            )
        return coster

    def service_s(self, demand: TenantDemand, config: AcceleratorConfig) -> float:
        coster = self.coster(config)
        total_share = sum(share for _, share in demand.mix)
        return sum(
            share * coster.image_seconds(network, REFERENCE_BATCH)
            for network, share in demand.mix
        ) / total_share


@dataclass
class Placement:
    """The placer's verdict: tenant → slot, plus the fit accounting."""

    fleet: FleetSpec
    demands: List[TenantDemand]
    slot_of: Dict[str, int]
    service_s: Dict[str, Dict[int, float]]
    passes: int

    def slots(self) -> List[Slot]:
        return self.fleet.slots()

    def tenants_on(self, slot_id: int) -> List[str]:
        return sorted(t for t, s in self.slot_of.items() if s == slot_id)

    def slot_utilization(self, slot_id: int) -> float:
        """Offered work over capacity: sum of rate x service on the slot."""
        return sum(
            d.rate_rps * self.service_s[d.name][slot_id]
            for d in self.demands
            if self.slot_of[d.name] == slot_id
        )

    def max_utilization(self) -> float:
        return max(
            (self.slot_utilization(s.slot_id) for s in self.slots()),
            default=0.0,
        )

    def latency_proxy(self) -> float:
        """Sum over tenants of (service on chosen slot) / SLO."""
        return sum(
            self.service_s[d.name][self.slot_of[d.name]] / (d.slo_ms / 1e3)
            for d in self.demands
        )

    def objective(self) -> Tuple[float, float]:
        return (self.max_utilization(), self.latency_proxy())

    def to_dict(self) -> Dict[str, object]:
        slots = self.slots()
        util = {s.slot_id: self.slot_utilization(s.slot_id) for s in slots}
        return {
            "fleet": self.fleet.name,
            "passes": self.passes,
            "max_utilization": round(self.max_utilization(), 6),
            "latency_proxy": round(self.latency_proxy(), 6),
            "assignments": {
                d.name: {
                    "slot": self.slot_of[d.name],
                    "chip": slots[self.slot_of[d.name]].chip_id,
                    "geometry": slots[self.slot_of[d.name]].config.name,
                    "service_ms": round(
                        self.service_s[d.name][self.slot_of[d.name]] * 1e3, 6
                    ),
                }
                for d in sorted(self.demands, key=lambda d: d.name)
            },
            "slot_utilization": {
                str(s.slot_id): round(util[s.slot_id], 6) for s in slots
            },
        }


def place_tenants(
    fleet: FleetSpec,
    demands: Sequence[TenantDemand],
    plan_policy: str = "adaptive-2",
    fit: Optional[_FitModel] = None,
) -> Placement:
    """Deterministic greedy + local-search placement of tenants onto slots."""
    demands = list(demands)
    if not demands:
        raise ConfigError("place_tenants needs at least one tenant demand")
    seen = set()
    for d in demands:
        if d.name in seen:
            raise ConfigError(f"duplicate tenant demand {d.name!r}")
        seen.add(d.name)
    slots = fleet.slots()
    model = fit or _FitModel(plan_policy)
    service: Dict[str, Dict[int, float]] = {
        d.name: {
            s.slot_id: model.service_s(d, s.config) for s in slots
        }
        for d in demands
    }

    # -- greedy seeding: heaviest tenants first ---------------------------
    def heaviness(d: TenantDemand) -> float:
        return d.rate_rps * min(service[d.name].values())

    order = sorted(demands, key=lambda d: (-heaviness(d), d.name))
    slot_util: Dict[int, float] = {s.slot_id: 0.0 for s in slots}
    slot_of: Dict[str, int] = {}
    for d in order:
        best = min(
            slots,
            key=lambda s: (
                slot_util[s.slot_id] + d.rate_rps * service[d.name][s.slot_id],
                service[d.name][s.slot_id],
                s.slot_id,
            ),
        )
        slot_of[d.name] = best.slot_id
        slot_util[best.slot_id] += d.rate_rps * service[d.name][best.slot_id]

    placement = Placement(
        fleet=fleet,
        demands=demands,
        slot_of=slot_of,
        service_s=service,
        passes=0,
    )

    # -- bounded local search: moves then swaps, strictly improving -------
    names = sorted(slot_of)
    passes = 0
    improved = True
    while improved and passes < MAX_SEARCH_PASSES:
        improved = False
        passes += 1
        current = placement.objective()
        for name in names:
            home = slot_of[name]
            for s in slots:
                if s.slot_id == home:
                    continue
                slot_of[name] = s.slot_id
                candidate = placement.objective()
                if candidate < current:
                    current = candidate
                    home = s.slot_id
                    improved = True
                else:
                    slot_of[name] = home
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                sa, sb = slot_of[a], slot_of[b]
                if sa == sb:
                    continue
                slot_of[a], slot_of[b] = sb, sa
                candidate = placement.objective()
                if candidate < current:
                    current = candidate
                    improved = True
                else:
                    slot_of[a], slot_of[b] = sa, sb
    placement.passes = passes
    return placement
