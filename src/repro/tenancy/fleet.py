"""Heterogeneous fleet modelling: chip classes, counts, costs, slots.

A real deployment rarely buys one SKU: it mixes big chips, small chips,
chips degraded by PE masks, and — with :mod:`repro.tenancy.partition` —
chips carved into co-resident sub-accelerators.  A :class:`FleetSpec`
describes such a mix as a list of :class:`ChipSpec` entries and flattens
it into *slots*: independently-schedulable accelerator instances, each
carrying the config it runs, the physical chip it lives on, and its share
of that chip.  An unpartitioned chip is one whole-chip slot; a
partitioned chip is one slot per partition, all sharing a chip id (so
the serving layer charges the chip once).

``cost_weight`` normalises fleets for equal-budget comparisons: it
defaults to the chip's multiplier count over the 16-16 reference's 256,
so a 32-32 chip costs 4 reference chips and "equal chip-seconds" means
equal ``sum(weight x duration)`` across fleets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.config import AcceleratorConfig, named_config
from repro.errors import ConfigError
from repro.tenancy.partition import PartitionSpec, partition_chip

__all__ = [
    "REFERENCE_MULTIPLIERS",
    "ChipSpec",
    "Slot",
    "FleetSpec",
    "parse_fleet",
]

#: the 16-16 reference array; a chip's default cost is multipliers / 256
REFERENCE_MULTIPLIERS = 256


@dataclass(frozen=True)
class ChipSpec:
    """``count`` identical chips of one class, optionally partitioned."""

    name: str
    config: AcceleratorConfig
    count: int = 1
    cost_weight: Optional[float] = None
    partitions: Tuple[PartitionSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("chip class needs a non-empty name")
        if isinstance(self.count, bool) or not isinstance(self.count, int):
            raise ConfigError(
                f"chip class {self.name!r}: count must be an int, "
                f"got {self.count!r}"
            )
        if self.count <= 0:
            raise ConfigError(
                f"chip class {self.name!r}: count must be positive, "
                f"got {self.count!r}"
            )
        if self.cost_weight is not None and self.cost_weight <= 0:
            raise ConfigError(
                f"chip class {self.name!r}: cost_weight must be positive, "
                f"got {self.cost_weight!r}"
            )

    @property
    def weight(self) -> float:
        """Cost of one chip of this class, in 16-16 reference chips."""
        if self.cost_weight is not None:
            return self.cost_weight
        return self.config.multipliers / REFERENCE_MULTIPLIERS

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "geometry": self.config.name,
            "count": self.count,
            "weight": round(self.weight, 6),
        }
        if self.partitions:
            out["partitions"] = [p.to_dict() for p in self.partitions]
        return out


@dataclass(frozen=True)
class Slot:
    """One independently-schedulable accelerator instance in a fleet."""

    slot_id: int
    chip_id: str
    chip_class: str
    config: AcceleratorConfig
    share: float
    chip_weight: float
    partition: str = ""

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "slot": self.slot_id,
            "chip": self.chip_id,
            "class": self.chip_class,
            "geometry": self.config.name,
            "share": round(self.share, 6),
        }
        if self.partition:
            out["partition"] = self.partition
        return out


@dataclass(frozen=True)
class FleetSpec:
    """A named composition of chip classes."""

    name: str
    chips: Tuple[ChipSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("fleet needs a non-empty name")
        if not self.chips:
            raise ConfigError(
                f"fleet {self.name!r} needs at least one chip class"
            )
        seen = set()
        for chip in self.chips:
            if chip.name in seen:
                raise ConfigError(
                    f"fleet {self.name!r}: duplicate chip class {chip.name!r}"
                )
            seen.add(chip.name)

    def slots(self) -> List[Slot]:
        """Flatten to schedulable slots, deterministic order.

        Chip classes in declaration order, instances in index order,
        partitions in spec order — so slot ids are reproducible and the
        placer and serving layer agree on what slot 3 means.
        """
        out: List[Slot] = []
        for chip in self.chips:
            if chip.partitions:
                subs = partition_chip(chip.config, chip.partitions)
            else:
                subs = None
            for idx in range(chip.count):
                chip_id = f"{chip.name}{idx}"
                if subs is None:
                    out.append(
                        Slot(
                            slot_id=len(out),
                            chip_id=chip_id,
                            chip_class=chip.name,
                            config=chip.config,
                            share=1.0,
                            chip_weight=chip.weight,
                        )
                    )
                else:
                    for sub in subs:
                        out.append(
                            Slot(
                                slot_id=len(out),
                                chip_id=chip_id,
                                chip_class=chip.name,
                                config=sub.config,
                                share=sub.share,
                                chip_weight=chip.weight,
                                partition=sub.name,
                            )
                        )
        return out

    def total_weight(self) -> float:
        """Fleet cost in 16-16 reference chips (chips counted once)."""
        return sum(chip.weight * chip.count for chip in self.chips)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "chips": [c.to_dict() for c in self.chips],
            "total_weight": round(self.total_weight(), 6),
            "slots": [s.to_dict() for s in self.slots()],
        }


def parse_fleet(spec: str, name: str = "fleet") -> FleetSpec:
    """Parse ``"big:32-32:1,small:16-16:4"`` into a :class:`FleetSpec`.

    Each comma-separated entry is ``class:Tin-Tout[:count]`` (count
    defaults to 1).  Partitioned chips cannot be expressed in the string
    form; build :class:`ChipSpec` with ``partitions=`` directly.
    """
    chips: List[ChipSpec] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise ConfigError(
                f"bad fleet entry {entry!r}; expected 'class:Tin-Tout[:count]'"
            )
        cls, geometry = parts[0], parts[1]
        try:
            count = int(parts[2]) if len(parts) == 3 else 1
        except ValueError:
            raise ConfigError(
                f"bad chip count {parts[2]!r} in fleet entry {entry!r}"
            ) from None
        chips.append(
            ChipSpec(name=cls, config=named_config(geometry), count=count)
        )
    return FleetSpec(name=name, chips=tuple(chips))
