"""Serving a placed fleet: per-slot lanes, shared-chip accounting, rollups.

Each slot of a placed fleet runs its own single-replica
:class:`~repro.serve.engine.ServingEngine` over the requests of the
tenants pinned to it — a partition has its own admission queue and its
own batcher, which is exactly what static partitioning buys you (no
cross-tenant head-of-line blocking).  The per-lane metrics are merged
into one fleet-level :class:`~repro.serve.metrics.MetricsCollector`, so
the rollup carries the same percentile/goodput vocabulary as every other
serving report in the repo, plus:

* ``per_slot`` — one digest per lane (tenants, offered, p95, utilisation);
* ``per_chip`` — physical chips counted *once*, co-resident partitions
  contributing share-weighted busy time (satellite: shared-chip
  accounting);
* ``fleet`` — cost-normalised chip-seconds (``total_weight x makespan``)
  for equal-budget comparisons;
* ``placement`` — the placer's verdict, embedded for provenance.

Two comparison drivers produce the headline experiments:
:func:`compare_partitioned` (co-resident partitions vs time-multiplexing
the whole chip) and :func:`compare_fleets` (heterogeneous vs homogeneous
compositions at equal cost).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.serve.batcher import BatchCoster, BatchPolicy
from repro.serve.candidates import rank_candidates
from repro.serve.engine import ReplicaState, ServingEngine, per_chip_rollup
from repro.serve.metrics import MetricsCollector, to_json
from repro.serve.queue import QueuePolicy
from repro.serve.workload import MixedTenantSpec, Request, mixed_arrivals
from repro.tenancy.fleet import ChipSpec, FleetSpec
from repro.tenancy.partition import PartitionSpec
from repro.tenancy.placement import (
    Placement,
    TenantDemand,
    _FitModel,
    demand_from_tenants,
    place_tenants,
)

__all__ = [
    "serve_placement",
    "compare_partitioned",
    "compare_fleets",
    "rollup_to_json",
    "worst_tenant_p95",
]


def worst_tenant_p95(summary: Dict[str, object]) -> float:
    """The slowest tenant's p95 latency (ms) — the fairness headline.

    A multi-tenant deployment is judged by its unhappiest tenant: mean
    latency hides one tenant starving behind another's batches.
    """
    per_tenant = summary.get("per_tenant", {})
    if not per_tenant:
        return 0.0
    return max(group["latency_ms"]["p95"] for group in per_tenant.values())


def serve_placement(
    fleet: FleetSpec,
    placement: Placement,
    requests: Sequence[Request],
    duration_s: float,
    batch_policy: BatchPolicy = BatchPolicy(),
    queue_policy: QueuePolicy = QueuePolicy(),
    plan_policy: str = "adaptive-2",
    extra_meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Simulate serving ``requests`` on a placed fleet; return the rollup.

    Requests belonging to tenants the placement does not know are a hard
    error (a tenant with traffic but no slot would silently vanish from
    the accounting otherwise).
    """
    if duration_s <= 0:
        raise ConfigError(f"duration must be positive, got {duration_s!r}")
    slots = fleet.slots()
    by_id = {s.slot_id: s for s in slots}
    unknown = sorted(
        {r.tenant for r in requests} - set(placement.slot_of)
    )
    if unknown:
        raise ConfigError(
            f"requests from unplaced tenants {unknown}; every tenant with "
            f"traffic needs a slot (placed: {sorted(placement.slot_of)})"
        )

    lane_requests: Dict[int, List[Request]] = {}
    for r in requests:
        lane_requests.setdefault(placement.slot_of[r.tenant], []).append(r)

    costers: Dict[AcceleratorConfig, BatchCoster] = {}
    merged = MetricsCollector()
    lane_digests: Dict[str, Dict[str, object]] = {}
    chip_replicas: List[ReplicaState] = []
    busy_s = 0.0
    makespan_s = duration_s
    for slot_id in sorted(lane_requests):
        slot = by_id[slot_id]
        coster = costers.get(slot.config)
        if coster is None:
            coster = costers[slot.config] = BatchCoster(
                slot.config, policy=plan_policy
            )
        engine = ServingEngine(
            slot.config,
            batch_policy=batch_policy,
            queue_policy=queue_policy,
            replicas=1,
            plan_policy=plan_policy,
            coster=coster,
            chip_map={0: slot.chip_id},
            chip_shares={0: slot.share},
        )
        report = engine.run(lane_requests[slot_id], duration_s)
        merged.merge(report.metrics)
        lane = report.replicas[0]
        busy_s += lane.busy_s
        makespan_s = max(makespan_s, report.summary["makespan_s"])
        chip_replicas.append(
            ReplicaState(
                rid=slot_id,
                busy_s=lane.busy_s,
                batches=lane.batches,
                completed=lane.completed,
                chip=slot.chip_id,
                chip_share=slot.share,
            )
        )
        lane_digests[str(slot_id)] = {
            "chip": slot.chip_id,
            "geometry": slot.config.name,
            "share": round(slot.share, 6),
            "partition": slot.partition,
            "tenants": placement.tenants_on(slot_id),
            "offered": report.summary["offered"],
            "completed": report.summary["completed"],
            "shed": report.summary["shed"],
            "p95_ms": report.summary["latency_ms"]["p95"],
            "utilization": report.summary["utilization"],
            "mean_batch_size": report.summary["mean_batch_size"],
        }

    summary = merged.summary(
        duration_s, max(1, len(lane_requests)), busy_s, makespan_s=makespan_s
    )
    summary["per_slot"] = lane_digests
    # every chip in the fleet is provisioned for the whole run, busy or
    # idle — spans cover all chips so idle silicon shows up as low
    # utilization instead of disappearing from the bill
    chips_seen = {r.chip for r in chip_replicas}
    for slot in slots:
        if slot.chip_id not in chips_seen:
            chips_seen.add(slot.chip_id)
            chip_replicas.append(
                ReplicaState(
                    rid=len(slots) + len(chip_replicas),
                    chip=slot.chip_id,
                    chip_share=slot.share,
                )
            )
    summary["per_chip"] = per_chip_rollup(
        chip_replicas, {chip: makespan_s for chip in chips_seen}
    )
    summary["fleet"] = {
        "name": fleet.name,
        "total_weight": round(fleet.total_weight(), 6),
        "weighted_chip_seconds": round(
            fleet.total_weight() * makespan_s, 6
        ),
        "slots": len(slots),
        "lanes_used": len(lane_requests),
    }
    summary["placement"] = placement.to_dict()
    summary["engine"] = {
        "config": "fleet",
        "plan_policy": plan_policy,
        "batching": batch_policy.describe(),
        "max_batch": batch_policy.max_batch,
        "max_wait_ms": batch_policy.max_wait_ms,
        "queue_depth": queue_policy.max_depth,
        "queue_order": queue_policy.order,
        "routing": "pinned",
    }
    if extra_meta:
        summary["workload"] = dict(sorted(extra_meta.items()))
    return summary


def _tenant_meta(
    tenants: Sequence[MixedTenantSpec], rate: float, seed: int
) -> Dict[str, object]:
    return {
        "kind": "mixed",
        "rate_rps": rate,
        "seed": seed,
        "tenants": ",".join(
            f"{t.name}={'/'.join(f'{n}:{s:g}' for n, s in t.mix)}@{t.weight:g}"
            for t in tenants
        ),
    }


def compare_partitioned(
    config: AcceleratorConfig,
    specs: Sequence[PartitionSpec],
    tenants: Sequence[MixedTenantSpec],
    rate: float,
    duration_s: float,
    seed: int = 0,
    batch_policy: BatchPolicy = BatchPolicy(),
    queue_policy: QueuePolicy = QueuePolicy(),
    plan_policy: str = "adaptive-2",
) -> Dict[str, object]:
    """Co-resident partitions vs time-multiplexing the whole chip.

    Both sides see the identical seeded request stream and hold exactly
    one physical chip for the whole run, so chip-seconds are equal by
    construction; the question is purely whether carving the array beats
    sharing it.  The headline is worst-tenant p95 — time-multiplexing
    couples the tenants through one queue, partitioning isolates them.
    """
    requests = mixed_arrivals(rate, duration_s, tenants, seed=seed)
    meta = _tenant_meta(tenants, rate, seed)

    fleet = FleetSpec(
        name=f"{config.name}-partitioned",
        chips=(
            ChipSpec(
                name="chip", config=config, count=1, partitions=tuple(specs)
            ),
        ),
    )
    demands = demand_from_tenants(tenants, rate)
    placement = place_tenants(fleet, demands, plan_policy=plan_policy)
    partitioned = serve_placement(
        fleet,
        placement,
        requests,
        duration_s,
        batch_policy=batch_policy,
        queue_policy=queue_policy,
        plan_policy=plan_policy,
        extra_meta=meta,
    )

    engine = ServingEngine(
        config,
        batch_policy=batch_policy,
        queue_policy=queue_policy,
        replicas=1,
        plan_policy=plan_policy,
        chip_map={0: "chip0"},
    )
    timemux = engine.run(requests, duration_s, extra_meta=meta).summary

    p95_part = worst_tenant_p95(partitioned)
    p95_mux = worst_tenant_p95(timemux)
    return {
        "scenario": {
            "chip": config.name,
            "partitions": [s.to_dict() for s in specs],
            "tenants": [
                {
                    "name": t.name,
                    "mix": {n: round(s, 6) for n, s in t.mix},
                    "weight": round(t.weight, 6),
                    "slo_ms": round(t.slo_ms, 6),
                }
                for t in tenants
            ],
            "rate_rps": round(rate, 6),
            "duration_s": round(duration_s, 6),
            "seed": seed,
        },
        "partitioned": partitioned,
        "timemux": timemux,
        "headline": {
            "worst_tenant_p95_ms": {
                "partitioned": round(p95_part, 6),
                "timemux": round(p95_mux, 6),
            },
            "p95_ratio": round(p95_mux / p95_part, 6) if p95_part else 0.0,
            "partitioned_wins": p95_part < p95_mux,
            "goodput_rps": {
                "partitioned": partitioned["goodput_rps"],
                "timemux": timemux["goodput_rps"],
            },
        },
    }


def compare_fleets(
    fleets: Sequence[FleetSpec],
    tenants: Sequence[MixedTenantSpec],
    rate: float,
    duration_s: float,
    seed: int = 0,
    batch_policy: BatchPolicy = BatchPolicy(),
    queue_policy: QueuePolicy = QueuePolicy(),
    plan_policy: str = "adaptive-2",
) -> Dict[str, object]:
    """Fleet compositions racing on the identical seeded workload.

    Fleets should be built to (near-)equal ``total_weight`` — the rollup
    records each fleet's weight so an unequal comparison is visible, and
    the verdict ranks on (worst-tenant p95, -goodput, name) through the
    shared :func:`~repro.serve.candidates.rank_candidates` path.
    """
    if not fleets:
        raise ConfigError("compare_fleets needs at least one fleet")
    names = [f.name for f in fleets]
    if len(set(names)) != len(names):
        raise ConfigError(f"fleet names must be unique, got {names}")
    requests = mixed_arrivals(rate, duration_s, tenants, seed=seed)
    meta = _tenant_meta(tenants, rate, seed)
    demands = demand_from_tenants(tenants, rate)

    results: Dict[str, Dict[str, object]] = {}
    fit = _FitModel(plan_policy)
    for fleet in fleets:
        placement = place_tenants(fleet, demands, plan_policy=plan_policy, fit=fit)
        results[fleet.name] = serve_placement(
            fleet,
            placement,
            requests,
            duration_s,
            batch_policy=batch_policy,
            queue_policy=queue_policy,
            plan_policy=plan_policy,
            extra_meta=meta,
        )

    ranked = rank_candidates(
        results,
        key=lambda s: (worst_tenant_p95(s), -s["goodput_rps"]),
    )
    return {
        "scenario": {
            "fleets": {f.name: round(f.total_weight(), 6) for f in fleets},
            "tenants": [t.name for t in tenants],
            "rate_rps": round(rate, 6),
            "duration_s": round(duration_s, 6),
            "seed": seed,
        },
        "fleets": results,
        "headline": {
            "ranking": ranked,
            "winner": ranked[0],
            "worst_tenant_p95_ms": {
                name: round(worst_tenant_p95(results[name]), 6)
                for name in sorted(results)
            },
            "goodput_rps": {
                name: results[name]["goodput_rps"] for name in sorted(results)
            },
        },
    }


def rollup_to_json(rollup: Dict[str, object]) -> str:
    """Canonical JSON (sorted keys, newline-terminated) for tenancy rollups."""
    return to_json(rollup)
