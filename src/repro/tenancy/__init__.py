"""Multi-tenant chip partitioning and heterogeneous-fleet placement.

The paper's question — one accelerator, many network shapes — has a
deployment-scale sibling: one *fleet*, many tenants.  This package
answers it with the planning machinery the repo already has:

- :mod:`repro.tenancy.partition` — carve one chip's PE array and buffer
  budget into named sub-accelerators; each partition is a first-class
  :class:`~repro.arch.config.AcceleratorConfig` re-planned through
  Algorithm 2 and the schedule cache (distinct geometry, distinct cache
  keys), reusing the degraded-geometry path from
  :mod:`repro.resilience.degrade`;
- :mod:`repro.tenancy.fleet` — heterogeneous fleet compositions (big,
  small, degraded, partitioned chips) flattened to schedulable slots,
  with a cost model normalising fleets for equal-budget comparisons;
- :mod:`repro.tenancy.placement` — a deterministic cost-aware global
  placer (greedy seeding + bounded local search) pinning tenants to
  slots, with fit judged by the planner's own batch latency model;
- :mod:`repro.tenancy.serving` — per-slot serving lanes merged into one
  fleet rollup with shared-chip accounting (a chip's co-resident
  partitions are charged once), plus the two headline comparisons:
  partitioned co-residency vs time-multiplexing one chip, and
  heterogeneous vs homogeneous fleets at equal cost.

See ``docs/tenancy.md`` for the model and the rollup glossary, and
``repro tenancy`` for the CLI surface.
"""

from repro.tenancy.fleet import (
    REFERENCE_MULTIPLIERS,
    ChipSpec,
    FleetSpec,
    Slot,
    parse_fleet,
)
from repro.tenancy.partition import (
    PartitionSpec,
    SubAccelerator,
    even_partitions,
    full_chip_spec,
    partition_chip,
)
from repro.tenancy.placement import (
    Placement,
    TenantDemand,
    demand_from_tenants,
    place_tenants,
)
from repro.tenancy.serving import (
    compare_fleets,
    compare_partitioned,
    rollup_to_json,
    serve_placement,
    worst_tenant_p95,
)

__all__ = [
    "REFERENCE_MULTIPLIERS",
    "ChipSpec",
    "FleetSpec",
    "Placement",
    "PartitionSpec",
    "Slot",
    "SubAccelerator",
    "TenantDemand",
    "compare_fleets",
    "compare_partitioned",
    "demand_from_tenants",
    "even_partitions",
    "full_chip_spec",
    "parse_fleet",
    "partition_chip",
    "place_tenants",
    "rollup_to_json",
    "serve_placement",
    "worst_tenant_p95",
]
