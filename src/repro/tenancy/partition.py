"""Static chip partitioning: one PE array carved into sub-accelerators.

The paper sizes one chip for one network; a serving fleet rarely has that
luxury — two tenants with small networks on one big chip either
time-multiplex the whole array (head-of-line blocking across tenants) or
*partition* it.  A :class:`PartitionSpec` names a carve-out of the PE
array plus a share of the SRAM/DMA budget; :func:`partition_chip`
validates that the specs exactly tile the parent chip and derives one
first-class :class:`~repro.arch.config.AcceleratorConfig` per partition
via :meth:`~repro.arch.config.AcceleratorConfig.partition` — the same
derive-a-new-geometry move the resilience layer plays for PE masks, so
Algorithm 2, the planner, and the schedule cache all treat a partition as
just another chip (distinct cache keys by construction).

Validation is strict by design: partitions must use the whole multiplier
budget (no silent dark silicon) and buffer/DMA shares must sum to one.
Errors name the offending partition and the remaining budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.config import AcceleratorConfig
from repro.errors import ConfigError

__all__ = [
    "PartitionSpec",
    "SubAccelerator",
    "partition_chip",
    "even_partitions",
    "full_chip_spec",
]


@dataclass(frozen=True)
class PartitionSpec:
    """One named carve-out of a chip's PE array and buffer budget.

    ``tin x tout`` multipliers go to this partition; ``buffer_fraction``
    and ``dram_fraction`` are its shares of the SRAM and DMA bandwidth
    (both default to the partition's area fraction of the parent array).
    """

    name: str
    tin: int
    tout: int
    buffer_fraction: Optional[float] = None
    dram_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("partition needs a non-empty name")
        for label, value in (("tin", self.tin), ("tout", self.tout)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigError(
                    f"partition {self.name!r}: {label} must be an int, "
                    f"got {value!r} ({type(value).__name__})"
                )
            if value <= 0:
                raise ConfigError(
                    f"partition {self.name!r}: {label} must be positive, "
                    f"got {value!r}"
                )
        for label, frac in (
            ("buffer_fraction", self.buffer_fraction),
            ("dram_fraction", self.dram_fraction),
        ):
            if frac is not None and not 0 < frac <= 1:
                raise ConfigError(
                    f"partition {self.name!r}: {label} must be in (0, 1], "
                    f"got {frac!r}"
                )

    @property
    def multipliers(self) -> int:
        return self.tin * self.tout

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "tin": self.tin,
            "tout": self.tout,
        }
        if self.buffer_fraction is not None:
            out["buffer_fraction"] = round(self.buffer_fraction, 6)
        if self.dram_fraction is not None:
            out["dram_fraction"] = round(self.dram_fraction, 6)
        return out


@dataclass(frozen=True)
class SubAccelerator:
    """One partition realised as a derived accelerator config."""

    spec: PartitionSpec
    config: AcceleratorConfig
    parent: AcceleratorConfig

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def share(self) -> float:
        """This partition's fraction of the parent chip's multipliers."""
        return self.spec.multipliers / self.parent.multipliers

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "geometry": self.config.name,
            "share": round(self.share, 6),
            "buffer_kb": round(
                (
                    self.config.input_buffer_bytes
                    + self.config.output_buffer_bytes
                    + self.config.weight_buffer_bytes
                    + self.config.bias_buffer_bytes
                )
                / 1024,
                3,
            ),
        }


def _effective_fraction(spec: PartitionSpec, parent: AcceleratorConfig, which: str) -> float:
    value = getattr(spec, which)
    if value is not None:
        return value
    return spec.multipliers / parent.multipliers


def partition_chip(
    config: AcceleratorConfig, specs: Sequence[PartitionSpec]
) -> Tuple[SubAccelerator, ...]:
    """Carve ``config`` into sub-accelerators according to ``specs``.

    Every validation failure names the offending partition and the budget
    that remained when it was considered (specs are walked in order):

    * partition dims must fit inside the parent array;
    * partition multipliers must *exactly* tile the parent's
      ``tin * tout`` budget — over-subscription and unallocated leftovers
      are both hard errors;
    * explicit buffer/DMA fractions must each sum to 1 across partitions
      (defaults — the area fractions — do so automatically).
    """
    if not specs:
        raise ConfigError("partition_chip needs at least one PartitionSpec")
    seen = set()
    for spec in specs:
        if spec.name in seen:
            raise ConfigError(f"duplicate partition name {spec.name!r}")
        seen.add(spec.name)

    budget = config.multipliers
    remaining = budget
    for spec in specs:
        if spec.tin > config.tin:
            raise ConfigError(
                f"partition {spec.name!r} wants tin {spec.tin} but the "
                f"parent chip has tin {config.tin}"
            )
        if spec.tout > config.tout:
            raise ConfigError(
                f"partition {spec.name!r} wants tout {spec.tout} but the "
                f"parent chip has tout {config.tout}"
            )
        if spec.multipliers > remaining:
            raise ConfigError(
                f"partition {spec.name!r} needs {spec.multipliers} "
                f"multipliers but only {remaining} of the parent's "
                f"{budget} remain"
            )
        remaining -= spec.multipliers
    if remaining:
        names = ", ".join(repr(s.name) for s in specs)
        raise ConfigError(
            f"partitions {names} leave {remaining} of {budget} multipliers "
            "unallocated; partitions must tile the parent PE array "
            "(adjust a spec or add a partition for the remainder)"
        )

    for which in ("buffer_fraction", "dram_fraction"):
        total = sum(_effective_fraction(s, config, which) for s in specs)
        if abs(total - 1.0) > 1e-9:
            shares = ", ".join(
                f"{s.name!r}={_effective_fraction(s, config, which):g}"
                for s in specs
            )
            raise ConfigError(
                f"partition {which}s must sum to 1, got {total:g} "
                f"({shares})"
            )

    return tuple(
        SubAccelerator(
            spec=spec,
            config=config.partition(
                spec.tin,
                spec.tout,
                buffer_fraction=_effective_fraction(spec, config, "buffer_fraction"),
                dram_fraction=_effective_fraction(spec, config, "dram_fraction"),
            ),
            parent=config,
        )
        for spec in specs
    )


def even_partitions(config: AcceleratorConfig, n: int) -> List[PartitionSpec]:
    """``n`` equal column strips of the parent array (``tin/n x tout``)."""
    if isinstance(n, bool) or not isinstance(n, int):
        raise ConfigError(f"partition count must be an int, got {n!r}")
    if n <= 0:
        raise ConfigError(f"partition count must be positive, got {n!r}")
    if config.tin % n:
        raise ConfigError(
            f"cannot split tin {config.tin} into {n} equal column strips; "
            f"tin must be divisible by the partition count"
        )
    tin = config.tin // n
    return [PartitionSpec(name=f"p{i}", tin=tin, tout=config.tout) for i in range(n)]


def full_chip_spec(config: AcceleratorConfig) -> PartitionSpec:
    """The degenerate whole-chip partition (bit-identical to the parent)."""
    return PartitionSpec(
        name="whole",
        tin=config.tin,
        tout=config.tout,
        buffer_fraction=1.0,
        dram_fraction=1.0,
    )
