"""Cluster roll-ups: deterministic JSON summaries of sharding plans.

Reduces a :class:`~repro.cluster.pipeline.PipelinePlan` or
:class:`~repro.cluster.dataparallel.DataParallelPlan` to a plain dict —
steady-state throughput, fill/drain latency, per-stage (or per-chip)
utilization and link occupancy — rendered byte-stable: floats rounded to
microsecond-ish precision, mappings emitted with sorted keys, infinite
bandwidth spelled ``"inf"`` (JSON has no Infinity), so two identical plans
produce identical bytes.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Union

from repro.cluster.dataparallel import DataParallelPlan
from repro.cluster.pipeline import PipelinePlan
from repro.errors import ConfigError
from repro.cluster.link import LinkSpec

__all__ = ["rollup", "rollup_pipeline", "rollup_data_parallel", "to_json"]


def _round(x: float) -> float:
    return round(x, 6)


def _link_dict(link: LinkSpec) -> Dict[str, object]:
    bw = link.bandwidth_gbs
    return {
        "bandwidth_gbs": "inf" if math.isinf(bw) else _round(bw),
        "latency_us": _round(link.latency_s * 1e6),
    }


def rollup_pipeline(plan: PipelinePlan) -> Dict[str, object]:
    """Reduce a pipeline plan to its steady-state summary dict."""
    return {
        "kind": "pipeline",
        "network": plan.network,
        "config": plan.config.name,
        "chips": plan.n_chips,
        "strategy": plan.strategy,
        "link": _link_dict(plan.link),
        "bottleneck_ms": _round(plan.bottleneck_s * 1e3),
        "throughput_ips": _round(plan.throughput_ips),
        "fill_latency_ms": _round(plan.fill_latency_s * 1e3),
        "drain_latency_ms": _round(plan.drain_latency_s * 1e3),
        "stages": [
            {
                "chip": s.chip,
                "layers": list(s.layer_names),
                "compute_ms": _round(s.compute_s * 1e3),
                "send_ms": _round(s.send_s * 1e3),
                "send_bytes": s.send_bytes,
                "utilization": _round(plan.utilization(s.chip)),
                "link_occupancy": _round(plan.link_occupancy(s.chip)),
            }
            for s in plan.stages
        ],
    }


def rollup_data_parallel(plan: DataParallelPlan) -> Dict[str, object]:
    """Reduce a data-parallel plan to its per-step summary dict."""
    return {
        "kind": "data-parallel",
        "network": plan.network,
        "config": plan.config.name,
        "chips": plan.n_chips,
        "batch_size": plan.batch_size,
        "link": _link_dict(plan.link),
        "step_ms": _round(plan.step_s * 1e3),
        "scatter_ms": _round(plan.scatter_s * 1e3),
        "gather_ms": _round(plan.gather_s * 1e3),
        "throughput_ips": _round(plan.throughput_ips),
        "single_chip_ips": _round(plan.single_chip_throughput_ips),
        "speedup": _round(plan.speedup),
        "efficiency": _round(plan.efficiency),
        "link_occupancy": _round(plan.link_occupancy),
        "shards": [
            {
                "chip": s.chip,
                "batch": s.batch,
                "compute_ms": _round(s.compute_s * 1e3),
                "scatter_bytes": s.scatter_bytes,
                "gather_bytes": s.gather_bytes,
                "utilization": _round(plan.utilization(s.chip)),
            }
            for s in plan.shards
        ],
    }


def rollup(
    plan: Union[PipelinePlan, DataParallelPlan]
) -> Dict[str, object]:
    """Dispatch on the plan type."""
    if isinstance(plan, PipelinePlan):
        return rollup_pipeline(plan)
    if isinstance(plan, DataParallelPlan):
        return rollup_data_parallel(plan)
    raise ConfigError(f"cannot roll up {type(plan).__name__}")


def to_json(summary: Dict[str, object]) -> str:
    """Canonical JSON: sorted keys, stable layout, newline-terminated."""
    return json.dumps(summary, indent=2, sort_keys=True) + "\n"
