"""Batch-sharded data parallelism: N replicas of the whole network.

The dual of the layer pipeline: every chip holds the full network and runs
a slice of the batch.  A step serves a global batch of ``B`` images as

1. **scatter** — the root streams each shard's input images over the link;
2. **compute** — every chip runs its shard (costed by
   :func:`repro.adaptive.batch.plan_batch`, so FC weight amortization is
   per-*shard*, which is exactly why data parallelism loses efficiency on
   FC-heavy networks at small shards);
3. **gather** — each chip returns its shard's output activations.

Scatter and gather serialize over the root's link (one bus, charged on
total bytes); compute is the max over chips, so unequal shards surface as
stragglers.  As ``bandwidth -> inf`` and ``latency -> 0`` the step time
degenerates to the shard compute time and throughput approaches N× a
single chip at the same shard size (asserted in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.arch.config import AcceleratorConfig
from repro.cluster.link import LinkSpec, activation_bytes
from repro.errors import ConfigError
from repro.nn.network import Network
from repro.perf.instrument import phase

__all__ = ["ChipShard", "DataParallelPlan", "shard_sizes", "plan_data_parallel"]


@dataclass(frozen=True)
class ChipShard:
    """One replica's slice of the global batch."""

    chip: int
    batch: int
    compute_s: float
    scatter_bytes: int
    gather_bytes: int


@dataclass(frozen=True)
class DataParallelPlan:
    """A batch-sharded deployment of one network across N chips."""

    network: str
    config: AcceleratorConfig
    link: LinkSpec
    batch_size: int
    shards: Tuple[ChipShard, ...]
    #: serialized link time for all input / output shards
    scatter_s: float
    gather_s: float
    #: one chip planning the whole batch (the 1-chip reference)
    single_chip_s: float

    @property
    def n_chips(self) -> int:
        return len(self.shards)

    @property
    def compute_s(self) -> float:
        """Straggler compute: the step waits for the largest shard."""
        return max(s.compute_s for s in self.shards)

    @property
    def step_s(self) -> float:
        """Wall-clock of one global batch: scatter, compute, gather."""
        return self.scatter_s + self.compute_s + self.gather_s

    @property
    def throughput_ips(self) -> float:
        return self.batch_size / self.step_s

    @property
    def single_chip_throughput_ips(self) -> float:
        return self.batch_size / self.single_chip_s

    @property
    def speedup(self) -> float:
        """Throughput vs one chip serving the same global batch."""
        return self.single_chip_s / self.step_s

    @property
    def efficiency(self) -> float:
        """Speedup over the ideal N× (1.0 = perfect scaling)."""
        return self.speedup / self.n_chips

    def utilization(self, chip: int) -> float:
        """Busy fraction of one chip over the step."""
        return self.shards[chip].compute_s / self.step_s

    @property
    def link_occupancy(self) -> float:
        """Fraction of the step the shared scatter/gather bus is busy."""
        return (self.scatter_s + self.gather_s) / self.step_s

    def batch_seconds(self, batch_size: int = None) -> float:
        """Wall-clock for one batch (this plan's global batch by default)."""
        if batch_size is not None and batch_size != self.batch_size:
            raise ConfigError(
                f"plan was sized for batch {self.batch_size}, "
                f"asked for {batch_size}; re-plan instead"
            )
        return self.step_s


def shard_sizes(batch_size: int, n_chips: int) -> Tuple[int, ...]:
    """Balanced shards: the first ``batch % n`` chips carry one extra image."""
    if isinstance(batch_size, bool) or not isinstance(batch_size, int):
        raise ConfigError(
            f"batch size must be an int, got {batch_size!r} "
            f"({type(batch_size).__name__})"
        )
    if batch_size <= 0:
        raise ConfigError(f"batch size must be positive, got {batch_size!r}")
    if isinstance(n_chips, bool) or not isinstance(n_chips, int):
        raise ConfigError(
            f"chip count must be an int, got {n_chips!r} "
            f"({type(n_chips).__name__})"
        )
    if n_chips <= 0:
        raise ConfigError(f"chip count must be positive, got {n_chips!r}")
    base, extra = divmod(batch_size, n_chips)
    return tuple(base + (1 if i < extra else 0) for i in range(n_chips))


def plan_data_parallel(
    net: Network,
    config: AcceleratorConfig,
    n_chips: int,
    link: LinkSpec = LinkSpec(),
    batch_size: int = None,
    policy: str = "adaptive-2",
    include_non_conv: bool = True,
) -> DataParallelPlan:
    """Shard a batch of ``batch_size`` images across ``n_chips`` replicas.

    ``batch_size`` defaults to one image per chip.  Shard plans go through
    :func:`~repro.adaptive.batch.plan_batch` and therefore the schedule
    cache, so sweeping chip counts replans nothing.
    """
    from repro.adaptive.batch import plan_batch

    if batch_size is None:
        batch_size = n_chips
    sizes = shard_sizes(batch_size, n_chips)
    with phase("plan_data_parallel"):
        in_bytes = activation_bytes(net.input_shape, config.word_bytes)
        last_name = [lyr.name for lyr in net][-1]
        out_bytes = activation_bytes(net.shape_of(last_name), config.word_bytes)

        def batch_s(b: int) -> float:
            if b == 0:
                return 0.0
            run = plan_batch(
                net, config, policy, batch_size=b, include_non_conv=include_non_conv
            )
            return config.cycles_to_seconds(run.total_cycles)

        shards = tuple(
            ChipShard(
                chip=i,
                batch=b,
                compute_s=batch_s(b),
                scatter_bytes=b * in_bytes,
                gather_bytes=b * out_bytes,
            )
            for i, b in enumerate(sizes)
        )
        # one serialized bus transaction per non-empty shard
        scatter_s = sum(link.transfer_seconds(s.scatter_bytes) for s in shards)
        gather_s = sum(link.transfer_seconds(s.gather_bytes) for s in shards)
        return DataParallelPlan(
            network=net.name,
            config=config,
            link=link,
            batch_size=batch_size,
            shards=shards,
            scatter_s=scatter_s,
            gather_s=gather_s,
            single_chip_s=batch_s(batch_size),
        )
