"""Multi-accelerator sharding (``repro shard``).

C-Brain's kernel partitioning keeps every PE of *one* chip aligned and
busy; this package lifts the same resource-partitioning idea to chip
granularity, in the spirit of Shen et al. (multiple convolutional
processors sized to layer subsets) and Jung et al. (stage partitioning to
shape link/memory traffic):

- :mod:`repro.cluster.link` — inter-chip link model: bandwidth GB/s plus a
  fixed per-transfer hop latency, costing activation handoffs by bytes;
- :mod:`repro.cluster.pipeline` — contiguous layer-pipeline partitioning
  with an optimal DP bottleneck balancer (link cost included) and the
  naive even-split baseline;
- :mod:`repro.cluster.dataparallel` — batch-sharded replication with
  scatter/gather over the same link model;
- :mod:`repro.cluster.rollup` — steady-state throughput, fill/drain
  latency, per-stage utilization and link occupancy as byte-stable JSON;
- :mod:`repro.cluster.replica` — :class:`PipelinedReplica`, a
  BatchCoster-compatible adapter so :mod:`repro.serve` can route batches
  onto sharded deployments (1×big-chip vs N×small-chip under one SLO
  workload).

See ``docs/sharding.md`` for the cost model and a CLI walkthrough.
"""

from repro.cluster.dataparallel import (
    ChipShard,
    DataParallelPlan,
    plan_data_parallel,
    shard_sizes,
)
from repro.cluster.link import LinkSpec, activation_bytes
from repro.cluster.pipeline import (
    PARTITION_STRATEGIES,
    PipelinePlan,
    StagePlan,
    partition_dp,
    partition_even,
    plan_pipeline,
)
from repro.cluster.replica import (
    SHARD_STRATEGIES,
    PipelinedReplica,
    compare_compositions,
    compare_deployments,
)
from repro.cluster.rollup import (
    rollup,
    rollup_data_parallel,
    rollup_pipeline,
    to_json,
)

__all__ = [
    "ChipShard",
    "DataParallelPlan",
    "LinkSpec",
    "PARTITION_STRATEGIES",
    "PipelinePlan",
    "PipelinedReplica",
    "SHARD_STRATEGIES",
    "StagePlan",
    "activation_bytes",
    "compare_compositions",
    "compare_deployments",
    "partition_dp",
    "partition_even",
    "plan_data_parallel",
    "plan_pipeline",
    "rollup",
    "rollup_data_parallel",
    "rollup_pipeline",
    "shard_sizes",
    "to_json",
]
