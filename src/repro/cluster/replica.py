"""Serving adapter: route batches onto a sharded deployment.

:class:`PipelinedReplica` presents an N-chip sharded deployment behind the
same coster interface :class:`~repro.serve.batcher.BatchCoster` gives a
single chip — ``batch_seconds(network, B)`` — so it plugs straight into
:class:`~repro.serve.engine.ServingEngine` via its ``coster`` argument.
The serving event loop then schedules work onto "replicas" that are in
fact whole clusters, which makes 1×big-chip vs N×small-chip comparisons a
one-line change (:func:`compare_deployments`).

Latency semantics per strategy:

* ``pipeline`` — a dispatched batch streams image-by-image through the
  stage pipeline: ``fill + (B - 1) * bottleneck``.  The partition is
  batch-independent, planned once per network.
* ``data-parallel`` — the batch is sharded across the replicas:
  ``scatter + max shard compute + gather``, planned per (network, B).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.arch.config import AcceleratorConfig
from repro.cluster.dataparallel import DataParallelPlan, plan_data_parallel
from repro.cluster.link import LinkSpec
from repro.cluster.pipeline import PipelinePlan, plan_pipeline
from repro.errors import ConfigError
from repro.nn.network import Network

__all__ = [
    "PipelinedReplica",
    "SHARD_STRATEGIES",
    "compare_compositions",
    "compare_deployments",
]

SHARD_STRATEGIES = ("pipeline", "data-parallel")


class PipelinedReplica:
    """BatchCoster-compatible latency model of one sharded deployment."""

    def __init__(
        self,
        config: AcceleratorConfig,
        n_chips: int,
        link: LinkSpec = LinkSpec(),
        strategy: str = "pipeline",
        partition: str = "dp",
        policy: str = "adaptive-2",
        include_non_conv: bool = True,
    ) -> None:
        if strategy not in SHARD_STRATEGIES:
            raise ConfigError(
                f"unknown sharding strategy {strategy!r}; "
                f"choose from {SHARD_STRATEGIES}"
            )
        if isinstance(n_chips, bool) or not isinstance(n_chips, int):
            raise ConfigError(
                f"chip count must be an int, got {n_chips!r} "
                f"({type(n_chips).__name__})"
            )
        if n_chips <= 0:
            raise ConfigError(f"chip count must be positive, got {n_chips!r}")
        self.config = config
        self.n_chips = n_chips
        self.link = link
        self.strategy = strategy
        self.partition = partition
        self.policy = policy
        self.include_non_conv = include_non_conv
        self._networks: Dict[str, Network] = {}
        self._pipelines: Dict[str, PipelinePlan] = {}
        self._dp_plans: Dict[Tuple[str, int], DataParallelPlan] = {}

    def _network(self, name: str) -> Network:
        net = self._networks.get(name)
        if net is None:
            from repro.nn.zoo import build

            net = self._networks[name] = build(name)
        return net

    def pipeline_plan(self, network: str) -> PipelinePlan:
        """The (memoized) stage partition for ``network``."""
        plan = self._pipelines.get(network)
        if plan is None:
            plan = self._pipelines[network] = plan_pipeline(
                self._network(network),
                self.config,
                self.n_chips,
                link=self.link,
                policy=self.policy,
                strategy=self.partition,
                include_non_conv=self.include_non_conv,
            )
        return plan

    def data_parallel_plan(self, network: str, batch_size: int) -> DataParallelPlan:
        """The (memoized) shard plan for ``(network, batch_size)``."""
        key = (network, batch_size)
        plan = self._dp_plans.get(key)
        if plan is None:
            plan = self._dp_plans[key] = plan_data_parallel(
                self._network(network),
                self.config,
                self.n_chips,
                link=self.link,
                batch_size=batch_size,
                policy=self.policy,
                include_non_conv=self.include_non_conv,
            )
        return plan

    # -- the BatchCoster interface ----------------------------------------

    def batch_seconds(self, network: str, batch_size: int) -> float:
        """Wall-clock one batch occupies the whole sharded deployment."""
        if self.strategy == "pipeline":
            return self.pipeline_plan(network).batch_seconds(batch_size)
        return self.data_parallel_plan(network, batch_size).step_s

    def image_seconds(self, network: str, batch_size: int) -> float:
        """Per-image service time at a given batch size."""
        return self.batch_seconds(network, batch_size) / batch_size

    def capacity_rps(self, network: str, batch_size: int) -> float:
        """Sustainable deployment throughput at a fixed batch size."""
        return 1.0 / self.image_seconds(network, batch_size)

    def describe(self) -> str:
        return (
            f"{self.strategy} x{self.n_chips} {self.config.name} "
            f"[{self.link.describe()}]"
        )


def compare_deployments(
    big_config: AcceleratorConfig,
    small_config: AcceleratorConfig,
    n_chips: int,
    requests,
    duration_s: float,
    link: LinkSpec = LinkSpec(),
    strategy: str = "pipeline",
    batch_policy=None,
    queue_policy=None,
    policy: str = "adaptive-2",
) -> Dict[str, Dict[str, object]]:
    """Serve one workload on 1×big-chip and on N×small-chip, same knobs.

    Returns ``{"big": summary, "sharded": summary}`` — the two
    :class:`~repro.serve.engine.ServingEngine` summaries under identical
    requests, batching and queueing, differing only in the accelerator
    behind the coster.  Both sides cost through the shared
    :func:`~repro.serve.candidates.evaluate_candidate` path.
    """
    from repro.serve.batcher import BatchPolicy
    from repro.serve.candidates import evaluate_candidate
    from repro.serve.queue import QueuePolicy

    batch_policy = batch_policy or BatchPolicy()
    queue_policy = queue_policy or QueuePolicy()
    requests = list(requests)
    knobs = dict(
        batch_policy=batch_policy,
        queue_policy=queue_policy,
        routing="round-robin",
        plan_policy=policy,
        label_chips=False,
    )
    big = evaluate_candidate(
        [(big_config, 1)],
        requests,
        duration_s,
        candidate="big",
        extra_meta={"deployment": "1x big chip"},
        **knobs,
    )
    sharded = evaluate_candidate(
        [
            (
                small_config,
                1,
                PipelinedReplica(
                    small_config, n_chips, link=link, strategy=strategy, policy=policy
                ),
            )
        ],
        requests,
        duration_s,
        candidate="sharded",
        extra_meta={"deployment": f"{n_chips}x small chip ({strategy})"},
        **knobs,
    )
    return {"big": big, "sharded": sharded}


def compare_compositions(
    compositions: Dict[str, object],
    requests,
    duration_s: float,
    batch_policy=None,
    queue_policy=None,
    routing: str = "least-loaded",
    policy: str = "adaptive-2",
) -> Dict[str, object]:
    """Serve one workload on several fleet compositions, same knobs.

    Generalizes :func:`compare_deployments` beyond 1-big-vs-N-small: each
    composition is ``{"name": [(config, count), ...]}`` — a *heterogeneous*
    replica set sharing one admission queue, realised through
    :class:`~repro.serve.engine.ServingEngine`'s per-replica costers and
    chip tags (so the summary carries per-chip accounting and mixed chip
    classes serve side by side).  Replicas are laid out in group order,
    chips named ``<class index>-<instance>``; identical configs share one
    memoized coster.  The verdict ranks compositions by
    (worst p95 latency, -goodput, name).

    Returns ``{"compositions": {name: summary}, "ranking": [...],
    "winner": name}``.
    """
    from repro.serve.batcher import BatchCoster, BatchPolicy
    from repro.serve.candidates import evaluate_candidate, rank_candidates
    from repro.serve.queue import QueuePolicy

    if not compositions:
        raise ConfigError("compare_compositions needs at least one composition")
    batch_policy = batch_policy or BatchPolicy()
    queue_policy = queue_policy or QueuePolicy()
    requests = list(requests)
    costers: Dict[AcceleratorConfig, BatchCoster] = {}
    results: Dict[str, Dict[str, object]] = {}
    for name in sorted(compositions):
        groups = list(compositions[name])
        results[name] = evaluate_candidate(
            groups,
            requests,
            duration_s,
            batch_policy=batch_policy,
            queue_policy=queue_policy,
            routing=routing,
            plan_policy=policy,
            coster_memo=costers,
            candidate=name,
            extra_meta={
                "deployment": " + ".join(
                    f"{count}x {config.name}" for config, count in groups
                )
            },
        )

    ranking = rank_candidates(
        results,
        key=lambda s: (s["latency_ms"]["p95"], -s["goodput_rps"]),
    )
    return {
        "compositions": results,
        "ranking": ranking,
        "winner": ranking[0],
    }
