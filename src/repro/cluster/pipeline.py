"""Layer-pipeline sharding: contiguous stages across N chips.

C-Brain's kernel partitioning splits one layer's work so every PE runs
aligned and busy; this module applies the same idea one level up — split a
*network's* layers across N accelerator instances so every chip runs close
to the pipeline's steady-state rate.  Per-layer latencies come from the
existing planner (and therefore from the PR-1 schedule cache); stage
boundaries are costed with the :class:`~repro.cluster.link.LinkSpec`
inter-chip link model on the exact activation bytes crossing the cut.

Two partitioners over the same stage-cost definition:

* ``even`` — the naive baseline: stages of (nearly) equal layer *count*;
* ``dp`` — an optimal dynamic-programming balancer that minimizes the
  bottleneck stage time *including* the outbound link transfer.  Because
  both strategies share one cost function, the DP result is never worse
  than the even split (asserted in the tests for every zoo network).

Steady-state model (store-and-forward, one image in flight per stage): a
stage's time is its compute plus the transfer of its boundary tensors to
the next chip; pipeline throughput is one image per bottleneck-stage time;
the first image's latency is the sum of all stage times (fill), and the
pipe empties in ``fill - bottleneck`` after the last image enters (drain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.arch.config import AcceleratorConfig
from repro.cluster.link import LinkSpec, activation_bytes
from repro.errors import ConfigError
from repro.nn.network import Network
from repro.perf.instrument import phase

__all__ = [
    "StagePlan",
    "PipelinePlan",
    "partition_even",
    "partition_dp",
    "plan_pipeline",
    "PARTITION_STRATEGIES",
]

PARTITION_STRATEGIES = ("dp", "even")

_INPUT = "__input__"


@dataclass(frozen=True)
class StagePlan:
    """One chip's share of the pipeline."""

    chip: int
    #: half-open layer index range [start, stop) into the planned order
    start: int
    stop: int
    layer_names: Tuple[str, ...]
    #: compute seconds of the stage's layers on one chip
    compute_s: float
    #: activation bytes handed to the next stage (0 for the last stage)
    send_bytes: int
    #: link time for the handoff (0 for the last stage)
    send_s: float

    @property
    def stage_s(self) -> float:
        """Occupancy per image: compute, then ship the boundary tensors."""
        return self.compute_s + self.send_s


@dataclass(frozen=True)
class PipelinePlan:
    """A network partitioned into an N-chip layer pipeline."""

    network: str
    config: AcceleratorConfig
    link: LinkSpec
    strategy: str
    stages: Tuple[StagePlan, ...]

    @property
    def n_chips(self) -> int:
        return len(self.stages)

    @property
    def bottleneck_s(self) -> float:
        """Slowest stage time — the steady-state interval between images."""
        return max(s.stage_s for s in self.stages)

    @property
    def throughput_ips(self) -> float:
        return 1.0 / self.bottleneck_s

    @property
    def fill_latency_s(self) -> float:
        """First-image latency: it must traverse every stage and link."""
        return sum(s.stage_s for s in self.stages)

    @property
    def drain_latency_s(self) -> float:
        """Time to empty the pipe after the last image enters stage 0."""
        return self.fill_latency_s - self.bottleneck_s

    def utilization(self, chip: int) -> float:
        """Busy fraction of one chip at steady state (compute + send)."""
        return self.stages[chip].stage_s / self.bottleneck_s

    def link_occupancy(self, chip: int) -> float:
        """Fraction of the steady-state interval chip's outbound link is busy."""
        return self.stages[chip].send_s / self.bottleneck_s

    def batch_seconds(self, batch_size: int) -> float:
        """Wall-clock for ``batch_size`` images streamed through the pipe."""
        if batch_size <= 0:
            raise ConfigError(f"batch size must be positive, got {batch_size!r}")
        return self.fill_latency_s + (batch_size - 1) * self.bottleneck_s


# -- cut analysis ----------------------------------------------------------


def _planned_ancestors(
    net: Network, name: str, planned: Set[str]
) -> Set[str]:
    """Planned layers whose output tensor layer ``name`` consumes.

    Walks through layers that were *not* planned (e.g. pooling in a
    conv-only plan) until it reaches a planned producer or the network
    input, so the cut stays well-defined in both full and conv-only modes.
    """
    out: Set[str] = set()
    stack = list(net.input_names(name))
    seen: Set[str] = set()
    while stack:
        src = stack.pop()
        if src == _INPUT or src in seen:
            continue
        seen.add(src)
        if src in planned:
            out.add(src)
        else:
            stack.extend(net.input_names(src))
    return out


def _boundary_bytes(
    net: Network, order: Sequence[str], word_bytes: int
) -> List[int]:
    """Activation bytes crossing each cut of the planned order.

    ``result[b]`` (for boundaries ``b`` in 1..L-1) sums the output bytes of
    every distinct producer before the cut with at least one consumer at or
    after it — a tensor feeding several downstream layers crosses the link
    once.  Index 0 and L are present (value 0) for convenient slicing.
    """
    position: Dict[str, int] = {name: i for i, name in enumerate(order)}
    planned = set(order)
    last_use: Dict[str, int] = {}
    for name in order:
        for src in sorted(_planned_ancestors(net, name, planned)):
            last_use[src] = max(last_use.get(src, -1), position[name])
    n = len(order)
    cuts = [0] * (n + 1)
    for b in range(1, n):
        total = 0
        for src, last in last_use.items():
            if position[src] < b <= last:
                total += activation_bytes(net.shape_of(src), word_bytes)
        cuts[b] = total
    return cuts


# -- partitioners ----------------------------------------------------------


def partition_even(n_layers: int, n_chips: int) -> List[int]:
    """Boundaries of the naive even-by-count split (len ``n_chips - 1``)."""
    _validate_chips(n_chips, n_layers)
    return [(i * n_layers) // n_chips for i in range(1, n_chips)]


def partition_dp(
    compute_s: Sequence[float], send_s: Sequence[float], n_chips: int
) -> List[int]:
    """Optimal contiguous partition minimizing the bottleneck stage time.

    ``compute_s[i]`` is layer ``i``'s seconds; ``send_s[b]`` is the link
    time of cut ``b`` (``send_s[0]`` and ``send_s[L]`` must be 0).  Stage
    ``[a, b)`` costs ``sum(compute_s[a:b]) + send_s[b]`` — the last stage
    has no outbound transfer.  Returns the ``n_chips - 1`` boundaries;
    ties resolve to the earliest boundary, so equal-work partitions are
    bit-deterministic across runs.
    """
    n = len(compute_s)
    _validate_chips(n_chips, n)
    prefix = [0.0]
    for c in compute_s:
        prefix.append(prefix[-1] + c)

    def seg(a: int, b: int) -> float:
        return prefix[b] - prefix[a] + send_s[b]

    # best[j][b]: minimal bottleneck splitting layers [0, b) into j stages,
    # counting each non-final stage's outbound send.  The final stage's
    # send_s[n] is 0 by contract, so best[n_chips][n] is the answer.
    inf = float("inf")
    best = [[inf] * (n + 1) for _ in range(n_chips + 1)]
    back = [[0] * (n + 1) for _ in range(n_chips + 1)]
    best[0][0] = 0.0
    for j in range(1, n_chips + 1):
        # every stage takes >= 1 layer, so stage j ends at b >= j and
        # leaves at least n_chips - j layers for the remaining stages
        for b in range(j, n - (n_chips - j) + 1):
            for a in range(j - 1, b):
                if best[j - 1][a] == inf:
                    continue
                cost = max(best[j - 1][a], seg(a, b))
                if cost < best[j][b]:
                    best[j][b] = cost
                    back[j][b] = a
    boundaries: List[int] = []
    b = n
    for j in range(n_chips, 1, -1):
        b = back[j][b]
        boundaries.append(b)
    boundaries.reverse()
    return boundaries


def _validate_chips(n_chips: int, n_layers: int) -> None:
    if isinstance(n_chips, bool) or not isinstance(n_chips, int):
        raise ConfigError(
            f"chip count must be an int, got {n_chips!r} "
            f"({type(n_chips).__name__})"
        )
    if n_chips <= 0:
        raise ConfigError(f"chip count must be positive, got {n_chips!r}")
    if n_chips > n_layers:
        raise ConfigError(
            f"cannot pipeline {n_layers} layers across {n_chips} chips; "
            "each stage needs at least one layer"
        )


# -- the planner entry point ----------------------------------------------


def plan_pipeline(
    net: Network,
    config: AcceleratorConfig,
    n_chips: int,
    link: LinkSpec = LinkSpec(),
    policy: str = "adaptive-2",
    strategy: str = "dp",
    include_non_conv: bool = True,
) -> PipelinePlan:
    """Partition ``net`` into an ``n_chips``-stage pipeline.

    Per-layer latencies come from :func:`repro.adaptive.planner.plan_network`
    (through the schedule cache); the full forward pass is planned by
    default since a deployed pipeline ships whole layers, not just convs.
    """
    from repro.adaptive.planner import plan_network

    if strategy not in PARTITION_STRATEGIES:
        raise ConfigError(
            f"unknown partition strategy {strategy!r}; "
            f"choose from {PARTITION_STRATEGIES}"
        )
    with phase("plan_pipeline"):
        run = plan_network(net, config, policy, include_non_conv=include_non_conv)
        order = [r.layer_name for r in run.layers]
        _validate_chips(n_chips, len(order))
        compute_s = [config.cycles_to_seconds(r.total_cycles) for r in run.layers]
        cut_bytes = _boundary_bytes(net, order, config.word_bytes)
        send_s = [link.transfer_seconds(c) for c in cut_bytes]
        if strategy == "dp":
            boundaries = partition_dp(compute_s, send_s, n_chips)
        else:
            boundaries = partition_even(len(order), n_chips)
        edges = [0] + boundaries + [len(order)]
        stages = []
        for chip in range(n_chips):
            start, stop = edges[chip], edges[chip + 1]
            is_last = chip == n_chips - 1
            stages.append(
                StagePlan(
                    chip=chip,
                    start=start,
                    stop=stop,
                    layer_names=tuple(order[start:stop]),
                    compute_s=sum(compute_s[start:stop]),
                    send_bytes=0 if is_last else cut_bytes[stop],
                    send_s=0.0 if is_last else send_s[stop],
                )
            )
        return PipelinePlan(
            network=net.name,
            config=config,
            link=link,
            strategy=strategy,
            stages=tuple(stages),
        )
