"""Inter-chip link model: bandwidth plus a fixed per-transfer hop latency.

A sharded deployment moves activations between accelerator instances —
stage-to-stage handoffs in a layer pipeline, scatter/gather in batch-level
data parallelism.  The cost model is deliberately first-order, matching the
rest of the repository: a transfer of ``n`` bytes over a link of bandwidth
``B`` GB/s and hop latency ``L`` costs ``L + n / B`` seconds, and a
zero-byte transfer costs nothing (no message, no hop).

``bandwidth_gbs`` may be ``math.inf`` — the "free interconnect" limit the
scaling tests use to show N-way data parallelism approaching an N× speedup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.nn.layers import TensorShape

__all__ = ["LinkSpec", "activation_bytes"]


@dataclass(frozen=True)
class LinkSpec:
    """An inter-chip link: sustained bandwidth + fixed per-transfer latency.

    Attributes
    ----------
    bandwidth_gbs:
        Sustained payload bandwidth in GB/s (1 GB = 1e9 bytes).  ``math.inf``
        models an ideal interconnect.  Defaults to a PCIe-gen4-x16-class
        25 GB/s.
    latency_s:
        Fixed per-transfer hop latency in seconds (serialization setup,
        protocol overhead), charged once per transfer regardless of size.
    """

    bandwidth_gbs: float = 25.0
    latency_s: float = 1e-6

    def __post_init__(self) -> None:
        if math.isnan(self.bandwidth_gbs):
            raise ConfigError("link bandwidth must not be NaN")
        if not self.bandwidth_gbs > 0:
            raise ConfigError(
                f"link bandwidth must be positive, got {self.bandwidth_gbs!r}"
            )
        if math.isnan(self.latency_s) or math.isinf(self.latency_s):
            raise ConfigError(
                f"link latency must be finite, got {self.latency_s!r}"
            )
        if self.latency_s < 0:
            raise ConfigError(
                f"link latency must be >= 0, got {self.latency_s!r}"
            )

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_gbs * 1e9

    def transfer_seconds(self, n_bytes: int) -> float:
        """Seconds to move ``n_bytes`` across the link (0 bytes -> 0 s)."""
        if n_bytes < 0:
            raise ConfigError(f"transfer size must be >= 0, got {n_bytes!r}")
        if n_bytes == 0:
            return 0.0
        if math.isinf(self.bandwidth_gbs):
            return self.latency_s
        return self.latency_s + n_bytes / self.bytes_per_second

    def degraded(self, factor: float) -> "LinkSpec":
        """A validated derived spec running ``factor``× worse.

        Bandwidth divides by ``factor`` and the hop latency multiplies by
        it — both ends of the transfer cost get worse, matching a link that
        has dropped to a lower speed grade or is retrying at the PHY layer.
        ``factor == 1`` returns an equivalent spec; an infinite-bandwidth
        link stays infinite (only its latency degrades).
        """
        if math.isnan(factor) or math.isinf(factor):
            raise ConfigError(f"degrade factor must be finite, got {factor!r}")
        if factor < 1:
            raise ConfigError(f"degrade factor must be >= 1, got {factor!r}")
        return LinkSpec(
            bandwidth_gbs=self.bandwidth_gbs / factor,
            latency_s=self.latency_s * factor,
        )

    def describe(self) -> str:
        bw = "inf" if math.isinf(self.bandwidth_gbs) else f"{self.bandwidth_gbs:g}"
        return f"link({bw} GB/s, {self.latency_s * 1e6:g} us)"


def activation_bytes(shape: TensorShape, word_bytes: int) -> int:
    """Bytes of one activation tensor at the datapath word width.

    The layout (inter vs intra order) decides the *order* words cross the
    link in, not how many there are, so handoff cost depends only on the
    element count.
    """
    if word_bytes <= 0:
        raise ConfigError(f"word_bytes must be positive, got {word_bytes!r}")
    return shape.elements * word_bytes
