"""Fleet-scale what-if capacity planning (``repro capacity``).

The preceding subsystems each answer one operational question — how to
shard (:mod:`repro.cluster`), how to co-locate tenants
(:mod:`repro.tenancy`), how to survive faults (:mod:`repro.resilience`),
when to scale (:mod:`repro.control`).  This package answers the question
that comes *before* all of them: **what should the fleet be?**  Given a
traffic forecast with per-tenant SLOs, a chip-level fault model and an
ABFT on/off switch, the planner enumerates a deterministic grid of
deployments (geometry x fleet size x replication/sharding/partitioning x
batching), prunes it with analytic capacity bounds, simulates the
survivors healthy and under faults through the shared serving machinery,
and ranks them by cost per million within-SLO requests:

- :mod:`repro.capacity.forecast` — :class:`ForecastSpec`, the picklable
  demand model (steady or diurnal mixed-tenant traffic);
- :mod:`repro.capacity.grid` — :class:`Candidate` / :class:`CandidateGrid`,
  the deterministic search space;
- :mod:`repro.capacity.bounds` — the optimistic capacity/attainment
  bounds whose one-sidedness makes pruning safe;
- :mod:`repro.capacity.planner` — :func:`plan_capacity`, the three-phase
  search, plus the byte-stable JSON and text reports.

See ``docs/capacity.md`` for the search space, the pruning proof
obligation, and the report schema.
"""

from repro.capacity.bounds import (
    attainment_bound,
    candidate_capacity_rps,
    mix_image_seconds,
    probe_batches,
)
from repro.capacity.forecast import FORECAST_KINDS, ForecastSpec
from repro.capacity.grid import STRATEGIES, Candidate, CandidateGrid
from repro.capacity.planner import (
    DEFAULT_CACHE_DIR,
    FaultModel,
    plan_capacity,
    render_report,
    report_to_json,
)

__all__ = [
    "Candidate",
    "CandidateGrid",
    "DEFAULT_CACHE_DIR",
    "FORECAST_KINDS",
    "FaultModel",
    "ForecastSpec",
    "STRATEGIES",
    "attainment_bound",
    "candidate_capacity_rps",
    "mix_image_seconds",
    "plan_capacity",
    "probe_batches",
    "render_report",
    "report_to_json",
]
