"""The what-if search space: deployment candidates and their grid.

A :class:`Candidate` is one concrete deployment the planner can buy and
race: a chip geometry, how many chips, and how those chips are organised —

* ``replicated`` — every chip an independent replica behind one queue;
* ``pipeline`` / ``data-parallel`` — chips sharded in groups of ``group``
  through :class:`~repro.cluster.replica.PipelinedReplica`, one serving
  replica per group (``group == n_chips`` is a single fully-sharded
  deployment; smaller groups give the hybrid: replicas of shards);
* ``partitioned`` — every chip carved into ``split`` equal sub-accelerator
  partitions (:func:`~repro.tenancy.partition.even_partitions`), each an
  independent replica —

plus a dynamic-batching cap.  Candidates are frozen, hashable and built
from plain strings/ints, so they pickle cheaply to worker processes and
name themselves deterministically (:attr:`Candidate.name` is the stable
JSON key).

:class:`CandidateGrid` enumerates the cross product of the axes in one
deterministic order, silently skipping combinations that do not type-check
(a group that does not divide the chip count, a split the PE array cannot
tile) — the grid is declarative, the feasibility rules live here once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.arch.config import AcceleratorConfig, named_config
from repro.errors import ConfigError
from repro.tenancy.fleet import REFERENCE_MULTIPLIERS
from repro.tenancy.partition import even_partitions

__all__ = ["STRATEGIES", "Candidate", "CandidateGrid"]

STRATEGIES = ("replicated", "pipeline", "data-parallel", "partitioned")


@dataclass(frozen=True)
class Candidate:
    """One concrete deployment: geometry x chips x organisation x batching."""

    geometry: str
    n_chips: int
    strategy: str = "replicated"
    group: int = 1
    split: int = 1
    max_batch: int = 16

    def __post_init__(self) -> None:
        named_config(self.geometry)  # validates the geometry string
        if self.strategy not in STRATEGIES:
            raise ConfigError(
                f"unknown strategy {self.strategy!r}; choose from {STRATEGIES}"
            )
        for label, value in (
            ("n_chips", self.n_chips),
            ("group", self.group),
            ("split", self.split),
            ("max_batch", self.max_batch),
        ):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigError(
                    f"candidate {label} must be an int, got {value!r}"
                )
            if value <= 0:
                raise ConfigError(
                    f"candidate {label} must be positive, got {value!r}"
                )
        if self.strategy in ("pipeline", "data-parallel"):
            if self.group < 2:
                raise ConfigError(
                    f"{self.strategy} candidate needs group >= 2, got {self.group!r}"
                )
            if self.n_chips % self.group:
                raise ConfigError(
                    f"group {self.group} does not divide {self.n_chips} chips"
                )
        elif self.group != 1:
            raise ConfigError(
                f"{self.strategy} candidate must keep group=1, got {self.group!r}"
            )
        if self.strategy == "partitioned":
            if self.split < 2:
                raise ConfigError(
                    f"partitioned candidate needs split >= 2, got {self.split!r}"
                )
            even_partitions(self.config, self.split)  # validates tiling
        elif self.split != 1:
            raise ConfigError(
                f"{self.strategy} candidate must keep split=1, got {self.split!r}"
            )

    @property
    def config(self) -> AcceleratorConfig:
        return named_config(self.geometry)

    @property
    def name(self) -> str:
        """Stable identifier, the key in every planner report."""
        if self.strategy == "partitioned":
            org = f"partitioned/{self.split}"
        elif self.strategy in ("pipeline", "data-parallel"):
            org = f"{self.strategy}/g{self.group}"
        else:
            org = "replicated"
        return f"{self.geometry} x{self.n_chips} {org} b{self.max_batch}"

    @property
    def n_replicas(self) -> int:
        """Independently-schedulable serving replicas this candidate runs."""
        if self.strategy in ("pipeline", "data-parallel"):
            return self.n_chips // self.group
        if self.strategy == "partitioned":
            return self.n_chips * self.split
        return self.n_chips

    @property
    def slot_config(self) -> AcceleratorConfig:
        """The accelerator geometry one serving replica is planned against."""
        if self.strategy == "partitioned":
            spec = even_partitions(self.config, self.split)[0]
            return self.config.partition(spec.tin, spec.tout)
        return self.config

    @property
    def fleet_weight(self) -> float:
        """Fleet cost in 16-16 reference chips (same scale as tenancy)."""
        return self.n_chips * self.config.multipliers / REFERENCE_MULTIPLIERS

    def chip_replica(self, chip: int) -> Tuple[int, ...]:
        """Serving replica ids that die when physical chip ``chip`` dies.

        This is the fault-mapping contract between the chip-level fault
        model and the serving tier: a replicated chip is its own replica;
        a sharded group dies whole with any member chip; a partitioned
        chip takes all its co-resident partitions down with it.
        """
        if not 0 <= chip < self.n_chips:
            raise ConfigError(
                f"chip index {chip!r} out of range for {self.n_chips} chips"
            )
        if self.strategy in ("pipeline", "data-parallel"):
            return (chip // self.group,)
        if self.strategy == "partitioned":
            return tuple(range(chip * self.split, (chip + 1) * self.split))
        return (chip,)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "geometry": self.geometry,
            "n_chips": self.n_chips,
            "strategy": self.strategy,
            "group": self.group,
            "split": self.split,
            "max_batch": self.max_batch,
            "replicas": self.n_replicas,
            "fleet_weight": round(self.fleet_weight, 6),
        }


@dataclass(frozen=True)
class CandidateGrid:
    """Cross product of deployment axes, enumerated deterministically."""

    geometries: Tuple[str, ...] = ("16-16",)
    chip_counts: Tuple[int, ...] = (1, 2, 4)
    strategies: Tuple[str, ...] = ("replicated",)
    groups: Tuple[int, ...] = (2,)
    splits: Tuple[int, ...] = (2,)
    max_batches: Tuple[int, ...] = (16,)
    #: inter-chip bandwidth (GB/s) the sharded strategies cost against
    link_gbs: float = 25.0
    extras: Tuple[Candidate, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.geometries:
            raise ConfigError("grid needs at least one geometry")
        if not self.chip_counts:
            raise ConfigError("grid needs at least one chip count")
        if not self.strategies:
            raise ConfigError("grid needs at least one strategy")
        if not self.max_batches:
            raise ConfigError("grid needs at least one max_batch")
        for strategy in self.strategies:
            if strategy not in STRATEGIES:
                raise ConfigError(
                    f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
                )
        for geometry in self.geometries:
            named_config(geometry)
        if not self.link_gbs > 0:
            raise ConfigError(
                f"link_gbs must be positive, got {self.link_gbs!r}"
            )

    def _axis(self, strategy: str) -> Iterator[Tuple[int, int]]:
        """(group, split) choices for one strategy axis."""
        if strategy in ("pipeline", "data-parallel"):
            for group in self.groups:
                yield group, 1
        elif strategy == "partitioned":
            for split in self.splits:
                yield 1, split
        else:
            yield 1, 1

    def enumerate(self) -> List[Candidate]:
        """All well-formed candidates, deduplicated, in axis order.

        Combinations the axes allow but the geometry or chip count cannot
        realise (group not dividing n_chips, PE array not tiling into
        ``split`` strips) are skipped, not errors — the grid is a
        declarative envelope, not a hand-checked list.
        """
        out: List[Candidate] = []
        seen = set()
        for geometry in self.geometries:
            for n_chips in self.chip_counts:
                for strategy in self.strategies:
                    for group, split in self._axis(strategy):
                        for max_batch in self.max_batches:
                            try:
                                candidate = Candidate(
                                    geometry=geometry,
                                    n_chips=n_chips,
                                    strategy=strategy,
                                    group=group,
                                    split=split,
                                    max_batch=max_batch,
                                )
                            except ConfigError:
                                continue
                            if candidate.name in seen:
                                continue
                            seen.add(candidate.name)
                            out.append(candidate)
        for candidate in self.extras:
            if candidate.name not in seen:
                seen.add(candidate.name)
                out.append(candidate)
        if not out:
            raise ConfigError(
                "candidate grid is empty: no axis combination type-checks "
                "(check group vs chip counts and split vs PE geometry)"
            )
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "geometries": list(self.geometries),
            "chip_counts": list(self.chip_counts),
            "strategies": list(self.strategies),
            "groups": list(self.groups),
            "splits": list(self.splits),
            "max_batches": list(self.max_batches),
            "link_gbs": round(self.link_gbs, 6),
            "candidates": len(self.enumerate()),
        }
